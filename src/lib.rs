//! # Xorbas-RS
//!
//! A Rust reproduction of **"XORing Elephants: Novel Erasure Codes for Big
//! Data"** (Sathiamoorthy et al., VLDB 2013): Locally Repairable Codes
//! (LRCs), the Reed-Solomon baseline they extend, and the evaluation
//! apparatus around them — an HDFS-RAID cluster simulator, a Markov
//! reliability model, and the information-flow-graph machinery of the
//! paper's appendix.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`gf`] — GF(2^m) arithmetic ([`xorbas_gf`])
//! * [`linalg`] — dense matrices over GF(2^m) ([`xorbas_linalg`])
//! * [`codes`] — RS and LRC codecs, locality/distance analysis
//!   ([`xorbas_core`])
//! * [`flowgraph`] — Appendix-C information flow graphs
//!   ([`xorbas_flowgraph`])
//! * [`reliability`] — §4 MTTDL Markov chains ([`xorbas_reliability`])
//! * [`sim`] — §5 cluster simulator ([`xorbas_sim`])
//!
//! # Quickstart
//!
//! ```
//! use xorbas::codes::{ErasureCodec, Lrc};
//!
//! // The (10,6,5) LRC deployed in HDFS-Xorbas: 10 data blocks, 4
//! // Reed-Solomon parities, 2 stored local XOR parities (plus one
//! // implied), block locality 5, minimum distance 5.
//! let lrc = Lrc::xorbas_10_6_5().expect("construction is deterministic");
//! let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 64]).collect();
//! let stripe = lrc.encode_stripe(&data).expect("encode");
//!
//! // Lose a data block; light-decode it back from its 5-block repair group.
//! let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
//! shards[3] = None;
//! let report = lrc.reconstruct(&mut shards).expect("repair");
//! assert_eq!(shards[3].as_deref(), Some(&stripe[3][..]));
//! assert_eq!(report.blocks_read, 5); // vs 10+ for Reed-Solomon
//! ```
//!
//! See `examples/` for cluster-scale scenarios (start with
//! `examples/quickstart.rs`, then `examples/warehouse_year.rs` for a
//! simulated year on the 3000-node warehouse fleet), `crates/bench` for
//! the harnesses that regenerate every table and figure of the paper,
//! and the repository's `README.md` / `docs/ARCHITECTURE.md` for the
//! workspace tour — including the zero-copy codec surface and the SIMD
//! kernel dispatch layer.

#![forbid(unsafe_code)]

pub use xorbas_core as codes;
pub use xorbas_flowgraph as flowgraph;
pub use xorbas_gf as gf;
pub use xorbas_linalg as linalg;
pub use xorbas_reliability as reliability;
pub use xorbas_sim as sim;

/// Commonly used items, importable with `use xorbas::prelude::*`.
pub mod prelude {
    pub use xorbas_core::{CodeSpec, ErasureCodec, Lrc, LrcSpec, ReedSolomon, RepairReport};
    pub use xorbas_gf::{Field, Gf256};
    pub use xorbas_linalg::Matrix;
}
