//! Degraded reads against a live loopback cluster: the §5.2.4 story,
//! now over real sockets.
//!
//! Transient failures are 90% of data-center failure events; while a
//! chunk is unavailable, readers must reconstruct it on the fly. This
//! example boots five in-process chunk servers, streams a file in
//! through the erasure-coded client, kills one server, then reads
//! every data chunk back. Reads whose server died are served
//! *degraded*: the client compiles a [`RepairSession`] over the
//! surviving lanes (cached, so later stripes reuse it) and decodes the
//! missing chunk inline. Under Xorbas LRC a degraded read touches only
//! the 5-lane local group; under RS(10,4) it reads all k = 10 lanes.
//!
//! Run with: `cargo run --release --example degraded_reads`
//!
//! [`RepairSession`]: xorbas::codes::RepairSession

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xorbas::codes::CodeSpec;
use xorbas::sim::codecs::CodecInstance;
use xorbas::sim::{
    run_scale_scenario, PercentileSummary, ScaleScenario, ServePolicy, ServingSummary,
    RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION,
};
use xorbas_node::client::{ReadKind, SessionCache};
use xorbas_node::{ChunkServer, ClusterClient, Directory, RetryPolicy, ServerConfig};

const SERVERS: usize = 5;
const CHUNK_BYTES: usize = 256 * 1024;
const FILE_BYTES: usize = 24 << 20; // 24 MiB -> ~10 stripes at k=10

struct Outcome {
    name: &'static str,
    direct: usize,
    degraded: usize,
    light: usize,
    failed: usize,
    degraded_ms: f64,
}

fn run_spec(spec: CodeSpec) -> Outcome {
    // Boot a 5-server loopback cluster, one rack per server.
    let mut servers = Vec::new();
    let mut dirs = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for i in 0..SERVERS {
        let dir = std::env::temp_dir().join(format!(
            "xorbas_example_{}_{}_{i}",
            std::process::id(),
            spec.total_blocks()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let server = ChunkServer::start(ServerConfig::new(dir.clone())).expect("bind loopback");
        addrs.push(server.addr());
        servers.push(server);
        dirs.push(dir);
    }
    let directory = Arc::new(Mutex::new(Directory::new(&addrs, SERVERS, 42)));
    let sessions = SessionCache::default();
    let mut client = ClusterClient::new(
        CodecInstance::build(spec).expect("build codec"),
        CHUNK_BYTES,
        Arc::clone(&directory),
        RetryPolicy::default(),
        sessions,
    );

    // Stream a deterministic file in.
    let data: Vec<u8> = (0..FILE_BYTES).map(|i| (i * 31 % 251) as u8).collect();
    let manifest = client.put(&data).expect("put");

    // Kill one server: its lanes become unreadable until repaired.
    servers.last().expect("have servers").kill();

    // Read every data chunk of every stripe. The first degraded stripe
    // pays the session compile; the cache serves the rest.
    let k = spec.data_blocks();
    let mut out = Outcome {
        name: spec.name_static(),
        direct: 0,
        degraded: 0,
        light: 0,
        failed: 0,
        degraded_ms: 0.0,
    };
    let mut buf = Vec::new();
    for stripe in &manifest.stripes {
        for lane in 0..k as u32 {
            let t0 = Instant::now();
            match client.read_data_chunk(stripe.id, lane, &mut buf) {
                Ok(ReadKind::Direct) => out.direct += 1,
                Ok(ReadKind::Degraded { light }) => {
                    out.degraded += 1;
                    out.light += usize::from(light);
                    out.degraded_ms += t0.elapsed().as_secs_f64() * 1e3;
                }
                Err(_) => out.failed += 1,
            }
        }
    }

    // Bit-identity through the mixed direct/degraded path.
    let mut round_trip = Vec::new();
    client.get(&manifest, &mut round_trip).expect("get");
    assert_eq!(round_trip, data, "degraded reads must be bit-identical");

    for server in servers {
        server.shutdown();
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    out
}

trait SpecName {
    fn name_static(&self) -> &'static str;
}

impl SpecName for CodeSpec {
    fn name_static(&self) -> &'static str {
        match self {
            CodeSpec::Lrc(_) => "Xorbas LRC (10,6,5)",
            CodeSpec::ReedSolomon { .. } => "RS (10,4)",
            _ => "replication",
        }
    }
}

/// Renders one latency tail as the JSON fragment the bench file keeps.
fn tail_json(p: &PercentileSummary) -> String {
    format!(
        r#"{{"count":{},"p50_ms":{:.3},"p99_ms":{:.3},"p999_ms":{:.3}}}"#,
        p.count, p.p50, p.p99, p.p999
    )
}

fn serving_run_json(seed: u64, s: &ServingSummary) -> String {
    format!(
        r#"{{"seed":{seed},"reads_issued":{},"direct_reads":{},"degraded_light":{},"degraded_heavy":{},"fixer_wait_reads":{},"failed_reads":{},"degraded_fraction":{:.6},"single_loss_fraction":{:.4},"degraded_bytes":{:.0},"fixer_wait_bytes":{:.0},"direct":{},"degraded":{},"fixer_wait":{}}}"#,
        s.reads_issued,
        s.direct_reads,
        s.degraded_light,
        s.degraded_heavy,
        s.fixer_wait_reads,
        s.failed_reads,
        s.degraded_fraction,
        s.single_loss_fraction,
        s.degraded_bytes,
        s.fixer_wait_bytes,
        tail_json(&s.direct_ms),
        tail_json(&s.degraded_ms),
        tail_json(&s.fixer_wait_ms),
    )
}

/// The simulated serving plane: a week of Zipf reads against the
/// 60-node trace-driven cluster, unavailable blocks served degraded
/// (or, in the last run, parked on the BlockFixer). Prints the
/// BENCH_PR9 JSON line the repo pins in CI.
fn serving_plane() {
    println!("\nsimulated serving plane: 7-day Zipf workload, 60 nodes, LRC (10,6,5)\n");
    println!("policy         seed  reads    degraded%  1-loss%  deg p50/p99/p999 ms");

    let mut runs = Vec::new();
    for seed in [3u64, 7, 13] {
        let sc = ScaleScenario::serving_mode(CodeSpec::LRC_10_6_5);
        let s = run_scale_scenario(&sc, seed)
            .serving
            .expect("serving_mode attaches a workload");
        println!(
            "{:<13} {:>5}  {:>7}  {:>8.3}  {:>7.2}  {:>6.1}/{:.1}/{:.1}",
            "degraded",
            seed,
            s.reads_issued,
            s.degraded_fraction * 100.0,
            s.single_loss_fraction * 100.0,
            s.degraded_ms.p50,
            s.degraded_ms.p99,
            s.degraded_ms.p999,
        );
        runs.push(serving_run_json(seed, &s));
    }

    let mut wait = ScaleScenario::serving_mode(CodeSpec::LRC_10_6_5);
    wait.workload.as_mut().expect("workload").policy = ServePolicy::WaitForFixer;
    let w = run_scale_scenario(&wait, 3)
        .serving
        .expect("serving summary");
    println!(
        "{:<13} {:>5}  {:>7}  {:>8.3}  {:>7.2}  fixer-wait p50 {:.0} ms",
        "wait-fixer",
        3,
        w.reads_issued,
        w.degraded_fraction * 100.0,
        w.single_loss_fraction * 100.0,
        w.fixer_wait_ms.p50,
    );
    runs.push(serving_run_json(3, &w));

    println!(
        "\nsingle-block recovery fraction vs Rashmi et al. {:.2}%: the pin \
         CI enforces (crates/sim/tests/serving_scenario.rs).\n",
        RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION * 100.0
    );
    println!(
        r#"BENCH_PR9 {{"bench":"sim serving plane","scenario":"serving_mode","code":"LRC(10,6,5)","days":7,"nodes":60,"reads_per_sec":1.0,"zipf_s":1.1,"rashmi_single_loss_fraction":{RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION},"runs":[{}]}}"#,
        runs.join(",")
    );
}

fn main() {
    println!("degraded reads over a live 5-server loopback cluster\n");
    let lrc = run_spec(CodeSpec::LRC_10_6_5);
    let rs = run_spec(CodeSpec::RS_10_4);

    println!("code                  direct  degraded  light  failed  avg degraded ms");
    for o in [&lrc, &rs] {
        println!(
            "{:<21} {:>6}  {:>8}  {:>5}  {:>6}  {:>15.2}",
            o.name,
            o.direct,
            o.degraded,
            o.light,
            o.failed,
            o.degraded_ms / o.degraded.max(1) as f64
        );
    }
    println!(
        "\nevery degraded LRC read decoded from its 5-lane local group \
         (light={}/{}); RS always reads k=10 lanes. Zero failed reads: \
         the dead server is invisible to readers.",
        lrc.light, lrc.degraded
    );
    assert_eq!(lrc.failed + rs.failed, 0, "no read may fail under one loss");

    serving_plane();
}
