//! Degraded reads under analytics load: the §5.2.4 story.
//!
//! Transient failures are 90% of data-center failure events; while a
//! block is unavailable, jobs that need it must reconstruct it on the
//! fly. This example runs WordCount jobs against a cluster with ~20% of
//! blocks missing and compares the slowdown under RS vs LRC coding.
//!
//! Run with: `cargo run --release --example degraded_reads`

use xorbas::codes::CodeSpec;
use xorbas::sim::experiment::workload_experiment;

fn main() {
    let seed = 99;
    println!("running 3 workload scenarios (10 WordCount jobs each)…\n");
    let healthy = workload_experiment(CodeSpec::LRC_10_6_5, 0.0, seed);
    let lrc = workload_experiment(CodeSpec::LRC_10_6_5, 0.2, seed);
    let rs = workload_experiment(CodeSpec::RS_10_4, 0.2, seed);

    println!("job   all avail   Xorbas 20% miss   RS 20% miss   (minutes)");
    for i in 0..10 {
        println!(
            "{:>3}   {:>9.1}   {:>15.1}   {:>11.1}",
            i + 1,
            healthy.job_minutes[i],
            lrc.job_minutes[i],
            rs.job_minutes[i]
        );
    }
    println!(
        "\naverages: {:.1} / {:.1} / {:.1} min — degraded-read penalty: \
         Xorbas +{:.1}%, RS +{:.1}%",
        healthy.avg_job_minutes,
        lrc.avg_job_minutes,
        rs.avg_job_minutes,
        (lrc.avg_job_minutes / healthy.avg_job_minutes - 1.0) * 100.0,
        (rs.avg_job_minutes / healthy.avg_job_minutes - 1.0) * 100.0,
    );
    println!(
        "bytes read: {:.1} GB healthy, {:.1} GB Xorbas, {:.1} GB RS — \
         reconstruction traffic is the cost of unavailability.",
        healthy.total_gb_read, lrc.total_gb_read, rs.total_gb_read
    );
}
