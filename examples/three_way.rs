//! The PR-10 three-way codec study: RS (10,4) vs LRC (10,6,5) vs
//! piggybacked RS (10,4) on the fast-mode 60-node scenario.
//!
//! Prints the comparison table — storage overhead, distance bound,
//! plan-level single-data-loss cost (volume and touched blocks), and
//! the cluster-measured repair traffic per lost block — then the
//! `BENCH_PR10` JSON line the repo commits as `BENCH_PR10.json`. The
//! same scenario and seeds are pinned in CI by
//! `crates/sim/tests/three_way_scenario.rs`.
//!
//! Run with: `cargo run --release --example three_way`

use xorbas::codes::CodeSpec;
use xorbas::sim::{three_way_table, CodeComparisonRow, ConfidenceInterval, ScaleScenario};

/// Same seeds as the CI scenario gates.
const SEEDS: [u64; 3] = [5, 17, 23];

fn ci_json(ci: &ConfidenceInterval) -> String {
    format!(
        r#"{{"mean":{:.4},"half_width":{:.4},"n":{}}}"#,
        ci.mean, ci.half_width, ci.n
    )
}

fn row_json(row: &CodeComparisonRow) -> String {
    let runs: Vec<String> = SEEDS
        .iter()
        .zip(&row.cluster.runs)
        .map(|(seed, r)| {
            format!(
                r#"{{"seed":{seed},"blocks_lost":{},"blocks_read_per_lost_block":{:.4},"hdfs_gb_read":{:.3}}}"#,
                r.blocks_lost,
                r.blocks_read_per_lost_block,
                r.hdfs_bytes_read / 1e9,
            )
        })
        .collect();
    format!(
        r#"{{"scheme":"{}","storage_overhead":{:.1},"distance_upper_bound":{},"single_data_loss_volume":{:.4},"single_data_loss_blocks":{:.1},"cluster_blocks_read_per_lost_block":{},"cluster_hdfs_gb_read":{},"runs":[{}]}}"#,
        row.scheme,
        row.storage_overhead,
        row.distance_upper_bound,
        row.single_data_loss_volume,
        row.single_data_loss_blocks,
        ci_json(&row.cluster.blocks_read_per_lost_block),
        ci_json(&row.cluster.hdfs_gb_read),
        runs.join(","),
    )
}

fn main() {
    println!("three-way codec comparison: 60-node fast-mode scenario, two simulated weeks\n");

    let rows = three_way_table(&ScaleScenario::fast_mode(CodeSpec::RS_10_4), &SEEDS)
        .expect("three-way comparison specs are well-formed");

    println!(
        "{:<24} {:>8} {:>9} {:>12} {:>12} {:>14}",
        "scheme", "overhead", "distance", "1-loss vol", "1-loss blks", "cluster reads"
    );
    for row in &rows {
        println!(
            "{:<24} {:>7.1}x {:>9} {:>12.2} {:>12.1} {:>8.2} ±{:.2}",
            row.scheme,
            1.0 + row.storage_overhead,
            row.distance_upper_bound,
            row.single_data_loss_volume,
            row.single_data_loss_blocks,
            row.cluster.blocks_read_per_lost_block.mean,
            row.cluster.blocks_read_per_lost_block.half_width,
        );
    }

    let rs = &rows[0];
    let pb = &rows[2];
    let plan_ratio = pb.single_data_loss_volume / rs.single_data_loss_volume;
    let cluster_ratio =
        pb.cluster.blocks_read_per_lost_block.mean / rs.cluster.blocks_read_per_lost_block.mean;
    println!(
        "\npiggybacked RS repairs a lost data block from {:.0}% of the RS bytes at \
         equal storage\noverhead and distance ({:.0}% on the mixed-lane cluster \
         average, where parity and\nmulti-loss repairs cost full RS volume). \
         CI pins the 0.75x gate \
         (crates/sim/tests/three_way_scenario.rs).\n",
        plan_ratio * 100.0,
        cluster_ratio * 100.0,
    );
    assert!(
        plan_ratio <= 0.75,
        "the committed table must satisfy the gate"
    );

    let row_lines: Vec<String> = rows.iter().map(row_json).collect();
    println!(
        r#"BENCH_PR10 {{"bench":"three-way codec comparison","scenario":"fast_mode","days":14,"nodes":60,"seeds":[5,17,23],"gate":{{"metric":"piggyback_over_rs_single_data_loss_volume","max":0.75,"measured":{:.4}}},"cluster_ratio_piggyback_over_rs":{:.4},"rows":[{}]}}"#,
        plan_ratio,
        cluster_ratio,
        row_lines.join(","),
    );
}
