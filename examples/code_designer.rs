//! Code designer: build and certify a custom LRC.
//!
//! Pick (k, global parities, group size), and this example constructs
//! the code, measures its true locality and minimum distance by brute
//! force, compares against the Theorem-2 bound, checks achievability on
//! the Appendix-C information flow graph where applicable, and prints
//! the repair equations.
//!
//! Run with: `cargo run --example code_designer`

use xorbas::codes::analysis::{code_locality, minimum_distance};
use xorbas::codes::bounds::{lrc_distance_bound, mds_distance};
use xorbas::codes::{ErasureCodec, Lrc, LrcSpec};
use xorbas::flowgraph::{all_collectors_feasible, GadgetParams};

fn design(k: usize, global_parities: usize, group_size: usize) {
    let spec = LrcSpec {
        k,
        global_parities,
        group_size,
        implied_parity: true,
    };
    let lrc: Lrc = match Lrc::new(spec) {
        Ok(l) => l,
        Err(e) => {
            println!("(k={k}, g={global_parities}, r={group_size}): rejected — {e}");
            return;
        }
    };
    let n = lrc.total_blocks();
    let d = minimum_distance(lrc.generator());
    let r = spec.locality();
    let locality = code_locality(lrc.generator(), r).expect("locality within spec");
    let bound = lrc_distance_bound(n, k, r);
    println!(
        "LRC ({k}, {}, {r}) — n = {n}, overhead {:.2}x",
        n - k,
        lrc.spec().storage_overhead()
    );
    println!("  locality (measured) : {locality}");
    println!("  distance (measured) : {d}");
    println!(
        "  Theorem-2 bound     : {bound}   MDS at same (n,k): {}",
        mds_distance(n, k)
    );
    if n % (r + 1) == 0 {
        let ok = all_collectors_feasible(GadgetParams { k, n, r, d });
        println!(
            "  flow-graph check    : d = {d} is {}",
            if ok { "achievable" } else { "NOT achievable" }
        );
    }
    println!(
        "  repair equations    : {} XOR groups",
        lrc.equations().len()
    );
    for eq in lrc.equations() {
        let ids: Vec<String> = eq.indices().map(|i| format!("y{i}")).collect();
        println!("      {} = 0", ids.join(" + "));
    }
    println!();
}

fn main() {
    println!("— the paper's production code —\n");
    design(10, 4, 5);
    println!("— a cheaper-repair variant (smaller groups) —\n");
    design(10, 4, 2);
    println!("— an archival-leaning design (§7) —\n");
    design(20, 4, 5);
    println!("— structurally invalid: r must divide k —");
    design(10, 4, 3);
}
