//! Failure-trace explorer: how often does a 3000-node cluster hurt?
//!
//! Generates synthetic month-long failure traces (Fig. 1's shape),
//! summarizes them, and estimates the repair traffic each day would
//! cause under the three redundancy schemes of the paper.
//!
//! Run with: `cargo run --example failure_trace`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorbas::codes::CodeSpec;
use xorbas::sim::failures::{generate_trace, trace_stats, TraceConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = TraceConfig::default();
    let trace = generate_trace(cfg, &mut rng);
    let stats = trace_stats(&trace);
    println!(
        "one synthetic month: median {:.0}, mean {:.1}, max {} failed nodes/day\n",
        stats.median, stats.mean, stats.max
    );

    // A 3000-node, 30 PB cluster stores ~15 TB per node; with 256 MB
    // blocks that is ~58,600 blocks re-created per failed node.
    let blocks_per_node = 15e12 / 256e6;
    println!("estimated repair reads per day (TB), by redundancy scheme:");
    println!("day  failures   3-repl    RS(10,4)  LRC(10,6,5)");
    for (day, &f) in trace.iter().enumerate().take(10) {
        let blocks = f as f64 * blocks_per_node;
        let tb = |reads: f64| blocks * reads * 256e6 / 1e12;
        println!(
            "{:>3}  {:>8}   {:>7.1}   {:>8.1}   {:>8.1}",
            day + 1,
            f,
            tb(CodeSpec::REPLICATION_3.single_repair_reads() as f64),
            tb(CodeSpec::RS_10_4.single_repair_reads() as f64),
            tb(CodeSpec::LRC_10_6_5.single_repair_reads() as f64),
        );
    }
    println!("...\n");
    let total: f64 = trace.iter().map(|&f| f as f64 * blocks_per_node).sum();
    println!(
        "month total: {:.1} PB of repair reads under RS vs {:.1} PB under LRC —\n\
         the 2x saving that §1.1 argues keeps repair from saturating the\n\
         cluster network as the RAIDed fraction grows.",
        total * 10.0 * 256e6 / 1e15,
        total * 5.0 * 256e6 / 1e15,
    );
}
