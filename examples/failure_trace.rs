//! Failure-trace explorer: how often does a 3000-node cluster hurt?
//!
//! Generates synthetic month-long failure traces (Fig. 1's shape),
//! summarizes them, estimates the repair traffic each day would cause
//! under the three redundancy schemes of the paper — and then *checks*
//! the estimate by running the trace-driven warehouse simulator
//! (fast mode) under RS (10,4) and LRC (10,6,5).
//!
//! Run with: `cargo run --release --example failure_trace`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorbas::codes::CodeSpec;
use xorbas::sim::experiment::compare_repair_traffic;
use xorbas::sim::failures::{generate_trace, trace_stats, TraceConfig};
use xorbas::sim::ScaleScenario;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = TraceConfig::default();
    let trace = generate_trace(cfg, &mut rng);
    let stats = trace_stats(&trace);
    println!(
        "one synthetic month: median {:.0}, mean {:.1}, max {} failed nodes/day\n",
        stats.median, stats.mean, stats.max
    );

    // A 3000-node, 30 PB cluster stores ~10 TB per node; with 256 MB
    // blocks that is ~39,000 blocks re-created per failed node.
    let blocks_per_node = 10e12 / 256e6;
    println!("estimated repair reads per day (TB), by redundancy scheme:");
    println!("day  failures   3-repl    RS(10,4)  LRC(10,6,5)");
    for (day, &f) in trace.iter().enumerate().take(10) {
        let blocks = f as f64 * blocks_per_node;
        let tb = |reads: f64| blocks * reads * 256e6 / 1e12;
        println!(
            "{:>3}  {:>8}   {:>7.1}   {:>8.1}   {:>8.1}",
            day + 1,
            f,
            tb(CodeSpec::REPLICATION_3.single_repair_reads() as f64),
            tb(CodeSpec::RS_10_4.single_repair_reads() as f64),
            tb(CodeSpec::LRC_10_6_5.single_repair_reads() as f64),
        );
    }
    println!("...\n");
    let total: f64 = trace.iter().map(|&f| f as f64 * blocks_per_node).sum();
    println!(
        "month total: {:.1} PB of repair reads under RS vs {:.1} PB under LRC —\n\
         the 2x saving that §1.1 argues keeps repair from saturating the\n\
         cluster network as the RAIDed fraction grows.\n",
        total * 10.0 * 256e6 / 1e15,
        total * 5.0 * 256e6 / 1e15,
    );

    // Back-of-envelope meets simulator: replay the same failure process
    // against the scaled warehouse model (60-node fast-mode slice, two
    // simulated weeks, three seeds) and measure the ratio for real.
    println!("running the trace-driven simulator (fast mode, 3 seeds per scheme)…");
    let template = ScaleScenario::fast_mode(CodeSpec::LRC_10_6_5);
    let (rs, lrc, ratio) = compare_repair_traffic(&template, &[1, 2, 3]);
    println!(
        "  RS (10,4):     {} blocks read per lost block",
        rs.blocks_read_per_lost_block
    );
    println!(
        "  LRC (10,6,5):  {} blocks read per lost block",
        lrc.blocks_read_per_lost_block
    );
    println!("  measured repair-traffic ratio: {ratio:.2}x (estimate said 2.0x)");
    println!("\nsee examples/warehouse_year.rs for the full 3000-node simulated year.");
}
