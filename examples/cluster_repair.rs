//! Simulated cluster repair: the §5.2 EC2 scenario in miniature.
//!
//! Loads a 20-node cluster with RAIDed files, terminates a DataNode, and
//! lets the BlockFixer repair everything — once under HDFS-RS and once
//! under HDFS-Xorbas — then compares what the repair cost.
//!
//! Run with: `cargo run --example cluster_repair`

use xorbas::codes::CodeSpec;
use xorbas::sim::{SimConfig, SimTime, Simulation};

fn run(code: CodeSpec) -> (String, f64, f64, f64, u64) {
    let mut cfg = SimConfig::ec2(code);
    cfg.cluster.nodes = 20;
    cfg.verify_payloads = true; // repairs are checked bit-exact
    cfg.seed = 2024;
    let mut sim = Simulation::new(cfg);
    for i in 0..10 {
        sim.load_raided_file(&format!("logs-{i}"), 10);
    }
    let victim = sim.pick_victims(1)[0];
    let lost = sim.hdfs.blocks_on(victim).len();
    println!(
        "[{}] killing node {victim} holding {lost} blocks…",
        code.name()
    );
    sim.kill_node_at(SimTime::from_secs(10), victim);
    sim.run_until_idle(SimTime::from_mins(10_000));
    assert!(sim.hdfs.lost_blocks().is_empty(), "everything repaired");
    let s = sim.metrics.snapshot();
    let dur = sim
        .metrics
        .repair_span_since(0)
        .map(|(a, b)| (b.saturating_sub(a)).as_mins_f64())
        .unwrap_or(0.0);
    (
        code.name(),
        s.hdfs_bytes_read / 1e9,
        s.network_bytes / 1e9,
        dur,
        s.blocks_repaired,
    )
}

fn main() {
    let rows = [run(CodeSpec::RS_10_4), run(CodeSpec::LRC_10_6_5)];
    println!();
    println!("scheme            read GB   net GB   duration   blocks repaired");
    for (name, read, net, dur, repaired) in &rows {
        println!("{name:<16} {read:>8.2} {net:>8.2} {dur:>7.1} min {repaired:>12}");
    }
    let ratio = (rows[1].1 / rows[1].4 as f64) / (rows[0].1 / rows[0].4 as f64);
    println!(
        "\nXorbas read {:.0}% of the bytes RS read per repaired block \
         (paper: 41-52%), with every repaired block verified bit-exact.",
        ratio * 100.0
    );
}
