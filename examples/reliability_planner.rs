//! Reliability planner: §4's Markov MTTDL analysis as a capacity tool.
//!
//! Given cluster parameters, compares 3-replication, RS (10,4) and the
//! (10,6,5) LRC on storage overhead, repair traffic and MTTDL — then
//! shows how the answer shifts when the cross-rack bandwidth changes
//! (the regime where local repair matters most).
//!
//! Run with: `cargo run --example reliability_planner`

use xorbas::codes::CodeError;
use xorbas::reliability::{format_table1, table1, ClusterParams};

fn main() -> Result<(), CodeError> {
    let base = ClusterParams::facebook();
    println!(
        "cluster: {} nodes, {:.0} PB, {:.0} MB blocks, node MTTF {:.0} y\n",
        base.nodes,
        base.total_data_bytes / 1e15,
        base.block_bytes / 1e6,
        base.node_mttf_days / 365.0
    );
    println!("{}", format_table1(&table1(&base)?));

    println!("sensitivity: MTTDL (days) vs cross-rack repair bandwidth\n");
    println!("γ (Gbps)   3-replication   RS (10,4)      LRC (10,6,5)   LRC/RS");
    for gbps in [0.1, 0.5, 1.0, 5.0, 10.0] {
        let params = ClusterParams {
            cross_rack_bps: gbps * 1e9,
            ..base
        };
        let rows = table1(&params)?;
        println!(
            "{gbps:>7.1}   {:>13.3e}   {:>12.3e}   {:>12.3e}   {:>5.1}x",
            rows[0].mttdl_days,
            rows[1].mttdl_days,
            rows[2].mttdl_days,
            rows[2].mttdl_days / rows[1].mttdl_days
        );
    }
    println!(
        "\nreading the table: the slower the repair network, the more the\n\
         LRC's 2x-lighter repairs are worth — exactly the paper's thesis\n\
         that locality matters when \"network bandwidth is the main\n\
         performance bottleneck\" (§7)."
    );
    Ok(())
}
