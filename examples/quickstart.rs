//! Quickstart: encode a stripe with the (10,6,5) LRC, lose blocks,
//! repair them, and see why locality matters — all on the zero-copy
//! codec surface (`encode_into` / `RepairSession` / `StripeViewMut`)
//! that the simulator and benches use.
//!
//! Run with: `cargo run --example quickstart`

use xorbas::codes::{encode_into_parallel, ErasureCodec, Lrc, ReedSolomon, StripeViewMut};

/// Encodes `data` into a freshly-allocated full stripe using the
/// zero-copy path: parity lanes are caller-owned buffers that
/// `encode_into` fills in place (here sharded over 4 threads).
fn encode_stripe_zero_copy(codec: &(dyn ErasureCodec + Sync), data: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let lane_len = data[0].len();
    let parity_lanes = codec.total_blocks() - codec.data_blocks();
    let mut stripe: Vec<Vec<u8>> = data.to_vec();
    let mut parity = vec![vec![0u8; lane_len]; parity_lanes];
    {
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        encode_into_parallel(codec, &data_refs, &mut parity_refs, 4).expect("parallel encode");
    }
    stripe.extend(parity);
    stripe
}

/// Repairs `missing` lanes in place with a compiled [`RepairSession`]
/// and returns how many blocks the repair read.
fn repair_in_place(
    codec: &dyn ErasureCodec,
    stripe: &mut [Vec<u8>],
    missing: &[usize],
) -> (usize, bool) {
    // Compile the failure pattern once; replaying it is allocation- and
    // solve-free, which is what makes the simulator's BlockFixer cheap.
    let session = codec.repair_session(missing).expect("recoverable pattern");
    for &m in missing {
        stripe[m].fill(0); // lost lanes: buffer contents are stale
    }
    let mut lane_refs: Vec<&mut [u8]> = stripe.iter_mut().map(Vec::as_mut_slice).collect();
    let mut view = StripeViewMut::new(&mut lane_refs, missing).expect("consistent lanes");
    session.repair(&mut view).expect("replayable repair");
    let report = session.report();
    (report.blocks_read, report.used_light_decoder)
}

fn main() {
    // Ten 1 MiB data blocks — one HDFS-Xorbas stripe's worth of data.
    let data: Vec<Vec<u8>> = (0..10u8)
        .map(|i| {
            (0..1 << 20)
                .map(|j| i.wrapping_mul(37).wrapping_add(j as u8))
                .collect()
        })
        .collect();

    // The paper's two contenders.
    let rs: ReedSolomon = ReedSolomon::new(10, 4).expect("RS(10,4)");
    let lrc = Lrc::xorbas_10_6_5().expect("LRC(10,6,5)");

    println!("scheme          blocks  overhead  single-repair reads");
    for (name, n, overhead, reads) in [
        ("3-replication", 3, 2.0, 1),
        (
            "RS (10, 4)",
            rs.total_blocks(),
            rs.spec().storage_overhead(),
            10,
        ),
        (
            "LRC (10, 6, 5)",
            lrc.total_blocks(),
            lrc.spec().storage_overhead(),
            5,
        ),
    ] {
        println!("{name:<15} {n:>6}  {overhead:>7.1}x  {reads:>19}");
    }
    println!();

    // Encode once with each scheme (zero-copy, parallel across threads).
    let rs_stripe = encode_stripe_zero_copy(&rs, &data);
    let lrc_stripe = encode_stripe_zero_copy(&lrc, &data);

    // Lose data block 3 and repair it in place.
    let mut work = rs_stripe.clone();
    let (read, light) = repair_in_place(&rs, &mut work, &[3]);
    println!(
        "RS  repair of X4: read {} blocks ({} light decoder)",
        read,
        if light { "with" } else { "without" }
    );
    assert_eq!(work[3], rs_stripe[3]);

    let mut work = lrc_stripe.clone();
    let (read, light) = repair_in_place(&lrc, &mut work, &[3]);
    println!(
        "LRC repair of X4: read {} blocks ({} light decoder)",
        read,
        if light { "with" } else { "without" }
    );
    assert_eq!(work[3], lrc_stripe[3]);

    // The LRC tolerates any 4 erasures, like the RS code…
    let mut work = lrc_stripe.clone();
    let (read, light) = repair_in_place(&lrc, &mut work, &[0, 7, 11, 15]);
    println!(
        "LRC repair of X1, X8, P2, S2 together: {} distinct blocks read, light = {}",
        read, light
    );
    for (lane, original) in work.iter().zip(&lrc_stripe) {
        assert_eq!(lane, original);
    }

    // Sessions compile a failure pattern once and replay it without
    // re-solving — repair the same pattern on a second stripe for free.
    let session = lrc.repair_session(&[3]).expect("compile once");
    let mut lanes = lrc_stripe.clone();
    lanes[3].fill(0);
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    let mut view = StripeViewMut::new(&mut lane_refs, &[3]).expect("consistent lanes");
    session.repair(&mut view).expect("replayable repair");
    drop(lane_refs);
    assert_eq!(lanes[3], lrc_stripe[3]);
    println!(
        "compiled session: repair replayed with {} linear solve(s) total",
        session.solve_count()
    );

    // …at 14% more storage than RS, which Table 1 shows buys two extra
    // zeros of MTTDL. See examples/reliability_planner.rs, and
    // examples/warehouse_year.rs for the same story at 3000-node scale.
    println!("\nall repairs verified bit-exact ✔");
}
