//! Quickstart: encode a stripe with the (10,6,5) LRC, lose blocks,
//! repair them, and see why locality matters.
//!
//! Run with: `cargo run --example quickstart`

use xorbas::prelude::*;

fn main() {
    // Ten 1 MiB data blocks — one HDFS-Xorbas stripe's worth of data.
    let data: Vec<Vec<u8>> = (0..10u8)
        .map(|i| {
            (0..1 << 20)
                .map(|j| i.wrapping_mul(37).wrapping_add(j as u8))
                .collect()
        })
        .collect();

    // The paper's two contenders.
    let rs: ReedSolomon = ReedSolomon::new(10, 4).expect("RS(10,4)");
    let lrc = Lrc::xorbas_10_6_5().expect("LRC(10,6,5)");

    println!("scheme          blocks  overhead  single-repair reads");
    for (name, n, overhead, reads) in [
        ("3-replication", 3, 2.0, 1),
        (
            "RS (10, 4)",
            rs.total_blocks(),
            rs.spec().storage_overhead(),
            10,
        ),
        (
            "LRC (10, 6, 5)",
            lrc.total_blocks(),
            lrc.spec().storage_overhead(),
            5,
        ),
    ] {
        println!("{name:<15} {n:>6}  {overhead:>7.1}x  {reads:>19}");
    }
    println!();

    // Encode once with each scheme.
    let rs_stripe = rs.encode_stripe(&data).expect("encode");
    let lrc_stripe = lrc.encode_stripe(&data).expect("encode");

    // Lose data block 3 and repair it.
    let mut shards: Vec<Option<Vec<u8>>> = rs_stripe.iter().cloned().map(Some).collect();
    shards[3] = None;
    let report = rs.reconstruct(&mut shards).expect("RS repair");
    println!(
        "RS  repair of X4: read {} blocks ({} light decoder)",
        report.blocks_read,
        if report.used_light_decoder {
            "with"
        } else {
            "without"
        }
    );
    assert_eq!(shards[3].as_deref(), Some(&rs_stripe[3][..]));

    let mut shards: Vec<Option<Vec<u8>>> = lrc_stripe.iter().cloned().map(Some).collect();
    shards[3] = None;
    let report = lrc.reconstruct(&mut shards).expect("LRC repair");
    println!(
        "LRC repair of X4: read {} blocks ({} light decoder)",
        report.blocks_read,
        if report.used_light_decoder {
            "with"
        } else {
            "without"
        }
    );
    assert_eq!(shards[3].as_deref(), Some(&lrc_stripe[3][..]));

    // The LRC tolerates any 4 erasures, like the RS code…
    let mut shards: Vec<Option<Vec<u8>>> = lrc_stripe.iter().cloned().map(Some).collect();
    for i in [0, 7, 11, 15] {
        shards[i] = None;
    }
    let report = lrc.reconstruct(&mut shards).expect("multi-failure repair");
    println!(
        "LRC repair of X1, X8, P2, S2 together: {} distinct blocks read, light = {}",
        report.blocks_read, report.used_light_decoder
    );
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.as_deref(), Some(&lrc_stripe[i][..]));
    }

    // The zero-copy surface: encode straight into reusable parity
    // buffers (optionally sharded across threads), and compile the
    // repair of a failure pattern once to replay it allocation-free —
    // this is what the hot paths (simulator, benches) use.
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0u8; 1 << 20]; 6];
    {
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        xorbas::codes::encode_into_parallel(&lrc, &data_refs, &mut parity_refs, 4)
            .expect("parallel encode");
    }
    assert_eq!(&lrc_stripe[10..], &parity[..]);

    let session = lrc.repair_session(&[3]).expect("compile once");
    let mut lanes = lrc_stripe.clone();
    lanes[3].fill(0); // the lost lane's buffer: contents are stale
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    let mut view =
        xorbas::codes::StripeViewMut::new(&mut lane_refs, &[3]).expect("consistent lanes");
    session.repair(&mut view).expect("replayable repair");
    drop(lane_refs);
    assert_eq!(lanes[3], lrc_stripe[3]);
    println!(
        "zero-copy path: parallel encode + compiled session repair ({} solve) verified",
        session.solve_count()
    );

    // …at 14% more storage than RS, which Table 1 shows buys two extra
    // zeros of MTTDL. See examples/reliability_planner.rs.
    println!("\nall repairs verified bit-exact ✔");
}
