//! One simulated year on the paper's warehouse cluster: 3000 nodes,
//! 30 PB stored, ~20 node failures per day (Fig. 1), machines replaced
//! within half a day, weekly WordCount probes.
//!
//! This is the acceptance scenario for the simulator-scaling work: the
//! whole year — hundreds of thousands of block repairs planned by the
//! real codecs — runs in well under five minutes of wall time. Compare
//! RS (10,4) and LRC (10,6,5) on the same seed to see the paper's §1.1
//! argument at production scale.
//!
//! Run with: `cargo run --release --example warehouse_year`

use xorbas::codes::CodeSpec;
use xorbas::sim::experiment::run_scale_scenario;
use xorbas::sim::ScaleScenario;

fn main() {
    println!("simulating one year of the 3000-node / 30 PB warehouse cluster…\n");
    let mut rows = Vec::new();
    for code in [CodeSpec::RS_10_4, CodeSpec::LRC_10_6_5] {
        let sc = ScaleScenario::warehouse_year(code);
        let run = run_scale_scenario(&sc, 2013);
        println!(
            "[{}] {} failures, {} blocks lost, {} repaired, {} events in {:.1}s \
             ({:.0} events/s)",
            run.scheme,
            run.failures_injected,
            run.blocks_lost,
            run.blocks_repaired,
            run.events_processed,
            run.wall_secs,
            run.events_processed as f64 / run.wall_secs,
        );
        rows.push(run);
    }
    println!();
    println!("scheme            repair PB read   net PB   reads/lost   loss   probe min");
    for r in &rows {
        println!(
            "{:<16} {:>13.2} {:>8.2} {:>12.2} {:>6} {:>11.1}",
            r.scheme,
            r.hdfs_bytes_read / 1e15,
            r.network_bytes / 1e15,
            r.blocks_read_per_lost_block,
            r.data_loss_stripes,
            r.probe_job_minutes,
        );
    }
    let ratio = rows[0].blocks_read_per_lost_block / rows[1].blocks_read_per_lost_block;
    println!(
        "\nRS moves {ratio:.2}x the repair bytes per lost block — §1.1's \
         \"half the repair traffic\" at warehouse scale.\n\
         (One simulated block = 512 physical 256 MB blocks; byte metrics \
         are exact, see ClusterScale docs.)"
    );
}
