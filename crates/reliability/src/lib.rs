//! Markov-chain reliability analysis (§4 of "XORing Elephants").
//!
//! The paper estimates mean time to data loss (MTTDL) with a standard
//! birth–death Markov chain per stripe (Fig. 3): state = number of lost
//! blocks, forward rates `λ_i = (n - i)·λ` from independent node
//! failures, backward rates `ρ_i = γ / (b_i · B)` from repairs limited by
//! the cross-rack bandwidth `γ`, where `b_i` is the expected number of
//! blocks a single repair downloads in state `i`.
//!
//! The paper skips the derivation of `b_i` "due to lack of space"; here
//! it is computed *exactly* by enumerating erasure patterns against the
//! real codecs (`xorbas_core::analysis::expected_single_repair_reads`) —
//! including the light-vs-heavy decoder probabilities for the LRC.
//!
//! # Module map (paper section → module)
//!
//! | Paper | Item | What it provides |
//! |---|---|---|
//! | §4 Fig. 3 chain | [`BirthDeathChain`] | birth–death MTTDL solver |
//! | §4 cluster parameters | [`ClusterParams`] | λ, γ, node counts (Facebook defaults) |
//! | Table 1 | [`table1`] | the three-scheme comparison rows |
//! | §4 `b_i` | [`analyze_codec`] / [`SchemeAnalysis`] | per-state repair-read expectations from the real codecs |
//!
//! The `xorbas_sim` crate measures the same quantities by discrete-event
//! simulation; this crate predicts them analytically — the workspace's
//! integration tests hold the two against each other.
//!
//! # Example
//!
//! ```
//! use xorbas_reliability::{ClusterParams, table1};
//!
//! let rows = table1(&ClusterParams::facebook()).unwrap();
//! // Replication < RS (10,4) < LRC (10,6,5), as in Table 1.
//! assert!(rows[0].mttdl_days < rows[1].mttdl_days);
//! assert!(rows[1].mttdl_days < rows[2].mttdl_days);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod markov;
mod params;
mod schemes;
mod table;

pub use markov::BirthDeathChain;
pub use params::ClusterParams;
pub use schemes::{analyze_codec, analyze_replication, SchemeAnalysis};
pub use table::{format_table1, table1, PAPER_TABLE1_MTTDL_DAYS};
