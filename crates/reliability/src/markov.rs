//! Absorbing birth–death chains and mean time to absorption.

/// The Fig.-3 chain: states `0..=s`, where state `i` means `i` blocks of
/// the stripe are lost and state `s` (data loss) is absorbing.
///
/// `forward[i]` is the failure rate `λ_i` out of state `i` (for
/// `i = 0..s`); `backward[i]` is the repair rate `ρ_{i+1}` from state
/// `i+1` back to `i` (for `i = 0..s-1`). Rates are per day.
#[derive(Debug, Clone, PartialEq)]
pub struct BirthDeathChain {
    forward: Vec<f64>,
    backward: Vec<f64>,
}

impl BirthDeathChain {
    /// Builds a chain; `forward.len()` must be `backward.len() + 1` and
    /// all rates must be positive.
    pub fn new(forward: Vec<f64>, backward: Vec<f64>) -> Self {
        assert_eq!(
            forward.len(),
            backward.len() + 1,
            "an s-state chain has s forward and s-1 backward rates"
        );
        assert!(!forward.is_empty(), "need at least one transient state");
        assert!(
            forward
                .iter()
                .chain(&backward)
                .all(|&r| r > 0.0 && r.is_finite()),
            "rates must be positive and finite"
        );
        Self { forward, backward }
    }

    /// Number of transient states (the absorbing state is implicit).
    pub fn transient_states(&self) -> usize {
        self.forward.len()
    }

    /// The failure rates `λ_0..λ_{s-1}`.
    pub fn forward_rates(&self) -> &[f64] {
        &self.forward
    }

    /// The repair rates `ρ_1..ρ_{s-1}`.
    pub fn backward_rates(&self) -> &[f64] {
        &self.backward
    }

    /// Mean time (days) from state 0 to absorption — the stripe MTTDL.
    ///
    /// Uses the classical upward-passage decomposition: with
    /// `h_i = E[time to go from state i to i+1]`,
    ///
    /// ```text
    /// h_0 = 1/λ_0,   h_i = 1/λ_i + (ρ_i/λ_i)·h_{i-1},   T_0 = Σ h_i.
    /// ```
    ///
    /// Every term is positive, so the computation is numerically stable
    /// even when MTTDL exceeds the transition times by 20+ orders of
    /// magnitude (a direct linear solve cancels catastrophically there).
    pub fn mean_time_to_absorption(&self) -> f64 {
        let s = self.forward.len();
        let mut total = 0.0f64;
        let mut h = 0.0f64; // h_{i-1}
        for i in 0..s {
            let lambda = self.forward[i];
            let rho = if i > 0 { self.backward[i - 1] } else { 0.0 };
            h = (1.0 + rho * h) / lambda;
            total += h;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_state_is_exponential_lifetime() {
        // No repair possible: MTTDL = 1/λ.
        let c = BirthDeathChain::new(vec![0.25], vec![]);
        assert!((c.mean_time_to_absorption() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_state_matches_closed_form() {
        // T_0 = (λ0 + λ1 + ρ1) / (λ0·λ1).
        let (l0, l1, r1) = (0.3, 0.2, 5.0);
        let c = BirthDeathChain::new(vec![l0, l1], vec![r1]);
        let expect = (l0 + l1 + r1) / (l0 * l1);
        assert!((c.mean_time_to_absorption() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn three_state_matches_high_repair_asymptotic() {
        // With ρ >> λ, MTTDL ≈ ρ1·ρ2 / (λ0·λ1·λ2).
        let (l, r) = (1e-3, 1e4);
        let c = BirthDeathChain::new(vec![3.0 * l, 2.0 * l, l], vec![r, r]);
        let approx = r * r / (3.0 * l * 2.0 * l * l);
        let exact = c.mean_time_to_absorption();
        assert!((exact - approx).abs() / approx < 1e-2);
    }

    #[test]
    fn faster_repair_increases_mttdl() {
        let slow = BirthDeathChain::new(vec![0.1, 0.1], vec![1.0]);
        let fast = BirthDeathChain::new(vec![0.1, 0.1], vec![10.0]);
        assert!(fast.mean_time_to_absorption() > slow.mean_time_to_absorption());
    }

    #[test]
    fn more_transient_states_increase_mttdl() {
        let short = BirthDeathChain::new(vec![0.1, 0.1], vec![10.0]);
        let long = BirthDeathChain::new(vec![0.1, 0.1, 0.1], vec![10.0, 10.0]);
        assert!(long.mean_time_to_absorption() > short.mean_time_to_absorption());
    }

    #[test]
    fn mean_hitting_time_agrees_with_monte_carlo() {
        // Small chain cross-checked against a hand-rolled simulation
        // using exponential sampling via inverse CDF.
        let c = BirthDeathChain::new(vec![0.5, 0.4], vec![2.0]);
        let analytic = c.mean_time_to_absorption();
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut uniform = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let trials = 200_000;
        let mut total = 0.0;
        for _ in 0..trials {
            let mut state = 0usize;
            let mut t = 0.0;
            while state < 2 {
                let (l, r) = if state == 0 { (0.5, 0.0) } else { (0.4, 2.0) };
                let rate = l + r;
                t += -(1.0 - uniform()).ln() / rate;
                state = if uniform() < l / rate {
                    state + 1
                } else {
                    state - 1
                };
            }
            total += t;
        }
        let mc = total / trials as f64;
        assert!(
            (mc - analytic).abs() / analytic < 0.02,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "forward and s-1 backward")]
    fn mismatched_rate_vectors_rejected() {
        let _ = BirthDeathChain::new(vec![1.0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_rates_rejected() {
        let _ = BirthDeathChain::new(vec![1.0, 0.0], vec![1.0]);
    }
}
