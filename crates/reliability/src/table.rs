//! Table-1 assembly and formatting.

use xorbas_core::{CodeError, Lrc, ReedSolomon};

use crate::params::ClusterParams;
use crate::schemes::{analyze_codec, analyze_replication, SchemeAnalysis};

/// The MTTDL column of the paper's Table 1 (days), for reference:
/// 3-replication, RS (10, 4), LRC (10, 6, 5).
pub const PAPER_TABLE1_MTTDL_DAYS: [f64; 3] = [2.3079e10, 3.3118e13, 1.2180e15];

/// Computes the three rows of Table 1 in the paper's order:
/// 3-replication, RS (10, 4), LRC (10, 6, 5). The two codec
/// constructions are infallible for these fixed parameters; the
/// `Result` simply propagates their typed constructors.
pub fn table1(params: &ClusterParams) -> Result<Vec<SchemeAnalysis>, CodeError> {
    let rs: ReedSolomon = ReedSolomon::new(10, 4)?;
    let lrc = Lrc::xorbas_10_6_5()?;
    Ok(vec![
        analyze_replication(3, params),
        analyze_codec(&rs, params),
        analyze_codec(&lrc, params),
    ])
}

/// Renders rows in the paper's Table-1 layout, with the paper's own
/// MTTDL figures alongside for comparison.
pub fn format_table1(rows: &[SchemeAnalysis]) -> String {
    let mut out = String::new();
    out.push_str("Storage Scheme     overhead  repair traffic  MTTDL (days)   paper MTTDL\n");
    out.push_str("-----------------  --------  --------------  -------------  -------------\n");
    for (i, row) in rows.iter().enumerate() {
        let paper = PAPER_TABLE1_MTTDL_DAYS
            .get(i)
            .map_or("-".to_string(), |v| format!("{v:.4e}"));
        out.push_str(&format!(
            "{:<17}  {:>7.1}x  {:>13.1}x  {:>13.4e}  {:>13}\n",
            row.name, row.storage_overhead, row.repair_traffic, row.mttdl_days, paper
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_three_rows_in_paper_order() {
        let rows = table1(&ClusterParams::facebook()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "3-replication");
        assert_eq!(rows[1].name, "RS (10, 4)");
        assert_eq!(rows[2].name, "LRC (10, 6, 5)");
    }

    #[test]
    fn static_columns_match_paper_exactly() {
        let rows = table1(&ClusterParams::facebook()).unwrap();
        // Storage overhead column: 2x / 0.4x / 0.6x.
        assert_eq!(rows[0].storage_overhead, 2.0);
        assert!((rows[1].storage_overhead - 0.4).abs() < 1e-12);
        assert!((rows[2].storage_overhead - 0.6).abs() < 1e-12);
        // Repair traffic column: 1x / 10x / 5x.
        assert_eq!(rows[0].repair_traffic, 1.0);
        assert_eq!(rows[1].repair_traffic, 10.0);
        assert_eq!(rows[2].repair_traffic, 5.0);
    }

    #[test]
    fn formatting_contains_all_schemes_and_reference() {
        let rows = table1(&ClusterParams::facebook()).unwrap();
        let s = format_table1(&rows);
        assert!(s.contains("3-replication"));
        assert!(s.contains("RS (10, 4)"));
        assert!(s.contains("LRC (10, 6, 5)"));
        assert!(s.contains("2.3079e10"));
    }
}
