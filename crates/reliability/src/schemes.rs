//! Per-scheme chain construction and MTTDL analysis.

use xorbas_core::analysis::{combinations, expected_single_repair_reads};
use xorbas_core::ErasureCodec;

use crate::markov::BirthDeathChain;
use crate::params::ClusterParams;

/// The reliability figures for one redundancy scheme — one row of
/// Table 1 plus the intermediate quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeAnalysis {
    /// Scheme name in the paper's notation.
    pub name: String,
    /// Blocks per stripe `n`.
    pub stripe_blocks: usize,
    /// Storage overhead `(n - k)/k`.
    pub storage_overhead: f64,
    /// Blocks read to repair a single failure (Table 1 "repair traffic",
    /// normalized to replication's 1).
    pub repair_traffic: f64,
    /// Erasures at which data loss occurs (absorbing state).
    pub distance: usize,
    /// Expected blocks downloaded per repair, indexed by chain state
    /// `1..=distance-1`.
    pub repair_reads_per_state: Vec<f64>,
    /// Probability the light decoder suffices, per state (1.0 for
    /// replication, 0.0 for Reed-Solomon).
    pub light_probability_per_state: Vec<f64>,
    /// MTTDL of a single stripe, in days.
    pub mttdl_stripe_days: f64,
    /// Number of stripes in the cluster.
    pub num_stripes: f64,
    /// System MTTDL in days (eqn (3): stripe MTTDL / #stripes).
    pub mttdl_days: f64,
}

impl SchemeAnalysis {
    /// Number of leading zeros of reliability relative to another scheme:
    /// `log10(self / other)`.
    pub fn zeros_over(&self, other: &SchemeAnalysis) -> f64 {
        (self.mttdl_days / other.mttdl_days).log10()
    }
}

fn finish(
    name: String,
    n: usize,
    k: usize,
    distance: usize,
    repair_reads: Vec<f64>,
    light_prob: Vec<f64>,
    params: &ClusterParams,
) -> SchemeAnalysis {
    let lambda = params.lambda_per_day();
    let forward: Vec<f64> = (0..distance).map(|i| (n - i) as f64 * lambda).collect();
    let backward: Vec<f64> = repair_reads
        .iter()
        .map(|&b| params.repair_rate_per_day(b))
        .collect();
    let chain = BirthDeathChain::new(forward, backward);
    let mttdl_stripe_days = chain.mean_time_to_absorption();
    let num_stripes = params.num_stripes(n);
    SchemeAnalysis {
        name,
        stripe_blocks: n,
        storage_overhead: (n - k) as f64 / k as f64,
        repair_traffic: repair_reads.first().copied().unwrap_or(0.0),
        distance,
        repair_reads_per_state: repair_reads,
        light_probability_per_state: light_prob,
        mttdl_stripe_days,
        num_stripes,
        mttdl_days: mttdl_stripe_days / num_stripes,
    }
}

/// Analyzes `f`-way replication: every repair downloads exactly one
/// block, and data is lost when all `f` copies are gone.
pub fn analyze_replication(replicas: usize, params: &ClusterParams) -> SchemeAnalysis {
    assert!(replicas >= 2, "replication needs at least 2 copies");
    finish(
        format!("{replicas}-replication"),
        replicas,
        1,
        replicas,
        vec![1.0; replicas - 1],
        vec![1.0; replicas - 1],
        params,
    )
}

/// Determines the codec's minimum distance operationally: the smallest
/// erasure count for which some repair plan fails.
fn codec_distance<C: ErasureCodec + ?Sized>(codec: &C) -> usize {
    let n = codec.total_blocks();
    let max = n - codec.data_blocks() + 1;
    for e in 1..=max {
        for pattern in combinations(n, e) {
            if codec.repair_plan(&pattern).is_err() {
                return e;
            }
        }
    }
    max
}

/// Analyzes an erasure codec by exact enumeration: the distance and the
/// per-state expected repair reads (with light/heavy probabilities) come
/// from the codec's own repair planner.
pub fn analyze_codec<C: ErasureCodec + ?Sized>(
    codec: &C,
    params: &ClusterParams,
) -> SchemeAnalysis {
    let n = codec.total_blocks();
    let k = codec.data_blocks();
    let distance = codec_distance(codec);
    let mut reads = Vec::with_capacity(distance - 1);
    let mut light = Vec::with_capacity(distance - 1);
    for state in 1..distance {
        let profile = expected_single_repair_reads(codec, state);
        reads.push(profile.expected_reads);
        light.push(profile.light_probability);
    }
    finish(codec.spec().name(), n, k, distance, reads, light, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorbas_core::{Lrc, ReedSolomon};

    #[test]
    fn replication_3_matches_paper_table_1() {
        // Table 1: 2.3079e10 days. Our chain with the paper's parameters
        // lands within a few percent (the paper's exact day-count
        // conventions are not stated).
        let a = analyze_replication(3, &ClusterParams::facebook());
        assert_eq!(a.distance, 3);
        assert_eq!(a.storage_overhead, 2.0);
        let ratio = a.mttdl_days / 2.3079e10;
        assert!(
            (0.9..1.1).contains(&ratio),
            "replication MTTDL {:.4e} vs paper 2.3079e10",
            a.mttdl_days
        );
    }

    #[test]
    fn rs_10_4_distance_and_reads() {
        let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
        let a = analyze_codec(&rs, &ClusterParams::facebook());
        assert_eq!(a.distance, 5);
        assert_eq!(a.repair_reads_per_state, vec![10.0; 4]);
        assert_eq!(a.light_probability_per_state, vec![0.0; 4]);
        assert!((a.storage_overhead - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lrc_10_6_5_distance_and_reads() {
        let lrc = Lrc::xorbas_10_6_5().unwrap();
        let a = analyze_codec(&lrc, &ClusterParams::facebook());
        assert_eq!(a.distance, 5);
        // Single failure: always light, 5 reads.
        assert_eq!(a.repair_reads_per_state[0], 5.0);
        assert_eq!(a.light_probability_per_state[0], 1.0);
        // Reads grow as failures accumulate but stay below RS's 10 until
        // heavy decoding dominates.
        assert!(a.repair_reads_per_state[1] > 5.0);
        assert!(a.repair_reads_per_state[1] < 10.0);
    }

    #[test]
    fn ordering_matches_table_1() {
        let p = ClusterParams::facebook();
        let rep = analyze_replication(3, &p);
        let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
        let rs = analyze_codec(&rs, &p);
        let lrc = Lrc::xorbas_10_6_5().unwrap();
        let lrc = analyze_codec(&lrc, &p);
        assert!(rep.mttdl_days < rs.mttdl_days);
        assert!(rs.mttdl_days < lrc.mttdl_days);
        // Coded schemes beat replication by several orders of magnitude.
        assert!(rs.zeros_over(&rep) > 3.0);
        assert!(lrc.zeros_over(&rs) > 0.3);
    }

    #[test]
    fn degenerate_two_replica_chain() {
        let a = analyze_replication(2, &ClusterParams::facebook());
        assert_eq!(a.distance, 2);
        assert!(a.mttdl_days > 0.0);
    }

    #[test]
    fn sensitivity_slower_network_hurts_coded_schemes_more() {
        let fast = ClusterParams::facebook();
        let slow = ClusterParams {
            cross_rack_bps: 1e8,
            ..fast
        };
        let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
        let f = analyze_codec(&rs, &fast);
        let s = analyze_codec(&rs, &slow);
        // 10x slower repair => roughly 10^4 lower MTTDL for a 4-repair
        // chain.
        let drop = f.mttdl_days / s.mttdl_days;
        assert!(drop > 1e3 && drop < 1e5, "drop {drop}");
    }
}
