//! Cluster parameters for the reliability model.

/// The physical parameters of §4's analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Number of disk nodes `N`.
    pub nodes: usize,
    /// Total data stored `C`, in bytes.
    pub total_data_bytes: f64,
    /// Block size `B`, in bytes.
    pub block_bytes: f64,
    /// Mean time to failure of a node, in days (`1/λ`).
    pub node_mttf_days: f64,
    /// Cross-rack repair bandwidth `γ`, in bits per second.
    pub cross_rack_bps: f64,
}

impl ClusterParams {
    /// The paper's Facebook-derived parameters: `N = 3000`, `C = 30 PB`,
    /// `B = 256 MB`, `1/λ = 4 years`, `γ = 1 Gbps`.
    pub fn facebook() -> Self {
        Self {
            nodes: 3000,
            total_data_bytes: 30e15,
            block_bytes: 256e6,
            node_mttf_days: 4.0 * 365.0,
            cross_rack_bps: 1e9,
        }
    }

    /// Per-node failure rate `λ`, in 1/day.
    pub fn lambda_per_day(&self) -> f64 {
        1.0 / self.node_mttf_days
    }

    /// Repair bandwidth in bytes/day.
    pub fn gamma_bytes_per_day(&self) -> f64 {
        self.cross_rack_bps / 8.0 * 86_400.0
    }

    /// Repair rate when a repair downloads `blocks_read` blocks:
    /// `ρ = γ / (b · B)`, in 1/day.
    pub fn repair_rate_per_day(&self, blocks_read: f64) -> f64 {
        assert!(blocks_read > 0.0, "a repair must read at least one block");
        self.gamma_bytes_per_day() / (blocks_read * self.block_bytes)
    }

    /// Number of stripes in the cluster for blocklength `n`
    /// (eqn (3): `C / (n·B)`).
    pub fn num_stripes(&self, n: usize) -> f64 {
        self.total_data_bytes / (n as f64 * self.block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facebook_defaults_match_section_4() {
        let p = ClusterParams::facebook();
        assert_eq!(p.nodes, 3000);
        assert_eq!(p.total_data_bytes, 30e15);
        assert_eq!(p.node_mttf_days, 1460.0);
        // γ = 1 Gbps = 10.8 TB/day.
        assert!((p.gamma_bytes_per_day() - 1.08e13).abs() / 1.08e13 < 1e-9);
    }

    #[test]
    fn repair_rate_scales_inversely_with_reads() {
        let p = ClusterParams::facebook();
        let one = p.repair_rate_per_day(1.0);
        let ten = p.repair_rate_per_day(10.0);
        assert!((one / ten - 10.0).abs() < 1e-9);
        // One-block repair: 256 MB at 1 Gbps ≈ 2.05 s ≈ 42k repairs/day.
        assert!((one - 42187.5).abs() / 42187.5 < 1e-6);
    }

    #[test]
    fn stripe_counts_match_paper_magnitudes() {
        let p = ClusterParams::facebook();
        // ~39M replication stripes, ~8.4M RS stripes, ~7.3M LRC stripes.
        assert!((p.num_stripes(3) / 3.9e7 - 1.0).abs() < 0.03);
        assert!((p.num_stripes(14) / 8.37e6 - 1.0).abs() < 0.03);
        assert!((p.num_stripes(16) / 7.32e6 - 1.0).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_read_repair_rejected() {
        let p = ClusterParams::facebook();
        let _ = p.repair_rate_per_day(0.0);
    }
}
