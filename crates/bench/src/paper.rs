//! The paper's reported numbers, for side-by-side comparison in the
//! harness output. Sources are the §5 tables/figures and prose.

/// Fig. 6a prose: "The average number of blocks read per lost block are
/// estimated to be 11.5 and 5.8" — RS then LRC.
pub const FIG6_BLOCKS_READ_PER_LOST: (f64, f64) = (11.5, 5.8);

/// §5.2.1: "HDFS-Xorbas reads 41%-52% the amount of data that RS reads".
pub const FIG4_READ_RATIO_RANGE: (f64, f64) = (0.41, 0.52);

/// §5.2.3: "Xorbas finishes 25% to 45% faster than HDFS-RS".
pub const FIG4_DURATION_GAIN_RANGE: (f64, f64) = (0.25, 0.45);

/// Table 2 — repair impact on workload: (total GB read, avg job minutes)
/// for all-blocks-available, RS with ~20% missing, Xorbas with ~20%
/// missing.
pub const TABLE2: [(f64, f64); 3] = [(30.0, 83.0), (43.88, 92.0), (74.06, 106.0)];

/// Fig. 7 prose: average job-time inflation under ~20% missing blocks:
/// +11.20% for Xorbas, +27.47% for RS.
pub const FIG7_INFLATION: (f64, f64) = (0.1120, 0.2747);

/// Table 3 — Facebook cluster: (blocks lost, GB read, GB/block,
/// duration minutes) for RS then Xorbas.
pub const TABLE3_RS: (usize, f64, f64, f64) = (369, 486.6, 1.318, 26.0);
/// See [`TABLE3_RS`].
pub const TABLE3_XORBAS: (usize, f64, f64, f64) = (563, 330.8, 0.58, 19.0);

/// §5.3: deployed Xorbas stored 27% more than RS on the small-file
/// dataset (ideal: 13%).
pub const TABLE3_STORAGE_OVERHEAD_VS_RS: f64 = 0.27;

/// §1.1 / Fig. 1 prose: "typical to have 20 or more node failures per
/// day".
pub const FIG1_TYPICAL_DAILY_FAILURES: f64 = 20.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_ratios_are_consistent() {
        // The headline 2x claim: RS/LRC read ratio from Fig. 6 slopes.
        let (rs, lrc) = FIG6_BLOCKS_READ_PER_LOST;
        assert!((rs / lrc - 2.0).abs() < 0.05);
        // Table 2 job inflations match the Fig. 7 percentages.
        let base = TABLE2[0].1;
        assert!((TABLE2[1].1 / base - 1.0 - FIG7_INFLATION.0).abs() < 0.01);
        assert!((TABLE2[2].1 / base - 1.0 - FIG7_INFLATION.1).abs() < 0.01);
    }
}
