//! Ordinary least-squares line fitting (the Fig.-6 "linear least squares
//! fitting curve").

/// A fitted line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fits a line through `(x, y)` points. Panics with fewer than 2 points
/// or zero x-variance.
pub fn least_squares(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - slope * p.0 - intercept).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    LineFit {
        slope,
        intercept,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = least_squares(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_reasonably() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let fit = least_squares(&pts);
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        let _ = least_squares(&[(1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn vertical_line_rejected() {
        let _ = least_squares(&[(1.0, 2.0), (1.0, 3.0)]);
    }
}
