//! Harness output helpers: headers, aligned tables, CSV dumps.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Prints a banner for an experiment harness.
pub fn banner(artifact: &str, description: &str) {
    println!("==============================================================");
    println!("{artifact} — {description}");
    println!("==============================================================");
}

/// Directory where harnesses drop CSV files
/// (`<workspace>/target/paper_results`), created on demand.
pub fn results_dir() -> std::io::Result<PathBuf> {
    // Benches run with the *package* directory as CWD, so anchor on the
    // manifest path (two levels below the workspace root) unless
    // CARGO_TARGET_DIR relocates the target directory outright.
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target"))
        .join("paper_results");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes rows as CSV (first row should be the header). Best-effort:
/// the CSV dump is a side artifact of a harness that already printed
/// its tables, so failures are reported on stderr rather than aborting.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> Option<PathBuf> {
    let write = |name: &str| -> std::io::Result<PathBuf> {
        let path = results_dir()?.join(name);
        let mut f = fs::File::create(&path)?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    };
    match write(name) {
        Ok(path) => {
            println!("[csv] wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("[csv] failed to write {name}: {e}");
            None
        }
    }
}

/// Formats a float with fixed precision, for table cells.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Renders an aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 1), "10.0");
    }

    #[test]
    fn csv_round_trips() {
        let p = write_csv(
            "unit_test_tmp.csv",
            &[vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_file(p);
    }
}
