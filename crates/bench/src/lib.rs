//! Shared plumbing for the per-table / per-figure experiment harnesses.
//!
//! Each `[[bench]]` target in this crate regenerates one artifact of the
//! paper's evaluation (see DESIGN.md §3 for the index), printing the
//! same rows/series the paper reports — with the paper's own numbers
//! alongside where available — and writing CSV under
//! `target/paper_results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linfit;
pub mod output;
pub mod paper;
