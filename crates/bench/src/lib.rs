//! Shared plumbing for the per-table / per-figure experiment harnesses.
//!
//! Each `[[bench]]` target in this crate regenerates one artifact of the
//! paper's evaluation (see DESIGN.md §3 for the index), printing the
//! same rows/series the paper reports — with the paper's own numbers
//! alongside where available — and writing CSV under
//! `target/paper_results/`.
//!
//! # Bench map (paper artifact → target)
//!
//! | Artifact | Bench target |
//! |---|---|
//! | Fig. 1 failure trace | `fig1_failure_trace` |
//! | Fig. 2 code structure | `fig2_code_structure` |
//! | Table 1 MTTDL | `table1_reliability` |
//! | Figs. 4–6 EC2 events | `fig4_per_event`, `fig5_timeseries`, `fig6_scaling` |
//! | Fig. 7 / Table 2 workload | `fig7_workload` |
//! | Table 3 Facebook cluster | `table3_facebook` |
//! | §1.1 decommissioning | `decommission` |
//! | codec/kernel throughput | `codec_throughput`, `gf_kernels`, `archival_stripes` |
//! | simulator scaling (PR 4) | `sim_scale` |
//! | ablations | `ablation_implied_parity`, `ablation_locality_sweep` |
//!
//! Modules here are the shared helpers: [`output`] (tables/CSV),
//! [`linfit`] (least squares for the Fig.-6 slopes), and [`paper`]
//! (the paper's published numbers for side-by-side comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linfit;
pub mod output;
pub mod paper;
