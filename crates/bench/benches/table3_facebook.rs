//! Table 3 — the §5.3 Facebook test-cluster experiment: 3262 mostly
//! 3-block files (256 MB blocks), one DataNode terminated, repeated for
//! HDFS-RS and HDFS-Xorbas.

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_bench::paper::{TABLE3_RS, TABLE3_STORAGE_OVERHEAD_VS_RS, TABLE3_XORBAS};
use xorbas_core::CodeSpec;
use xorbas_sim::experiment::facebook_experiment;

fn main() {
    banner(
        "Table 3",
        "Facebook test cluster: 3262 small files, one DataNode terminated",
    );
    let rs = facebook_experiment(CodeSpec::RS_10_4, 0xFB01);
    let lrc = facebook_experiment(CodeSpec::LRC_10_6_5, 0xFB02);

    let header = [
        "scheme",
        "blocks lost",
        "GB read",
        "GB/block",
        "duration (min)",
    ];
    let rows = vec![
        vec![
            rs.scheme.clone(),
            rs.blocks_lost.to_string(),
            f(rs.gb_read, 1),
            f(rs.gb_per_lost_block, 3),
            f(rs.repair_minutes, 1),
        ],
        vec![
            lrc.scheme.clone(),
            lrc.blocks_lost.to_string(),
            f(lrc.gb_read, 1),
            f(lrc.gb_per_lost_block, 3),
            f(lrc.repair_minutes, 1),
        ],
        vec![
            "paper RS".to_string(),
            TABLE3_RS.0.to_string(),
            f(TABLE3_RS.1, 1),
            f(TABLE3_RS.2, 3),
            f(TABLE3_RS.3, 1),
        ],
        vec![
            "paper Xorbas".to_string(),
            TABLE3_XORBAS.0.to_string(),
            f(TABLE3_XORBAS.1, 1),
            f(TABLE3_XORBAS.2, 3),
            f(TABLE3_XORBAS.3, 1),
        ],
    ];
    println!("{}", render_table(&header, &rows));

    let storage_overhead = lrc.stored_blocks as f64 / rs.stored_blocks as f64 - 1.0;
    println!(
        "stored blocks: RS {} vs Xorbas {} (+{:.1}%; paper: +{:.0}% due to \
         padded local parities on small files)",
        rs.stored_blocks,
        lrc.stored_blocks,
        storage_overhead * 100.0,
        TABLE3_STORAGE_OVERHEAD_VS_RS * 100.0
    );
    println!(
        "shape checks: Xorbas GB/block < RS GB/block: {}; Xorbas faster: {}",
        lrc.gb_per_lost_block < rs.gb_per_lost_block,
        lrc.repair_minutes < rs.repair_minutes,
    );

    write_csv(
        "table3_facebook.csv",
        &[
            vec![
                "scheme".to_string(),
                "blocks_lost".to_string(),
                "gb_read".to_string(),
                "gb_per_block".to_string(),
                "minutes".to_string(),
            ],
            vec![
                rs.scheme,
                rs.blocks_lost.to_string(),
                f(rs.gb_read, 2),
                f(rs.gb_per_lost_block, 3),
                f(rs.repair_minutes, 2),
            ],
            vec![
                lrc.scheme,
                lrc.blocks_lost.to_string(),
                f(lrc.gb_read, 2),
                f(lrc.gb_per_lost_block, 3),
                f(lrc.repair_minutes, 2),
            ],
        ],
    );
}
