//! Ablation A2 — the locality/distance trade-off (Theorem 2).
//!
//! Sweeps the group size `r` for k = 12 data blocks and 4 global
//! parities, measuring the exact distance of each construction against
//! the bound `d <= n - ceil(k/r) - k + 2`, and — where the appendix's
//! `(r+1) | n` assumption holds — cross-checking achievability on the
//! information flow graph (Lemma 2).

use xorbas_bench::output::{banner, render_table, write_csv};
use xorbas_core::analysis::minimum_distance;
use xorbas_core::bounds::lrc_distance_bound;
use xorbas_core::{ErasureCodec, Lrc, LrcSpec};
use xorbas_flowgraph::{all_collectors_feasible, GadgetParams};

fn main() {
    banner(
        "Ablation A2",
        "distance vs locality for k = 12, 4 global parities (Theorem-2 bound)",
    );
    let k = 12;
    let g = 4;
    let header = [
        "r",
        "n",
        "overhead",
        "repair reads",
        "distance",
        "Thm-2 bound",
        "flow-graph check",
    ];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| s.to_string()).collect::<Vec<_>>()];
    for r in [2usize, 3, 4, 6, 12] {
        let spec = LrcSpec {
            k,
            global_parities: g,
            group_size: r,
            implied_parity: true,
        };
        let lrc: Lrc = Lrc::new(spec).expect("valid spec");
        let n = lrc.total_blocks();
        let d = minimum_distance(lrc.generator());
        let bound = lrc_distance_bound(n, k, r);
        assert!(d <= bound, "distance must respect Theorem 2");
        let reads = lrc.repair_plan(&[0]).unwrap().blocks_read();
        // The appendix gadget needs (r+1) | n with non-overlapping
        // groups; check achievability at this d where applicable.
        let flow = if n % (r + 1) == 0 {
            let feasible = all_collectors_feasible(GadgetParams { k, n, r, d });
            if feasible { "feasible" } else { "infeasible" }.to_string()
        } else {
            "n/a ((r+1) !| n)".to_string()
        };
        let row = vec![
            r.to_string(),
            n.to_string(),
            format!("{:.2}", lrc.spec().storage_overhead()),
            reads.to_string(),
            d.to_string(),
            bound.to_string(),
            flow,
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "reading the table: small r = cheap repairs but more parities and\n\
         lower distance headroom; r = k recovers MDS-style behaviour — the\n\
         new intermediate operating point of §1.1 is the middle rows."
    );
    write_csv("ablation_locality_sweep.csv", &csv);
}
