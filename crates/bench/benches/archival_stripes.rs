//! Extension E-§7 — archival clusters with large stripes.
//!
//! The conclusion proposes "large LRCs (stripe sizes of 50 or 100
//! blocks) that can simultaneously offer high fault tolerance and small
//! storage overhead ... impractical if Reed-Solomon codes are used since
//! the repair traffic grows linearly in the stripe size". This harness
//! measures exactly that: single-failure repair reads for RS(k, 4) vs
//! (k, ·, r) LRCs as k grows to archival sizes.

use std::time::Instant;

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_core::{ErasureCodec, Lrc, LrcSpec, ReedSolomon};

fn main() {
    banner(
        "§7 extension",
        "archival stripes: repair reads and encode throughput as k grows",
    );
    let header = [
        "k",
        "scheme",
        "n",
        "overhead",
        "repair reads",
        "encode MB/s",
    ];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| s.to_string()).collect::<Vec<_>>()];
    let block = 1 << 16; // 64 KiB payloads keep the bench quick
    for k in [10usize, 20, 50, 100] {
        let r = 10.min(k);
        let configs: Vec<(String, Box<dyn ErasureCodec>)> = vec![
            (
                format!("RS ({k}, 4)"),
                Box::new(ReedSolomon::<xorbas_gf::Gf256>::new(k, 4).expect("fits GF(256)")),
            ),
            (
                format!("LRC ({k}, ., {r})"),
                Box::new(
                    Lrc::<xorbas_gf::Gf256>::new(LrcSpec {
                        k,
                        global_parities: 4,
                        group_size: r,
                        implied_parity: true,
                    })
                    .expect("fits GF(256)"),
                ),
            ),
        ];
        for (name, codec) in configs {
            let reads = codec.repair_plan(&[0]).unwrap().blocks_read();
            let data: Vec<Vec<u8>> = (0..k).map(|i| vec![(i % 251) as u8; block]).collect();
            let start = Instant::now();
            let iters = 8;
            for _ in 0..iters {
                let stripe = codec.encode_stripe(&data).expect("encode");
                std::hint::black_box(&stripe);
            }
            let secs = start.elapsed().as_secs_f64();
            let mbps = (iters * k * block) as f64 / secs / 1e6;
            let row = vec![
                k.to_string(),
                name,
                codec.total_blocks().to_string(),
                f(codec.spec().storage_overhead(), 2),
                reads.to_string(),
                f(mbps, 0),
            ];
            csv.push(row.clone());
            rows.push(row);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "RS repair reads grow linearly with k (10 -> 100 blocks); the LRC's\n\
         stay at r = 10 regardless of stripe size — local repairs keep\n\
         archival stripes practical and let idle disks spin down (§7)."
    );
    write_csv("archival_stripes.csv", &csv);
}
