//! Extension E-§7 — archival clusters with large stripes.
//!
//! The conclusion proposes "large LRCs (stripe sizes of 50 or 100
//! blocks) that can simultaneously offer high fault tolerance and small
//! storage overhead ... impractical if Reed-Solomon codes are used since
//! the repair traffic grows linearly in the stripe size". This harness
//! measures exactly that: single-failure repair reads for RS(k, 4) vs
//! (k, ·, r) LRCs as k grows to archival sizes.

use std::time::Instant;

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_core::{encode_into_parallel, ErasureCodec, Lrc, LrcSpec, ReedSolomon};

const PAR_THREADS: usize = 4;

/// Encode MB/s over the zero-copy path: data and parity lanes are
/// preallocated once and `encode_into` streams into them, so the number
/// measures the codec arithmetic, not the allocator.
fn encode_mbps(
    codec: &(dyn ErasureCodec + Sync),
    data: &[Vec<u8>],
    block: usize,
    threads: usize,
) -> f64 {
    let k = data.len();
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0u8; block]; codec.total_blocks() - k];
    let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
    let iters = 8;
    let start = Instant::now();
    for _ in 0..iters {
        encode_into_parallel(codec, &data_refs, &mut parity_refs, threads).expect("encode");
        std::hint::black_box(&parity_refs);
    }
    let secs = start.elapsed().as_secs_f64();
    (iters * k * block) as f64 / secs / 1e6
}

fn main() {
    banner(
        "§7 extension",
        "archival stripes: repair reads and encode throughput as k grows",
    );
    let header = [
        "k",
        "scheme",
        "n",
        "overhead",
        "repair reads",
        "encode MB/s",
        "encode MB/s (4T)",
    ];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| s.to_string()).collect::<Vec<_>>()];
    let block = 1 << 16; // 64 KiB payloads keep the bench quick
    for k in [10usize, 20, 50, 100] {
        let r = 10.min(k);
        let configs: Vec<(String, Box<dyn ErasureCodec + Sync>)> = vec![
            (
                format!("RS ({k}, 4)"),
                Box::new(ReedSolomon::<xorbas_gf::Gf256>::new(k, 4).expect("fits GF(256)")),
            ),
            (
                format!("LRC ({k}, ., {r})"),
                Box::new(
                    Lrc::<xorbas_gf::Gf256>::new(LrcSpec {
                        k,
                        global_parities: 4,
                        group_size: r,
                        implied_parity: true,
                    })
                    .expect("fits GF(256)"),
                ),
            ),
        ];
        for (name, codec) in configs {
            let reads = codec.repair_plan(&[0]).unwrap().blocks_read();
            let data: Vec<Vec<u8>> = (0..k).map(|i| vec![(i % 251) as u8; block]).collect();
            let serial = encode_mbps(codec.as_ref(), &data, block, 1);
            let parallel = encode_mbps(codec.as_ref(), &data, block, PAR_THREADS);
            let row = vec![
                k.to_string(),
                name,
                codec.total_blocks().to_string(),
                f(codec.spec().storage_overhead(), 2),
                reads.to_string(),
                f(serial, 0),
                f(parallel, 0),
            ];
            csv.push(row.clone());
            rows.push(row);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "RS repair reads grow linearly with k (10 -> 100 blocks); the LRC's\n\
         stay at r = 10 regardless of stripe size — local repairs keep\n\
         archival stripes practical and let idle disks spin down (§7).\n\
         Encode columns compare the zero-copy serial path with the\n\
         {PAR_THREADS}-thread range-sharded `encode_into_parallel`."
    );
    write_csv("archival_stripes.csv", &csv);
}
