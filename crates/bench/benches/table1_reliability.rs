//! Table 1 — storage overhead, repair traffic and MTTDL of
//! 3-replication, RS (10,4) and LRC (10,6,5) under the §4 Markov model.
//!
//! The per-state expected repair reads (the quantity whose derivation
//! the paper skips "due to lack of space") are computed by exact
//! enumeration against the real codecs; see EXPERIMENTS.md for the
//! calibration discussion.

use xorbas_bench::output::{banner, write_csv};
use xorbas_reliability::{format_table1, table1, ClusterParams, PAPER_TABLE1_MTTDL_DAYS};

fn main() {
    banner(
        "Table 1",
        "comparison of 3-replication, RS (10,4), LRC (10,6,5) — MTTDL via Markov model",
    );
    let params = ClusterParams::facebook();
    println!(
        "parameters: N = {} nodes, C = {:.0} PB, B = {:.0} MB, 1/λ = {:.0} y, γ = {:.0} Gbps\n",
        params.nodes,
        params.total_data_bytes / 1e15,
        params.block_bytes / 1e6,
        params.node_mttf_days / 365.0,
        params.cross_rack_bps / 1e9,
    );
    let rows = table1(&params).expect("paper codecs construct");
    println!("{}", format_table1(&rows));

    println!("per-state expected repair reads (exact enumeration):");
    for row in &rows {
        println!(
            "  {:<16} states 1..{}: {:?}  (light-decoder probability {:?})",
            row.name,
            row.distance - 1,
            row.repair_reads_per_state
                .iter()
                .map(|r| (r * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            row.light_probability_per_state
                .iter()
                .map(|p| (p * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
        );
    }
    println!();
    println!(
        "shape checks: MTTDL(rep) < MTTDL(RS) < MTTDL(LRC): {} — LRC gains {:.2} zeros over RS",
        rows[0].mttdl_days < rows[1].mttdl_days && rows[1].mttdl_days < rows[2].mttdl_days,
        rows[2].zeros_over(&rows[1]),
    );
    println!(
        "replication row matches the paper closely ({:.4e} vs paper {:.4e});",
        rows[0].mttdl_days, PAPER_TABLE1_MTTDL_DAYS[0]
    );
    println!("coded rows differ in absolute value (unpublished repair-rate derivation —");
    println!("see EXPERIMENTS.md E3); ordering and >=10^3x coded-vs-replication gaps hold.");

    let mut csv = vec![vec![
        "scheme".to_string(),
        "storage_overhead".to_string(),
        "repair_traffic".to_string(),
        "mttdl_days".to_string(),
        "paper_mttdl_days".to_string(),
    ]];
    for (i, row) in rows.iter().enumerate() {
        csv.push(vec![
            row.name.clone(),
            format!("{}", row.storage_overhead),
            format!("{}", row.repair_traffic),
            format!("{:.4e}", row.mttdl_days),
            format!("{:.4e}", PAPER_TABLE1_MTTDL_DAYS[i]),
        ]);
    }
    write_csv("table1_reliability.csv", &csv);
}
