//! Extension E-§1.1 — node decommissioning as a scheduled repair.
//!
//! §1.1 reason #2 for fast repairs: draining a node classically streams
//! every block through its single NIC ("complicated and time
//! consuming"); with cheap local repairs, blocks can instead be
//! re-created from their repair groups in parallel, never touching the
//! retiring node. This harness measures drain time and bytes moved for
//! the classical copy-out vs repair-based drains under RS and LRC.

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_core::CodeSpec;
use xorbas_sim::{SimConfig, SimTime, Simulation};

struct DrainResult {
    label: String,
    minutes: f64,
    gb_read: f64,
    blocks_moved: usize,
}

fn drain(code: CodeSpec, via_repair: bool) -> DrainResult {
    let mut cfg = SimConfig::ec2(code);
    cfg.cluster.nodes = 30;
    cfg.seed = 0xDEC0;
    let mut sim = Simulation::new(cfg);
    for i in 0..60 {
        sim.load_raided_file(&format!("f{i}"), 10);
    }
    let victim = sim.pick_victims(1)[0];
    let blocks_moved = sim.hdfs.blocks_on(victim).len();
    sim.decommission_node_at(SimTime::from_secs(1), victim, via_repair);
    let start = sim.clock;
    sim.run_until_idle(SimTime::from_mins(1_000_000));
    assert!(sim.is_drained(victim), "drain must complete");
    assert!(sim.hdfs.lost_blocks().is_empty());
    DrainResult {
        label: format!(
            "{} / {}",
            code.name(),
            if via_repair {
                "repair-based"
            } else {
                "copy-out"
            }
        ),
        minutes: (sim.clock.saturating_sub(start)).as_mins_f64(),
        gb_read: sim.metrics.snapshot().hdfs_bytes_read / 1e9,
        blocks_moved,
    }
}

fn main() {
    banner(
        "§1.1 extension",
        "decommissioning one DataNode: classical drain vs scheduled repair",
    );
    let results = [
        drain(CodeSpec::RS_10_4, false),
        drain(CodeSpec::RS_10_4, true),
        drain(CodeSpec::LRC_10_6_5, false),
        drain(CodeSpec::LRC_10_6_5, true),
    ];
    let header = ["strategy", "blocks", "GB read", "drain (min)"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.blocks_moved.to_string(),
                f(r.gb_read, 1),
                f(r.minutes, 1),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    println!(
        "copy-out is cheapest in bytes but serializes on the retiring\n\
         node's NIC; repair-based drains parallelize across the cluster.\n\
         With an LRC the parallel drain costs only 5x reads (vs 10x+ for\n\
         RS), making 'decommissioning as scheduled repair' (§1.1) cheap."
    );
    let mut csv = vec![header.iter().map(|s| s.to_string()).collect::<Vec<_>>()];
    csv.extend(rows);
    write_csv("decommission.csv", &csv);
}
