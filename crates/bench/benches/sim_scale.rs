//! Simulator-scaling lane: events/sec and wall time for repair storms
//! on clusters far beyond the paper's 50-node EC2 testbed.
//!
//! Two fixed "repair storm" lanes (300 and 1000 nodes) are directly
//! comparable across PRs and are the before/after evidence recorded in
//! `BENCH_PR4.json`. The warehouse lane exercises the `ClusterScale`
//! Facebook preset (3000 nodes / 30 PB-equivalent) over a short horizon;
//! the full simulated-year acceptance run lives in
//! `examples/warehouse_year.rs` so this bench stays quick.

use std::time::Instant;

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_core::CodeSpec;
use xorbas_sim::{run_scale_scenario, ScaleScenario, SimConfig, SimTime, Simulation};

struct StormResult {
    label: String,
    nodes: usize,
    blocks: usize,
    blocks_repaired: u64,
    wall_secs: f64,
    events: u64,
}

/// Loads `files` files of `blocks_per_file` data blocks on a
/// `nodes`-node cluster under `code`, then kills `kills` nodes one at a
/// time (quiescing between events) and measures the wall-clock cost of
/// the repair storms.
fn repair_storm_with(
    label: &str,
    code: CodeSpec,
    nodes: usize,
    files: usize,
    blocks_per_file: usize,
    kills: usize,
) -> StormResult {
    let mut cfg = SimConfig::ec2(code);
    cfg.cluster.nodes = nodes;
    cfg.cluster.racks = (nodes / 30).max(1);
    cfg.seed = 0x5CA1E + nodes as u64;
    let mut sim = Simulation::new(cfg);
    for i in 0..files {
        sim.load_raided_file(&format!("f{i}"), blocks_per_file);
    }
    let blocks = sim.hdfs.block_count();
    let start = Instant::now();
    for k in 0..kills {
        let victim = sim.pick_victims(1)[0];
        sim.kill_node_at(sim.clock + SimTime::from_secs(60), victim);
        sim.run_until_idle(sim.clock + SimTime::from_mins(100_000));
        let _ = k;
    }
    let wall_secs = start.elapsed().as_secs_f64();
    StormResult {
        label: label.to_string(),
        nodes,
        blocks,
        blocks_repaired: sim.metrics.snapshot().blocks_repaired,
        wall_secs,
        events: events_processed(&sim),
    }
}

/// The original fixed-shape storm: (10,6,5) LRC, 100-block files.
fn repair_storm(label: &str, nodes: usize, files: usize, kills: usize) -> StormResult {
    repair_storm_with(label, CodeSpec::LRC_10_6_5, nodes, files, 100, kills)
}

/// Serving lane: the `serving_mode` week (60 nodes, trace-driven
/// failures, ~600k Zipf client reads riding the event loop). The
/// interesting number is events/sec with the workload attached —
/// client reads triple the event count of the bare trace, and this
/// lane catches regressions in the per-read hot path.
fn serving_storm(label: &str, code: CodeSpec, seed: u64) -> StormResult {
    let sc = ScaleScenario::serving_mode(code);
    let run = run_scale_scenario(&sc, seed);
    let serving = run.serving.expect("serving_mode attaches a workload");
    StormResult {
        label: label.to_string(),
        nodes: sc.scale.nodes,
        blocks: serving.reads_issued as usize,
        blocks_repaired: run.blocks_repaired,
        wall_secs: run.wall_secs,
        events: run.events_processed,
    }
}

/// Events processed by the engine (control events plus flow
/// completions; the PR-4 before-measurement predates the counter and
/// recorded 0, comparing on wall time instead).
fn events_processed(sim: &Simulation) -> u64 {
    sim.events_processed()
}

fn main() {
    banner(
        "sim_scale",
        "simulator event-loop throughput on large clusters",
    );
    let mut rows = Vec::new();
    let mut csv = vec![vec![
        "lane".to_string(),
        "nodes".to_string(),
        "blocks".to_string(),
        "blocks_repaired".to_string(),
        "wall_secs".to_string(),
        "events".to_string(),
        "events_per_sec".to_string(),
    ]];
    let storms = [
        repair_storm("storm_300", 300, 1000, 8),
        repair_storm("storm_1000", 1000, 3000, 8),
        // Wide stripes (260 lanes over GF(2^16)) on the 300-node
        // testbed: the wide LRC keeps repair group-local, the equal-
        // overhead RS(200, 60) streams 200 lanes per lost block (its
        // heavy plans are memoized by the engine's pattern cache).
        repair_storm_with("storm_wide_lrc", CodeSpec::LRC_WIDE, 300, 30, 400, 4),
        repair_storm_with("storm_wide_rs", CodeSpec::RS_200_60, 300, 30, 400, 4),
    ];
    for r in &storms {
        let eps = r.events as f64 / r.wall_secs;
        rows.push(vec![
            r.label.clone(),
            r.nodes.to_string(),
            r.blocks.to_string(),
            r.blocks_repaired.to_string(),
            f(r.wall_secs, 3),
            r.events.to_string(),
            f(eps, 0),
        ]);
        csv.push(vec![
            r.label.clone(),
            r.nodes.to_string(),
            r.blocks.to_string(),
            r.blocks_repaired.to_string(),
            f(r.wall_secs, 4),
            r.events.to_string(),
            f(eps, 1),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["lane", "nodes", "blocks", "repaired", "wall s", "events", "events/s"],
            &rows
        )
    );

    // Serving lanes: same result shape, but the volume column counts
    // client reads issued rather than stored blocks.
    let mut serving_rows = Vec::new();
    for r in [
        serving_storm("serving_lrc", CodeSpec::LRC_10_6_5, 3),
        serving_storm("serving_rs", CodeSpec::RS_10_4, 3),
    ] {
        let eps = r.events as f64 / r.wall_secs;
        serving_rows.push(vec![
            r.label.clone(),
            r.nodes.to_string(),
            r.blocks.to_string(),
            r.blocks_repaired.to_string(),
            f(r.wall_secs, 3),
            r.events.to_string(),
            f(eps, 0),
        ]);
        csv.push(vec![
            r.label.clone(),
            r.nodes.to_string(),
            r.blocks.to_string(),
            r.blocks_repaired.to_string(),
            f(r.wall_secs, 4),
            r.events.to_string(),
            f(eps, 1),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["lane", "nodes", "reads", "repaired", "wall s", "events", "events/s"],
            &serving_rows
        )
    );
    write_csv("sim_scale.csv", &csv);
}
