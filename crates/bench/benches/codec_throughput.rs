//! Ablation A4 — codec CPU cost (criterion micro-benchmarks).
//!
//! §5.2.3 concludes from the CPU plots that "HDFS RS and Xorbas have
//! very similar CPU requirements". These benches measure the arithmetic
//! behind that claim: stripe encoding, light (XOR) repair, heavy
//! (Vandermonde-solve) repair, and the GF(2^8) bulk kernel they sit on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xorbas_core::{ErasureCodec, Lrc, ReedSolomon};
use xorbas_gf::slice_ops::mul_acc;
use xorbas_gf::Gf256;

const BLOCK: usize = 1 << 20; // 1 MiB payloads

fn sample_data(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 31 + j * 7 + 13) % 256) as u8)
                .collect()
        })
        .collect()
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256_kernel");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0xA5u8; BLOCK];
    let mut dst = vec![0x5Au8; BLOCK];
    let coeff = Gf256::from(0x1D);
    g.bench_function("mul_acc_1MiB", |b| {
        b.iter(|| mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let data = sample_data(10);
    let mut g = c.benchmark_group("encode_stripe_10x1MiB");
    g.throughput(Throughput::Bytes((10 * BLOCK) as u64));
    g.sample_size(20);
    g.bench_function("rs_10_4", |b| {
        b.iter(|| rs.encode_stripe(black_box(&data)).unwrap())
    });
    g.bench_function("lrc_10_6_5", |b| {
        b.iter(|| lrc.encode_stripe(black_box(&data)).unwrap())
    });
    g.finish();
}

fn bench_repair(c: &mut Criterion) {
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let rs_stripe = rs.encode_stripe(&sample_data(10)).unwrap();
    let lrc_stripe = lrc.encode_stripe(&sample_data(10)).unwrap();
    let mut g = c.benchmark_group("repair_single_block_1MiB");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.sample_size(20);
    g.bench_function("rs_heavy_decode", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = rs_stripe.iter().cloned().map(Some).collect();
            shards[3] = None;
            rs.reconstruct(black_box(&mut shards)).unwrap()
        })
    });
    g.bench_function("lrc_light_decode", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = lrc_stripe.iter().cloned().map(Some).collect();
            shards[3] = None;
            lrc.reconstruct(black_box(&mut shards)).unwrap()
        })
    });
    g.bench_function("lrc_heavy_decode_two_in_group", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = lrc_stripe.iter().cloned().map(Some).collect();
            shards[2] = None;
            shards[3] = None;
            lrc.reconstruct(black_box(&mut shards)).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernel, bench_encode, bench_repair);
criterion_main!(benches);
