//! Ablation A4 — codec CPU cost (criterion micro-benchmarks).
//!
//! §5.2.3 concludes from the CPU plots that "HDFS RS and Xorbas have
//! very similar CPU requirements". These benches measure the arithmetic
//! behind that claim on both API surfaces:
//!
//! * the legacy owned-`Vec` path (`encode_stripe` / `reconstruct`),
//!   which allocates a fresh stripe per call — kept as the before/after
//!   baseline;
//! * the zero-copy path (`encode_into` into preallocated parity lanes,
//!   `encode_into_parallel` sharded over scoped threads, and a
//!   [`xorbas_core::RepairSession`] compiled once and replayed), which
//!   allocates nothing per stripe after warmup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xorbas_core::{
    encode_into_parallel, ErasureCodec, Lrc, LrcSpec, ReedSolomon, StripeViewMut, WideLrc,
    WideReedSolomon,
};
use xorbas_gf::slice_ops::{mul_acc, KernelBackend};
use xorbas_gf::Gf256;

const BLOCK: usize = 1 << 20; // 1 MiB payloads
/// Wide-stripe lanes carry 260 payloads, so they use smaller ones.
const WIDE_BLOCK: usize = 64 << 10;
const PAR_THREADS: usize = 4;

fn sample_data(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 31 + j * 7 + 13) % 256) as u8)
                .collect()
        })
        .collect()
}

fn bench_kernel(c: &mut Criterion) {
    // The dispatched kernel (what every codec below runs) next to the
    // pinned scalar fallback — the at-a-glance dispatch win, measured in
    // the same process (see gf_kernels for the full per-backend matrix).
    let mut g = c.benchmark_group("gf256_kernel");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0xA5u8; BLOCK];
    let mut dst = vec![0x5Au8; BLOCK];
    let coeff = Gf256::from(0x1D);
    g.bench_function("mul_acc_1MiB", |b| {
        b.iter(|| mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.bench_function("scalar_mul_acc_1MiB", |b| {
        b.iter(|| KernelBackend::Scalar.mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let data = sample_data(10);
    let mut g = c.benchmark_group("encode_stripe_10x1MiB");
    g.throughput(Throughput::Bytes((10 * BLOCK) as u64));
    g.sample_size(20);
    // Legacy owned path: allocates the whole output stripe every call.
    g.bench_function("rs_10_4", |b| {
        b.iter(|| rs.encode_stripe(black_box(&data)).unwrap())
    });
    g.bench_function("lrc_10_6_5", |b| {
        b.iter(|| lrc.encode_stripe(black_box(&data)).unwrap())
    });
    // Zero-copy path: parity lanes preallocated once, zero heap traffic
    // per stripe thereafter.
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut rs_parity = vec![vec![0u8; BLOCK]; 4];
    {
        let mut parity_refs: Vec<&mut [u8]> = rs_parity.iter_mut().map(Vec::as_mut_slice).collect();
        g.bench_function("rs_10_4_into", |b| {
            b.iter(|| {
                rs.encode_into(black_box(&data_refs), &mut parity_refs)
                    .unwrap()
            })
        });
        g.bench_function(format!("rs_10_4_into_par{PAR_THREADS}"), |b| {
            b.iter(|| {
                encode_into_parallel(&rs, black_box(&data_refs), &mut parity_refs, PAR_THREADS)
                    .unwrap()
            })
        });
    }
    let mut lrc_parity = vec![vec![0u8; BLOCK]; 6];
    {
        let mut parity_refs: Vec<&mut [u8]> =
            lrc_parity.iter_mut().map(Vec::as_mut_slice).collect();
        g.bench_function("lrc_10_6_5_into", |b| {
            b.iter(|| {
                lrc.encode_into(black_box(&data_refs), &mut parity_refs)
                    .unwrap()
            })
        });
        g.bench_function(format!("lrc_10_6_5_into_par{PAR_THREADS}"), |b| {
            b.iter(|| {
                encode_into_parallel(&lrc, black_box(&data_refs), &mut parity_refs, PAR_THREADS)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_repair(c: &mut Criterion) {
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let rs_stripe = rs.encode_stripe(&sample_data(10)).unwrap();
    let lrc_stripe = lrc.encode_stripe(&sample_data(10)).unwrap();
    let mut g = c.benchmark_group("repair_single_block_1MiB");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.sample_size(20);
    // Legacy owned path: replans, re-solves, and reallocates every call.
    g.bench_function("rs_heavy_decode", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = rs_stripe.iter().cloned().map(Some).collect();
            shards[3] = None;
            rs.reconstruct(black_box(&mut shards)).unwrap()
        })
    });
    g.bench_function("lrc_light_decode", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = lrc_stripe.iter().cloned().map(Some).collect();
            shards[3] = None;
            lrc.reconstruct(black_box(&mut shards)).unwrap()
        })
    });
    g.bench_function("lrc_heavy_decode_two_in_group", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = lrc_stripe.iter().cloned().map(Some).collect();
            shards[2] = None;
            shards[3] = None;
            lrc.reconstruct(black_box(&mut shards)).unwrap()
        })
    });
    // Session path: compile once per failure pattern, then replay against
    // borrowed lanes — what the simulator's BlockFixer does per stripe.
    let rs_session = rs.repair_session(&[3]).unwrap();
    let mut rs_lanes = rs_stripe.clone();
    g.bench_function("rs_heavy_session_replay", |b| {
        b.iter(|| {
            let mut refs: Vec<&mut [u8]> = rs_lanes.iter_mut().map(Vec::as_mut_slice).collect();
            let mut view = StripeViewMut::new(&mut refs, &[3]).unwrap();
            rs_session.repair(black_box(&mut view)).unwrap()
        })
    });
    let lrc_session = lrc.repair_session(&[3]).unwrap();
    let mut lrc_lanes = lrc_stripe.clone();
    g.bench_function("lrc_light_session_replay", |b| {
        b.iter(|| {
            let mut refs: Vec<&mut [u8]> = lrc_lanes.iter_mut().map(Vec::as_mut_slice).collect();
            let mut view = StripeViewMut::new(&mut refs, &[3]).unwrap();
            lrc_session.repair(black_box(&mut view)).unwrap()
        })
    });
    let lrc_heavy_session = lrc.repair_session(&[2, 3]).unwrap();
    let mut lrc_heavy_lanes = lrc_stripe.clone();
    g.bench_function("lrc_heavy_session_replay_two_in_group", |b| {
        b.iter(|| {
            let mut refs: Vec<&mut [u8]> =
                lrc_heavy_lanes.iter_mut().map(Vec::as_mut_slice).collect();
            let mut view = StripeViewMut::new(&mut refs, &[2, 3]).unwrap();
            lrc_heavy_session.repair(black_box(&mut view)).unwrap()
        })
    });
    g.finish();
}

fn bench_wide_stripe(c: &mut Criterion) {
    // The wide-stripe surface over GF(2^16): a (200, 60, 10)-class LRC
    // and its RS(200, 60) MDS contrast at 260 lanes. Lanes are 64 KiB
    // so one stripe stays ~16 MB; throughput is data bytes per encode.
    let lrc = WideLrc::new(LrcSpec::WIDE).unwrap();
    let rs = WideReedSolomon::new(200, 60).unwrap();
    let data: Vec<Vec<u8>> = (0..200)
        .map(|i| {
            (0..WIDE_BLOCK)
                .map(|j| ((i * 31 + j * 7 + 13) % 256) as u8)
                .collect()
        })
        .collect();
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut g = c.benchmark_group("wide_stripe_260_lanes_64KiB");
    g.throughput(Throughput::Bytes((200 * WIDE_BLOCK) as u64));
    g.sample_size(10);
    let mut lrc_parity = vec![vec![0u8; WIDE_BLOCK]; 60];
    {
        let mut parity_refs: Vec<&mut [u8]> =
            lrc_parity.iter_mut().map(Vec::as_mut_slice).collect();
        g.bench_function("lrc_wide_encode_into", |b| {
            b.iter(|| {
                lrc.encode_into(black_box(&data_refs), &mut parity_refs)
                    .unwrap()
            })
        });
    }
    let mut rs_parity = vec![vec![0u8; WIDE_BLOCK]; 60];
    {
        let mut parity_refs: Vec<&mut [u8]> = rs_parity.iter_mut().map(Vec::as_mut_slice).collect();
        g.bench_function("rs_200_60_encode_into", |b| {
            b.iter(|| {
                rs.encode_into(black_box(&data_refs), &mut parity_refs)
                    .unwrap()
            })
        });
    }
    g.finish();

    // Repair: the locality asymmetry in bytes. The light LRC replay
    // reads its 10-lane group; the RS replay streams 200 lanes.
    let lrc_stripe = lrc.encode_stripe(&data).unwrap();
    let rs_stripe = rs.encode_stripe(&data).unwrap();
    let mut g = c.benchmark_group("wide_stripe_repair_64KiB");
    g.throughput(Throughput::Bytes(WIDE_BLOCK as u64));
    g.sample_size(10);
    let lrc_session = lrc.repair_session(&[3]).unwrap();
    let mut lrc_lanes = lrc_stripe.clone();
    g.bench_function("lrc_wide_light_session_replay", |b| {
        b.iter(|| {
            let mut refs: Vec<&mut [u8]> = lrc_lanes.iter_mut().map(Vec::as_mut_slice).collect();
            let mut view = StripeViewMut::new(&mut refs, &[3]).unwrap();
            lrc_session.repair(black_box(&mut view)).unwrap()
        })
    });
    let rs_session = rs.repair_session(&[3]).unwrap();
    let mut rs_lanes = rs_stripe.clone();
    g.bench_function("rs_200_60_heavy_session_replay", |b| {
        b.iter(|| {
            let mut refs: Vec<&mut [u8]> = rs_lanes.iter_mut().map(Vec::as_mut_slice).collect();
            let mut view = StripeViewMut::new(&mut refs, &[3]).unwrap();
            rs_session.repair(black_box(&mut view)).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kernel,
    bench_encode,
    bench_repair,
    bench_wide_stripe
);
criterion_main!(benches);
