//! Figure 1 — failed nodes per day over one month in a 3000-node
//! production cluster.
//!
//! The raw Facebook trace is proprietary; this regenerates a synthetic
//! month calibrated to the paper's description (median ≥ ~20 failures
//! per day, bursts approaching 100) and prints the daily series plus an
//! ASCII sparkline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorbas_bench::output::{banner, write_csv};
use xorbas_bench::paper::FIG1_TYPICAL_DAILY_FAILURES;
use xorbas_sim::failures::{generate_trace, trace_stats, TraceConfig};

fn main() {
    banner(
        "Figure 1",
        "Number of failed nodes over a single month (synthetic trace)",
    );
    let mut rng = StdRng::seed_from_u64(0xF1);
    let cfg = TraceConfig::default();
    let trace = generate_trace(cfg, &mut rng);
    let stats = trace_stats(&trace);

    let max = trace.iter().copied().max().unwrap_or(1).max(1);
    println!("day  failures");
    for (day, &n) in trace.iter().enumerate() {
        let bar = "#".repeat((n as usize * 50 / max as usize).max(1));
        println!("{:>3}  {:>4}  {bar}", day + 1, n);
    }
    println!();
    println!(
        "median {:.1}/day   mean {:.1}/day   max {}   days >= 20: {}/{}",
        stats.median, stats.mean, stats.max, stats.days_at_least_20, cfg.days
    );
    println!(
        "paper: \"quite typical to have {} or more node failures per day\", bursts near 100",
        FIG1_TYPICAL_DAILY_FAILURES
    );
    assert!(
        stats.mean >= 15.0,
        "trace should be calibrated to >= ~20 failures/day"
    );

    let mut rows = vec![vec!["day".to_string(), "failed_nodes".to_string()]];
    rows.extend(
        trace
            .iter()
            .enumerate()
            .map(|(d, &n)| vec![(d + 1).to_string(), n.to_string()]),
    );
    write_csv("fig1_failure_trace.csv", &rows);
}
