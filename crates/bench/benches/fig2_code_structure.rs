//! Figure 2 — the (10,6,5) LRC implemented in HDFS-Xorbas.
//!
//! Fig. 2 is a schematic, not a measurement; this harness *verifies* the
//! structure it depicts on the real construction: the stripe layout, the
//! repair-group equations, locality 5 for every block, the implied
//! parity S1 + S2 + S3 = 0, and optimal distance 5 (Theorem 5).

use xorbas_bench::output::banner;
use xorbas_core::analysis::{block_locality, minimum_distance};
use xorbas_core::{ErasureCodec, Lrc};

fn label(i: usize) -> String {
    match i {
        0..=9 => format!("X{}", i + 1),
        10..=13 => format!("P{}", i - 9),
        14 => "S1".to_string(),
        15 => "S2".to_string(),
        _ => format!("B{i}"),
    }
}

fn main() {
    banner(
        "Figure 2",
        "structure of the (10,6,5) LRC used in HDFS-Xorbas",
    );
    let lrc = Lrc::xorbas_10_6_5().expect("construction is deterministic");

    println!("stripe layout (16 stored blocks):");
    println!("  X1..X10   10 data blocks (systematic)");
    println!("  P1..P4    4 Reed-Solomon parities (aligned Appendix-D code)");
    println!("  S1, S2    2 local XOR parities; S3 = S1 + S2 is implied\n");

    println!("repair-group equations (light decoder peels these):");
    for eq in lrc.equations() {
        let terms: Vec<String> = eq.members.iter().map(|&(i, _)| label(i)).collect();
        println!("  {} = 0", terms.join(" + "));
    }
    println!();

    println!("block  locality  repair set");
    for i in 0..16 {
        let loc = block_locality(lrc.generator(), i, 5).expect("locality 5");
        let plan = lrc.repair_plan(&[i]).expect("single failures repair");
        let reads: Vec<String> = plan.tasks[0].reads.iter().map(|&r| label(r)).collect();
        println!("{:>5}  {:>8}  {}", label(i), loc, reads.join(", "));
        assert_eq!(loc, 5);
        assert_eq!(plan.blocks_read(), 5);
    }
    println!();

    let d = minimum_distance(lrc.generator());
    println!("minimum distance (exhaustive): d = {d}  (Theorem 5: optimal for r=5, n=16)");
    assert_eq!(d, 5);
    println!("storage overhead: 16/10 = 1.6x  (vs RS(10,4) 1.4x: +14%)");
}
