//! Figure 4 — HDFS bytes read (a), network traffic (b) and repair
//! duration (c) per failure event, for the 200-file EC2 experiment.
//!
//! Two simulated 50-slave clusters (one per scheme) are loaded with 200
//! 640 MB files and subjected to the §5.2 failure schedule: four
//! single-node, two triple-node and two double-node terminations.

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_bench::paper::{FIG4_DURATION_GAIN_RANGE, FIG4_READ_RATIO_RANGE};
use xorbas_core::CodeSpec;
use xorbas_sim::experiment::ec2_experiment;

fn main() {
    banner(
        "Figure 4",
        "per-failure-event metrics, 200-file EC2 experiment (RS vs Xorbas)",
    );
    let seed = 0x0200;
    let rs = ec2_experiment(CodeSpec::RS_10_4, 200, seed);
    let lrc = ec2_experiment(CodeSpec::LRC_10_6_5, 200, seed);

    let header = [
        "event",
        "nodes",
        "RS lost",
        "LRC lost",
        "RS read GB",
        "LRC read GB",
        "RS net GB",
        "LRC net GB",
        "RS min",
        "LRC min",
    ];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| s.to_string()).collect::<Vec<_>>()];
    for (i, (r, l)) in rs.events.iter().zip(&lrc.events).enumerate() {
        let row = vec![
            format!("{}", i + 1),
            format!("{}", r.nodes_killed),
            format!("{}", r.blocks_lost),
            format!("{}", l.blocks_lost),
            f(r.hdfs_gb_read, 1),
            f(l.hdfs_gb_read, 1),
            f(r.network_gb, 1),
            f(l.network_gb, 1),
            f(r.repair_minutes, 1),
            f(l.repair_minutes, 1),
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));

    // Shape checks against the paper's §5.2 observations.
    let rs_read: f64 = rs.events.iter().map(|e| e.hdfs_gb_read).sum();
    let lrc_read: f64 = lrc.events.iter().map(|e| e.hdfs_gb_read).sum();
    let rs_lost: usize = rs.events.iter().map(|e| e.blocks_lost).sum();
    let lrc_lost: usize = lrc.events.iter().map(|e| e.blocks_lost).sum();
    let per_block_ratio = (lrc_read / lrc_lost as f64) / (rs_read / rs_lost as f64);
    println!(
        "bytes-read ratio (Xorbas/RS, per lost block): {:.2}  — paper: {:.2}-{:.2}",
        per_block_ratio, FIG4_READ_RATIO_RANGE.0, FIG4_READ_RATIO_RANGE.1
    );
    let rs_min: f64 = rs.events.iter().map(|e| e.repair_minutes).sum();
    let lrc_min: f64 = lrc.events.iter().map(|e| e.repair_minutes).sum();
    println!(
        "repair-duration gain (1 - Xorbas/RS): {:.2}  — paper: {:.2}-{:.2}",
        1.0 - lrc_min / rs_min,
        FIG4_DURATION_GAIN_RANGE.0,
        FIG4_DURATION_GAIN_RANGE.1
    );
    write_csv("fig4_per_event.csv", &csv);
}
