//! Figure 6 — HDFS bytes read (a), network traffic (b) and repair
//! duration (c) versus number of lost blocks, pooled over the 50-, 100-
//! and 200-file EC2 experiments, with least-squares fits.
//!
//! The paper's headline numbers live here: the fitted slopes correspond
//! to ~11.5 blocks read per lost block for RS versus ~5.8 for Xorbas —
//! the 2x repair saving.

use xorbas_bench::linfit::least_squares;
use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_bench::paper::FIG6_BLOCKS_READ_PER_LOST;
use xorbas_core::CodeSpec;
use xorbas_sim::experiment::{ec2_experiment, Ec2ExperimentResult};

fn pooled(code: CodeSpec) -> Vec<Ec2ExperimentResult> {
    [50usize, 100, 200]
        .iter()
        .map(|&files| ec2_experiment(code, files, 0x0600 + files as u64))
        .collect()
}

fn main() {
    banner(
        "Figure 6",
        "metrics vs blocks lost across the 50/100/200-file experiments + linear fits",
    );
    let block_gb = 64.0 * (1 << 20) as f64 / 1e9; // 64 MB in GB
    let mut csv = vec![vec![
        "scheme".to_string(),
        "files".to_string(),
        "blocks_lost".to_string(),
        "hdfs_gb".to_string(),
        "net_gb".to_string(),
        "minutes".to_string(),
    ]];
    let mut fits = Vec::new();
    for code in [CodeSpec::RS_10_4, CodeSpec::LRC_10_6_5] {
        let runs = pooled(code);
        let mut read_pts = Vec::new();
        let mut net_pts = Vec::new();
        let mut dur_pts = Vec::new();
        for run in &runs {
            for (lost, gb, net, min) in run.scatter_points() {
                read_pts.push((lost as f64, gb));
                net_pts.push((lost as f64, net));
                dur_pts.push((lost as f64, min));
                csv.push(vec![
                    run.scheme.clone(),
                    run.files.to_string(),
                    lost.to_string(),
                    f(gb, 2),
                    f(net, 2),
                    f(min, 2),
                ]);
            }
        }
        let read_fit = least_squares(&read_pts);
        let net_fit = least_squares(&net_pts);
        let dur_fit = least_squares(&dur_pts);
        fits.push((code.name(), read_fit, net_fit, dur_fit));
    }

    let header = [
        "scheme",
        "read GB/block",
        "blocks/block",
        "net GB/block",
        "min/block",
        "r2(read)",
    ];
    let rows: Vec<Vec<String>> = fits
        .iter()
        .map(|(name, read, net, dur)| {
            vec![
                name.clone(),
                f(read.slope, 3),
                f(read.slope / block_gb, 2),
                f(net.slope, 3),
                f(dur.slope, 3),
                f(read.r2, 3),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));

    let rs_blocks = fits[0].1.slope / block_gb;
    let lrc_blocks = fits[1].1.slope / block_gb;
    println!(
        "blocks read per lost block: RS {:.1}, Xorbas {:.1} (paper: {:.1}, {:.1})",
        rs_blocks, lrc_blocks, FIG6_BLOCKS_READ_PER_LOST.0, FIG6_BLOCKS_READ_PER_LOST.1
    );
    println!(
        "repair-read saving: {:.2}x (paper: ~2x)",
        rs_blocks / lrc_blocks
    );
    write_csv("fig6_scaling.csv", &csv);
}
