//! Figure 7 + Table 2 — completion times of 10 WordCount jobs with all
//! blocks available vs ~20% of required blocks missing (RS vs Xorbas).
//!
//! Unavailable blocks are reconstructed on the fly (degraded reads):
//! Xorbas pays 5 extra streams + XOR per missing block, RS pays a full
//! heavy decode — the job-completion gap is the availability benefit.

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_bench::paper::{FIG7_INFLATION, TABLE2};
use xorbas_core::CodeSpec;
use xorbas_sim::experiment::workload_experiment;

fn main() {
    banner(
        "Figure 7 / Table 2",
        "10 WordCount jobs, all blocks vs ~20% missing (RS vs Xorbas)",
    );
    let seed = 0x0700;
    let baseline = workload_experiment(CodeSpec::LRC_10_6_5, 0.0, seed);
    let lrc = workload_experiment(CodeSpec::LRC_10_6_5, 0.2, seed);
    let rs = workload_experiment(CodeSpec::RS_10_4, 0.2, seed);

    let header = ["job", "all avail (min)", "20% miss Xorbas", "20% miss RS"];
    let mut rows = Vec::new();
    let mut csv = vec![header.iter().map(|s| s.to_string()).collect::<Vec<_>>()];
    for i in 0..10 {
        let row = vec![
            format!("{}", i + 1),
            f(baseline.job_minutes[i], 1),
            f(lrc.job_minutes[i], 1),
            f(rs.job_minutes[i], 1),
        ];
        csv.push(row.clone());
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));

    println!("Table 2 — repair impact on workload:");
    let t2_header = ["", "all avail", "RS 20% miss", "Xorbas 20% miss"];
    let t2 = vec![
        vec![
            "total GB read".to_string(),
            f(baseline.total_gb_read, 1),
            f(rs.total_gb_read, 1),
            f(lrc.total_gb_read, 1),
        ],
        vec![
            "avg job time (min)".to_string(),
            f(baseline.avg_job_minutes, 1),
            f(rs.avg_job_minutes, 1),
            f(lrc.avg_job_minutes, 1),
        ],
        vec![
            "paper GB read".to_string(),
            f(TABLE2[0].0, 1),
            f(TABLE2[1].0, 1),
            f(TABLE2[2].0, 1),
        ],
        vec![
            "paper avg time".to_string(),
            f(TABLE2[0].1, 1),
            f(TABLE2[1].1, 1),
            f(TABLE2[2].1, 1),
        ],
    ];
    println!("{}", render_table(&t2_header, &t2));

    let lrc_inflation = lrc.avg_job_minutes / baseline.avg_job_minutes - 1.0;
    let rs_inflation = rs.avg_job_minutes / baseline.avg_job_minutes - 1.0;
    println!(
        "avg-time inflation under 20% missing: Xorbas +{:.1}%, RS +{:.1}%  \
         (paper: +{:.1}%, +{:.1}%)",
        lrc_inflation * 100.0,
        rs_inflation * 100.0,
        FIG7_INFLATION.0 * 100.0,
        FIG7_INFLATION.1 * 100.0
    );
    println!(
        "shape check: RS delay > Xorbas delay: {}",
        rs_inflation > lrc_inflation
    );
    write_csv("fig7_workload.csv", &csv);
}
