//! Figure 5 — cluster network traffic (a), disk bytes read (b) and mean
//! CPU utilization (c) at 5-minute resolution during the failure-event
//! sequence of the 200-file EC2 experiment.

use xorbas_bench::output::{banner, write_csv};
use xorbas_core::CodeSpec;
use xorbas_sim::experiment::ec2_experiment;

fn spark(series: &[f64]) -> String {
    let max = series.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-12);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    series
        .iter()
        .map(|&v| glyphs[((v / max) * (glyphs.len() - 1) as f64).round() as usize])
        .collect()
}

fn main() {
    banner(
        "Figure 5",
        "5-minute time series during the EC2 failure sequence (RS vs Xorbas)",
    );
    let seed = 0x0500;
    let rs = ec2_experiment(CodeSpec::RS_10_4, 200, seed);
    let lrc = ec2_experiment(CodeSpec::LRC_10_6_5, 200, seed);

    let len = rs
        .network_series_gb
        .len()
        .max(lrc.network_series_gb.len())
        .max(rs.cpu_series.len())
        .max(lrc.cpu_series.len());
    let pad = |s: &[f64]| {
        let mut v = s.to_vec();
        v.resize(len, 0.0);
        v
    };
    let (rs_net, lrc_net) = (pad(&rs.network_series_gb), pad(&lrc.network_series_gb));
    let (rs_disk, lrc_disk) = (pad(&rs.disk_series_gb), pad(&lrc.disk_series_gb));
    let (rs_cpu, lrc_cpu) = (pad(&rs.cpu_series), pad(&lrc.cpu_series));

    println!("(a) network traffic, GB per 5-minute bucket");
    println!("  RS     |{}|", spark(&rs_net));
    println!("  Xorbas |{}|", spark(&lrc_net));
    println!(
        "  peaks: RS {:.1} GB, Xorbas {:.1} GB",
        rs_net.iter().fold(0.0f64, |a, &b| a.max(b)),
        lrc_net.iter().fold(0.0f64, |a, &b| a.max(b)),
    );
    println!("(b) disk bytes read, GB per bucket");
    println!("  RS     |{}|", spark(&rs_disk));
    println!("  Xorbas |{}|", spark(&lrc_disk));
    println!("(c) mean CPU utilization");
    println!("  RS     |{}|", spark(&rs_cpu));
    println!("  Xorbas |{}|", spark(&lrc_cpu));
    let rs_total: f64 = rs_net.iter().sum();
    let lrc_total: f64 = lrc_net.iter().sum();
    println!(
        "\ntotal network: RS {rs_total:.1} GB vs Xorbas {lrc_total:.1} GB \
         (paper: Xorbas moves roughly half the bytes)"
    );

    let mut csv = vec![vec![
        "bucket_5min".to_string(),
        "rs_net_gb".to_string(),
        "xorbas_net_gb".to_string(),
        "rs_disk_gb".to_string(),
        "xorbas_disk_gb".to_string(),
        "rs_cpu".to_string(),
        "xorbas_cpu".to_string(),
    ]];
    for i in 0..len {
        csv.push(vec![
            i.to_string(),
            format!("{:.3}", rs_net[i]),
            format!("{:.3}", lrc_net[i]),
            format!("{:.3}", rs_disk[i]),
            format!("{:.3}", lrc_disk[i]),
            format!("{:.3}", rs_cpu[i]),
            format!("{:.3}", lrc_cpu[i]),
        ]);
    }
    write_csv("fig5_timeseries.csv", &csv);
}
