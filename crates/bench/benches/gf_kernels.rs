//! Ablation A5 — GF(2^m) byte-slice kernel throughput.
//!
//! The hot path of every encode and repair is a handful of slice
//! kernels: pure XOR (what the LRC light decoder runs), GF(2^8)
//! multiply (what RS encode and heavy decode run), the fused
//! multi-source row kernels (one `dst` pass per output lane), and the
//! GF(2^16) split-table kernels for wider fields. Each single-source
//! kernel is measured on every backend the CPU supports *and* through
//! the process-wide dispatched entry point, so a dispatch regression and
//! a kernel regression are distinguishable; the fused lanes measure the
//! row shapes the codecs actually issue (cf. Uezato, "Accelerating
//! XOR-based Erasure Coding", SC 2021).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xorbas_core::{ErasureCodec, Lrc};
use xorbas_gf::slice_ops::{
    mul_acc, mul_acc_multi, mul_into, payload_mul_acc, payload_mul_acc_multi, scale, xor_into,
    xor_into_multi, KernelBackend,
};
use xorbas_gf::{Field, Gf256, Gf65536};

const BLOCK: usize = 1 << 20; // 1 MiB payloads, matching codec_throughput

fn bench_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_xor");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0x3Cu8; BLOCK];
    let mut dst = vec![0xC3u8; BLOCK];
    for backend in KernelBackend::supported() {
        g.bench_function(format!("{}_xor_into_1MiB", backend.name()), |b| {
            b.iter(|| backend.xor_into(black_box(&mut dst), black_box(&src)))
        });
    }
    g.bench_function("xor_into_1MiB", |b| {
        b.iter(|| xor_into(black_box(&mut dst), black_box(&src)))
    });
    g.finish();
}

fn bench_gf256(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_gf256");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0xA5u8; BLOCK];
    let mut dst = vec![0x5Au8; BLOCK];
    let coeff = Gf256::from_index(0x1D);
    for backend in KernelBackend::supported() {
        let name = backend.name();
        g.bench_function(format!("{name}_mul_into_1MiB"), |b| {
            b.iter(|| backend.mul_into(black_box(&mut dst), black_box(&src), coeff))
        });
        g.bench_function(format!("{name}_mul_acc_1MiB"), |b| {
            b.iter(|| backend.mul_acc(black_box(&mut dst), black_box(&src), coeff))
        });
        g.bench_function(format!("{name}_scale_1MiB"), |b| {
            b.iter(|| backend.scale(black_box(&mut dst), coeff))
        });
    }
    // Dispatched entry points (what the codecs call).
    g.bench_function("mul_into_1MiB", |b| {
        b.iter(|| mul_into(black_box(&mut dst), black_box(&src), coeff))
    });
    g.bench_function("mul_acc_1MiB", |b| {
        b.iter(|| mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.bench_function("scale_1MiB", |b| {
        b.iter(|| scale(black_box(&mut dst), coeff))
    });
    g.finish();
}

fn bench_fused_rows(c: &mut Criterion) {
    // The row shapes the codecs issue: a heavy RS row combines k = 10
    // coefficient streams into one output lane; an LRC light repair
    // XORs r = 5 streams. Fused lanes make one pass over dst; the
    // `looped_` lanes are the pre-fusion behavior (one pass per source).
    let srcs: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 31 + j * 7 + 13) % 256) as u8)
                .collect()
        })
        .collect();
    let coeffs: Vec<Gf256> = (0..10).map(|i| Gf256::from_index(i * 23 + 2)).collect();
    let pairs: Vec<(Gf256, &[u8])> = coeffs
        .iter()
        .zip(&srcs)
        .map(|(&c, s)| (c, s.as_slice()))
        .collect();
    let xor_refs: Vec<&[u8]> = srcs.iter().take(5).map(Vec::as_slice).collect();
    let mut dst = vec![0u8; BLOCK];

    let mut g = c.benchmark_group("gf_kernels_fused");
    g.throughput(Throughput::Bytes((10 * BLOCK) as u64));
    for backend in KernelBackend::supported() {
        g.bench_function(format!("{}_mul_acc_multi_10x1MiB", backend.name()), |b| {
            b.iter(|| backend.mul_acc_multi(black_box(&mut dst), black_box(&pairs)))
        });
    }
    g.bench_function("mul_acc_multi_10x1MiB", |b| {
        b.iter(|| mul_acc_multi(black_box(&mut dst), black_box(&pairs)))
    });
    g.bench_function("looped_mul_acc_10x1MiB", |b| {
        b.iter(|| {
            for &(cf, s) in &pairs {
                mul_acc(black_box(&mut dst), black_box(s), cf);
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("gf_kernels_fused_xor");
    g.throughput(Throughput::Bytes((5 * BLOCK) as u64));
    g.bench_function("xor_into_multi_5x1MiB", |b| {
        b.iter(|| xor_into_multi(black_box(&mut dst), black_box(&xor_refs)))
    });
    g.bench_function("looped_xor_into_5x1MiB", |b| {
        b.iter(|| {
            for s in &xor_refs {
                xor_into(black_box(&mut dst), black_box(s));
            }
        })
    });
    g.finish();
}

fn bench_gf65536(c: &mut Criterion) {
    // GF(2^16) two-byte-symbol kernels: the scalar backend is the PR-3
    // split-table baseline; ssse3/avx2 run the eight-table nibble
    // `PSHUFB` path. Varied payload bytes so products light every table.
    let mut g = c.benchmark_group("gf_kernels_gf65536");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src: Vec<u8> = (0..BLOCK).map(|j| ((j * 7 + 13) % 256) as u8).collect();
    let mut dst = vec![0xE7u8; BLOCK];
    let coeff = Gf65536::from_index(0x1021);
    for backend in KernelBackend::supported() {
        let name = backend.name();
        g.bench_function(format!("{name}_payload_mul_acc_1MiB"), |b| {
            b.iter(|| backend.payload_mul_acc(black_box(&mut dst), black_box(&src), coeff))
        });
        g.bench_function(format!("{name}_payload_mul_into_1MiB"), |b| {
            b.iter(|| backend.payload_mul_into(black_box(&mut dst), black_box(&src), coeff))
        });
        g.bench_function(format!("{name}_payload_scale_1MiB"), |b| {
            b.iter(|| backend.payload_scale(black_box(&mut dst), coeff))
        });
    }
    // Dispatched entry points (what the wide codecs call).
    g.bench_function("payload_mul_acc_1MiB", |b| {
        b.iter(|| payload_mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.finish();

    // The fused wide row: a wide LRC heavy step or RS(200, 60) encode
    // column batches 8 general coefficients per fused call.
    let srcs: Vec<Vec<u8>> = (0..8)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 37 + j * 11 + 5) % 256) as u8)
                .collect()
        })
        .collect();
    let pairs: Vec<(Gf65536, &[u8])> = srcs
        .iter()
        .enumerate()
        .map(|(i, s)| (Gf65536::from_index(i as u32 * 8191 + 3), s.as_slice()))
        .collect();
    let mut g = c.benchmark_group("gf_kernels_gf65536_fused");
    g.throughput(Throughput::Bytes((8 * BLOCK) as u64));
    for backend in KernelBackend::supported() {
        g.bench_function(
            format!("{}_payload_mul_acc_multi_8x1MiB", backend.name()),
            |b| b.iter(|| backend.payload_mul_acc_multi(black_box(&mut dst), black_box(&pairs))),
        );
    }
    g.bench_function("payload_mul_acc_multi_8x1MiB", |b| {
        b.iter(|| payload_mul_acc_multi(black_box(&mut dst), black_box(&pairs)))
    });
    g.finish();
}

fn bench_encode_into_e2e(c: &mut Criterion) {
    // End-to-end stripe encode over the zero-copy path: the (10,6,5)
    // LRC at 1 MiB payloads, parity lanes preallocated. This is the
    // stripe-level number the SIMD kernel work is judged against —
    // per-kernel gains must survive the full column-combination loop.
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let data: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 31 + j * 7 + 13) % 256) as u8)
                .collect()
        })
        .collect();
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0u8; BLOCK]; 6];
    let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
    let mut g = c.benchmark_group("gf_kernels_stripe_e2e");
    g.throughput(Throughput::Bytes((10 * BLOCK) as u64));
    g.sample_size(20);
    g.bench_function("lrc_10_6_5_encode_into_10x1MiB", |b| {
        b.iter(|| {
            lrc.encode_into(black_box(&data_refs), &mut parity_refs)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_xor,
    bench_gf256,
    bench_fused_rows,
    bench_gf65536,
    bench_encode_into_e2e
);
criterion_main!(benches);
