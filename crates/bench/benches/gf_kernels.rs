//! Ablation A5 — GF(2^m) byte-slice kernel throughput.
//!
//! The hot path of every encode and repair is a handful of slice
//! kernels: pure XOR (`xor_into`, what the LRC light decoder runs),
//! table-driven GF(2^8) multiply (`mul_into` / `mul_acc`, what RS
//! encode and heavy decode run), and the generic symbol-payload kernel
//! used by wider fields. Tracking them separately from whole-codec
//! benches isolates kernel regressions from planner changes, and sets
//! the baseline for the SIMD work on the roadmap (cf. Uezato,
//! "Accelerating XOR-based Erasure Coding", SC 2021).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xorbas_core::{ErasureCodec, Lrc};
use xorbas_gf::slice_ops::{mul_acc, mul_into, payload_mul_acc, scale, xor_into};
use xorbas_gf::{Field, Gf256, Gf65536};

const BLOCK: usize = 1 << 20; // 1 MiB payloads, matching codec_throughput

fn bench_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_xor");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0x3Cu8; BLOCK];
    let mut dst = vec![0xC3u8; BLOCK];
    g.bench_function("xor_into_1MiB", |b| {
        b.iter(|| xor_into(black_box(&mut dst), black_box(&src)))
    });
    g.finish();
}

fn bench_gf256(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_gf256");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0xA5u8; BLOCK];
    let mut dst = vec![0x5Au8; BLOCK];
    let coeff = Gf256::from_index(0x1D);
    g.bench_function("mul_into_1MiB", |b| {
        b.iter(|| mul_into(black_box(&mut dst), black_box(&src), coeff))
    });
    g.bench_function("mul_acc_1MiB", |b| {
        b.iter(|| mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.bench_function("scale_1MiB", |b| {
        b.iter(|| scale(black_box(&mut dst), coeff))
    });
    g.finish();
}

fn bench_gf65536(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_gf65536");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0x7Eu8; BLOCK];
    let mut dst = vec![0xE7u8; BLOCK];
    let coeff = Gf65536::from_index(0x1021);
    g.bench_function("payload_mul_acc_1MiB", |b| {
        b.iter(|| payload_mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.finish();
}

fn bench_encode_into_e2e(c: &mut Criterion) {
    // End-to-end stripe encode over the zero-copy path: the (10,6,5)
    // LRC at 1 MiB payloads, parity lanes preallocated. This is the
    // stripe-level number the SIMD kernel work will be judged against —
    // per-kernel gains must survive the full column-combination loop.
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let data: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 31 + j * 7 + 13) % 256) as u8)
                .collect()
        })
        .collect();
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0u8; BLOCK]; 6];
    let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
    let mut g = c.benchmark_group("gf_kernels_stripe_e2e");
    g.throughput(Throughput::Bytes((10 * BLOCK) as u64));
    g.sample_size(20);
    g.bench_function("lrc_10_6_5_encode_into_10x1MiB", |b| {
        b.iter(|| {
            lrc.encode_into(black_box(&data_refs), &mut parity_refs)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_xor,
    bench_gf256,
    bench_gf65536,
    bench_encode_into_e2e
);
criterion_main!(benches);
