//! Ablation A5 — GF(2^m) byte-slice kernel throughput.
//!
//! The hot path of every encode and repair is a handful of slice
//! kernels: pure XOR (`xor_into`, what the LRC light decoder runs),
//! table-driven GF(2^8) multiply (`mul_into` / `mul_acc`, what RS
//! encode and heavy decode run), and the generic symbol-payload kernel
//! used by wider fields. Tracking them separately from whole-codec
//! benches isolates kernel regressions from planner changes, and sets
//! the baseline for the SIMD work on the roadmap (cf. Uezato,
//! "Accelerating XOR-based Erasure Coding", SC 2021).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xorbas_gf::slice_ops::{mul_acc, mul_into, payload_mul_acc, scale, xor_into};
use xorbas_gf::{Field, Gf256, Gf65536};

const BLOCK: usize = 1 << 20; // 1 MiB payloads, matching codec_throughput

fn bench_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_xor");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0x3Cu8; BLOCK];
    let mut dst = vec![0xC3u8; BLOCK];
    g.bench_function("xor_into_1MiB", |b| {
        b.iter(|| xor_into(black_box(&mut dst), black_box(&src)))
    });
    g.finish();
}

fn bench_gf256(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_gf256");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0xA5u8; BLOCK];
    let mut dst = vec![0x5Au8; BLOCK];
    let coeff = Gf256::from_index(0x1D);
    g.bench_function("mul_into_1MiB", |b| {
        b.iter(|| mul_into(black_box(&mut dst), black_box(&src), coeff))
    });
    g.bench_function("mul_acc_1MiB", |b| {
        b.iter(|| mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.bench_function("scale_1MiB", |b| {
        b.iter(|| scale(black_box(&mut dst), coeff))
    });
    g.finish();
}

fn bench_gf65536(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_kernels_gf65536");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    let src = vec![0x7Eu8; BLOCK];
    let mut dst = vec![0xE7u8; BLOCK];
    let coeff = Gf65536::from_index(0x1021);
    g.bench_function("payload_mul_acc_1MiB", |b| {
        b.iter(|| payload_mul_acc(black_box(&mut dst), black_box(&src), coeff))
    });
    g.finish();
}

criterion_group!(benches, bench_xor, bench_gf256, bench_gf65536);
criterion_main!(benches);
