//! Ablation A1 — the implied parity (§2.1).
//!
//! Storing S3 explicitly costs 17/10 storage; the alignment
//! S1 + S2 + S3 = 0 lets Xorbas drop it to 16/10 ("we can therefore not
//! store the local parity S3 and instead consider it an implied
//! parity"). This ablation verifies what the optimization does and does
//! not change: storage drops, distance and data-block repairs are
//! unchanged, and global-parity repairs trade 4 reads for 5.

use xorbas_bench::output::{banner, f, render_table, write_csv};
use xorbas_core::analysis::{expected_single_repair_reads, minimum_distance};
use xorbas_core::{ErasureCodec, Lrc, LrcSpec};

fn main() {
    banner(
        "Ablation A1",
        "implied parity vs stored S3 for the (10, 6, 5) LRC",
    );
    let implied = Lrc::xorbas_10_6_5().expect("implied-parity construction");
    let stored: Lrc = Lrc::new(LrcSpec {
        implied_parity: false,
        ..LrcSpec::XORBAS
    })
    .expect("stored-parity construction");

    let header = [
        "variant",
        "n",
        "overhead",
        "d",
        "data repair",
        "parity repair",
    ];
    let mut rows = Vec::new();
    for (name, lrc) in [("implied S3", &implied), ("stored S3", &stored)] {
        let d = minimum_distance(lrc.generator());
        let data_reads = lrc.repair_plan(&[0]).unwrap().blocks_read();
        let parity_reads = lrc.repair_plan(&[11]).unwrap().blocks_read();
        rows.push(vec![
            name.to_string(),
            lrc.total_blocks().to_string(),
            f(lrc.spec().storage_overhead(), 2),
            d.to_string(),
            data_reads.to_string(),
            parity_reads.to_string(),
        ]);
    }
    println!("{}", render_table(&header, &rows));

    println!("expected single-repair reads by failures present:");
    let mut csv = vec![vec![
        "variant".to_string(),
        "failures".to_string(),
        "expected_reads".to_string(),
        "light_probability".to_string(),
    ]];
    for (name, lrc) in [("implied", &implied), ("stored", &stored)] {
        for failures in 1..=4 {
            let p = expected_single_repair_reads(lrc, failures);
            println!(
                "  {name:<8} {failures} failure(s): {:.2} reads, light {:.0}%",
                p.expected_reads,
                p.light_probability * 100.0
            );
            csv.push(vec![
                name.to_string(),
                failures.to_string(),
                f(p.expected_reads, 3),
                f(p.light_probability, 3),
            ]);
        }
    }

    let implied_overhead = implied.spec().storage_overhead();
    let stored_overhead = stored.spec().storage_overhead();
    println!(
        "\nstorage saved by the implied parity: {:.2}x -> {:.2}x (one block per stripe)",
        stored_overhead, implied_overhead
    );
    assert!(implied_overhead < stored_overhead);
    assert_eq!(minimum_distance(implied.generator()), 5);
    assert_eq!(minimum_distance(stored.generator()), 5);
    write_csv("ablation_implied_parity.csv", &csv);
}
