//! Serving-plane integration test: a Zipf-skewed read mix against a
//! real loopback cluster with one chunk server killed mid-run. The
//! sim's [`ZipfSampler`] picks hot chunks, every read's wall latency
//! lands in a [`Percentiles`] recorder, and the gate is the serving
//! SLO: zero failed reads and a p999 under the configured deadline
//! even while a fifth of the lanes are being served degraded.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xorbas_core::CodeSpec;
use xorbas_node::client::{ReadKind, SessionCache};
use xorbas_node::{ChunkServer, ClusterClient, Directory, RetryPolicy, ServerConfig};
use xorbas_sim::codecs::CodecInstance;
use xorbas_sim::{Percentiles, ZipfSampler};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const CHUNK: usize = 64 * 1024;
const STRIPES: usize = 4;
const WARM_READS: usize = 150;
const DEGRADED_READS: usize = 850;
/// Generous loopback deadline: a degraded read moves ~5 chunks of
/// 64 KiB over local TCP plus one XOR decode, which is single-digit
/// milliseconds on any machine; the slack absorbs CI scheduler noise.
const P999_DEADLINE_MS: f64 = 1500.0;

fn test_file(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(2654435761) >> 16) as u8)
        .collect()
}

#[test]
fn zipf_read_mix_survives_a_dead_server_within_deadline() {
    // Boot five chunk servers.
    let mut servers = Vec::new();
    let mut data_dirs: Vec<PathBuf> = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for i in 0..5 {
        let dir = std::env::temp_dir().join(format!("xorbas_zipfmix_{}_{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = ChunkServer::start(ServerConfig::new(dir.clone())).unwrap();
        addrs.push(server.addr());
        servers.push(server);
        data_dirs.push(dir);
    }
    let directory = Arc::new(Mutex::new(Directory::new(&addrs, 5, 7)));
    let sessions = SessionCache::default();
    let spec = CodeSpec::LRC_10_6_5;
    let k = spec.data_blocks();
    let mut client = ClusterClient::new(
        CodecInstance::build(spec).unwrap(),
        CHUNK,
        Arc::clone(&directory),
        RetryPolicy::default(),
        sessions,
    );

    let data = test_file(STRIPES * k * CHUNK);
    let manifest = client.put(&data).unwrap();
    assert_eq!(manifest.stripes.len(), STRIPES);

    // The readable population is every (stripe, data lane) chunk. The
    // Zipf rank-to-chunk assignment is a seeded shuffle, so the hot set
    // is arbitrary but the run is reproducible.
    let mut rng = StdRng::seed_from_u64(0x21F_0407);
    let mut chunks: Vec<(usize, u32)> = (0..STRIPES)
        .flat_map(|s| (0..k as u32).map(move |l| (s, l)))
        .collect();
    chunks.shuffle(&mut rng);
    let zipf = ZipfSampler::new(chunks.len(), 1.1);

    let mut latency = Percentiles::new();
    let mut buf = Vec::new();
    let mut direct = 0u64;
    let mut degraded = 0u64;
    let read_one = |client: &mut ClusterClient,
                    rng: &mut StdRng,
                    latency: &mut Percentiles,
                    direct: &mut u64,
                    degraded: &mut u64,
                    buf: &mut Vec<u8>| {
        let (stripe_idx, lane) = chunks[zipf.sample_rank(rng)];
        let stripe = manifest.stripes[stripe_idx].id;
        let t0 = Instant::now();
        // `unwrap` IS the zero-failed-reads gate: any read error fails
        // the test on the spot.
        let kind = client.read_data_chunk(stripe, lane, buf).unwrap();
        latency.record(t0.elapsed().as_secs_f64() * 1e3);
        match kind {
            ReadKind::Direct => *direct += 1,
            ReadKind::Degraded { .. } => *degraded += 1,
        }
        let start = (stripe_idx * k + lane as usize) * CHUNK;
        assert_eq!(
            &buf[..CHUNK],
            &data[start..start + CHUNK],
            "payload must be exact"
        );
    };

    // Warm phase: all-healthy reads.
    for _ in 0..WARM_READS {
        read_one(
            &mut client,
            &mut rng,
            &mut latency,
            &mut direct,
            &mut degraded,
            &mut buf,
        );
    }
    assert_eq!(degraded, 0, "healthy cluster serves everything directly");

    // Kill one server and keep reading the same skewed mix.
    servers[4].kill();
    for _ in 0..DEGRADED_READS {
        read_one(
            &mut client,
            &mut rng,
            &mut latency,
            &mut direct,
            &mut degraded,
            &mut buf,
        );
    }
    assert!(
        degraded > 0,
        "the dead server held data lanes of the hot set"
    );
    assert!(direct > 0, "surviving lanes still serve directly");

    let s = latency.summary();
    assert_eq!(s.count, WARM_READS + DEGRADED_READS, "every read completed");
    assert!(
        s.p999 < P999_DEADLINE_MS,
        "p999 {} ms blows the {} ms deadline (p50 {} ms, max {} ms)",
        s.p999,
        P999_DEADLINE_MS,
        s.p50,
        s.max
    );

    for server in servers {
        server.shutdown();
    }
    for dir in &data_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
