//! Loopback cluster smoke tests: the CI gate for the networked
//! prototype. Five real chunk servers in-process, a client streaming
//! erasure-coded files over TCP, one server killed mid-test, a repair
//! agent restoring redundancy — and the paper's headline measured as
//! an assertion: LRC single-loss repair moves fewer bytes than RS.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use xorbas_core::CodeSpec;
use xorbas_node::client::{ReadKind, SessionCache};
use xorbas_node::{
    ChunkServer, ClusterClient, Directory, NodeConn, NodeError, RepairAgent, RepairAgentConfig,
    RetryPolicy, ServerConfig,
};
use xorbas_sim::codecs::CodecInstance;

const CHUNK: usize = 64 * 1024;

struct Cluster {
    servers: Vec<ChunkServer>,
    data_dirs: Vec<PathBuf>,
    directory: Arc<Mutex<Directory>>,
    sessions: SessionCache,
}

impl Cluster {
    fn boot(n: usize, tag: &str) -> Self {
        let mut servers = Vec::new();
        let mut data_dirs = Vec::new();
        let mut addrs: Vec<SocketAddr> = Vec::new();
        for i in 0..n {
            let dir =
                std::env::temp_dir().join(format!("xorbas_smoke_{}_{tag}_{i}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let server = ChunkServer::start(ServerConfig::new(dir.clone())).unwrap();
            addrs.push(server.addr());
            servers.push(server);
            data_dirs.push(dir);
        }
        Self {
            servers,
            data_dirs,
            directory: Arc::new(Mutex::new(Directory::new(&addrs, n, 7))),
            sessions: SessionCache::default(),
        }
    }

    fn client(&self, spec: CodeSpec) -> ClusterClient {
        ClusterClient::new(
            CodecInstance::build(spec).unwrap(),
            CHUNK,
            Arc::clone(&self.directory),
            RetryPolicy::default(),
            self.sessions.clone(),
        )
    }

    fn agent(&self, spec: CodeSpec) -> RepairAgent {
        RepairAgent::start(
            CodecInstance::build(spec).unwrap(),
            Arc::clone(&self.directory),
            self.sessions.clone(),
            RepairAgentConfig::new(CHUNK),
        )
        .unwrap()
    }

    fn lock_dir(&self) -> std::sync::MutexGuard<'_, Directory> {
        self.directory
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn teardown(self) {
        for server in self.servers {
            server.shutdown();
        }
        for dir in &self.data_dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Position-dependent filler. The shift matters: `>> 7` would make the
/// byte a function of the offset *within* its 64 KiB chunk only (the
/// chunk-index term is `c · 512 · M ≡ 0 mod 256`), i.e. every chunk
/// identical and a stale-lane bug invisible; `>> 16` keeps an odd
/// multiple of the chunk index in the low byte, so no two chunks match.
fn test_file(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(2654435761) >> 16) as u8)
        .collect()
}

#[test]
fn kill_one_server_zero_failed_reads_then_repair_restores_redundancy() {
    let cluster = Cluster::boot(5, "kill");
    let mut client = cluster.client(CodeSpec::LRC_10_6_5);
    let k = CodeSpec::LRC_10_6_5.data_blocks();

    // Three stripes exactly, plus a ragged tail on a fourth.
    let data = test_file(3 * k * CHUNK + 12345);
    let manifest = client.put(&data).unwrap();
    assert_eq!(manifest.stripes.len(), 4);
    assert_eq!(manifest.file_len, data.len() as u64);

    // Healthy reads are all direct.
    let mut buf = Vec::new();
    let report = client.get(&manifest, &mut buf).unwrap();
    assert_eq!(buf, data);
    assert_eq!(report.degraded_stripes, 0);

    // Kill one server mid-life. Every read must still succeed — direct
    // where the lane survived, degraded where it did not.
    cluster.servers[4].kill();
    let mut direct = 0usize;
    let mut degraded = 0usize;
    for stripe in &manifest.stripes {
        for lane in 0..k as u32 {
            match client.read_data_chunk(stripe.id, lane, &mut buf).unwrap() {
                ReadKind::Direct => direct += 1,
                ReadKind::Degraded { .. } => degraded += 1,
            }
            let start = stripe_user_offset(&manifest, stripe.id, lane);
            let expect = &data[start.min(data.len())..(start + CHUNK).min(data.len())];
            assert_eq!(&buf[..expect.len()], expect, "chunk content must match");
        }
    }
    assert!(degraded > 0, "the dead server held data lanes");
    assert!(direct > 0);

    // Whole-file get stays bit-identical through the mixed path.
    let report = client.get(&manifest, &mut buf).unwrap();
    assert_eq!(buf, data);
    assert!(report.degraded_stripes > 0);

    // The repair agent restores full redundancy onto the survivors.
    let agent = cluster.agent(CodeSpec::LRC_10_6_5);
    assert!(
        agent.wait_until_repaired(Duration::from_secs(60)),
        "repair must converge"
    );
    let stats = agent.stats();
    assert!(stats.chunks_repaired > 0);
    assert!(stats.bytes_written >= stats.chunks_repaired * CHUNK as u64);
    {
        let dir = cluster.lock_dir();
        let mut lost = Vec::new();
        dir.scan_lost(&mut lost);
        assert!(lost.is_empty(), "no chunk may remain lost: {lost:?}");
    }
    agent.shutdown();

    // After repair every chunk reads directly again (new client so no
    // stale dead-server connections linger).
    let mut fresh = cluster.client(CodeSpec::LRC_10_6_5);
    for stripe in &manifest.stripes {
        for lane in 0..k as u32 {
            let kind = fresh.read_data_chunk(stripe.id, lane, &mut buf).unwrap();
            assert!(
                matches!(kind, ReadKind::Direct),
                "post-repair reads are direct"
            );
        }
    }
    fresh.get(&manifest, &mut buf).unwrap();
    assert_eq!(buf, data, "bit-identical after repair");

    cluster.teardown();
}

/// User-byte offset of `(stripe, lane)` within the original file.
fn stripe_user_offset(manifest: &xorbas_node::Manifest, stripe: u64, lane: u32) -> usize {
    let idx = manifest
        .stripes
        .iter()
        .position(|s| s.id == stripe)
        .unwrap();
    let k = manifest.spec.data_blocks();
    (idx * k + lane as usize) * CHUNK
}

#[test]
fn checksum_mismatch_routes_into_degraded_read() {
    let cluster = Cluster::boot(5, "corrupt");
    let mut client = cluster.client(CodeSpec::LRC_10_6_5);
    let k = CodeSpec::LRC_10_6_5.data_blocks();
    let data = test_file(k * CHUNK);
    let manifest = client.put(&data).unwrap();
    let stripe = manifest.stripes[0].id;

    // Flip a payload byte of lane 0's stored chunk behind the server's
    // back. The server detects the digest mismatch on read and answers
    // with a typed Corrupt error; the client treats it as an erasure.
    let holder = manifest.stripes[0].servers[0];
    let path = cluster.data_dirs[holder].join(format!("s{stripe:016x}_l{:08x}.chunk", 0));
    let mut bytes = std::fs::read(&path).unwrap();
    let payload_at = bytes.len() - CHUNK + 17;
    bytes[payload_at] ^= 0xFF;
    std::fs::write(&path, bytes).unwrap();

    let mut buf = Vec::new();
    let kind = client.read_data_chunk(stripe, 0, &mut buf).unwrap();
    assert!(
        matches!(kind, ReadKind::Degraded { light: true }),
        "a single corrupt LRC data chunk decodes from its local group, got {kind:?}"
    );
    assert_eq!(&buf[..], &data[..CHUNK], "reconstructed bytes are exact");
    assert!(cluster.lock_dir().is_corrupt(stripe, 0));

    // Repair overwrites the bad replica and clears the flag; the chunk
    // then reads directly again.
    let agent = cluster.agent(CodeSpec::LRC_10_6_5);
    assert!(agent.wait_until_repaired(Duration::from_secs(30)));
    assert_eq!(agent.stats().light_repairs, 1);
    agent.shutdown();
    assert!(!cluster.lock_dir().is_corrupt(stripe, 0));
    let kind = client.read_data_chunk(stripe, 0, &mut buf).unwrap();
    assert!(matches!(kind, ReadKind::Direct));
    assert_eq!(&buf[..], &data[..CHUNK]);

    cluster.teardown();
}

#[test]
fn lrc_light_repair_moves_fewer_bytes_than_rs() {
    let mut fetched = Vec::new();
    for (spec, tag) in [(CodeSpec::LRC_10_6_5, "lrc"), (CodeSpec::RS_10_4, "rs")] {
        let cluster = Cluster::boot(5, tag);
        let mut client = cluster.client(spec);
        let data = test_file(spec.data_blocks() * CHUNK);
        let manifest = client.put(&data).unwrap();
        let stripe = manifest.stripes[0].id;

        cluster.lock_dir().report_corrupt(stripe, 0);
        let agent = cluster.agent(spec);
        assert!(agent.wait_until_repaired(Duration::from_secs(30)));
        let stats = agent.stats();
        assert_eq!(stats.chunks_repaired, 1);
        agent.shutdown();
        fetched.push(stats.bytes_fetched);

        let mut buf = Vec::new();
        client.get(&manifest, &mut buf).unwrap();
        assert_eq!(buf, data);
        cluster.teardown();
    }
    // The paper's Table: LRC repairs a single loss from its 5-lane
    // local group; RS must read k = 10 lanes.
    assert_eq!(
        fetched[0],
        5 * CHUNK as u64,
        "LRC light repair reads 5 chunks"
    );
    assert_eq!(
        fetched[1],
        10 * CHUNK as u64,
        "RS repair reads k = 10 chunks"
    );
    assert!(fetched[0] < fetched[1]);
}

/// Regression: a light degraded repair only *reads* the failed lane's
/// local group, so data lanes of the other group are outside the plan.
/// The whole-file get must fetch them explicitly — before the fix they
/// kept the previous stripe's bytes in the scratch and the file came
/// back silently corrupted.
#[test]
fn whole_file_get_refreshes_lanes_outside_the_light_repair_group() {
    let cluster = Cluster::boot(5, "lightget");
    let mut client = cluster.client(CodeSpec::LRC_10_6_5);
    let k = CodeSpec::LRC_10_6_5.data_blocks();

    // Two full stripes of distinct content: a stale lane carried over
    // from stripe 0 is detectable in stripe 1's output.
    let data = test_file(2 * k * CHUNK);
    let manifest = client.put(&data).unwrap();
    assert_eq!(manifest.stripes.len(), 2);

    // Lose exactly one data chunk of the SECOND stripe. A single loss
    // compiles a light plan over lane 2's local group (lanes 0..5 +
    // its local parity); data lanes 5..10 are neither read nor missing.
    let stripe = manifest.stripes[1].id;
    let lane = 2u32;
    let holder = manifest.stripes[1].servers[lane as usize];
    let path = cluster.data_dirs[holder].join(format!("s{stripe:016x}_l{lane:08x}.chunk"));
    std::fs::remove_file(&path).unwrap();

    let mut buf = Vec::new();
    let report = client.get(&manifest, &mut buf).unwrap();
    assert_eq!(report.degraded_stripes, 1);
    assert_eq!(
        buf, data,
        "data lanes outside the light-repair group must be fetched, not stale"
    );
    cluster.teardown();
}

/// A manifest is only meaningful to a client configured with the same
/// code spec and chunk size; anything else must be a typed refusal,
/// not a silent misread.
#[test]
fn mismatched_manifest_is_refused_up_front() {
    let cluster = Cluster::boot(5, "mismatch");
    let mut client = cluster.client(CodeSpec::LRC_10_6_5);
    let data = test_file(3 * CHUNK);
    let manifest = client.put(&data).unwrap();

    // A client striping with a different code…
    let mut rs = cluster.client(CodeSpec::RS_10_4);
    let mut buf = Vec::new();
    assert!(matches!(
        rs.get(&manifest, &mut buf).unwrap_err(),
        NodeError::ManifestMismatch(_)
    ));
    assert!(matches!(
        rs.register_manifest(&manifest).unwrap_err(),
        NodeError::ManifestMismatch(_)
    ));

    // …or a different chunk size is refused too.
    let mut small = ClusterClient::new(
        CodecInstance::build(CodeSpec::LRC_10_6_5).unwrap(),
        CHUNK / 2,
        Arc::clone(&cluster.directory),
        RetryPolicy::default(),
        cluster.sessions.clone(),
    );
    assert!(matches!(
        small.get(&manifest, &mut buf).unwrap_err(),
        NodeError::ManifestMismatch(_)
    ));

    // The matching client still round-trips.
    client.get(&manifest, &mut buf).unwrap();
    assert_eq!(buf, data);
    cluster.teardown();
}

#[test]
fn connect_refused_is_retried_with_backoff_then_typed() {
    // Bind a port, then drop the listener: connects now get refused.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);

    // Jitter off so the backoff schedule (4ms, then 8ms) is exact.
    let policy = RetryPolicy {
        attempts: 3,
        base_delay: Duration::from_millis(4),
        jitter: false,
        ..RetryPolicy::default()
    };
    let t0 = Instant::now();
    let err = NodeConn::connect(addr, &policy).unwrap_err();
    let elapsed = t0.elapsed();
    match err {
        NodeError::ConnectFailed { addr: a, attempts } => {
            assert_eq!(a, addr);
            assert_eq!(attempts, 3);
        }
        other => panic!("expected ConnectFailed, got {other:?}"),
    }
    // Two backoff sleeps happened between the three attempts: 4ms + 8ms.
    assert!(
        elapsed >= Duration::from_millis(12),
        "backoff too short: {elapsed:?}"
    );
}

#[test]
fn manifest_round_trips_through_registration() {
    let cluster = Cluster::boot(5, "manifest");
    let mut client = cluster.client(CodeSpec::RS_10_4);
    let data = test_file(CodeSpec::RS_10_4.data_blocks() * CHUNK + 999);
    let manifest = client.put(&data).unwrap();

    // Serialize, reload in a *fresh* directory (new cluster epoch), and
    // read the file back through registration alone.
    let encoded = manifest.encode();
    let reloaded = xorbas_node::Manifest::decode(&encoded).unwrap();
    assert_eq!(reloaded.file_len, manifest.file_len);
    assert_eq!(reloaded.stripes.len(), manifest.stripes.len());

    let mut fresh = cluster.client(CodeSpec::RS_10_4);
    fresh.register_manifest(&reloaded).unwrap();
    let mut buf = Vec::new();
    fresh.get(&reloaded, &mut buf).unwrap();
    assert_eq!(buf, data);
    cluster.teardown();
}
