//! Crash-safety gate: kill a chunk server *and* the directory
//! mid-workload, restart both from the data root alone, and every
//! acked file must read back bit-identical with zero failed reads.
//!
//! The directory's WAL is the only durable coordinator state; this
//! test is the proof that replaying it (placements, manifests, the id
//! allocator's high-water mark) reconstructs a serving cluster.

use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use xorbas_core::CodeSpec;
use xorbas_node::client::SessionCache;
use xorbas_node::{ChunkServer, ClusterClient, Directory, RetryPolicy, ServerConfig};
use xorbas_sim::codecs::CodecInstance;

const CHUNK: usize = 64 * 1024;
const N: usize = 5;

fn test_file(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i.wrapping_mul(2654435761) >> 16) as u8) ^ salt)
        .collect()
}

fn client_for(dir: &Arc<Mutex<Directory>>, sessions: &SessionCache) -> ClusterClient {
    ClusterClient::new(
        CodecInstance::build(CodeSpec::LRC_10_6_5).unwrap(),
        CHUNK,
        Arc::clone(dir),
        RetryPolicy::default(),
        sessions.clone(),
    )
}

#[test]
fn cluster_restarts_from_the_data_root_with_every_acked_byte() {
    let root = std::env::temp_dir().join(format!("xorbas_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mut servers = Vec::new();
    let mut dirs = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for i in 0..N {
        let d = root.join(format!("srv{i}"));
        let s = ChunkServer::start(ServerConfig::new(d.clone())).unwrap();
        addrs.push(s.addr());
        servers.push(s);
        dirs.push(d);
    }
    let wal = root.join("directory.wal");
    let (dir, prior) = Directory::open_persistent(&wal, &addrs, N, 7).unwrap();
    assert!(prior.is_empty(), "fresh WAL must replay nothing");
    let dir = Arc::new(Mutex::new(dir));
    let sessions = SessionCache::default();
    let mut client = client_for(&dir, &sessions);

    let k = CodeSpec::LRC_10_6_5.data_blocks();
    let file_a = test_file(2 * k * CHUNK + 777, 0);
    let file_b = test_file(k * CHUNK, 0x5A);
    let ma = client.put(&file_a).unwrap();
    let mb = client.put(&file_b).unwrap();

    // Mid-workload: reads are flowing…
    let mut buf = Vec::new();
    client.get(&ma, &mut buf).unwrap();
    assert_eq!(buf, file_a);

    // …then the coordinator dies (client + directory dropped with no
    // orderly handoff) and one chunk server dies with it.
    drop(client);
    drop(dir);
    let victim = servers.pop().unwrap();
    victim.kill();
    drop(victim);

    // Restart from the data root: the victim re-serves its old chunk
    // dir on a fresh port; the directory replays the WAL against the
    // updated roster. The replayed manifests must be exactly the acked
    // ones, byte for byte.
    let restarted = ChunkServer::start(ServerConfig::new(dirs[N - 1].clone())).unwrap();
    let mut addrs2 = addrs.clone();
    addrs2[N - 1] = restarted.addr();
    servers.push(restarted);
    let (dir2, mut replayed) = Directory::open_persistent(&wal, &addrs2, N, 7).unwrap();
    assert_eq!(replayed.len(), 2, "both acked manifests replay");
    let rb = replayed.pop().unwrap();
    let ra = replayed.pop().unwrap();
    assert_eq!(ra.encode(), ma.encode());
    assert_eq!(rb.encode(), mb.encode());

    let dir2 = Arc::new(Mutex::new(dir2));
    let sessions2 = SessionCache::default();
    let mut client2 = client_for(&dir2, &sessions2);

    // Every acked byte reads back through the replayed state — and
    // since the restarted server kept its chunks, not even degraded.
    let report_a = client2.get(&ra, &mut buf).unwrap();
    assert_eq!(buf, file_a);
    let report_b = client2.get(&rb, &mut buf).unwrap();
    assert_eq!(buf, file_b);
    assert_eq!(
        report_a.degraded_stripes + report_b.degraded_stripes,
        0,
        "restart with intact data dirs must not need reconstruction"
    );

    // The id allocator replayed past every logged stripe: new puts
    // never collide with replayed ids, and they read back too.
    let file_c = test_file(k * CHUNK + 9, 0xC3);
    let mc = client2.put(&file_c).unwrap();
    let mut seen: HashSet<u64> = ra
        .stripes
        .iter()
        .chain(rb.stripes.iter())
        .map(|s| s.id)
        .collect();
    for s in &mc.stripes {
        assert!(seen.insert(s.id), "stripe id collision after replay");
    }
    client2.get(&mc, &mut buf).unwrap();
    assert_eq!(buf, file_c);

    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
}
