//! Fault-injection integration: the scrubber finds every rotted chunk
//! within one cycle and routes it through the ordinary repair
//! pipeline; client traffic under an armed fault plan never returns a
//! wrong byte.
//!
//! The fault plan is process-global, so the tests in this binary
//! serialize on `PLAN_GATE` — one armed plan at a time.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use xorbas_core::CodeSpec;
use xorbas_node::client::SessionCache;
use xorbas_node::repair::ScrubConfig;
use xorbas_node::{
    fault, ChunkServer, ClusterClient, Directory, FaultPlan, RepairAgent, RepairAgentConfig,
    RetryPolicy, ServerConfig, Site,
};
use xorbas_sim::codecs::CodecInstance;

const CHUNK: usize = 64 * 1024;

static PLAN_GATE: Mutex<()> = Mutex::new(());

/// Disarms the global plan even if the test panics mid-way, so a
/// failure here cannot cascade into the other test.
struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        fault::disarm();
    }
}

struct Cluster {
    servers: Vec<ChunkServer>,
    dirs: Vec<PathBuf>,
    directory: Arc<Mutex<Directory>>,
    sessions: SessionCache,
}

impl Cluster {
    fn boot(n: usize, tag: &str) -> Self {
        let mut servers = Vec::new();
        let mut dirs = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..n {
            let dir =
                std::env::temp_dir().join(format!("xorbas_chaos_{}_{tag}_{i}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let server = ChunkServer::start(ServerConfig::new(dir.clone())).unwrap();
            addrs.push(server.addr());
            servers.push(server);
            dirs.push(dir);
        }
        Self {
            servers,
            dirs,
            directory: Arc::new(Mutex::new(Directory::new(&addrs, n, 7))),
            sessions: SessionCache::default(),
        }
    }

    fn client(&self, spec: CodeSpec) -> ClusterClient {
        ClusterClient::new(
            CodecInstance::build(spec).unwrap(),
            CHUNK,
            Arc::clone(&self.directory),
            RetryPolicy::default(),
            self.sessions.clone(),
        )
    }

    fn scrubbing_agent(&self, spec: CodeSpec) -> RepairAgent {
        let mut cfg = RepairAgentConfig::new(CHUNK);
        cfg.scrub = Some(ScrubConfig::new(
            self.dirs.iter().cloned().enumerate().collect(),
        ));
        RepairAgent::start(
            CodecInstance::build(spec).unwrap(),
            Arc::clone(&self.directory),
            self.sessions.clone(),
            cfg,
        )
        .unwrap()
    }

    fn lock_dir(&self) -> std::sync::MutexGuard<'_, Directory> {
        self.directory
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn teardown(self) {
        for server in self.servers {
            server.shutdown();
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn test_file(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(2654435761) >> 16) as u8)
        .collect()
}

/// XORs one payload byte of the on-disk chunk file for `(stripe, lane)`
/// on whatever server the directory maps it to — silent bit rot.
fn rot_chunk_on_disk(cluster: &Cluster, stripe: u64, lane: u32) {
    let sid = {
        let d = cluster.lock_dir();
        d.servers_of(stripe).unwrap()[lane as usize]
    };
    let path = cluster.dirs[sid].join(format!("s{stripe:016x}_l{lane:08x}.chunk"));
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
}

#[test]
fn scrubber_finds_every_rotted_chunk_in_one_cycle_and_repair_heals_them() {
    let _gate = PLAN_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let cluster = Cluster::boot(5, "scrub");
    let spec = CodeSpec::LRC_10_6_5;
    let mut client = cluster.client(spec);
    let k = spec.data_blocks();

    let data = test_file(3 * k * CHUNK);
    let manifest = client.put(&data).unwrap();
    assert_eq!(manifest.stripes.len(), 3);

    // Rot one chunk in each stripe: three independent single losses.
    let rotted: Vec<(u64, u32)> = manifest
        .stripes
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, (i * 3) as u32))
        .collect();
    for &(stripe, lane) in &rotted {
        rot_chunk_on_disk(&cluster, stripe, lane);
    }

    // No client ever touches the rotted chunks: only the scrubber can
    // find them. One cycle covers every store, so within a generous
    // timeout all three must be flagged — and only those three.
    let agent = cluster.scrubbing_agent(spec);
    let deadline = Instant::now() + Duration::from_secs(60);
    while agent.stats().scrub_corruptions < rotted.len() as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = agent.stats();
    assert_eq!(
        stats.scrub_corruptions,
        rotted.len() as u64,
        "scrubber must flag exactly the rotted chunks: {stats:?}"
    );
    assert!(stats.scrub_chunks > 0 && stats.scrub_bytes > 0);

    // The flags flow into the ordinary scan → repair pipeline.
    assert!(
        agent.wait_until_repaired(Duration::from_secs(60)),
        "repair must drain every scrub-flagged chunk"
    );

    // Digest re-check: every rotted chunk now reads back correct, as
    // does the whole file.
    let mut buf = Vec::new();
    for (i, &(stripe, lane)) in rotted.iter().enumerate() {
        client.read_data_chunk(stripe, lane, &mut buf).unwrap();
        let off = (i * k + lane as usize) * CHUNK;
        assert_eq!(&buf[..], &data[off..off + CHUNK], "chunk healed wrong");
    }
    client.get(&manifest, &mut buf).unwrap();
    assert_eq!(buf, data);

    agent.shutdown();
    cluster.teardown();
}

#[test]
fn armed_fault_plan_returns_only_correct_bytes() {
    let _gate = PLAN_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let _disarm = DisarmOnDrop;
    let plan = fault::arm(
        FaultPlan::new(42)
            .with(Site::ConnectRefuse, 30)
            .with(Site::ServeReset, 20)
            .with_param(Site::ServeStall, 10, 20)
            .with(Site::TornWrite, 15)
            .with(Site::BitFlip, 20)
            .with(Site::CrashPut, 8),
    );

    let cluster = Cluster::boot(5, "armed");
    let spec = CodeSpec::LRC_10_6_5;
    let mut client = cluster.client(spec);
    let k = spec.data_blocks();
    let data = test_file(2 * k * CHUNK);

    // The agent runs throughout, as it would in production: its
    // liveness probe revives servers that injected resets smeared as
    // dead, and its repair loop drains the corruption the plan plants
    // — without it, unavailability only accumulates.
    let agent = cluster.scrubbing_agent(spec);

    // Puts may be killed by injection; only an Ok is an ack.
    let manifest = loop {
        match client.put(&data) {
            Ok(m) => break m,
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    };

    // Hammer reads under fire: a read may need retries, but within a
    // deadline it must succeed and the bytes must be exactly right.
    let mut buf = Vec::new();
    let mut rng = 42u64;
    for _ in 0..80 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pos = (rng >> 33) as usize % manifest.stripes.len();
        let lane = ((rng >> 13) % k as u64) as u32;
        let stripe = manifest.stripes[pos].id;
        let op_deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client.read_data_chunk(stripe, lane, &mut buf) {
                Ok(_) => break,
                Err(e) => {
                    assert!(
                        Instant::now() < op_deadline,
                        "read stuck past its deadline under chaos: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        let off = (pos * k + lane as usize) * CHUNK;
        assert_eq!(
            &buf[..],
            &data[off..off + CHUNK],
            "chaos served wrong bytes"
        );
    }
    assert!(
        plan.counters().iter().any(|(_, _, fired)| *fired > 0),
        "the plan never injected anything — rates too low for the run"
    );

    // Quiesce and heal: with injection off, repair + scrub converge
    // and the file reads back bit-identical.
    fault::disarm();
    assert!(agent.wait_until_repaired(Duration::from_secs(120)));
    client.get(&manifest, &mut buf).unwrap();
    assert_eq!(buf, data);

    agent.shutdown();
    cluster.teardown();
}
