//! The stripe manifest: the durable record a put produces and a get
//! consumes.
//!
//! A manifest pins everything needed to read the file back — the code
//! spec, the chunk size, the exact file length (the last stripe is
//! zero-padded on the wire but trimmed on read), and each stripe's
//! lane→server assignment:
//!
//! ```text
//! magic "XBMF" | version u32
//! spec: tag u8 (0 replication | 1 reed-solomon | 2 lrc) + fields (u16 each;
//!       lrc adds an implied-parity flag byte)
//! chunk_bytes u64 | file_len u64 | stripe_count u32
//! per stripe: id u64 | lane_count u16 | server u32 × lane_count
//! ```
//!
//! Decoding is defensive to the same standard as the wire protocol:
//! every length is validated before use, truncation and bad magic are
//! typed [`NodeError::Malformed`] errors, and a hostile stripe count
//! cannot trigger an oversized allocation because the decoder checks
//! the remaining byte budget before reserving. The spec, chunk size
//! (bounded by [`MAX_CHUNK`]) and per-stripe lane counts are
//! sanity-checked during decode, so downstream geometry arithmetic
//! cannot overflow.

use crate::directory::ServerId;
use crate::error::{NodeError, Result};
use crate::protocol::MAX_CHUNK;
use xorbas_core::{CodeSpec, LrcSpec};

const MAGIC: [u8; 4] = *b"XBMF";
const VERSION: u32 = 1;

/// One stripe's placement record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeEntry {
    /// Stripe id (the directory's and the chunk servers' key).
    pub id: u64,
    /// Lane → server assignment, one entry per lane.
    pub servers: Vec<ServerId>,
}

/// Everything needed to read an erasure-coded file back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The code the file was striped with.
    pub spec: CodeSpec,
    /// Bytes per chunk (every lane of every stripe).
    pub chunk_bytes: u64,
    /// Exact byte length of the original file.
    pub file_len: u64,
    /// The stripes, in file order.
    pub stripes: Vec<StripeEntry>,
}

impl Manifest {
    /// User-data bytes each stripe carries. Saturates instead of
    /// overflowing: [`Manifest::decode`] bounds `chunk_bytes`, but a
    /// hand-built manifest must not wrap (or panic) here either.
    pub fn stripe_payload(&self) -> u64 {
        self.chunk_bytes
            .saturating_mul(self.spec.data_blocks() as u64)
    }

    /// Serializes to the binary format above.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        match self.spec {
            CodeSpec::Replication { replicas } => {
                out.push(0);
                out.extend_from_slice(&(replicas as u16).to_le_bytes());
            }
            CodeSpec::ReedSolomon { k, m } => {
                out.push(1);
                out.extend_from_slice(&(k as u16).to_le_bytes());
                out.extend_from_slice(&(m as u16).to_le_bytes());
            }
            CodeSpec::Lrc(lrc) => {
                out.push(2);
                out.extend_from_slice(&(lrc.k as u16).to_le_bytes());
                out.extend_from_slice(&(lrc.global_parities as u16).to_le_bytes());
                out.extend_from_slice(&(lrc.group_size as u16).to_le_bytes());
                out.push(u8::from(lrc.implied_parity));
            }
            CodeSpec::Piggyback { k, m } => {
                out.push(3);
                out.extend_from_slice(&(k as u16).to_le_bytes());
                out.extend_from_slice(&(m as u16).to_le_bytes());
            }
        }
        out.extend_from_slice(&self.chunk_bytes.to_le_bytes());
        out.extend_from_slice(&self.file_len.to_le_bytes());
        out.extend_from_slice(&(self.stripes.len() as u32).to_le_bytes());
        for stripe in &self.stripes {
            out.extend_from_slice(&stripe.id.to_le_bytes());
            out.extend_from_slice(&(stripe.servers.len() as u16).to_le_bytes());
            for &sid in &stripe.servers {
                out.extend_from_slice(&(sid as u32).to_le_bytes());
            }
        }
        out
    }

    /// Parses the binary format, validating every length against the
    /// bytes actually present.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut c = Dec { b: bytes, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err(NodeError::Malformed("bad manifest magic"));
        }
        if c.u32()? != VERSION {
            return Err(NodeError::Malformed("unsupported manifest version"));
        }
        let spec = match c.u8()? {
            0 => CodeSpec::Replication {
                replicas: c.u16()? as usize,
            },
            1 => CodeSpec::ReedSolomon {
                k: c.u16()? as usize,
                m: c.u16()? as usize,
            },
            2 => CodeSpec::Lrc(LrcSpec {
                k: c.u16()? as usize,
                global_parities: c.u16()? as usize,
                group_size: c.u16()? as usize,
                implied_parity: c.u8()? != 0,
            }),
            3 => CodeSpec::Piggyback {
                k: c.u16()? as usize,
                m: c.u16()? as usize,
            },
            _ => return Err(NodeError::Malformed("unknown code spec tag")),
        };
        // A hostile spec or chunk size must die here, not downstream:
        // stripe_payload() and scratch sizing multiply these together.
        let spec_ok = match spec {
            CodeSpec::Replication { replicas } => replicas >= 1,
            CodeSpec::ReedSolomon { k, m } => k >= 1 && m >= 1,
            CodeSpec::Lrc(lrc) => lrc.validate().is_ok(),
            // The piggyback needs a clean parity plus >= 1 piggybacked.
            CodeSpec::Piggyback { k, m } => k >= 1 && m >= 2,
        };
        if !spec_ok {
            return Err(NodeError::Malformed("invalid code spec parameters"));
        }
        let chunk_bytes = c.u64()?;
        if chunk_bytes == 0 || chunk_bytes > MAX_CHUNK as u64 {
            return Err(NodeError::Malformed("chunk size out of bounds"));
        }
        let file_len = c.u64()?;
        let stripe_count = c.u32()? as usize;
        // Each stripe needs at least its 10-byte header; a hostile
        // count is rejected before any reservation.
        if stripe_count > c.remaining() / 10 {
            return Err(NodeError::Malformed("stripe count exceeds manifest size"));
        }
        let mut stripes = Vec::with_capacity(stripe_count);
        for _ in 0..stripe_count {
            let id = c.u64()?;
            let lane_count = c.u16()? as usize;
            if lane_count != spec.total_blocks() {
                return Err(NodeError::Malformed(
                    "stripe lane count does not match spec",
                ));
            }
            if lane_count > c.remaining() / 4 {
                return Err(NodeError::Malformed("lane count exceeds manifest size"));
            }
            let mut servers = Vec::with_capacity(lane_count);
            for _ in 0..lane_count {
                servers.push(c.u32()? as ServerId);
            }
            stripes.push(StripeEntry { id, servers });
        }
        if c.remaining() != 0 {
            return Err(NodeError::Malformed("trailing bytes in manifest"));
        }
        Ok(Self {
            spec,
            chunk_bytes,
            file_len,
            stripes,
        })
    }
}

/// Bounds-checked little-endian decoder.
struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn remaining(&self) -> usize {
        self.b.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .b
            .get(self.pos..self.pos + n)
            .ok_or(NodeError::Malformed("manifest truncated"))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        let mut w = [0u8; 2];
        w.copy_from_slice(s);
        Ok(u16::from_le_bytes(w))
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        let mut w = [0u8; 4];
        w.copy_from_slice(s);
        Ok(u32::from_le_bytes(w))
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(s);
        Ok(u64::from_le_bytes(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(spec: CodeSpec) -> Manifest {
        let lanes = spec.total_blocks();
        Manifest {
            spec,
            chunk_bytes: 1 << 20,
            file_len: 3 * 10 * (1 << 20) - 777,
            stripes: (0..3)
                .map(|i| StripeEntry {
                    id: i,
                    servers: (0..lanes).map(|l| (l * 7 + i as usize) % 5).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn round_trips_every_spec() {
        for spec in [
            CodeSpec::Replication { replicas: 3 },
            CodeSpec::ReedSolomon { k: 10, m: 4 },
            CodeSpec::Lrc(LrcSpec::XORBAS),
            CodeSpec::Piggyback { k: 10, m: 4 },
        ] {
            let m = sample(spec);
            let bytes = m.encode();
            assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn corrupt_manifests_are_typed_errors() {
        let m = sample(CodeSpec::Lrc(LrcSpec::XORBAS));
        let good = m.encode();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Manifest::decode(&bad).unwrap_err(),
            NodeError::Malformed("bad manifest magic")
        ));

        // Truncation at every prefix length must error, never panic.
        for len in 0..good.len() {
            assert!(
                Manifest::decode(&good[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            Manifest::decode(&bad).unwrap_err(),
            NodeError::Malformed("trailing bytes in manifest")
        ));

        // A hostile stripe count cannot drive allocation: claim u32::MAX
        // stripes with no bytes behind them.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&MAGIC);
        hostile.extend_from_slice(&VERSION.to_le_bytes());
        hostile.push(0);
        hostile.extend_from_slice(&3u16.to_le_bytes());
        hostile.extend_from_slice(&(1u64 << 20).to_le_bytes());
        hostile.extend_from_slice(&0u64.to_le_bytes());
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Manifest::decode(&hostile).unwrap_err(),
            NodeError::Malformed("stripe count exceeds manifest size")
        ));
    }

    #[test]
    fn payload_math() {
        let m = sample(CodeSpec::ReedSolomon { k: 10, m: 4 });
        assert_eq!(m.stripe_payload(), 10 << 20);
    }

    #[test]
    fn hostile_geometry_is_rejected() {
        // A chunk size near u64::MAX used to overflow stripe_payload;
        // it now saturates in the accessor and is refused by decode.
        let mut m = sample(CodeSpec::ReedSolomon { k: 10, m: 4 });
        m.chunk_bytes = u64::MAX - 3;
        assert_eq!(m.stripe_payload(), u64::MAX);
        assert!(matches!(
            Manifest::decode(&m.encode()).unwrap_err(),
            NodeError::Malformed("chunk size out of bounds")
        ));

        m.chunk_bytes = 0;
        assert!(matches!(
            Manifest::decode(&m.encode()).unwrap_err(),
            NodeError::Malformed("chunk size out of bounds")
        ));

        // Structurally invalid specs: RS without parity, an LRC whose
        // group size does not divide k.
        let m = sample(CodeSpec::ReedSolomon { k: 10, m: 0 });
        assert!(matches!(
            Manifest::decode(&m.encode()).unwrap_err(),
            NodeError::Malformed("invalid code spec parameters")
        ));
        let m = sample(CodeSpec::Lrc(LrcSpec {
            k: 10,
            global_parities: 4,
            group_size: 3,
            implied_parity: true,
        }));
        assert!(matches!(
            Manifest::decode(&m.encode()).unwrap_err(),
            NodeError::Malformed("invalid code spec parameters")
        ));

        // A piggyback without its clean parity 0 plus one piggybacked
        // parity cannot build its fast repair path.
        let m = sample(CodeSpec::Piggyback { k: 10, m: 1 });
        assert!(matches!(
            Manifest::decode(&m.encode()).unwrap_err(),
            NodeError::Malformed("invalid code spec parameters")
        ));

        // A stripe whose lane count disagrees with the spec's geometry.
        let mut m = sample(CodeSpec::ReedSolomon { k: 10, m: 4 });
        m.stripes[0].servers.pop();
        assert!(matches!(
            Manifest::decode(&m.encode()).unwrap_err(),
            NodeError::Malformed("stripe lane count does not match spec")
        ));
    }
}
