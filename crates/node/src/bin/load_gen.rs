//! Loopback load generator for the xorbas-node prototype.
//!
//! Boots N chunk servers in one process (distinct data dirs), streams
//! erasure-coded files through [`ClusterClient`], then hammers reads
//! with a configurable write mix while (optionally) killing a server
//! mid-run. Reports aggregate put throughput, read latency
//! percentiles (p50/p99/p999), degraded-read counts, repair
//! convergence, and — the paper's headline — the bytes a single-chunk
//! repair moves under LRC versus RS.
//!
//! ```text
//! cargo run --release -p xorbas_node --bin load_gen -- \
//!     --servers 5 --spec both --chunk-kib 1024 --files 2 \
//!     --file-mib 64 --ops 400 --json BENCH_PR7.json
//! ```
//!
//! Exit code 0 means every acceptance check passed: zero failed reads
//! across the kill, bit-identical files after repair, and full
//! redundancy restored.

use std::error::Error;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xorbas_core::{CodeSpec, LrcSpec};
use xorbas_node::client::ReadKind;
use xorbas_node::repair::ScrubConfig;
use xorbas_node::{
    fault, ChunkServer, ClusterClient, Directory, FaultPlan, Manifest, NodeError, RepairAgent,
    RepairAgentConfig, RepairStatsSnapshot, RetryPolicy, ServerConfig, Site,
};
use xorbas_sim::codecs::CodecInstance;
use xorbas_sim::{PercentileSummary, Percentiles};

type AnyError = Box<dyn Error>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecChoice {
    Lrc,
    Rs,
    Both,
}

#[derive(Debug, Clone)]
struct Args {
    servers: usize,
    racks: usize,
    spec: SpecChoice,
    chunk_kib: usize,
    files: usize,
    file_mib: usize,
    ops: usize,
    write_mix_pct: u32,
    kill: bool,
    json: Option<PathBuf>,
    seed: u64,
    /// Where server data dirs live. Point at a tmpfs (e.g. /dev/shm)
    /// to benchmark the stack instead of the disk.
    data_root: PathBuf,
    /// Chaos mode: run put/get under a seeded fault plan with a
    /// mid-run kill, one server restart, and a WAL-backed directory.
    chaos: bool,
    /// How many chaos runs (seeds `seed..seed+N`) to execute.
    chaos_runs: usize,
    /// Budget one read call may spend before it counts as stuck.
    deadline_ms: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            servers: 5,
            racks: 5,
            spec: SpecChoice::Lrc,
            chunk_kib: 1024,
            files: 2,
            file_mib: 64,
            ops: 400,
            write_mix_pct: 10,
            kill: true,
            json: None,
            seed: 20130826, // the VLDB'13 proceedings date
            data_root: std::env::temp_dir(),
            chaos: false,
            chaos_runs: 1,
            deadline_ms: 5000,
        }
    }
}

const USAGE: &str = "usage: load_gen [--servers N] [--racks N] [--spec lrc|rs|both] \
[--chunk-kib N] [--files N] [--file-mib N] [--ops N] [--write-mix PCT] \
[--no-kill] [--json PATH] [--seed N] [--data-root DIR] \
[--chaos] [--chaos-runs N] [--deadline-ms N]";

fn parse_args() -> Result<Args, AnyError> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<String, AnyError> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}").into())
        };
        match flag.as_str() {
            "--servers" => args.servers = take("--servers")?.parse()?,
            "--racks" => args.racks = take("--racks")?.parse()?,
            "--spec" => {
                args.spec = match take("--spec")?.as_str() {
                    "lrc" => SpecChoice::Lrc,
                    "rs" => SpecChoice::Rs,
                    "both" => SpecChoice::Both,
                    other => return Err(format!("unknown spec `{other}`\n{USAGE}").into()),
                }
            }
            "--chunk-kib" => args.chunk_kib = take("--chunk-kib")?.parse()?,
            "--files" => args.files = take("--files")?.parse()?,
            "--file-mib" => args.file_mib = take("--file-mib")?.parse()?,
            "--ops" => args.ops = take("--ops")?.parse()?,
            "--write-mix" => args.write_mix_pct = take("--write-mix")?.parse()?,
            "--no-kill" => args.kill = false,
            "--kill" => args.kill = true,
            "--json" => args.json = Some(PathBuf::from(take("--json")?)),
            "--seed" => args.seed = take("--seed")?.parse()?,
            "--data-root" => args.data_root = PathBuf::from(take("--data-root")?),
            "--chaos" => args.chaos = true,
            "--chaos-runs" => args.chaos_runs = take("--chaos-runs")?.parse()?,
            "--deadline-ms" => args.deadline_ms = take("--deadline-ms")?.parse()?,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}").into()),
        }
    }
    if args.servers == 0 || args.files == 0 || args.chunk_kib == 0 {
        return Err(format!("--servers, --files and --chunk-kib must be positive\n{USAGE}").into());
    }
    args.racks = args.racks.clamp(1, args.servers);
    Ok(args)
}

/// Deterministic data: a splitmix64 stream keyed by `seed`, so a file
/// can be regenerated for bit-identity checks instead of kept resident.
fn fill_deterministic(seed: u64, len: usize, out: &mut Vec<u8>) {
    out.resize(len, 0);
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut chunks = out.chunks_exact_mut(8);
    for slot in &mut chunks {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        slot.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
    }
    let tail = chunks.into_remainder();
    for (i, b) in tail.iter_mut().enumerate() {
        *b = (state >> (8 * (i % 8))) as u8;
    }
}

/// Cheap deterministic op-mixer (xorshift64*).
struct MiniRng(u64);

impl MiniRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct Cluster {
    servers: Vec<ChunkServer>,
    dirs: Vec<PathBuf>,
    directory: Arc<Mutex<Directory>>,
}

fn boot_cluster(args: &Args, tag: &str) -> Result<Cluster, AnyError> {
    let mut servers = Vec::with_capacity(args.servers);
    let mut dirs = Vec::with_capacity(args.servers);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(args.servers);
    for i in 0..args.servers {
        let dir = args
            .data_root
            .join(format!("xorbas_loadgen_{}_{tag}_{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = ChunkServer::start(ServerConfig::new(dir.clone()))?;
        addrs.push(server.addr());
        servers.push(server);
        dirs.push(dir);
    }
    let directory = Arc::new(Mutex::new(Directory::new(&addrs, args.racks, args.seed)));
    Ok(Cluster {
        servers,
        dirs,
        directory,
    })
}

#[derive(Debug, Default)]
struct SpecResult {
    name: String,
    user_bytes: u64,
    aggregate_bytes: u64,
    /// Bytes stored during the timed put phase only (write-mix ops in
    /// the read phase count toward `aggregate_bytes` but not here).
    put_phase_bytes: u64,
    put_secs: f64,
    read_ops: u64,
    write_ops: u64,
    direct_reads: u64,
    degraded_reads: u64,
    degraded_light: u64,
    failed_reads: u64,
    read_latency_us: PercentileSummary,
    write_latency_us: PercentileSummary,
    killed_server: Option<usize>,
    repair_converged: bool,
    repair_secs: f64,
    repair: RepairStatsSnapshot,
    bit_identical: bool,
    single_loss_bytes_fetched: u64,
    single_loss_light: bool,
}

impl SpecResult {
    fn put_gibps_aggregate(&self) -> f64 {
        if self.put_secs <= 0.0 {
            return 0.0;
        }
        self.put_phase_bytes as f64 / self.put_secs / (1u64 << 30) as f64
    }

    fn passed(&self) -> bool {
        self.failed_reads == 0 && self.repair_converged && self.bit_identical
    }
}

fn spec_for(choice: SpecChoice) -> (CodeSpec, &'static str) {
    match choice {
        SpecChoice::Rs => (CodeSpec::ReedSolomon { k: 10, m: 4 }, "rs_10_4"),
        _ => (CodeSpec::Lrc(LrcSpec::XORBAS), "lrc_10_6_5"),
    }
}

fn run_spec(args: &Args, choice: SpecChoice) -> Result<SpecResult, AnyError> {
    let (spec, name) = spec_for(choice);
    let chunk_bytes = args.chunk_kib * 1024;
    let k = spec.data_blocks();
    let n = spec.total_blocks();

    let cluster = boot_cluster(args, name)?;
    let sessions = xorbas_node::client::SessionCache::default();
    let mut client = ClusterClient::new(
        CodecInstance::build(spec)?,
        chunk_bytes,
        Arc::clone(&cluster.directory),
        RetryPolicy::default(),
        sessions.clone(),
    );

    let mut result = SpecResult {
        name: name.into(),
        ..SpecResult::default()
    };

    // ---- Put phase: stream `files` files, encode pipelined. --------
    let file_len = args.file_mib << 20;
    let mut data = Vec::new();
    let mut manifests = Vec::with_capacity(args.files);
    let mut file_seeds = Vec::with_capacity(args.files);
    for file_idx in 0..args.files {
        let seed = args.seed ^ ((file_idx as u64 + 1) << 32);
        fill_deterministic(seed, file_len, &mut data);
        // Time the storage stack only, not the data generator.
        let put_start = Instant::now();
        let manifest = client.put(&data)?;
        result.put_secs += put_start.elapsed().as_secs_f64();
        let stored = manifest.stripes.len() as u64 * n as u64 * chunk_bytes as u64;
        result.put_phase_bytes += stored;
        result.aggregate_bytes += stored;
        result.user_bytes += file_len as u64;
        file_seeds.push(seed);
        manifests.push(manifest);
    }

    // ---- Read phase with mid-run kill and a write mix. -------------
    let agent = RepairAgent::start(
        CodecInstance::build(spec)?,
        Arc::clone(&cluster.directory),
        sessions.clone(),
        RepairAgentConfig::new(chunk_bytes),
    )?;

    let mut stripe_index: Vec<u64> = Vec::new();
    for m in &manifests {
        stripe_index.extend(m.stripes.iter().map(|s| s.id));
    }
    let mut rng = MiniRng(args.seed | 1);
    let mut read_lat = Percentiles::new();
    let mut write_lat = Percentiles::new();
    let mut buf = Vec::new();
    let kill_at = if args.kill { args.ops / 2 } else { usize::MAX };
    let victim = args.servers - 1;

    for op in 0..args.ops {
        if op == kill_at {
            cluster.servers[victim].kill();
            result.killed_server = Some(victim);
        }
        let is_write =
            rng.below(100) < args.write_mix_pct as u64 && args.write_mix_pct > 0 && op != kill_at;
        if is_write {
            // A one-stripe file: the smallest full-width put.
            let seed = args.seed ^ 0xABCD ^ ((result.write_ops + 1) << 40);
            fill_deterministic(seed, k * chunk_bytes, &mut data);
            let t0 = Instant::now();
            let manifest = client.put(&data)?;
            write_lat.record(t0.elapsed().as_secs_f64() * 1e6);
            result.aggregate_bytes += manifest.stripes.len() as u64 * n as u64 * chunk_bytes as u64;
            result.user_bytes += (k * chunk_bytes) as u64;
            stripe_index.extend(manifest.stripes.iter().map(|s| s.id));
            file_seeds.push(seed);
            manifests.push(manifest);
            result.write_ops += 1;
            continue;
        }
        let stripe = stripe_index[rng.below(stripe_index.len() as u64) as usize];
        let lane = rng.below(k as u64) as u32;
        let t0 = Instant::now();
        match client.read_data_chunk(stripe, lane, &mut buf) {
            Ok(ReadKind::Direct) => result.direct_reads += 1,
            Ok(ReadKind::Degraded { light }) => {
                result.degraded_reads += 1;
                result.degraded_light += u64::from(light);
            }
            Err(_) => result.failed_reads += 1,
        }
        read_lat.record(t0.elapsed().as_secs_f64() * 1e6);
        result.read_ops += 1;
    }
    result.read_latency_us = read_lat.summary();
    result.write_latency_us = write_lat.summary();

    // ---- Repair convergence. ---------------------------------------
    let repair_start = Instant::now();
    result.repair_converged = agent.wait_until_repaired(Duration::from_secs(120));
    result.repair_secs = repair_start.elapsed().as_secs_f64();

    // ---- Bit-identity: every file reads back exactly. --------------
    let mut expected = Vec::new();
    let mut got = Vec::new();
    result.bit_identical = true;
    for (manifest, &seed) in manifests.iter().zip(&file_seeds) {
        fill_deterministic(seed, manifest.file_len as usize, &mut expected);
        client.get(manifest, &mut got)?;
        if got != expected {
            result.bit_identical = false;
        }
    }

    // ---- Single-loss repair traffic (the LRC-vs-RS headline). ------
    if let Some(first) = stripe_index.first().copied() {
        let before = agent.stats();
        {
            let mut d = cluster
                .directory
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            d.report_corrupt(first, 0);
        }
        if agent.wait_until_repaired(Duration::from_secs(30)) {
            let after = agent.stats();
            result.single_loss_bytes_fetched = after.bytes_fetched - before.bytes_fetched;
            result.single_loss_light = after.light_repairs > before.light_repairs;
        }
    }

    result.repair = agent.stats();

    // ---- Teardown (agent first, so server exit isn't "failure"). ---
    agent.shutdown();
    for server in cluster.servers {
        server.shutdown();
    }
    for dir in &cluster.dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(result)
}

// ---------------------------------------------------------------------
// Chaos mode: the same put/get traffic, but under an armed fault plan,
// with a WAL-backed directory, a mid-run kill AND restart, every read
// verified byte-for-byte, and every read call held to a deadline.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct ChaosResult {
    seed: u64,
    read_ops: u64,
    write_ops: u64,
    direct_reads: u64,
    degraded_reads: u64,
    degraded_light: u64,
    retried_reads: u64,
    failed_reads: u64,
    /// Reads that returned bytes differing from the regenerated truth.
    corrupt_reads: u64,
    /// Read calls whose single invocation blew the `--deadline-ms` budget.
    deadline_misses: u64,
    put_retries: u64,
    killed_server: Option<usize>,
    restarted: bool,
    repair_converged: bool,
    bit_identical: bool,
    injected: Vec<(&'static str, u64, u64)>,
    repair: RepairStatsSnapshot,
    wal_replayed_manifests: u64,
}

impl ChaosResult {
    fn passed(&self) -> bool {
        self.failed_reads == 0
            && self.corrupt_reads == 0
            && self.deadline_misses == 0
            && self.repair_converged
            && self.bit_identical
    }
}

fn dir_lock(d: &Arc<Mutex<Directory>>) -> std::sync::MutexGuard<'_, Directory> {
    d.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The fault mix a chaos run arms: every site lit, rates chosen so a
/// few-hundred-op run sees each failure mode several times while the
/// cluster still converges.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(Site::ConnectRefuse, 20)
        .with(Site::ServeReset, 12)
        .with_param(Site::ServeStall, 8, 40)
        .with(Site::TornWrite, 12)
        .with(Site::BitFlip, 25)
        .with(Site::CrashPut, 6)
        .with(Site::CrashRepair, 30)
}

/// Puts with retry: an injected crash (or a put that lost its race
/// with a dying server) is retried; only an `Ok` counts as the ack.
fn put_acked(
    client: &mut ClusterClient,
    data: &[u8],
    retries: &mut u64,
) -> Result<Manifest, NodeError> {
    let mut last = NodeError::Malformed("put never attempted");
    for _ in 0..10 {
        match client.put(data) {
            Ok(m) => return Ok(m),
            Err(e) => {
                *retries += 1;
                last = e;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    Err(last)
}

fn run_chaos(args: &Args, run_idx: usize) -> Result<ChaosResult, AnyError> {
    let seed = args.seed + run_idx as u64;
    let spec = CodeSpec::Lrc(LrcSpec::XORBAS);
    let chunk_bytes = args.chunk_kib * 1024;
    let k = spec.data_blocks();

    let root = args
        .data_root
        .join(format!("xorbas_chaos_{}_{run_idx}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Boot servers; slots are Options so the victim can be replaced.
    let mut servers: Vec<Option<ChunkServer>> = Vec::with_capacity(args.servers);
    let mut dirs = Vec::with_capacity(args.servers);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(args.servers);
    for i in 0..args.servers {
        let dir = root.join(format!("srv{i}"));
        let server = ChunkServer::start(ServerConfig::new(dir.clone()))?;
        addrs.push(server.addr());
        servers.push(Some(server));
        dirs.push(dir);
    }

    // Crash-safe directory: placements, repairs, corruption reports and
    // manifests all land in the WAL before they are acknowledged.
    let wal_path = root.join("directory.wal");
    let (directory, prior) = Directory::open_persistent(&wal_path, &addrs, args.racks, seed)?;
    let directory = Arc::new(Mutex::new(directory));

    // Keep the Arc: counters are read from it after disarm.
    let plan = fault::arm(chaos_plan(seed));

    let sessions = xorbas_node::client::SessionCache::default();
    let mut client = ClusterClient::new(
        CodecInstance::build(spec)?,
        chunk_bytes,
        Arc::clone(&directory),
        RetryPolicy::default(),
        sessions.clone(),
    );

    let mut result = ChaosResult {
        seed,
        wal_replayed_manifests: prior.len() as u64,
        ..ChaosResult::default()
    };

    // ---- Put phase: acked files stay resident for verification. ----
    let file_len = args.file_mib << 20;
    let mut file_data: Vec<Vec<u8>> = Vec::new();
    let mut manifests: Vec<Manifest> = Vec::new();
    for file_idx in 0..args.files {
        let fseed = seed ^ ((file_idx as u64 + 1) << 32);
        let mut data = Vec::new();
        fill_deterministic(fseed, file_len, &mut data);
        let manifest = put_acked(&mut client, &data, &mut result.put_retries)?;
        file_data.push(data);
        manifests.push(manifest);
    }

    // Scrubber + repair agent over every store, including the victim's.
    let mut agent_cfg = RepairAgentConfig::new(chunk_bytes);
    agent_cfg.probe_rounds = 4;
    agent_cfg.scrub = Some(ScrubConfig::new(
        dirs.iter().cloned().enumerate().collect::<Vec<_>>(),
    ));
    let agent = RepairAgent::start(
        CodecInstance::build(spec)?,
        Arc::clone(&directory),
        sessions.clone(),
        agent_cfg,
    )?;

    // (file index, stripe position, stripe id) for every acked stripe.
    let mut stripe_meta: Vec<(usize, usize, u64)> = Vec::new();
    for (fi, m) in manifests.iter().enumerate() {
        for (pos, s) in m.stripes.iter().enumerate() {
            stripe_meta.push((fi, pos, s.id));
        }
    }

    let mut rng = MiniRng(seed | 1);
    let mut buf = Vec::new();
    let mut expect = Vec::new();
    let deadline = Duration::from_millis(args.deadline_ms.max(100));
    let kill_at = args.ops * 2 / 5;
    let restart_at = args.ops * 7 / 10;
    let victim = args.servers - 1;

    for op in 0..args.ops {
        if op == kill_at {
            if let Some(s) = servers[victim].as_ref() {
                s.kill();
            }
            result.killed_server = Some(victim);
        }
        if op == restart_at {
            // Restart the victim on the same data dir: a new ephemeral
            // port, so the roster learns the address before revival.
            drop(servers[victim].take());
            let server = ChunkServer::start(ServerConfig::new(dirs[victim].clone()))?;
            {
                let mut d = dir_lock(&directory);
                d.set_addr(victim, server.addr());
                d.mark_alive(victim);
            }
            servers[victim] = Some(server);
            result.restarted = true;
        }

        let is_write = args.write_mix_pct > 0
            && rng.below(100) < args.write_mix_pct as u64
            && op != kill_at
            && op != restart_at;
        if is_write {
            let fseed = seed ^ 0xABCD ^ ((result.write_ops + 1) << 40);
            let mut data = Vec::new();
            fill_deterministic(fseed, k * chunk_bytes, &mut data);
            let manifest = put_acked(&mut client, &data, &mut result.put_retries)?;
            let fi = file_data.len();
            for (pos, s) in manifest.stripes.iter().enumerate() {
                stripe_meta.push((fi, pos, s.id));
            }
            file_data.push(data);
            manifests.push(manifest);
            result.write_ops += 1;
            continue;
        }

        let (fi, pos, stripe) = stripe_meta[rng.below(stripe_meta.len() as u64) as usize];
        let lane = rng.below(k as u64) as u32;
        let op_start = Instant::now();
        let mut served = None;
        loop {
            let t0 = Instant::now();
            let res = client.read_data_chunk(stripe, lane, &mut buf);
            if t0.elapsed() > deadline {
                result.deadline_misses += 1;
            }
            match res {
                Ok(kind) => {
                    served = Some(kind);
                    break;
                }
                Err(_) => {
                    if op_start.elapsed() >= deadline {
                        break;
                    }
                    result.retried_reads += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        match served {
            Some(ReadKind::Direct) => result.direct_reads += 1,
            Some(ReadKind::Degraded { light }) => {
                result.degraded_reads += 1;
                result.degraded_light += u64::from(light);
            }
            None => {
                result.failed_reads += 1;
                result.read_ops += 1;
                continue;
            }
        }
        // Byte-for-byte verification against the kept file contents:
        // the chunk is the file slice at (pos*k + lane), zero-padded.
        let file = &file_data[fi];
        let off = (pos * k + lane as usize) * chunk_bytes;
        expect.clear();
        expect.resize(buf.len(), 0);
        if off < file.len() {
            let take = (file.len() - off).min(buf.len());
            expect[..take].copy_from_slice(&file[off..off + take]);
        }
        if buf != expect {
            result.corrupt_reads += 1;
        }
        result.read_ops += 1;
    }

    // ---- Quiesce: stop injecting, let scrub + repair drain. --------
    fault::disarm();
    let cycles0 = agent.stats().scrub_cycles;
    let scrub_wait = Instant::now() + Duration::from_secs(60);
    while agent.stats().scrub_cycles < cycles0 + 2 && Instant::now() < scrub_wait {
        std::thread::sleep(Duration::from_millis(10));
    }
    result.repair_converged = agent.wait_until_repaired(Duration::from_secs(120));

    // ---- Every acked file must read back bit-identical. ------------
    let mut got = Vec::new();
    result.bit_identical = true;
    for (m, data) in manifests.iter().zip(&file_data) {
        client.get(m, &mut got)?;
        if &got != data {
            result.bit_identical = false;
        }
    }

    result.repair = agent.stats();
    result.injected = plan.counters().to_vec();

    agent.shutdown();
    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok(result)
}

fn chaos_json(r: &ChaosResult) -> String {
    let mut j = String::new();
    let _ = write!(
        j,
        "{{\"seed\":{},\"read_ops\":{},\"write_ops\":{},\"direct_reads\":{},\
         \"degraded_reads\":{},\"degraded_light\":{},\"retried_reads\":{},\"failed_reads\":{},\
         \"corrupt_reads\":{},\"deadline_misses\":{},\"put_retries\":{},",
        r.seed,
        r.read_ops,
        r.write_ops,
        r.direct_reads,
        r.degraded_reads,
        r.degraded_light,
        r.retried_reads,
        r.failed_reads,
        r.corrupt_reads,
        r.deadline_misses,
        r.put_retries,
    );
    let killed = r
        .killed_server
        .map_or("null".to_string(), |v| v.to_string());
    let _ = write!(
        j,
        "\"killed_server\":{killed},\"restarted\":{},\"wal_replayed_manifests\":{},\
         \"repair_converged\":{},\"chunks_repaired\":{},\"light_repairs\":{},\
         \"heavy_repairs\":{},\"failed_repair_attempts\":{},\"scrub_cycles\":{},\
         \"scrub_chunks\":{},\"scrub_bytes\":{},\"scrub_corruptions\":{},\
         \"bit_identical\":{},\"injected\":{{",
        r.restarted,
        r.wal_replayed_manifests,
        r.repair_converged,
        r.repair.chunks_repaired,
        r.repair.light_repairs,
        r.repair.heavy_repairs,
        r.repair.failed_attempts,
        r.repair.scrub_cycles,
        r.repair.scrub_chunks,
        r.repair.scrub_bytes,
        r.repair.scrub_corruptions,
        r.bit_identical,
    );
    for (i, (site, calls, fired)) in r.injected.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        let _ = write!(j, "\"{site}\":{{\"calls\":{calls},\"fired\":{fired}}}");
    }
    let _ = write!(j, "}},\"passed\":{}}}", r.passed());
    j
}

fn print_chaos_summary(r: &ChaosResult) {
    println!("== chaos seed {} ==", r.seed);
    println!(
        "  reads: {} ops ({} direct, {} degraded [{} light], {} retried, {} failed, \
         {} corrupt, {} deadline misses)",
        r.read_ops,
        r.direct_reads,
        r.degraded_reads,
        r.degraded_light,
        r.retried_reads,
        r.failed_reads,
        r.corrupt_reads,
        r.deadline_misses,
    );
    println!(
        "  writes: {} ops, {} put retries; kill={:?} restarted={}",
        r.write_ops, r.put_retries, r.killed_server, r.restarted
    );
    println!(
        "  repair: converged={} ({} chunks, {} light / {} heavy, {} failed attempts)",
        r.repair_converged,
        r.repair.chunks_repaired,
        r.repair.light_repairs,
        r.repair.heavy_repairs,
        r.repair.failed_attempts,
    );
    println!(
        "  scrub: {} cycles, {} chunks, {:.1} MiB, {} corruptions flagged",
        r.repair.scrub_cycles,
        r.repair.scrub_chunks,
        r.repair.scrub_bytes as f64 / (1 << 20) as f64,
        r.repair.scrub_corruptions,
    );
    let mut fired = String::new();
    for (site, _, f) in &r.injected {
        if *f > 0 {
            let _ = write!(fired, "{site}:{f} ");
        }
    }
    println!(
        "  injected: {}bit-identical={} passed={}",
        fired,
        r.bit_identical,
        r.passed()
    );
}

fn run_chaos_mode(args: &Args) -> Result<(), AnyError> {
    let mut results = Vec::new();
    for run_idx in 0..args.chaos_runs.max(1) {
        let r = run_chaos(args, run_idx)?;
        print_chaos_summary(&r);
        results.push(r);
    }
    if let Some(path) = &args.json {
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\"bench\":\"xorbas-node load_gen --chaos\",\"servers\":{},\"racks\":{},\
             \"chunk_kib\":{},\"files\":{},\"file_mib\":{},\"ops\":{},\"write_mix_pct\":{},\
             \"seed\":{},\"deadline_ms\":{},\"runs\":[",
            args.servers,
            args.racks,
            args.chunk_kib,
            args.files,
            args.file_mib,
            args.ops,
            args.write_mix_pct,
            args.seed,
            args.deadline_ms,
        );
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&chaos_json(r));
        }
        json.push_str("]}\n");
        std::fs::write(path, json)?;
        println!("wrote {}", path.display());
    }
    if results.iter().all(ChaosResult::passed) {
        Ok(())
    } else {
        Err("chaos acceptance failed (failed/corrupt/stuck reads, repair, or bit-identity)".into())
    }
}

fn push_percentiles(json: &mut String, label: &str, p: &PercentileSummary) {
    let _ = write!(
        json,
        "\"{label}\":{{\"count\":{},\"mean\":{:.1},\"min\":{:.1},\"p50\":{:.1},\"p99\":{:.1},\"p999\":{:.1},\"max\":{:.1}}}",
        p.count, p.mean, p.min, p.p50, p.p99, p.p999, p.max
    );
}

fn spec_json(r: &SpecResult) -> String {
    let mut j = String::new();
    let _ = write!(
        j,
        "{{\"spec\":\"{}\",\"user_bytes\":{},\"aggregate_bytes\":{},\"put_phase_bytes\":{},\
         \"put_secs\":{:.4},\
         \"put_gibps_aggregate\":{:.3},\"read_ops\":{},\"write_ops\":{},\"direct_reads\":{},\
         \"degraded_reads\":{},\"degraded_light\":{},\"failed_reads\":{},",
        r.name,
        r.user_bytes,
        r.aggregate_bytes,
        r.put_phase_bytes,
        r.put_secs,
        r.put_gibps_aggregate(),
        r.read_ops,
        r.write_ops,
        r.direct_reads,
        r.degraded_reads,
        r.degraded_light,
        r.failed_reads,
    );
    push_percentiles(&mut j, "read_latency_us", &r.read_latency_us);
    j.push(',');
    push_percentiles(&mut j, "write_latency_us", &r.write_latency_us);
    let killed = r
        .killed_server
        .map_or("null".to_string(), |v| v.to_string());
    let _ = write!(
        j,
        ",\"killed_server\":{killed},\"repair_converged\":{},\"repair_secs\":{:.3},\
         \"chunks_repaired\":{},\"light_repairs\":{},\"heavy_repairs\":{},\
         \"repair_bytes_fetched\":{},\"repair_bytes_written\":{},\"failed_repair_attempts\":{},\
         \"bit_identical\":{},\"single_loss_bytes_fetched\":{},\"single_loss_light\":{}}}",
        r.repair_converged,
        r.repair_secs,
        r.repair.chunks_repaired,
        r.repair.light_repairs,
        r.repair.heavy_repairs,
        r.repair.bytes_fetched,
        r.repair.bytes_written,
        r.repair.failed_attempts,
        r.bit_identical,
        r.single_loss_bytes_fetched,
        r.single_loss_light,
    );
    j
}

fn print_summary(r: &SpecResult) {
    println!("== {} ==", r.name);
    println!(
        "  put: {:.1} MiB stored (data+parity) in {:.2}s -> {:.2} GiB/s aggregate \
         ({:.1} MiB user total incl. write mix)",
        r.put_phase_bytes as f64 / (1 << 20) as f64,
        r.put_secs,
        r.put_gibps_aggregate(),
        r.user_bytes as f64 / (1 << 20) as f64,
    );
    println!(
        "  reads: {} ops ({} direct, {} degraded [{} light], {} failed), \
         latency µs p50 {:.0} / p99 {:.0} / p999 {:.0}",
        r.read_ops,
        r.direct_reads,
        r.degraded_reads,
        r.degraded_light,
        r.failed_reads,
        r.read_latency_us.p50,
        r.read_latency_us.p99,
        r.read_latency_us.p999
    );
    if let Some(v) = r.killed_server {
        println!(
            "  kill: server {v} mid-run; repair converged={} in {:.2}s \
             ({} chunks, {} light / {} heavy stripe repairs, {:.1} MiB fetched)",
            r.repair_converged,
            r.repair_secs,
            r.repair.chunks_repaired,
            r.repair.light_repairs,
            r.repair.heavy_repairs,
            r.repair.bytes_fetched as f64 / (1 << 20) as f64
        );
    }
    println!(
        "  bit-identical={}; single-loss repair fetched {:.1} MiB (light={})",
        r.bit_identical,
        r.single_loss_bytes_fetched as f64 / (1 << 20) as f64,
        r.single_loss_light
    );
}

fn run() -> Result<(), AnyError> {
    let args = parse_args()?;
    if args.chaos {
        return run_chaos_mode(&args);
    }
    let choices: &[SpecChoice] = match args.spec {
        SpecChoice::Both => &[SpecChoice::Lrc, SpecChoice::Rs],
        SpecChoice::Lrc => &[SpecChoice::Lrc],
        SpecChoice::Rs => &[SpecChoice::Rs],
    };
    let mut results = Vec::new();
    for &choice in choices {
        let r = run_spec(&args, choice)?;
        print_summary(&r);
        results.push(r);
    }

    if results.len() == 2 {
        let (lrc, rs) = (&results[0], &results[1]);
        if lrc.single_loss_bytes_fetched > 0 && rs.single_loss_bytes_fetched > 0 {
            println!(
                "LRC single-loss repair moved {:.1}% of the bytes RS moved ({} vs {} chunks)",
                100.0 * lrc.single_loss_bytes_fetched as f64 / rs.single_loss_bytes_fetched as f64,
                lrc.single_loss_bytes_fetched / (args.chunk_kib as u64 * 1024),
                rs.single_loss_bytes_fetched / (args.chunk_kib as u64 * 1024),
            );
        }
    }

    if let Some(path) = &args.json {
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\"bench\":\"xorbas-node load_gen\",\"servers\":{},\"racks\":{},\
             \"chunk_kib\":{},\"files\":{},\"file_mib\":{},\"ops\":{},\"write_mix_pct\":{},\
             \"kill\":{},\"seed\":{},\"runs\":[",
            args.servers,
            args.racks,
            args.chunk_kib,
            args.files,
            args.file_mib,
            args.ops,
            args.write_mix_pct,
            args.kill,
            args.seed
        );
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&spec_json(r));
        }
        json.push_str("]}");
        json.push('\n');
        std::fs::write(path, json)?;
        println!("wrote {}", path.display());
    }

    if results.iter().all(SpecResult::passed) {
        Ok(())
    } else {
        Err("acceptance checks failed (failed reads, repair, or bit-identity)".into())
    }
}

fn main() {
    match run() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("load_gen: {e}");
            std::process::exit(1);
        }
    }
}
