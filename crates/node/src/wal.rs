//! The directory's write-ahead log: crash-safe persistence for
//! placements, repairs, corruption reports, and manifests.
//!
//! PR 7's directory was purely in-memory — a NameNode that forgot the
//! whole cluster on restart. This module gives it an append-only,
//! checksummed log under the data root:
//!
//! ```text
//! header:  magic "XBWL" | version u32 | servers u32 | racks u32 | seed u64
//! record:  len u32 | body[len] | digest u64        (digest = chunk_digest(body))
//! body:    type u8 | fields…
//!   1 STRIPE    stripe u64 | lane_count u16 | server u32 × lane_count
//!   2 REASSIGN  stripe u64 | lane u32 | server u32
//!   3 CORRUPT   stripe u64 | lane u32
//!   4 MANIFEST  manifest bytes (the [`Manifest`] binary format)
//! ```
//!
//! Every record carries its own [`chunk_digest`] so replay can tell a
//! torn tail (the process died mid-append) from good data: replay
//! walks records until the first structural or checksum failure,
//! **truncates** the file back to the last good record, and carries on
//! — a crash never poisons the log, it only loses the unacknowledged
//! suffix. Appends are `sync_data`'d; they sit on the metadata path
//! (one per stripe placement / repair / manifest), not the chunk hot
//! path, so the fsync cost is noise next to the chunk writes they
//! describe.

use crate::directory::ServerId;
use crate::error::{NodeError, Result};
use crate::manifest::Manifest;
use crate::protocol::chunk_digest;
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC: [u8; 4] = *b"XBWL";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 24;
/// Largest record body replay will accept; anything bigger is treated
/// as a torn/garbage tail. Bounds replay allocation the same way
/// [`crate::protocol::MAX_BODY`] bounds the wire.
const MAX_RECORD: usize = 16 << 20;

const REC_STRIPE: u8 = 1;
const REC_REASSIGN: u8 = 2;
const REC_CORRUPT: u8 = 3;
const REC_MANIFEST: u8 = 4;

/// The cluster shape pinned in the log header. Replay hands it back so
/// the caller can check the roster it is rebuilding against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Roster size the log was written for.
    pub servers: u32,
    /// Rack count (as passed to [`crate::Directory::new`]).
    pub racks: u32,
    /// Placement RNG seed.
    pub seed: u64,
}

/// One decoded log record, in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A stripe was placed (or registered) with this assignment.
    Stripe {
        /// Stripe id.
        stripe: u64,
        /// Lane → server assignment.
        servers: Vec<ServerId>,
    },
    /// A repaired lane moved to a new server.
    Reassign {
        /// Stripe id.
        stripe: u64,
        /// Lane index.
        lane: u32,
        /// The lane's new home.
        server: ServerId,
    },
    /// A chunk failed a digest check.
    Corrupt {
        /// Stripe id.
        stripe: u64,
        /// Lane index.
        lane: u32,
    },
    /// A whole-file manifest was acknowledged.
    Manifest(Manifest),
}

/// What replay found: how much survived and how much a torn tail lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records successfully decoded and applied.
    pub records: u64,
    /// Bytes truncated off the tail (0 on a clean log).
    pub dropped_tail_bytes: u64,
}

/// An open, append-position log file.
#[derive(Debug)]
pub struct DirectoryWal {
    file: fs::File,
    scratch: Vec<u8>,
}

impl DirectoryWal {
    /// Creates a fresh log at `path` (truncating any existing file)
    /// and writes the header.
    pub fn create(path: &Path, header: WalHeader) -> Result<Self> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::File::create(path)?;
        let mut h = [0u8; HEADER_LEN];
        h[..4].copy_from_slice(&MAGIC);
        h[4..8].copy_from_slice(&VERSION.to_le_bytes());
        h[8..12].copy_from_slice(&header.servers.to_le_bytes());
        h[12..16].copy_from_slice(&header.racks.to_le_bytes());
        h[16..24].copy_from_slice(&header.seed.to_le_bytes());
        file.write_all(&h)?;
        file.sync_data()?;
        Ok(Self {
            file,
            scratch: Vec::new(),
        })
    }

    /// Replays the log at `path`: validates the header, hands every
    /// intact record to `visit` in append order, and — when the tail is
    /// torn — truncates the file back to the last good record. Returns
    /// the header and what was kept/dropped. The file is left ready for
    /// [`DirectoryWal::open_append`].
    ///
    /// A bad header (wrong magic/version, or a file shorter than one)
    /// is a hard [`NodeError::Malformed`]: that is not a torn tail,
    /// it is not our log.
    pub fn replay(
        path: &Path,
        mut visit: impl FnMut(WalRecord),
    ) -> Result<(WalHeader, ReplayStats)> {
        let bytes = fs::read(path)?;
        let header = decode_header(&bytes)?;
        let mut stats = ReplayStats::default();
        let mut good_end = HEADER_LEN;
        let mut pos = HEADER_LEN;
        while let Some((rec, next)) = decode_record(&bytes, pos) {
            visit(rec);
            stats.records += 1;
            good_end = next;
            pos = next;
        }
        if good_end < bytes.len() {
            stats.dropped_tail_bytes = (bytes.len() - good_end) as u64;
            let file = fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }
        Ok((header, stats))
    }

    /// Opens an existing (already replayed/validated) log for appends.
    pub fn open_append(path: &Path) -> Result<Self> {
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file,
            scratch: Vec::new(),
        })
    }

    /// Appends a stripe-placement record.
    pub fn append_stripe(&mut self, stripe: u64, servers: &[ServerId]) -> Result<()> {
        self.scratch.clear();
        self.scratch.push(REC_STRIPE);
        self.scratch.extend_from_slice(&stripe.to_le_bytes());
        self.scratch
            .extend_from_slice(&(servers.len() as u16).to_le_bytes());
        for &sid in servers {
            self.scratch.extend_from_slice(&(sid as u32).to_le_bytes());
        }
        self.flush_record()
    }

    /// Appends a lane-reassignment record.
    pub fn append_reassign(&mut self, stripe: u64, lane: u32, server: ServerId) -> Result<()> {
        self.scratch.clear();
        self.scratch.push(REC_REASSIGN);
        self.scratch.extend_from_slice(&stripe.to_le_bytes());
        self.scratch.extend_from_slice(&lane.to_le_bytes());
        self.scratch
            .extend_from_slice(&(server as u32).to_le_bytes());
        self.flush_record()
    }

    /// Appends a corruption report.
    pub fn append_corrupt(&mut self, stripe: u64, lane: u32) -> Result<()> {
        self.scratch.clear();
        self.scratch.push(REC_CORRUPT);
        self.scratch.extend_from_slice(&stripe.to_le_bytes());
        self.scratch.extend_from_slice(&lane.to_le_bytes());
        self.flush_record()
    }

    /// Appends a manifest record.
    pub fn append_manifest(&mut self, manifest: &Manifest) -> Result<()> {
        let bytes = manifest.encode();
        if 1 + bytes.len() > MAX_RECORD {
            return Err(NodeError::Malformed("manifest too large for wal record"));
        }
        self.scratch.clear();
        self.scratch.push(REC_MANIFEST);
        self.scratch.extend_from_slice(&bytes);
        self.flush_record()
    }

    /// Writes `scratch` as one framed record and syncs it. The frame is
    /// assembled into a single buffer first so the kernel sees one
    /// write — a crash can tear a record (replay handles that) but a
    /// torn *interleaving* of two records cannot happen under the
    /// directory lock that serializes all appends.
    fn flush_record(&mut self) -> Result<()> {
        let body_len = self.scratch.len();
        let digest = chunk_digest(&self.scratch);
        let mut frame = Vec::with_capacity(4 + body_len + 8);
        frame.extend_from_slice(&(body_len as u32).to_le_bytes());
        frame.extend_from_slice(&self.scratch);
        frame.extend_from_slice(&digest.to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }
}

fn decode_header(bytes: &[u8]) -> Result<WalHeader> {
    let h = bytes
        .get(..HEADER_LEN)
        .ok_or(NodeError::Malformed("wal shorter than its header"))?;
    if h[..4] != MAGIC {
        return Err(NodeError::Malformed("bad wal magic"));
    }
    if le_u32(&h[4..8]) != VERSION {
        return Err(NodeError::Malformed("unsupported wal version"));
    }
    Ok(WalHeader {
        servers: le_u32(&h[8..12]),
        racks: le_u32(&h[12..16]),
        seed: le_u64(&h[16..24]),
    })
}

/// Decodes the record at `pos`. `None` means "no intact record here" —
/// clean end of log and torn tail look the same to the caller, which
/// truncates whatever follows the last `Some`.
fn decode_record(bytes: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    let len_bytes = bytes.get(pos..pos + 4)?;
    let body_len = le_u32(len_bytes) as usize;
    if body_len == 0 || body_len > MAX_RECORD {
        return None;
    }
    let body = bytes.get(pos + 4..pos + 4 + body_len)?;
    let digest_bytes = bytes.get(pos + 4 + body_len..pos + 12 + body_len)?;
    if chunk_digest(body) != le_u64(digest_bytes) {
        return None;
    }
    let rec = decode_body(body)?;
    Some((rec, pos + 12 + body_len))
}

fn decode_body(body: &[u8]) -> Option<WalRecord> {
    let (&tag, rest) = body.split_first()?;
    match tag {
        REC_STRIPE => {
            let stripe = le_u64(rest.get(..8)?);
            let count = le_u16(rest.get(8..10)?) as usize;
            let lanes = rest.get(10..)?;
            if lanes.len() != count * 4 {
                return None;
            }
            let servers = lanes
                .chunks_exact(4)
                .map(|c| le_u32(c) as ServerId)
                .collect();
            Some(WalRecord::Stripe { stripe, servers })
        }
        REC_REASSIGN => {
            if rest.len() != 16 {
                return None;
            }
            Some(WalRecord::Reassign {
                stripe: le_u64(rest.get(..8)?),
                lane: le_u32(rest.get(8..12)?),
                server: le_u32(rest.get(12..16)?) as ServerId,
            })
        }
        REC_CORRUPT => {
            if rest.len() != 12 {
                return None;
            }
            Some(WalRecord::Corrupt {
                stripe: le_u64(rest.get(..8)?),
                lane: le_u32(rest.get(8..12)?),
            })
        }
        REC_MANIFEST => Manifest::decode(rest).ok().map(WalRecord::Manifest),
        _ => None,
    }
}

fn le_u16(b: &[u8]) -> u16 {
    let mut w = [0u8; 2];
    w.copy_from_slice(&b[..2]);
    u16::from_le_bytes(w)
}

fn le_u32(b: &[u8]) -> u32 {
    let mut w = [0u8; 4];
    w.copy_from_slice(&b[..4]);
    u32::from_le_bytes(w)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[..8]);
    u64::from_le_bytes(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use xorbas_core::{CodeSpec, LrcSpec};

    fn scratch_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xorbas_wal_{tag}_{}_{n}.wal", std::process::id()))
    }

    fn sample_manifest() -> Manifest {
        let spec = CodeSpec::Lrc(LrcSpec::XORBAS);
        let lanes = spec.total_blocks();
        Manifest {
            spec,
            chunk_bytes: 4096,
            file_len: 3 * 4096 * 10 - 17,
            stripes: (0..3)
                .map(|i| crate::manifest::StripeEntry {
                    id: i,
                    servers: (0..lanes).map(|l| (l + i as usize) % 5).collect(),
                })
                .collect(),
        }
    }

    fn header() -> WalHeader {
        WalHeader {
            servers: 5,
            racks: 5,
            seed: 42,
        }
    }

    #[test]
    fn records_replay_in_order() {
        let path = scratch_path("order");
        let mut wal = DirectoryWal::create(&path, header()).unwrap();
        wal.append_stripe(0, &[0, 1, 2, 3, 4]).unwrap();
        wal.append_corrupt(0, 2).unwrap();
        wal.append_reassign(0, 2, 4).unwrap();
        wal.append_manifest(&sample_manifest()).unwrap();
        drop(wal);

        let mut seen = Vec::new();
        let (h, stats) = DirectoryWal::replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(h, header());
        assert_eq!(stats.records, 4);
        assert_eq!(stats.dropped_tail_bytes, 0);
        assert_eq!(
            seen,
            vec![
                WalRecord::Stripe {
                    stripe: 0,
                    servers: vec![0, 1, 2, 3, 4]
                },
                WalRecord::Corrupt { stripe: 0, lane: 2 },
                WalRecord::Reassign {
                    stripe: 0,
                    lane: 2,
                    server: 4
                },
                WalRecord::Manifest(sample_manifest()),
            ]
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = scratch_path("torn");
        let mut wal = DirectoryWal::create(&path, header()).unwrap();
        wal.append_stripe(7, &[1, 2, 3]).unwrap();
        wal.append_reassign(7, 1, 4).unwrap();
        drop(wal);
        let clean_len = fs::metadata(&path).unwrap().len();

        // Crash mid-append: a record frame cut off partway, in every
        // possible torn position — the first two records must always
        // survive and the tail must be truncated away.
        let mut torn_frame = Vec::new();
        torn_frame.extend_from_slice(&13u32.to_le_bytes());
        torn_frame.push(REC_CORRUPT);
        torn_frame.extend_from_slice(&7u64.to_le_bytes());
        torn_frame.extend_from_slice(&1u32.to_le_bytes());
        torn_frame.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes()); // wrong digest
        for cut in 1..torn_frame.len() {
            let clean = fs::read(&path).unwrap();
            let mut bytes = clean[..clean_len as usize].to_vec();
            bytes.extend_from_slice(&torn_frame[..cut]);
            fs::write(&path, &bytes).unwrap();

            let mut seen = 0;
            let (_, stats) = DirectoryWal::replay(&path, |_| seen += 1).unwrap();
            assert_eq!(seen, 2, "cut at {cut}");
            assert_eq!(stats.records, 2);
            assert_eq!(stats.dropped_tail_bytes, cut as u64);
            assert_eq!(fs::metadata(&path).unwrap().len(), clean_len);
        }

        // After truncation the log accepts appends again and replays
        // clean.
        let mut wal = DirectoryWal::open_append(&path).unwrap();
        wal.append_corrupt(7, 0).unwrap();
        drop(wal);
        let mut seen = Vec::new();
        let (_, stats) = DirectoryWal::replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.dropped_tail_bytes, 0);
        assert_eq!(
            seen.last(),
            Some(&WalRecord::Corrupt { stripe: 7, lane: 0 })
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn garbage_and_foreign_files_are_typed_errors() {
        let path = scratch_path("garbage");
        fs::write(&path, b"not a wal at all").unwrap();
        assert!(matches!(
            DirectoryWal::replay(&path, |_| {}).unwrap_err(),
            NodeError::Malformed(_)
        ));
        fs::write(&path, b"xy").unwrap();
        assert!(matches!(
            DirectoryWal::replay(&path, |_| {}).unwrap_err(),
            NodeError::Malformed("wal shorter than its header")
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mid_log_corruption_drops_everything_after_it() {
        // A flipped byte *inside* an earlier record fails that record's
        // digest; replay keeps what preceded it and truncates the rest
        // (conservative: order matters for reassignments, so replaying
        // past a hole could resurrect stale placements).
        let path = scratch_path("midflip");
        let mut wal = DirectoryWal::create(&path, header()).unwrap();
        wal.append_stripe(1, &[0, 1]).unwrap();
        let first_end = fs::metadata(&path).unwrap().len();
        wal.append_stripe(2, &[2, 3]).unwrap();
        wal.append_stripe(3, &[4, 0]).unwrap();
        drop(wal);

        let mut bytes = fs::read(&path).unwrap();
        let flip_at = first_end as usize + 6; // inside record 2's body
        bytes[flip_at] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let mut seen = Vec::new();
        let (_, stats) = DirectoryWal::replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(stats.records, 1);
        assert!(stats.dropped_tail_bytes > 0);
        assert_eq!(
            seen,
            vec![WalRecord::Stripe {
                stripe: 1,
                servers: vec![0, 1]
            }]
        );
        assert_eq!(fs::metadata(&path).unwrap().len(), first_end);
        let _ = fs::remove_file(&path);
    }
}
