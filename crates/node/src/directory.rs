//! The in-memory placement directory: which server holds which chunk,
//! who is alive, and what has been reported lost.
//!
//! This is the prototype's stand-in for the HDFS NameNode's block map.
//! Placement decisions reuse the simulator's rack-aware
//! [`Placement`] policy — the same best-effort
//! spreading the scale experiments validated — so a 16-lane LRC stripe
//! lands on a 5-server cluster with at most ⌈16/5⌉ lanes per server,
//! keeping any single server failure inside the code's erasure budget.
//!
//! The directory is plain data guarded by whatever lock its owner
//! chooses (the client and repair agent share one behind an
//! `Arc<Mutex<_>>`); every mutating call is synchronous and cheap.

use crate::error::{NodeError, Result};
use crate::manifest::Manifest;
use crate::wal::{DirectoryWal, ReplayStats, WalHeader, WalRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::path::Path;
use xorbas_sim::fasthash::{FastMap, FastSet};
use xorbas_sim::Placement;

/// Index of a server in the directory's roster.
pub type ServerId = usize;

/// One chunk server as the directory sees it.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Where the server listens.
    pub addr: SocketAddr,
    /// Rack the server sits in (round-robin, matching [`Placement`]).
    pub rack: usize,
    /// Liveness as last observed (connect failures mark this false).
    pub alive: bool,
}

/// The chunk→server map plus liveness and loss bookkeeping.
#[derive(Debug)]
pub struct Directory {
    servers: Vec<ServerInfo>,
    placement: Placement,
    /// Stripe id → per-lane server assignment (index = lane).
    stripes: FastMap<u64, Vec<ServerId>>,
    /// Chunks reported corrupt by a failed digest check.
    corrupt: FastSet<(u64, u32)>,
    next_stripe: u64,
    rng: StdRng,
    alive_scratch: Vec<bool>,
    /// When present, every placement/repair/corruption mutation is
    /// appended here before the call returns (see [`crate::wal`]).
    wal: Option<DirectoryWal>,
    /// Best-effort appends (corruption reports, re-registrations) that
    /// failed; the in-memory state is still authoritative, the log is
    /// just missing those records.
    wal_errors: u64,
}

impl Directory {
    /// A directory over `addrs`, spread round-robin across `racks`.
    pub fn new(addrs: &[SocketAddr], racks: usize, seed: u64) -> Self {
        let racks = racks.clamp(1, addrs.len().max(1));
        let servers = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| ServerInfo {
                addr,
                rack: i % racks,
                alive: true,
            })
            .collect::<Vec<_>>();
        Self {
            placement: Placement::new(servers.len(), racks),
            servers,
            stripes: FastMap::default(),
            corrupt: FastSet::default(),
            next_stripe: 0,
            rng: StdRng::seed_from_u64(seed),
            alive_scratch: Vec::new(),
            wal: None,
            wal_errors: 0,
        }
    }

    /// A WAL-backed directory at `wal_path`.
    ///
    /// If the log exists it is replayed — every placement, repair
    /// reassignment, and corruption report is reapplied in order, a
    /// torn tail record is truncated (not fatal), and every logged
    /// manifest is returned so the caller can re-serve the files it
    /// had acknowledged. `addrs` supplies the roster's *current*
    /// addresses (servers restart on fresh ports; [`ServerId`] is the
    /// stable identity) and must match the logged roster size; `racks`
    /// and `seed` are taken from the log header so placement geometry
    /// survives the restart. If the log does not exist it is created
    /// with the given shape.
    pub fn open_persistent(
        wal_path: &Path,
        addrs: &[SocketAddr],
        racks: usize,
        seed: u64,
    ) -> Result<(Self, Vec<Manifest>)> {
        if !wal_path.exists() {
            let mut dir = Directory::new(addrs, racks, seed);
            dir.wal = Some(DirectoryWal::create(
                wal_path,
                WalHeader {
                    servers: addrs.len() as u32,
                    racks: racks as u32,
                    seed,
                },
            )?);
            return Ok((dir, Vec::new()));
        }
        let mut records = Vec::new();
        let (header, _stats): (WalHeader, ReplayStats) =
            DirectoryWal::replay(wal_path, |rec| records.push(rec))?;
        if header.servers as usize != addrs.len() {
            return Err(NodeError::Malformed("wal roster size mismatch"));
        }
        let mut dir = Directory::new(addrs, header.racks as usize, header.seed);
        let mut manifests = Vec::new();
        for rec in records {
            match rec {
                WalRecord::Stripe { stripe, servers } => {
                    dir.register_stripe_unlogged(stripe, servers)
                }
                WalRecord::Reassign {
                    stripe,
                    lane,
                    server,
                } => {
                    // A reassign for a stripe the (truncated) log never
                    // placed: skip it, the stripe is gone anyway.
                    let _ = dir.reassign_unlogged(stripe, lane, server);
                }
                WalRecord::Corrupt { stripe, lane } => {
                    dir.corrupt.insert((stripe, lane));
                }
                WalRecord::Manifest(m) => manifests.push(m),
            }
        }
        dir.wal = Some(DirectoryWal::open_append(wal_path)?);
        Ok((dir, manifests))
    }

    /// Count of best-effort WAL appends that failed (0 on a healthy
    /// log, and always 0 for a non-persistent directory).
    pub fn wal_error_count(&self) -> u64 {
        self.wal_errors
    }

    /// Records a manifest in the WAL so a restarted directory can hand
    /// the file back (no-op without a WAL). Call once per acknowledged
    /// put, after the data is on the servers.
    pub fn log_manifest(&mut self, manifest: &Manifest) -> Result<()> {
        match self.wal.as_mut() {
            Some(wal) => wal.append_manifest(manifest),
            None => Ok(()),
        }
    }

    /// Updates the address of `id` — the restart path: the server
    /// process came back on a fresh port with the same data root.
    pub fn set_addr(&mut self, id: ServerId, addr: SocketAddr) {
        if let Some(s) = self.servers.get_mut(id) {
            s.addr = addr;
        }
    }

    /// Number of servers in the roster (alive or not).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of servers currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.servers.iter().filter(|s| s.alive).count()
    }

    /// The roster entry for `id`.
    pub fn server(&self, id: ServerId) -> Option<&ServerInfo> {
        self.servers.get(id)
    }

    /// The whole roster, indexed by [`ServerId`].
    pub fn roster(&self) -> &[ServerInfo] {
        &self.servers
    }

    /// The address of `id` (roster indices are dense and stable).
    pub fn addr_of(&self, id: ServerId) -> Option<SocketAddr> {
        self.servers.get(id).map(|s| s.addr)
    }

    /// Marks a server dead (connect failure, kill switch). Its chunks
    /// become repair candidates on the next [`Directory::scan_lost`].
    pub fn mark_dead(&mut self, id: ServerId) {
        if let Some(s) = self.servers.get_mut(id) {
            s.alive = false;
        }
    }

    /// Marks a server alive again (it answered a probe).
    pub fn mark_alive(&mut self, id: ServerId) {
        if let Some(s) = self.servers.get_mut(id) {
            s.alive = true;
        }
    }

    /// Liveness of `id`.
    pub fn is_alive(&self, id: ServerId) -> bool {
        self.servers.get(id).is_some_and(|s| s.alive)
    }

    /// Allocates a fresh stripe id.
    pub fn next_stripe_id(&mut self) -> u64 {
        let id = self.next_stripe;
        self.next_stripe += 1;
        id
    }

    /// Registers a stripe with a known lane→server assignment (manifest
    /// load). Keeps the id allocator ahead of every registered stripe.
    /// Logged to the WAL (best-effort) unless the directory already has
    /// the identical assignment — re-registering a replayed manifest
    /// after a restart must not bloat the log.
    pub fn register_stripe(&mut self, stripe: u64, lane_servers: Vec<ServerId>) {
        if self.stripes.get(&stripe) == Some(&lane_servers) {
            return;
        }
        if let Some(wal) = self.wal.as_mut() {
            if wal.append_stripe(stripe, &lane_servers).is_err() {
                self.wal_errors += 1;
            }
        }
        self.register_stripe_unlogged(stripe, lane_servers);
    }

    fn register_stripe_unlogged(&mut self, stripe: u64, lane_servers: Vec<ServerId>) {
        self.next_stripe = self.next_stripe.max(stripe + 1);
        self.stripes.insert(stripe, lane_servers);
    }

    /// Places a new `lanes`-wide stripe on alive servers, best-effort
    /// rack-aware (lanes collocate only when the cluster is smaller
    /// than the stripe). Returns the fresh stripe id and its
    /// assignment.
    pub fn place_stripe(&mut self, lanes: usize) -> Result<(u64, &[ServerId])> {
        self.alive_scratch.clear();
        self.alive_scratch
            .extend(self.servers.iter().map(|s| s.alive));
        let mut out = Vec::new();
        self.placement
            .place_best_effort(lanes, &self.alive_scratch, &[], &mut self.rng, &mut out)
            .ok_or(NodeError::NoPlacement)?;
        let id = self.next_stripe_id();
        // Log before committing: if the append fails the put aborts and
        // the stripe id is simply burned (a crash between the append
        // and the chunk writes leaves the same harmless ghost record —
        // no manifest ever references it).
        if let Some(wal) = self.wal.as_mut() {
            wal.append_stripe(id, &out)?;
        }
        let entry = self.stripes.entry(id).or_default();
        *entry = out;
        Ok((id, entry))
    }

    /// The lane→server assignment of `stripe`.
    pub fn servers_of(&self, stripe: u64) -> Option<&[ServerId]> {
        self.stripes.get(&stripe).map(Vec::as_slice)
    }

    /// Records that `(stripe, lane)` failed its digest check. The WAL
    /// append is best-effort: losing a corruption report on restart
    /// only means the scrubber has to find the rot again.
    pub fn report_corrupt(&mut self, stripe: u64, lane: u32) {
        if self.corrupt.insert((stripe, lane)) {
            if let Some(wal) = self.wal.as_mut() {
                if wal.append_corrupt(stripe, lane).is_err() {
                    self.wal_errors += 1;
                }
            }
        }
    }

    /// Whether `(stripe, lane)` is currently flagged corrupt.
    pub fn is_corrupt(&self, stripe: u64, lane: u32) -> bool {
        self.corrupt.contains(&(stripe, lane))
    }

    /// Collects the lanes of `stripe` that cannot be read right now —
    /// their server is dead or the chunk was reported corrupt — into
    /// `out` (cleared first, ascending).
    pub fn unavailable_lanes(&self, stripe: u64, out: &mut Vec<usize>) -> Result<()> {
        out.clear();
        let lanes = self
            .stripes
            .get(&stripe)
            .ok_or(NodeError::UnknownStripe(stripe))?;
        for (lane, &sid) in lanes.iter().enumerate() {
            let dead = !self.is_alive(sid);
            if dead || self.corrupt.contains(&(stripe, lane as u32)) {
                out.push(lane);
            }
        }
        Ok(())
    }

    /// Scans every registered stripe for lost chunks (dead server or
    /// corrupt report) into `out`, sorted for determinism.
    pub fn scan_lost(&self, out: &mut Vec<(u64, u32)>) {
        out.clear();
        for (&stripe, lanes) in &self.stripes {
            for (lane, &sid) in lanes.iter().enumerate() {
                if !self.is_alive(sid) || self.corrupt.contains(&(stripe, lane as u32)) {
                    out.push((stripe, lane as u32));
                }
            }
        }
        out.sort_unstable();
    }

    /// Picks an alive server to host a repaired `(stripe, lane)`,
    /// preferring one that holds no lane of the stripe yet and falling
    /// back to any alive server on small clusters.
    pub fn choose_replacement(&mut self, stripe: u64) -> Result<ServerId> {
        let lanes = self
            .stripes
            .get(&stripe)
            .ok_or(NodeError::UnknownStripe(stripe))?;
        self.alive_scratch.clear();
        self.alive_scratch
            .extend(self.servers.iter().map(|s| s.alive));
        let choice = self
            .placement
            .place_one(&self.alive_scratch, lanes, &mut self.rng)
            .or_else(|| {
                self.placement
                    .place_one(&self.alive_scratch, &[], &mut self.rng)
            });
        choice.ok_or(NodeError::NoPlacement)
    }

    /// Points `(stripe, lane)` at `new_server` and clears any corrupt
    /// flag — the repair agent calls this after a verified re-put.
    ///
    /// The WAL append happens after the in-memory move; if it fails,
    /// memory is ahead of the log, which self-heals: a restart replays
    /// the old assignment, the scan finds the lane lost, and the agent
    /// repairs it again.
    pub fn reassign(&mut self, stripe: u64, lane: u32, new_server: ServerId) -> Result<()> {
        self.reassign_unlogged(stripe, lane, new_server)?;
        if let Some(wal) = self.wal.as_mut() {
            wal.append_reassign(stripe, lane, new_server)?;
        }
        Ok(())
    }

    fn reassign_unlogged(&mut self, stripe: u64, lane: u32, new_server: ServerId) -> Result<()> {
        let lanes = self
            .stripes
            .get_mut(&stripe)
            .ok_or(NodeError::UnknownStripe(stripe))?;
        let slot = lanes
            .get_mut(lane as usize)
            .ok_or(NodeError::Malformed("lane out of range for stripe"))?;
        *slot = new_server;
        self.corrupt.remove(&(stripe, lane));
        Ok(())
    }

    /// Iterates all registered stripe ids, sorted.
    pub fn stripe_ids(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.stripes.keys().copied());
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 42000 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn small_cluster_spreads_lanes_within_erasure_budget() {
        let mut dir = Directory::new(&addrs(5), 5, 7);
        let (id, lanes) = dir.place_stripe(16).unwrap();
        assert_eq!(id, 0);
        let lanes: Vec<ServerId> = lanes.to_vec();
        assert_eq!(lanes.len(), 16);
        // Best-effort placement on 5 servers: at most ceil(16/5) = 4
        // lanes collocate, so one server death erases at most 4 lanes —
        // inside LRC(10,6,5)'s distance-5 budget.
        for sid in 0..5 {
            let held = lanes.iter().filter(|&&s| s == sid).count();
            assert!(held <= 4, "server {sid} holds {held} lanes");
        }
    }

    #[test]
    fn loss_scan_tracks_death_and_corruption() {
        let mut dir = Directory::new(&addrs(5), 5, 7);
        let (id, _) = dir.place_stripe(14).unwrap();
        let lanes: Vec<ServerId> = dir.servers_of(id).unwrap().to_vec();

        let victim = lanes[3];
        dir.mark_dead(victim);
        dir.report_corrupt(id, 0);

        let mut lost = Vec::new();
        dir.scan_lost(&mut lost);
        let expect: Vec<(u64, u32)> = lanes
            .iter()
            .enumerate()
            .filter(|&(lane, &sid)| sid == victim || lane == 0)
            .map(|(lane, _)| (id, lane as u32))
            .collect();
        let mut expect = expect;
        expect.sort_unstable();
        assert_eq!(lost, expect);

        let mut unavail = Vec::new();
        dir.unavailable_lanes(id, &mut unavail).unwrap();
        assert_eq!(
            unavail,
            expect.iter().map(|&(_, l)| l as usize).collect::<Vec<_>>()
        );

        // Repair: reassign lane 3's victim chunk and clear the corrupt
        // flag on lane 0.
        let replacement = dir.choose_replacement(id).unwrap();
        assert!(dir.is_alive(replacement));
        dir.reassign(id, 3, replacement).unwrap();
        dir.reassign(id, 0, lanes[0]).unwrap();
        dir.unavailable_lanes(id, &mut unavail).unwrap();
        assert!(!unavail.contains(&0));
        assert!(unavail.iter().all(|&l| lanes[l] == victim && l != 3));

        // Revival clears the rest.
        dir.mark_alive(victim);
        dir.unavailable_lanes(id, &mut unavail).unwrap();
        assert!(unavail.is_empty());
    }

    #[test]
    fn persistent_directory_survives_reopen() {
        let wal_path =
            std::env::temp_dir().join(format!("xorbas_dir_persist_{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&wal_path);
        let a5 = addrs(5);

        let (mut dir, manifests) = Directory::open_persistent(&wal_path, &a5, 5, 7).unwrap();
        assert!(manifests.is_empty());
        let (id, lanes) = dir.place_stripe(16).unwrap();
        let lanes: Vec<ServerId> = lanes.to_vec();
        dir.report_corrupt(id, 3);
        let replacement = dir.choose_replacement(id).unwrap();
        dir.reassign(id, 3, replacement).unwrap();
        let manifest = Manifest {
            spec: xorbas_core::CodeSpec::ReedSolomon { k: 10, m: 6 },
            chunk_bytes: 4096,
            file_len: 10 * 4096,
            stripes: vec![crate::manifest::StripeEntry {
                id,
                servers: dir.servers_of(id).unwrap().to_vec(),
            }],
        };
        dir.log_manifest(&manifest).unwrap();
        drop(dir);

        // Restart: same roster identity, fresh addresses.
        let new_addrs: Vec<SocketAddr> = (0..5)
            .map(|i| format!("127.0.0.1:{}", 52000 + i).parse().unwrap())
            .collect();
        let (mut dir, manifests) =
            Directory::open_persistent(&wal_path, &new_addrs, 1, 999).unwrap();
        assert_eq!(manifests, vec![manifest]);
        assert_eq!(dir.addr_of(0), Some(new_addrs[0]));
        let mut expect = lanes;
        expect[3] = replacement;
        assert_eq!(dir.servers_of(id).unwrap(), expect.as_slice());
        // The reassign cleared the corrupt flag before the restart.
        assert!(!dir.is_corrupt(id, 3));
        // The id allocator stays ahead of the replayed stripe.
        let (id2, _) = dir.place_stripe(4).unwrap();
        assert!(id2 > id);
        // Re-registering a replayed manifest is a no-op (no log bloat).
        let len_before = std::fs::metadata(&wal_path).unwrap().len();
        dir.register_stripe(id, expect.clone());
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), len_before);
        assert_eq!(dir.wal_error_count(), 0);

        // A roster of the wrong size is refused.
        assert!(matches!(
            Directory::open_persistent(&wal_path, &addrs(3), 1, 7).unwrap_err(),
            NodeError::Malformed("wal roster size mismatch")
        ));
        let _ = std::fs::remove_file(&wal_path);
    }

    #[test]
    fn unknown_stripe_is_a_typed_error() {
        let dir = Directory::new(&addrs(3), 1, 1);
        let mut out = Vec::new();
        assert!(matches!(
            dir.unavailable_lanes(99, &mut out).unwrap_err(),
            NodeError::UnknownStripe(99)
        ));
    }
}
