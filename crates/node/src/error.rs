//! The typed error surface of the node prototype.
//!
//! Wire robustness is a first-class requirement: a malformed or hostile
//! frame must become a *typed* error (no unbounded allocation, no
//! panic), and a failed chunk read must carry enough structure for the
//! client to route it to the degraded-read path instead of failing the
//! read outright.

use crate::protocol::ErrCode;
use std::fmt;
use std::net::SocketAddr;
use xorbas_core::CodeError;

/// Everything that can go wrong between a client and a chunk server.
#[derive(Debug)]
pub enum NodeError {
    /// An OS-level I/O failure (socket or disk).
    Io(std::io::Error),
    /// A frame announced a body larger than the protocol allows. The
    /// reader rejects the length *before* allocating.
    FrameTooLarge {
        /// The announced body length.
        len: u64,
        /// The protocol's cap ([`crate::protocol::MAX_BODY`]).
        max: u64,
    },
    /// The peer closed the connection mid-frame.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// A structurally invalid frame or manifest (bad opcode, short
    /// body, bad magic…).
    Malformed(&'static str),
    /// The server does not have the requested chunk.
    ChunkNotFound {
        /// Stripe the chunk belongs to.
        stripe: u64,
        /// Lane within the stripe.
        lane: u32,
    },
    /// A chunk failed its digest check (on-disk corruption or a bad
    /// transfer). Routed to the degraded-read path by the client.
    ChunkCorrupt {
        /// Stripe the chunk belongs to.
        stripe: u64,
        /// Lane within the stripe.
        lane: u32,
    },
    /// The remote side reported a protocol-level error.
    Remote(ErrCode),
    /// Connecting to a server failed after every retry.
    ConnectFailed {
        /// The address dialed.
        addr: SocketAddr,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A manifest's geometry (code spec or chunk size) does not match
    /// the client trying to read it. Reading anyway would silently
    /// misinterpret the stored stripes, so it is refused up front.
    ManifestMismatch(&'static str),
    /// The placement directory has no server able to take a chunk.
    NoPlacement,
    /// The directory does not know the referenced stripe or server.
    UnknownStripe(u64),
    /// A codec-level failure (unrecoverable pattern, geometry mismatch).
    Code(CodeError),
    /// The peer sent a connection reset between frames. Unlike
    /// [`NodeError::Truncated`] no frame was in flight, so the caller
    /// may treat it as a clean (if abrupt) end of the conversation.
    Disconnected,
    /// A socket operation ran past its total per-op deadline budget.
    /// The client treats this like a dead peer: fail over to another
    /// replica or a degraded read instead of hanging the caller.
    DeadlineExceeded {
        /// The budget that was exhausted, in milliseconds.
        budget_ms: u64,
    },
    /// A failure injected by an armed [`crate::fault::FaultPlan`].
    /// Only ever produced while a plan is armed; carries the site
    /// label so chaos harnesses can tell injected faults from real
    /// ones.
    Injected(&'static str),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Io(e) => write!(f, "i/o error: {e}"),
            NodeError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            NodeError::Truncated { missing } => {
                write!(f, "connection closed mid-frame ({missing} bytes missing)")
            }
            NodeError::Malformed(what) => write!(f, "malformed input: {what}"),
            NodeError::ChunkNotFound { stripe, lane } => {
                write!(f, "chunk (stripe {stripe}, lane {lane}) not found")
            }
            NodeError::ChunkCorrupt { stripe, lane } => {
                write!(
                    f,
                    "chunk (stripe {stripe}, lane {lane}) failed its digest check"
                )
            }
            NodeError::Remote(code) => write!(f, "server reported: {code}"),
            NodeError::ConnectFailed { addr, attempts } => {
                write!(f, "could not connect to {addr} after {attempts} attempt(s)")
            }
            NodeError::ManifestMismatch(what) => write!(f, "manifest mismatch: {what}"),
            NodeError::NoPlacement => write!(f, "no alive server can take the chunk"),
            NodeError::UnknownStripe(s) => write!(f, "stripe {s} is not in the directory"),
            NodeError::Code(e) => write!(f, "codec error: {e}"),
            NodeError::Disconnected => write!(f, "peer reset the connection between frames"),
            NodeError::DeadlineExceeded { budget_ms } => {
                write!(f, "socket operation exceeded its {budget_ms} ms deadline")
            }
            NodeError::Injected(site) => write!(f, "injected fault at site `{site}`"),
        }
    }
}

impl std::error::Error for NodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NodeError::Io(e) => Some(e),
            NodeError::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NodeError {
    fn from(e: std::io::Error) -> Self {
        NodeError::Io(e)
    }
}

impl From<CodeError> for NodeError {
    fn from(e: CodeError) -> Self {
        NodeError::Code(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NodeError>;
