//! On-disk chunk storage for one server: a flat directory of
//! self-describing chunk files.
//!
//! Each chunk lives in its own file named `s{stripe:016x}_l{lane:08x}.chunk`
//! with a fixed 36-byte header:
//!
//! ```text
//! magic "XBCK" | version u32 | stripe u64 | lane u32 | digest u64 | len u64
//! ```
//!
//! Writes go to a per-writer-unique `.tmp` sibling and are renamed into
//! place, so a crash mid-put leaves either the old chunk or none — and
//! concurrent puts of the same chunk from different connection threads
//! each assemble privately, the last rename winning whole. The
//! digest is the client's [`chunk_digest`]
//! of the payload; the store records it verbatim on put (the client just
//! computed it — recomputing server-side would burn the put path's CPU
//! budget) and verifies it on every read, so corruption surfaces exactly
//! where the degraded-read machinery can route around it.

use crate::error::{NodeError, Result};
use crate::fault::{self, Site};
use crate::protocol::{chunk_digest, MAX_CHUNK};
use std::fs;
use std::io::{ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide temp-file sequence: two connection threads putting the
/// same (stripe, lane) must not interleave writes into one `.tmp`.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

const MAGIC: [u8; 4] = *b"XBCK";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 36;

/// One server's chunk directory.
#[derive(Debug)]
pub struct ChunkStore {
    root: PathBuf,
}

impl ChunkStore {
    /// Opens (creating if needed) the chunk directory at `root`.
    ///
    /// Any `*.tmp` files left by a crash mid-put are removed here:
    /// they were never renamed into place, so they represent puts that
    /// were never acknowledged and must not be allowed to shadow or
    /// confuse later writes. Cleanup failures are non-fatal (a stale
    /// temp is inert — uniqueness of temp names means it can never be
    /// adopted by a later put).
    pub fn open(root: &Path) -> Result<Self> {
        fs::create_dir_all(root)?;
        let store = Self {
            root: root.to_path_buf(),
        };
        store.sweep_orphan_tmps();
        Ok(store)
    }

    /// Removes crash leftovers: every `*.tmp` in the root. Returns how
    /// many files were swept (best-effort; errors are skipped).
    pub fn sweep_orphan_tmps(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return 0;
        };
        let mut swept = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let is_tmp = path
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("tmp"));
            if is_tmp && fs::remove_file(&path).is_ok() {
                swept += 1;
            }
        }
        swept
    }

    /// The file a chunk lives in (exposed so tests can inject
    /// corruption and the repair smoke can count real bytes on disk).
    pub fn chunk_path(&self, stripe: u64, lane: u32) -> PathBuf {
        self.root.join(format!("s{stripe:016x}_l{lane:08x}.chunk"))
    }

    /// Stores a chunk. `digest` is trusted as the sender's
    /// [`chunk_digest`] of `payload` and
    /// is verified on every subsequent read.
    pub fn put(&self, stripe: u64, lane: u32, digest: u64, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_CHUNK {
            return Err(NodeError::FrameTooLarge {
                len: payload.len() as u64,
                max: MAX_CHUNK as u64,
            });
        }
        let final_path = self.chunk_path(stripe, lane);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp_path = self
            .root
            .join(format!("s{stripe:016x}_l{lane:08x}.{seq:016x}.tmp"));
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&stripe.to_le_bytes());
        header[16..20].copy_from_slice(&lane.to_le_bytes());
        header[20..28].copy_from_slice(&digest.to_le_bytes());
        header[28..36].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        // Fault site: a torn write dies partway through the temp file
        // and — unlike a real failed put — deliberately leaves the torn
        // `.tmp` behind, exercising the startup sweep in `open`.
        if fault::hit(Site::TornWrite) {
            let torn = (|| {
                let mut f = fs::File::create(&tmp_path)?;
                f.write_all(&header)?;
                f.write_all(payload.get(..payload.len() / 2).unwrap_or(payload))
            })();
            return match torn {
                Ok(()) => Err(NodeError::Injected("torn-write")),
                Err(e) => Err(e.into()),
            };
        }
        let written = (|| {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&header)?;
            f.write_all(payload)
        })();
        if let Err(e) = written {
            // Unique temp names are never overwritten by a later put,
            // so a failed write must clean up after itself.
            let _ = fs::remove_file(&tmp_path);
            return Err(e.into());
        }
        fs::rename(&tmp_path, &final_path)?;
        // Fault site: silent bit rot. The put succeeded and was acked;
        // one payload byte rots afterwards, for the scrubber (or a
        // digest-checked read) to catch.
        if let Some(h) = fault::hit_value(Site::BitFlip) {
            let _ = flip_payload_byte(&final_path, payload.len(), h);
        }
        Ok(())
    }

    /// Reads a chunk into `out` (resized to fit, reusing its capacity)
    /// and returns the stored digest after verifying it against the
    /// payload. Header damage, a length lie, or a digest mismatch all
    /// come back as [`NodeError::ChunkCorrupt`]; an absent file is
    /// [`NodeError::ChunkNotFound`].
    pub fn get_into(&self, stripe: u64, lane: u32, out: &mut Vec<u8>) -> Result<u64> {
        let path = self.chunk_path(stripe, lane);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                return Err(NodeError::ChunkNotFound { stripe, lane })
            }
            Err(e) => return Err(e.into()),
        };
        let corrupt = || NodeError::ChunkCorrupt { stripe, lane };
        let mut header = [0u8; HEADER_LEN];
        read_exact_or(&mut file, &mut header).ok_or_else(corrupt)?;
        if header[..4] != MAGIC {
            return Err(corrupt());
        }
        if le_u32(&header[4..8]) != VERSION {
            return Err(corrupt());
        }
        if le_u64(&header[8..16]) != stripe || le_u32(&header[16..20]) != lane {
            return Err(corrupt());
        }
        let digest = le_u64(&header[20..28]);
        let len = le_u64(&header[28..36]);
        if len > MAX_CHUNK as u64 {
            return Err(corrupt());
        }
        out.resize(len as usize, 0);
        read_exact_or(&mut file, out).ok_or_else(corrupt)?;
        if chunk_digest(out) != digest {
            return Err(corrupt());
        }
        Ok(digest)
    }

    /// Removes a chunk; `Ok(false)` when it was not there.
    pub fn delete(&self, stripe: u64, lane: u32) -> Result<bool> {
        match fs::remove_file(self.chunk_path(stripe, lane)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Whether a chunk file exists (no integrity check).
    pub fn exists(&self, stripe: u64, lane: u32) -> bool {
        self.chunk_path(stripe, lane).exists()
    }

    /// Appends every `(stripe, lane)` with a chunk file in the store to
    /// `out` (unordered). Files that do not match the chunk naming
    /// scheme are ignored. This is the scrubber's walk list.
    pub fn list_chunks(&self, out: &mut Vec<(u64, u32)>) -> Result<()> {
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(loc) = parse_chunk_name(name) {
                out.push(loc);
            }
        }
        Ok(())
    }
}

/// Parses `s{stripe:016x}_l{lane:08x}.chunk`; `None` for anything else.
fn parse_chunk_name(name: &str) -> Option<(u64, u32)> {
    let rest = name.strip_prefix('s')?;
    let stripe = u64::from_str_radix(rest.get(..16)?, 16).ok()?;
    let rest = rest.get(16..)?.strip_prefix("_l")?;
    let lane = u32::from_str_radix(rest.get(..8)?, 16).ok()?;
    match rest.get(8..)? {
        ".chunk" => Some((stripe, lane)),
        _ => None,
    }
}

/// Flips one bit of one payload byte in a stored chunk file, the byte
/// picked by `entropy`. Used only by the [`Site::BitFlip`] fault site.
fn flip_payload_byte(path: &Path, payload_len: usize, entropy: u64) -> std::io::Result<()> {
    if payload_len == 0 {
        return Ok(());
    }
    let offset = HEADER_LEN as u64 + entropy % payload_len as u64;
    let mut f = fs::OpenOptions::new().read(true).write(true).open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte)?;
    byte[0] ^= 1 << ((entropy >> 32) & 7) as u8;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)?;
    Ok(())
}

/// `read_exact` collapsed to an option: `None` on *any* shortfall
/// (including a clean EOF), since a short chunk file is corruption
/// however it happened.
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8]) -> Option<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(())
}

fn le_u32(b: &[u8]) -> u32 {
    let mut w = [0u8; 4];
    w.copy_from_slice(&b[..4]);
    u32::from_le_bytes(w)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[..8]);
    u64::from_le_bytes(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xorbas_store_{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn put_get_delete_round_trip() {
        let dir = scratch_dir("roundtrip");
        let store = ChunkStore::open(&dir).unwrap();
        let payload = vec![0xABu8; 4096];
        let digest = chunk_digest(&payload);
        store.put(7, 2, digest, &payload).unwrap();
        assert!(store.exists(7, 2));

        let mut out = Vec::new();
        assert_eq!(store.get_into(7, 2, &mut out).unwrap(), digest);
        assert_eq!(out, payload);

        // The read buffer is reused: a smaller chunk shrinks it.
        let small = vec![1u8, 2, 3];
        store.put(7, 3, chunk_digest(&small), &small).unwrap();
        store.get_into(7, 3, &mut out).unwrap();
        assert_eq!(out, small);

        assert!(store.delete(7, 2).unwrap());
        assert!(!store.delete(7, 2).unwrap());
        assert!(matches!(
            store.get_into(7, 2, &mut out).unwrap_err(),
            NodeError::ChunkNotFound { stripe: 7, lane: 2 }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Two connection threads racing a put of the same (stripe, lane)
    /// must each assemble in a private temp file: whichever rename wins,
    /// the stored chunk is one whole put, never an interleaving.
    #[test]
    fn concurrent_puts_of_one_chunk_never_tear() {
        let dir = scratch_dir("race");
        let store = ChunkStore::open(&dir).unwrap();
        let a = vec![0x11u8; 32 * 1024];
        let b = vec![0x22u8; 32 * 1024];
        std::thread::scope(|s| {
            for payload in [&a, &b] {
                for _ in 0..8 {
                    let store = &store;
                    s.spawn(move || {
                        store.put(9, 4, chunk_digest(payload), payload).unwrap();
                    });
                }
            }
        });
        let mut out = Vec::new();
        store.get_into(9, 4, &mut out).unwrap();
        assert!(out == a || out == b, "stored chunk is a whole put");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_on_read() {
        let dir = scratch_dir("corrupt");
        let store = ChunkStore::open(&dir).unwrap();
        let payload = vec![0x5Au8; 1024];
        store.put(1, 0, chunk_digest(&payload), &payload).unwrap();

        // Flip one payload byte on disk.
        let path = store.chunk_path(1, 0);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let mut out = Vec::new();
        assert!(matches!(
            store.get_into(1, 0, &mut out).unwrap_err(),
            NodeError::ChunkCorrupt { stripe: 1, lane: 0 }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_mislabeled_files_are_corrupt() {
        let dir = scratch_dir("trunc");
        let store = ChunkStore::open(&dir).unwrap();
        let payload = vec![9u8; 512];
        store.put(3, 1, chunk_digest(&payload), &payload).unwrap();

        // Truncate mid-payload.
        let path = store.chunk_path(3, 1);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            store.get_into(3, 1, &mut out).unwrap_err(),
            NodeError::ChunkCorrupt { .. }
        ));

        // A chunk file renamed under the wrong locator fails the
        // header's stripe/lane check.
        store.put(4, 0, chunk_digest(&payload), &payload).unwrap();
        fs::rename(store.chunk_path(4, 0), store.chunk_path(5, 0)).unwrap();
        assert!(matches!(
            store.get_into(5, 0, &mut out).unwrap_err(),
            NodeError::ChunkCorrupt { stripe: 5, lane: 0 }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Crash consistency at startup: a torn `.tmp` (killed mid-write)
    /// and a stale orphaned `.tmp` (killed between write and rename)
    /// must both be swept on open, the surviving chunks must still be
    /// whole, and the torn put must never be servable.
    #[test]
    fn startup_sweeps_torn_and_orphaned_temps() {
        let dir = scratch_dir("crash");
        let payload = vec![0x3Cu8; 2048];
        let digest = chunk_digest(&payload);
        {
            let store = ChunkStore::open(&dir).unwrap();
            store.put(11, 0, digest, &payload).unwrap();
        }
        // Simulate the two crash shapes by hand. A torn temp: header +
        // half the payload for a chunk that was never acked…
        let torn = dir.join(format!("s{:016x}_l{:08x}.{:016x}.tmp", 12u64, 1u32, 77u64));
        fs::write(&torn, &payload[..payload.len() / 2]).unwrap();
        // …and a stale but *complete* orphan for (11, 0) whose rename
        // never happened (contents differ from the stored chunk so
        // wrongly adopting it would be detectable).
        let orphan = dir.join(format!("s{:016x}_l{:08x}.{:016x}.tmp", 11u64, 0u32, 78u64));
        fs::write(&orphan, b"stale bytes from a dead writer").unwrap();

        let store = ChunkStore::open(&dir).unwrap();
        assert!(!torn.exists(), "torn tmp swept at startup");
        assert!(!orphan.exists(), "orphaned tmp swept at startup");
        // The acked chunk is intact; the torn put is simply absent —
        // a partial chunk is never served.
        let mut out = Vec::new();
        assert_eq!(store.get_into(11, 0, &mut out).unwrap(), digest);
        assert_eq!(out, payload);
        assert!(matches!(
            store.get_into(12, 1, &mut out).unwrap_err(),
            NodeError::ChunkNotFound {
                stripe: 12,
                lane: 1
            }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_chunks_walks_exactly_the_chunk_files() {
        let dir = scratch_dir("list");
        let store = ChunkStore::open(&dir).unwrap();
        let payload = vec![1u8; 64];
        store.put(1, 0, chunk_digest(&payload), &payload).unwrap();
        store.put(2, 9, chunk_digest(&payload), &payload).unwrap();
        // Noise the walk must skip.
        fs::write(dir.join("notes.txt"), b"x").unwrap();
        fs::write(dir.join("s00_l0.chunk"), b"x").unwrap();
        let mut locs = Vec::new();
        store.list_chunks(&mut locs).unwrap();
        locs.sort_unstable();
        assert_eq!(locs, vec![(1, 0), (2, 9)]);
        assert_eq!(
            parse_chunk_name("s0000000000000001_l00000000.chunk"),
            Some((1, 0))
        );
        assert_eq!(parse_chunk_name("s0000000000000001_l00000000.tmp"), None);
        assert_eq!(parse_chunk_name("garbage"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The torn-write fault site leaves a `.tmp` and fails the put; the
    /// bit-flip site silently rots an acked chunk for the digest check
    /// to catch. Serialized against other fault-plan users by running
    /// in this dedicated process-global-plan test.
    #[test]
    fn fault_sites_tear_and_rot_as_specified() {
        use crate::fault::{self, FaultPlan, Site};
        let _guard = crate::lock(&fault::TEST_PLAN_LOCK);
        let dir = scratch_dir("faults");
        let store = ChunkStore::open(&dir).unwrap();
        let payload = vec![0x77u8; 1024];
        let digest = chunk_digest(&payload);

        fault::arm(FaultPlan::new(5).with(Site::TornWrite, 1000));
        let err = store.put(21, 0, digest, &payload).unwrap_err();
        assert!(matches!(err, NodeError::Injected("torn-write")), "{err:?}");
        assert!(!store.exists(21, 0), "torn put never renamed into place");

        fault::arm(FaultPlan::new(5).with(Site::BitFlip, 1000));
        store.put(22, 0, digest, &payload).unwrap();
        fault::disarm();
        let mut out = Vec::new();
        assert!(matches!(
            store.get_into(22, 0, &mut out).unwrap_err(),
            NodeError::ChunkCorrupt {
                stripe: 22,
                lane: 0
            }
        ));
        // Reopening sweeps the torn temp left by the first put.
        drop(store);
        let store = ChunkStore::open(&dir).unwrap();
        let mut locs = Vec::new();
        store.list_chunks(&mut locs).unwrap();
        assert_eq!(locs, vec![(22, 0)]);
        assert!(fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .all(|e| e.path().extension().is_some_and(|x| x == "chunk")));
        let _ = fs::remove_dir_all(&dir);
    }
}
