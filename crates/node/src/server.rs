//! The chunk-server daemon: a TCP accept loop, one handler thread per
//! connection (capped), and an abrupt kill switch for failure drills.
//!
//! Built on blocking `std::net` sockets with short read timeouts: the
//! accept loop polls a stop flag between non-blocking accepts, and
//! every handler polls the same flag whenever its socket read times
//! out, so both [`ChunkServer::shutdown`] (graceful: drain, then join)
//! and [`ChunkServer::kill`] (abrupt: stop answering mid-request, drop
//! the listener) converge within one poll interval. `kill` is the
//! load generator's failure injection — from the client's point of
//! view it is indistinguishable from a machine going dark.
//!
//! Concurrency is bounded by a counting gate (mutex + condvar) sized
//! by the `XORBAS_NODE_THREADS` knob, mirroring how a DataNode caps
//! its transceiver threads.

use crate::chunk_store::ChunkStore;
use crate::error::{NodeError, Result};
use crate::fault::{self, Site};
use crate::lock;
use crate::protocol::{
    write_bare, write_chunk, write_err, ErrCode, Frame, FrameReader, ReadEnd, OP_OK,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a chunk server is configured.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Directory the chunk files live in (created if absent).
    pub data_dir: PathBuf,
    /// Cap on concurrent connection-handler threads. Defaults to the
    /// `XORBAS_NODE_THREADS` environment knob, falling back to 8.
    pub max_conn_threads: usize,
    /// Socket read timeout; also the granularity at which handlers and
    /// the accept loop notice a stop request.
    pub poll_interval: Duration,
}

impl ServerConfig {
    /// A config storing chunks under `data_dir`, with the thread cap
    /// taken from `XORBAS_NODE_THREADS` (default 8).
    pub fn new(data_dir: PathBuf) -> Self {
        let max_conn_threads = std::env::var("XORBAS_NODE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(8);
        Self {
            data_dir,
            max_conn_threads,
            poll_interval: Duration::from_millis(10),
        }
    }
}

/// Counting gate bounding concurrent handler threads.
#[derive(Debug)]
struct ConnGate {
    active: Mutex<usize>,
    freed: Condvar,
    cap: usize,
}

impl ConnGate {
    fn acquire(&self) {
        let mut n = lock(&self.active);
        while *n >= self.cap {
            n = self.freed.wait(n).unwrap_or_else(PoisonError::into_inner);
        }
        *n += 1;
    }

    fn release(&self) {
        let mut n = lock(&self.active);
        *n = n.saturating_sub(1);
        drop(n);
        self.freed.notify_all();
    }

    fn wait_idle(&self, poll: Duration) {
        let mut n = lock(&self.active);
        while *n > 0 {
            let (guard, _) = self
                .freed
                .wait_timeout(n, poll)
                .unwrap_or_else(PoisonError::into_inner);
            n = guard;
        }
    }
}

/// A running chunk server.
#[derive(Debug)]
pub struct ChunkServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    gate: Arc<ConnGate>,
    accept_handle: Option<JoinHandle<()>>,
    poll_interval: Duration,
    data_dir: PathBuf,
}

impl ChunkServer {
    /// Binds an ephemeral loopback port and starts serving.
    pub fn start(cfg: ServerConfig) -> Result<ChunkServer> {
        // Chaos entry point: a `XORBAS_NODE_FAULTS` plan set in the
        // environment arms itself the first time a server boots (no-op
        // when unset or when a plan is already armed programmatically).
        let _ = fault::arm_from_env();
        let store = Arc::new(ChunkStore::open(&cfg.data_dir)?);
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(ConnGate {
            active: Mutex::new(0),
            freed: Condvar::new(),
            cap: cfg.max_conn_threads.max(1),
        });

        let accept_stop = Arc::clone(&stop);
        let accept_gate = Arc::clone(&gate);
        let poll = cfg.poll_interval;
        let accept_handle = std::thread::Builder::new()
            .name(format!("xorbas-accept-{}", addr.port()))
            .spawn(move || {
                accept_loop(listener, store, accept_stop, accept_gate, poll);
            })?;

        Ok(ChunkServer {
            addr,
            stop,
            gate,
            accept_handle: Some(accept_handle),
            poll_interval: cfg.poll_interval,
            data_dir: cfg.data_dir,
        })
    }

    /// Where the server listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The chunk directory this server stores into.
    pub fn data_dir(&self) -> &PathBuf {
        &self.data_dir
    }

    /// Abrupt failure injection: stop accepting, stop answering, drop
    /// in-flight requests. The process keeps running; the server is
    /// simply gone from the network within one poll interval.
    pub fn kill(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether [`ChunkServer::kill`] (or shutdown) has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Graceful stop: raise the flag, join the accept loop, wait for
    /// handler threads to drain.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.gate.wait_idle(self.poll_interval);
    }
}

impl Drop for ChunkServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    store: Arc<ChunkStore>,
    stop: Arc<AtomicBool>,
    gate: Arc<ConnGate>,
    poll: Duration,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                gate.acquire();
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let gate2 = Arc::clone(&gate);
                let spawned = std::thread::Builder::new()
                    .name("xorbas-conn".into())
                    .spawn(move || {
                        let _ = handle_conn(stream, &store, &stop, poll);
                        gate2.release();
                    });
                if spawned.is_err() {
                    // Spawn failure: give the slot back and drop the
                    // connection (the client will retry).
                    gate.release();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll.min(Duration::from_millis(1)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Dropping the listener here closes the port: subsequent connects
    // are refused, which the client maps to a dead server.
}

/// Serves one connection until the peer hangs up, a protocol error
/// desynchronizes the stream, or the stop flag is raised.
fn handle_conn(
    stream: TcpStream,
    store: &ChunkStore,
    stop: &AtomicBool,
    poll: Duration,
) -> Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(poll))?;
    let mut rd = &stream;
    let mut wr = &stream;
    let mut reader = FrameReader::new();
    let mut chunk_buf: Vec<u8> = Vec::new();
    loop {
        let frame = match reader.read(&mut rd, Some(stop)) {
            Ok(Ok(frame)) => frame,
            Ok(Err(ReadEnd::CleanEof | ReadEnd::Stopped | ReadEnd::Disconnected)) => return Ok(()),
            Err(NodeError::FrameTooLarge { .. }) => {
                // The rest of the oversized body is unread, so the
                // stream is desynchronized: report and close.
                let _ = write_err(&mut wr, ErrCode::TooLarge);
                return Ok(());
            }
            Err(NodeError::Malformed(_)) => {
                let _ = write_err(&mut wr, ErrCode::Malformed);
                return Ok(());
            }
            Err(_) => return Ok(()),
        };
        if stop.load(Ordering::SeqCst) {
            // Killed mid-stream: go dark without a reply, like a
            // machine losing power.
            return Ok(());
        }
        // xlint::hot-path(serve-read) begin
        // The steady-state request loop: every arm reuses `chunk_buf`
        // and the reader's scratch; nothing here may allocate.
        match frame {
            Frame::Get { stripe, lane } => match store.get_into(stripe, lane, &mut chunk_buf) {
                Ok(digest) => write_chunk(&mut wr, digest, &chunk_buf)?,
                Err(NodeError::ChunkNotFound { .. }) => write_err(&mut wr, ErrCode::NotFound)?,
                Err(NodeError::ChunkCorrupt { .. }) => write_err(&mut wr, ErrCode::Corrupt)?,
                Err(_) => write_err(&mut wr, ErrCode::Io)?,
            },
            Frame::Put {
                stripe,
                lane,
                digest,
                payload,
            } => match store.put(stripe, lane, digest, payload) {
                Ok(()) => {
                    // Fault site: the ack dawdles, modeling a server
                    // whose disk sync or NIC is briefly wedged. The
                    // client's per-op deadline decides what to do.
                    fault::maybe_stall(Site::ServeStall);
                    write_bare(&mut wr, OP_OK)?
                }
                Err(NodeError::FrameTooLarge { .. }) => write_err(&mut wr, ErrCode::TooLarge)?,
                Err(_) => write_err(&mut wr, ErrCode::Io)?,
            },
            Frame::Delete { stripe, lane } => match store.delete(stripe, lane) {
                Ok(_) => write_bare(&mut wr, OP_OK)?,
                Err(_) => write_err(&mut wr, ErrCode::Io)?,
            },
            Frame::Ping => write_bare(&mut wr, OP_OK)?,
            // Response opcodes arriving on the request side are a
            // protocol violation.
            Frame::Ok | Frame::Chunk { .. } | Frame::Err { .. } => {
                write_err(&mut wr, ErrCode::Malformed)?;
                return Ok(());
            }
        }
        // xlint::hot-path(serve-read) end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{chunk_digest, write_locator, write_put, OP_GET};
    use std::io::Write as _;
    use std::sync::atomic::AtomicU64;

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("xorbas_srv_{tag}_{}_{n}", std::process::id()))
    }

    fn start(tag: &str) -> (ChunkServer, PathBuf) {
        let dir = scratch_dir(tag);
        let srv = ChunkServer::start(ServerConfig::new(dir.clone())).unwrap();
        (srv, dir)
    }

    fn read_reply(stream: &TcpStream) -> Frame<'static> {
        // Own the bytes so the borrow checker lets us return the frame.
        let mut reader = FrameReader::new();
        let mut rd = stream;
        match reader.read(&mut rd, None).unwrap().unwrap() {
            Frame::Ok => Frame::Ok,
            Frame::Err { code } => Frame::Err { code },
            Frame::Chunk { digest, payload } => Frame::Chunk {
                digest,
                payload: Box::leak(payload.to_vec().into_boxed_slice()),
            },
            other => panic!("unexpected reply shape: {other:?}"),
        }
    }

    #[test]
    fn put_then_get_over_the_wire() {
        let (srv, dir) = start("putget");
        let stream = TcpStream::connect(srv.addr()).unwrap();
        let payload = vec![0xC3u8; 2048];
        let digest = chunk_digest(&payload);

        let mut wr = &stream;
        write_put(&mut wr, 11, 4, digest, &payload).unwrap();
        assert_eq!(read_reply(&stream), Frame::Ok);

        write_locator(&mut wr, OP_GET, 11, 4).unwrap();
        match read_reply(&stream) {
            Frame::Chunk {
                digest: d,
                payload: p,
            } => {
                assert_eq!(d, digest);
                assert_eq!(p, &payload[..]);
            }
            other => panic!("expected chunk, got {other:?}"),
        }

        write_locator(&mut wr, OP_GET, 99, 0).unwrap();
        assert_eq!(
            read_reply(&stream),
            Frame::Err {
                code: ErrCode::NotFound
            }
        );

        srv.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_frame_gets_typed_refusal() {
        let (srv, dir) = start("oversize");
        let stream = TcpStream::connect(srv.addr()).unwrap();
        let mut wr = &stream;
        // Announce a 1 GiB body without sending it.
        wr.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        wr.flush().unwrap();
        assert_eq!(
            read_reply(&stream),
            Frame::Err {
                code: ErrCode::TooLarge
            }
        );
        srv.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_server_goes_dark_and_refuses_connects() {
        let (srv, dir) = start("kill");
        let addr = srv.addr();
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut wr = &stream;
            write_bare(&mut wr, crate::protocol::OP_PING).unwrap();
            assert_eq!(read_reply(&stream), Frame::Ok);

            srv.kill();
            // Give the accept loop a poll interval to notice.
            std::thread::sleep(Duration::from_millis(60));

            // The open connection goes silent: either EOF (clean close)
            // or a read timeout — never a successful reply. The write
            // itself may already fail (EPIPE) if the handler closed
            // first; that counts as dark too.
            let _ = write_bare(&mut wr, crate::protocol::OP_PING);
            stream
                .set_read_timeout(Some(Duration::from_millis(100)))
                .unwrap();
            let mut reader = FrameReader::new();
            let mut rd = &stream;
            match reader.read(&mut rd, None) {
                Ok(Err(ReadEnd::CleanEof)) | Err(_) => {}
                other => panic!("killed server still replied: {other:?}"),
            }
        }
        // New connections are refused once the listener is gone.
        std::thread::sleep(Duration::from_millis(30));
        assert!(TcpStream::connect(addr).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
