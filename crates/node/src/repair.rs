//! The background repair agent: scan → plan → stream → re-place.
//!
//! A polling thread scans the directory for lost chunks (dead servers,
//! corrupt reports), groups them by stripe, and repairs each stripe by
//! replaying a cached [`RepairSession`](xorbas_core::RepairSession): fetch exactly the lanes the
//! session's plan reads, reconstruct the missing ones, and push them to
//! replacement servers chosen by the rack-aware placement policy. For
//! LRC stripes with a single loss this is the paper's *light* repair —
//! the agent fetches one local group (5 chunks for LRC(10,6,5)) instead
//! of the `k = 10` an RS code needs, and the stats it keeps
//! ([`RepairStatsSnapshot::bytes_fetched`]) make that difference a
//! measured number rather than a simulated one.
//!
//! Concurrency is throttled: at most `max_concurrent_repairs` stripes
//! are in flight at once (scoped worker threads, each with its own
//! connections and scratch), mirroring the simulator's repair-slot
//! model and HDFS-RAID's bounded reconstruction parallelism.

use crate::chunk_store::ChunkStore;
use crate::client::{RetryPolicy, SessionCache};
use crate::directory::{Directory, ServerId};
use crate::error::{NodeError, Result};
use crate::fault::{self, Site};
use crate::lock;
use crate::protocol::chunk_digest;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xorbas_core::{CodeSpec, StripeViewMut};
use xorbas_sim::codecs::CodecInstance;

/// Tunables for the agent.
#[derive(Debug, Clone)]
pub struct RepairAgentConfig {
    /// How often the directory is scanned for losses.
    pub scan_interval: Duration,
    /// Stripes repaired concurrently per round (the repair-traffic
    /// throttle; the simulator's `max_concurrent_repairs` analogue).
    pub max_concurrent_repairs: usize,
    /// Chunk size of the stripes being repaired.
    pub chunk_bytes: usize,
    /// Connection policy for repair traffic.
    pub retry: RetryPolicy,
    /// Liveness-probe cadence: one probe sweep every this many scan
    /// rounds. The sweep both declares unreachable servers dead and
    /// revives restarted ones whose listener answers again.
    pub probe_rounds: u64,
    /// When set, a scrubber thread walks these chunk stores and
    /// re-verifies digests at a byte-rate throttle.
    pub scrub: Option<ScrubConfig>,
}

impl RepairAgentConfig {
    /// Defaults: 25 ms scans, 2 concurrent repairs, probes every 8
    /// rounds, no scrubber.
    pub fn new(chunk_bytes: usize) -> Self {
        Self {
            scan_interval: Duration::from_millis(25),
            max_concurrent_repairs: 2,
            chunk_bytes,
            retry: RetryPolicy::default(),
            probe_rounds: 8,
            scrub: None,
        }
    }
}

/// Tunables for the background CRC scrubber.
///
/// The scrubber is colocated with the servers in this prototype (one
/// process hosts the whole cluster), so it reads chunk files straight
/// from each server's store root rather than over the wire — what it
/// *reports* still flows through the directory's corrupt set and from
/// there into the ordinary `scan_lost` → repair pipeline.
#[derive(Debug, Clone)]
pub struct ScrubConfig {
    /// `(server id, chunk-store root)` pairs the scrubber walks.
    pub stores: Vec<(ServerId, PathBuf)>,
    /// Verification byte-rate cap. After each chunk the scrubber
    /// sleeps `chunk_len / rate` so a full cycle over `B` stored bytes
    /// takes at least `B / rate` seconds.
    pub rate_bytes_per_sec: u64,
    /// Pause between full cycles over every store.
    pub cycle_pause: Duration,
}

impl ScrubConfig {
    /// A config scrubbing `stores`, with the rate taken from the
    /// `XORBAS_NODE_SCRUB_MIBPS` environment knob (MiB/s, default 64).
    pub fn new(stores: Vec<(ServerId, PathBuf)>) -> Self {
        let mibps = std::env::var("XORBAS_NODE_SCRUB_MIBPS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        Self {
            stores,
            rate_bytes_per_sec: mibps.saturating_mul(1024 * 1024),
            cycle_pause: Duration::from_millis(50),
        }
    }
}

/// Monotonic counters the agent maintains (lock-free reads).
#[derive(Debug, Default)]
struct RepairStats {
    chunks_repaired: AtomicU64,
    light_repairs: AtomicU64,
    heavy_repairs: AtomicU64,
    bytes_fetched: AtomicU64,
    bytes_written: AtomicU64,
    failed_attempts: AtomicU64,
    rounds: AtomicU64,
    scrub_cycles: AtomicU64,
    scrub_chunks: AtomicU64,
    scrub_bytes: AtomicU64,
    scrub_corruptions: AtomicU64,
}

/// A point-in-time copy of the agent's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStatsSnapshot {
    /// Chunks reconstructed and re-placed.
    pub chunks_repaired: u64,
    /// Stripe repairs served entirely by the light (local-group) decoder.
    pub light_repairs: u64,
    /// Stripe repairs that needed the heavy (k-wide) decoder.
    pub heavy_repairs: u64,
    /// Bytes pulled from surviving lanes.
    pub bytes_fetched: u64,
    /// Bytes pushed to replacement servers.
    pub bytes_written: u64,
    /// Repair attempts that failed (left for a later round).
    pub failed_attempts: u64,
    /// Scan rounds completed.
    pub rounds: u64,
    /// Full scrub passes over every configured store.
    pub scrub_cycles: u64,
    /// Chunks whose digest the scrubber re-verified.
    pub scrub_chunks: u64,
    /// Bytes the scrubber read back and hashed.
    pub scrub_bytes: u64,
    /// Corrupt chunks the scrubber newly flagged for repair.
    pub scrub_corruptions: u64,
}

/// The running agent; dropping it stops the scan thread.
pub struct RepairAgent {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    scrub_handle: Option<JoinHandle<()>>,
    stats: Arc<RepairStats>,
    directory: Arc<Mutex<Directory>>,
}

impl RepairAgent {
    /// Starts the scan thread. The agent owns its own codec instance
    /// and connections; it shares only the directory and the session
    /// cache with the clients.
    pub fn start(
        codec: CodecInstance,
        directory: Arc<Mutex<Directory>>,
        sessions: SessionCache,
        cfg: RepairAgentConfig,
    ) -> Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RepairStats::default());
        let scrub_cfg = cfg.scrub.clone();
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let thread_dir = Arc::clone(&directory);
        let handle = std::thread::Builder::new()
            .name("xorbas-repair".into())
            .spawn(move || {
                agent_loop(
                    &codec,
                    &thread_dir,
                    &sessions,
                    &cfg,
                    &thread_stop,
                    &thread_stats,
                );
            })?;
        let scrub_handle = match scrub_cfg {
            Some(scfg) => {
                let scrub_stop = Arc::clone(&stop);
                let scrub_stats = Arc::clone(&stats);
                let scrub_dir = Arc::clone(&directory);
                Some(
                    std::thread::Builder::new()
                        .name("xorbas-scrub".into())
                        .spawn(move || {
                            scrub_loop(&scfg, &scrub_dir, &scrub_stop, &scrub_stats);
                        })?,
                )
            }
            None => None,
        };
        Ok(Self {
            stop,
            handle: Some(handle),
            scrub_handle,
            stats,
            directory,
        })
    }

    /// Current counters.
    pub fn stats(&self) -> RepairStatsSnapshot {
        let s = &self.stats;
        RepairStatsSnapshot {
            chunks_repaired: s.chunks_repaired.load(Ordering::Relaxed),
            light_repairs: s.light_repairs.load(Ordering::Relaxed),
            heavy_repairs: s.heavy_repairs.load(Ordering::Relaxed),
            bytes_fetched: s.bytes_fetched.load(Ordering::Relaxed),
            bytes_written: s.bytes_written.load(Ordering::Relaxed),
            failed_attempts: s.failed_attempts.load(Ordering::Relaxed),
            rounds: s.rounds.load(Ordering::Relaxed),
            scrub_cycles: s.scrub_cycles.load(Ordering::Relaxed),
            scrub_chunks: s.scrub_chunks.load(Ordering::Relaxed),
            scrub_bytes: s.scrub_bytes.load(Ordering::Relaxed),
            scrub_corruptions: s.scrub_corruptions.load(Ordering::Relaxed),
        }
    }

    /// Blocks until the directory reports no lost chunks (full
    /// redundancy restored) or `timeout` passes. Returns whether the
    /// cluster converged.
    pub fn wait_until_repaired(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut lost = Vec::new();
        loop {
            lock(&self.directory).scan_lost(&mut lost);
            if lost.is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the scan and scrub threads and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scrub_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RepairAgent {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scrub_handle.take() {
            let _ = h.join();
        }
    }
}

fn agent_loop(
    codec: &CodecInstance,
    dir: &Arc<Mutex<Directory>>,
    sessions: &SessionCache,
    cfg: &RepairAgentConfig,
    stop: &AtomicBool,
    stats: &RepairStats,
) {
    let mut lost: Vec<(u64, u32)> = Vec::new();
    let mut stripes: Vec<u64> = Vec::new();
    let mut round = 0u64;
    while !stop.load(Ordering::SeqCst) {
        // A cheap liveness sweep every few rounds: a server that died
        // without any client noticing still gets its chunks repaired,
        // and a restarted one is folded back into the roster.
        if round.is_multiple_of(cfg.probe_rounds.max(1)) {
            probe_liveness(dir);
        }
        round += 1;
        lock(dir).scan_lost(&mut lost);
        stripes.clear();
        for &(stripe, _) in lost.iter() {
            if stripes.last() != Some(&stripe) {
                stripes.push(stripe);
            }
        }
        if stripes.is_empty() {
            stats.rounds.fetch_add(1, Ordering::Relaxed);
            sleep_with_stop(cfg.scan_interval, stop);
            continue;
        }
        // Throttled fan-out: at most `max_concurrent_repairs` stripes
        // in flight, each worker with private scratch and connections.
        for batch in stripes.chunks(cfg.max_concurrent_repairs.max(1)) {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::scope(|s| {
                for &stripe in batch {
                    s.spawn(move || {
                        let mut worker = RepairWorker {
                            codec,
                            dir,
                            sessions,
                            cfg,
                            scratch: Vec::new(),
                            conns: Vec::new(),
                            unavailable: Vec::new(),
                        };
                        match worker.repair_stripe(stripe) {
                            Ok(Some(outcome)) => {
                                stats
                                    .chunks_repaired
                                    .fetch_add(outcome.chunks, Ordering::Relaxed);
                                stats
                                    .bytes_fetched
                                    .fetch_add(outcome.bytes_fetched, Ordering::Relaxed);
                                stats
                                    .bytes_written
                                    .fetch_add(outcome.bytes_written, Ordering::Relaxed);
                                if outcome.light {
                                    stats.light_repairs.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    stats.heavy_repairs.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(None) => {}
                            Err(_) => {
                                stats.failed_attempts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
        }
        stats.rounds.fetch_add(1, Ordering::Relaxed);
        sleep_with_stop(cfg.scan_interval, stop);
    }
}

/// Reconciles the roster with reality: servers whose listener no
/// longer answers are marked dead, and dead servers whose listener
/// answers again (a restart on the same address, or an updated
/// address via [`Directory::set_addr`]) are revived. A refused
/// loopback connect returns immediately, so this sweep costs
/// microseconds per server.
fn probe_liveness(dir: &Arc<Mutex<Directory>>) {
    let mut roster: Vec<(usize, std::net::SocketAddr, bool)> = Vec::new();
    {
        let d = lock(dir);
        for (sid, info) in d.roster().iter().enumerate() {
            roster.push((sid, info.addr, info.alive));
        }
    }
    for (sid, addr, was_alive) in roster {
        let answers =
            std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_ok();
        match (was_alive, answers) {
            (true, false) => lock(dir).mark_dead(sid),
            (false, true) => lock(dir).mark_alive(sid),
            _ => {}
        }
    }
}

/// The scrubber thread: walk every configured chunk store, re-verify
/// each chunk's digest, flag rot into the directory's corrupt set
/// (where the next `scan_lost` turns it into a repair), and throttle
/// to the configured byte rate.
fn scrub_loop(
    cfg: &ScrubConfig,
    dir: &Arc<Mutex<Directory>>,
    stop: &AtomicBool,
    stats: &RepairStats,
) {
    let mut stores: Vec<(ServerId, ChunkStore)> = Vec::new();
    for (sid, root) in &cfg.stores {
        if let Ok(s) = ChunkStore::open(root) {
            stores.push((*sid, s));
        }
    }
    let rate = cfg.rate_bytes_per_sec.max(1);
    let mut chunks: Vec<(u64, u32)> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        for (sid, store) in &stores {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            chunks.clear();
            if store.list_chunks(&mut chunks).is_err() {
                continue;
            }
            // xlint::hot-path(scrub-stream) begin
            // The verify loop rereads every chunk body through one
            // reused buffer; nothing here may allocate, so a scrub
            // pass costs I/O + hash and zero heap churn.
            for &(stripe, lane) in chunks.iter() {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Skip chunks the directory no longer maps to this
                // server (stale files after a reassignment) and ones
                // already flagged — re-reporting would double-count.
                let (ours, flagged) = {
                    let d = lock(dir);
                    let ours = d
                        .servers_of(stripe)
                        .is_some_and(|s| s.get(lane as usize) == Some(sid));
                    (ours, d.is_corrupt(stripe, lane))
                };
                if !ours || flagged {
                    continue;
                }
                match store.get_into(stripe, lane, &mut buf) {
                    Ok(_) => {
                        stats.scrub_chunks.fetch_add(1, Ordering::Relaxed);
                        stats
                            .scrub_bytes
                            .fetch_add(buf.len() as u64, Ordering::Relaxed);
                    }
                    Err(NodeError::ChunkNotFound { .. }) => continue,
                    // Digest mismatch or an unreadable file: either
                    // way this replica cannot be served — flag it.
                    Err(_) => {
                        stats.scrub_chunks.fetch_add(1, Ordering::Relaxed);
                        stats.scrub_corruptions.fetch_add(1, Ordering::Relaxed);
                        lock(dir).report_corrupt(stripe, lane);
                    }
                }
                // Throttle: a chunk of `L` bytes buys `L / rate`
                // seconds of sleep, so sustained read bandwidth stays
                // at or under `rate_bytes_per_sec`.
                let nanos = (buf.len() as u64).saturating_mul(1_000_000_000) / rate;
                if nanos > 0 {
                    sleep_with_stop(Duration::from_nanos(nanos), stop);
                }
            }
            // xlint::hot-path(scrub-stream) end
        }
        stats.scrub_cycles.fetch_add(1, Ordering::Relaxed);
        sleep_with_stop(cfg.cycle_pause, stop);
    }
}

fn sleep_with_stop(total: Duration, stop: &AtomicBool) {
    let step = Duration::from_millis(5);
    let mut remaining = total;
    while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
        let nap = remaining.min(step);
        std::thread::sleep(nap);
        remaining = remaining.saturating_sub(nap);
    }
}

/// What one successful stripe repair moved.
struct RepairOutcome {
    chunks: u64,
    bytes_fetched: u64,
    bytes_written: u64,
    light: bool,
}

/// Per-stripe repair executor (one per in-flight repair).
struct RepairWorker<'a> {
    codec: &'a CodecInstance,
    dir: &'a Arc<Mutex<Directory>>,
    sessions: &'a SessionCache,
    cfg: &'a RepairAgentConfig,
    scratch: Vec<Vec<u8>>,
    conns: Vec<Option<crate::client::NodeConn>>,
    unavailable: Vec<usize>,
}

impl RepairWorker<'_> {
    /// Repairs every lost lane of `stripe`. `Ok(None)` means the
    /// stripe healed on its own (nothing lost by the time we looked).
    fn repair_stripe(&mut self, stripe: u64) -> Result<Option<RepairOutcome>> {
        let n = self.codec.total_blocks();
        let mut unavailable = std::mem::take(&mut self.unavailable);
        lock(self.dir).unavailable_lanes(stripe, &mut unavailable)?;
        if unavailable.is_empty() {
            self.unavailable = unavailable;
            return Ok(None);
        }

        if matches!(self.codec.spec(), CodeSpec::Replication { .. }) {
            let out = self.repair_replicated(stripe, n, &unavailable);
            self.unavailable = unavailable;
            return out;
        }

        let session = match self.sessions.get_or_compile(self.codec, &unavailable)? {
            Some(s) => s,
            None => {
                self.unavailable = unavailable;
                return Err(NodeError::Malformed("codec has no repair session"));
            }
        };
        self.scratch.resize_with(n, Vec::new);
        for lane in &mut self.scratch {
            lane.resize(self.cfg.chunk_bytes, 0);
        }

        let mut fetched = 0u64;
        // xlint::hot-path(repair-stream) begin
        // Stream-in: fetch exactly the lanes the plan reads. Buffers
        // and connections are reused; this loop must not allocate.
        for lane in 0..n {
            let needed = session.plan().tasks.iter().any(|t| t.reads.contains(&lane))
                && !session.missing().contains(&lane);
            if !needed {
                continue;
            }
            let mut buf = std::mem::take(&mut self.scratch[lane]);
            let res = self.fetch_lane(stripe, lane as u32, &mut buf);
            self.scratch[lane] = buf;
            res?;
            fetched += self.cfg.chunk_bytes as u64;
        }
        // xlint::hot-path(repair-stream) end

        let mut refs: Vec<&mut [u8]> = self.scratch.iter_mut().map(Vec::as_mut_slice).collect();
        let mut view = StripeViewMut::new(&mut refs, session.missing())?;
        session.repair(&mut view)?;

        let mut written = 0u64;
        let mut repaired = 0u64;
        for &lane in session.missing() {
            // Fault site: the repair worker dies between reconstruct
            // and re-place. The lane stays lost and a later round
            // retries — repairs must be idempotent.
            if fault::hit(Site::CrashRepair) {
                self.unavailable = unavailable;
                return Err(NodeError::Injected("crash-repair"));
            }
            let new_sid = {
                let mut d = lock(self.dir);
                d.choose_replacement(stripe)?
            };
            let addr = {
                lock(self.dir)
                    .addr_of(new_sid)
                    .ok_or(NodeError::Malformed("server id out of roster"))?
            };
            let payload = self
                .scratch
                .get(lane)
                .ok_or(NodeError::Malformed("repaired lane missing"))?;
            let digest = chunk_digest(payload);
            crate::client::ensure_conn(&mut self.conns, new_sid, addr, &self.cfg.retry)?.put(
                stripe,
                lane as u32,
                digest,
                payload,
            )?;
            lock(self.dir).reassign(stripe, lane as u32, new_sid)?;
            written += self.cfg.chunk_bytes as u64;
            repaired += 1;
        }
        self.unavailable = unavailable;
        Ok(Some(RepairOutcome {
            chunks: repaired,
            bytes_fetched: fetched,
            bytes_written: written,
            light: session.plan().is_light(),
        }))
    }

    /// Replication repair: copy a surviving replica onto replacements.
    fn repair_replicated(
        &mut self,
        stripe: u64,
        n: usize,
        unavailable: &[usize],
    ) -> Result<Option<RepairOutcome>> {
        self.scratch.resize_with(1, Vec::new);
        let mut buf = std::mem::take(&mut self.scratch[0]);
        let mut source: Option<u64> = None;
        for lane in 0..n {
            if unavailable.contains(&lane) {
                continue;
            }
            if let Ok(()) = self.fetch_lane(stripe, lane as u32, &mut buf) {
                source = Some(self.cfg.chunk_bytes as u64);
                break;
            }
        }
        let fetched = match source {
            Some(f) => f,
            None => {
                self.scratch[0] = buf;
                return Err(NodeError::Malformed("no surviving replica to copy"));
            }
        };
        let digest = chunk_digest(&buf);
        let mut written = 0u64;
        let mut repaired = 0u64;
        for &lane in unavailable {
            let new_sid = {
                let mut d = lock(self.dir);
                d.choose_replacement(stripe)?
            };
            let addr = {
                lock(self.dir)
                    .addr_of(new_sid)
                    .ok_or(NodeError::Malformed("server id out of roster"))?
            };
            crate::client::ensure_conn(&mut self.conns, new_sid, addr, &self.cfg.retry)?.put(
                stripe,
                lane as u32,
                digest,
                &buf,
            )?;
            lock(self.dir).reassign(stripe, lane as u32, new_sid)?;
            written += self.cfg.chunk_bytes as u64;
            repaired += 1;
        }
        self.scratch[0] = buf;
        Ok(Some(RepairOutcome {
            chunks: repaired,
            bytes_fetched: fetched,
            bytes_written: written,
            light: true,
        }))
    }

    /// Fetches one lane from its assigned server into `out`.
    // xlint::hot-path(repair-fetch)
    fn fetch_lane(&mut self, stripe: u64, lane: u32, out: &mut Vec<u8>) -> Result<()> {
        let (sid, addr) = {
            let d = lock(self.dir);
            let servers = d
                .servers_of(stripe)
                .ok_or(NodeError::UnknownStripe(stripe))?;
            let sid = *servers
                .get(lane as usize)
                .ok_or(NodeError::Malformed("lane out of range for stripe"))?;
            let addr = d
                .addr_of(sid)
                .ok_or(NodeError::Malformed("server id out of roster"))?;
            if !d.is_alive(sid) {
                return Err(NodeError::ConnectFailed { addr, attempts: 0 });
            }
            (sid, addr)
        };
        let res = crate::client::ensure_conn(&mut self.conns, sid, addr, &self.cfg.retry)
            .and_then(|c| c.get_chunk(stripe, lane, out))
            .map(|_| ());
        if res.is_err() {
            if let Some(slot) = self.conns.get_mut(sid) {
                *slot = None;
            }
        }
        res
    }
}
