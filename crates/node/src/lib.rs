//! `xorbas-node`: the graduation from simulation to a running system.
//!
//! Everything below the `crates/sim` layer computes; this crate *serves*.
//! It is a minimal networked storage prototype — chunk servers and a
//! client library speaking a length-prefixed binary protocol over TCP —
//! built entirely on `std` so a whole cluster can run over loopback
//! inside one process (or one integration test).
//!
//! | Module | Role |
//! |---|---|
//! | [`protocol`] | frame layout, opcodes, bounded-allocation frame reader, chunk digests |
//! | [`chunk_store`] | per-server on-disk chunk files with digest verification |
//! | [`server`] | the chunk-server daemon: accept loop, per-connection threads, kill switch |
//! | [`client`] | connection with retry/backoff, streaming put (encode pipelined against socket writes), direct + degraded get |
//! | [`manifest`] | the binary stripe manifest a put returns and a get consumes |
//! | [`directory`] | the placement directory: rack-aware chunk→server map, liveness, loss scan — WAL-backed when opened persistent |
//! | [`wal`] | the directory's append-only checksummed log: placements, repairs, manifests; torn-tail-tolerant replay |
//! | [`repair`] | the background repair agent + CRC scrubber: scan → plan → stream → re-place, with a concurrency throttle |
//! | [`fault`] | deterministic fault injection: a seeded process-global plan with labeled sites across the whole stack |
//! | [`error`] | [`NodeError`], the typed error surface |
//!
//! The paper's argument is that repair *network traffic* is the binding
//! constraint of erasure-coded storage (§1, §5); this crate turns that
//! from a simulator output into a wire measurement. `cargo run --release
//! -p xorbas_node --bin load_gen` boots N servers over loopback, streams
//! erasure-coded puts through [`client::ClusterClient`], hammers reads
//! while a server dies mid-run, and reports GiB/s plus p50/p99/p999
//! latency — degraded reads served through cached
//! [`RepairSession`](xorbas_core::RepairSession)s, lost chunks restored
//! by the [`repair::RepairAgent`] (LRC light repairs fetch only the
//! local group, the §3.2 story).

#![forbid(unsafe_code)]

pub mod chunk_store;
pub mod client;
pub mod directory;
pub mod error;
pub mod fault;
pub mod manifest;
pub mod protocol;
pub mod repair;
pub mod server;
pub mod wal;

pub use chunk_store::ChunkStore;
pub use client::{ClusterClient, NodeConn, RetryPolicy};
pub use directory::{Directory, ServerId};
pub use error::NodeError;
pub use fault::{FaultPlan, Site};
pub use manifest::Manifest;
pub use protocol::{chunk_digest, ErrCode};
pub use repair::{RepairAgent, RepairAgentConfig, RepairStatsSnapshot, ScrubConfig};
pub use server::{ChunkServer, ServerConfig};
pub use wal::DirectoryWal;

/// Locks a mutex, recovering the data from a poisoned lock (a panicked
/// holder) instead of propagating the panic — the prototype's shared
/// state (directory, session caches) stays usable for the surviving
/// threads, and the library keeps its no-panic discipline.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
