//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a little-endian `u32` body length followed by the
//! body; the body's first byte is the opcode, fixed-width fields follow,
//! and any chunk payload runs to the end of the body:
//!
//! ```text
//! +----------------+--------+----------------------------------+
//! | u32 body_len   | u8 op  | fields … payload …               |
//! +----------------+--------+----------------------------------+
//!
//! PUT    (0x01)  stripe u64 | lane u32 | digest u64 | payload
//! GET    (0x02)  stripe u64 | lane u32
//! DELETE (0x03)  stripe u64 | lane u32
//! PING   (0x04)  —
//! OK     (0x81)  —
//! CHUNK  (0x82)  digest u64 | payload
//! ERR    (0xEE)  code u8
//! ```
//!
//! Robustness contract: a length prefix above [`MAX_BODY`] is rejected
//! with a typed error *before any allocation*, a stream that ends
//! mid-frame yields [`NodeError::Truncated`], and unknown opcodes or
//! short bodies yield [`NodeError::Malformed`] — the reader never
//! panics and never allocates beyond the cap.

use crate::error::{NodeError, Result};
use crate::fault::{self, Site};
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Largest chunk payload a frame may carry (64 MiB).
pub const MAX_CHUNK: usize = 64 << 20;

/// Largest frame body the reader will allocate for: the chunk cap plus
/// the widest fixed header (PUT's 21 bytes), rounded up.
pub const MAX_BODY: usize = MAX_CHUNK + 32;

/// Store a chunk (request).
pub const OP_PUT: u8 = 0x01;
/// Fetch a chunk (request).
pub const OP_GET: u8 = 0x02;
/// Drop a chunk (request; used by tests and failure injection).
pub const OP_DELETE: u8 = 0x03;
/// Liveness probe (request).
pub const OP_PING: u8 = 0x04;
/// Success, no payload (response).
pub const OP_OK: u8 = 0x81;
/// A chunk payload (response to GET).
pub const OP_CHUNK: u8 = 0x82;
/// A typed failure (response).
pub const OP_ERR: u8 = 0xEE;

/// Error codes an `ERR` frame can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The chunk is not stored here.
    NotFound,
    /// The chunk is stored but failed its digest check.
    Corrupt,
    /// The request frame was structurally invalid.
    Malformed,
    /// The request frame exceeded the body cap.
    TooLarge,
    /// The server hit an I/O error serving the request.
    Io,
    /// The server is shutting down.
    Unavailable,
}

impl ErrCode {
    /// Wire encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrCode::NotFound => 1,
            ErrCode::Corrupt => 2,
            ErrCode::Malformed => 3,
            ErrCode::TooLarge => 4,
            ErrCode::Io => 5,
            ErrCode::Unavailable => 6,
        }
    }

    /// Wire decoding; `None` for codes this build does not know.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrCode::NotFound,
            2 => ErrCode::Corrupt,
            3 => ErrCode::Malformed,
            4 => ErrCode::TooLarge,
            5 => ErrCode::Io,
            6 => ErrCode::Unavailable,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrCode::NotFound => "chunk not found",
            ErrCode::Corrupt => "chunk corrupt",
            ErrCode::Malformed => "malformed frame",
            ErrCode::TooLarge => "frame too large",
            ErrCode::Io => "server i/o error",
            ErrCode::Unavailable => "server unavailable",
        };
        f.write_str(s)
    }
}

/// One parsed frame, borrowing its payload from the reader's scratch
/// buffer (the hot read path hands payload bytes through without a
/// copy or an allocation).
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// Store `payload` as `(stripe, lane)` with the client's digest.
    Put {
        /// Stripe id.
        stripe: u64,
        /// Lane index within the stripe.
        lane: u32,
        /// [`chunk_digest`] of the payload, computed by the sender.
        digest: u64,
        /// The chunk bytes.
        payload: &'a [u8],
    },
    /// Fetch `(stripe, lane)`.
    Get {
        /// Stripe id.
        stripe: u64,
        /// Lane index within the stripe.
        lane: u32,
    },
    /// Drop `(stripe, lane)`.
    Delete {
        /// Stripe id.
        stripe: u64,
        /// Lane index within the stripe.
        lane: u32,
    },
    /// Liveness probe.
    Ping,
    /// Success.
    Ok,
    /// A chunk payload with its stored digest.
    Chunk {
        /// [`chunk_digest`] of the payload as stored.
        digest: u64,
        /// The chunk bytes.
        payload: &'a [u8],
    },
    /// A typed failure.
    Err {
        /// What went wrong.
        code: ErrCode,
    },
}

/// Why a read loop ended without a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadEnd {
    /// The peer closed the connection between frames — a clean end.
    CleanEof,
    /// The stop flag was raised while waiting for bytes.
    Stopped,
    /// The peer *reset* the connection between frames (RST rather than
    /// FIN). No frame was in flight, so nothing was lost — but unlike
    /// [`ReadEnd::CleanEof`] the peer did not shut down politely.
    Disconnected,
}

/// A total per-operation read budget: an absolute expiry instant plus
/// the original budget (kept for error reporting). Passed to
/// [`FrameReader::read_deadline`] so a stalled peer turns into a typed
/// [`NodeError::DeadlineExceeded`] instead of a hung caller.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
            budget,
        }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// The typed error for this deadline's expiry.
    pub fn to_error(&self) -> NodeError {
        NodeError::DeadlineExceeded {
            budget_ms: self.budget.as_millis() as u64,
        }
    }
}

/// Outcome of [`FrameReader::read`]: a frame, or a clean end of stream.
pub type ReadOutcome<'a> = std::result::Result<Frame<'a>, ReadEnd>;

/// A reusable frame reader: one growable scratch buffer per connection,
/// so steady-state reads allocate nothing once the buffer has reached
/// the largest frame seen.
#[derive(Debug, Default)]
pub struct FrameReader {
    scratch: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one frame. `stop` (when given) is polled whenever the
    /// underlying stream reports a read timeout, letting a server
    /// drain its connections on shutdown without a protocol epilogue.
    ///
    /// Returns `Ok(Err(ReadEnd::CleanEof))` when the peer closes the
    /// stream *between* frames; a close mid-frame is
    /// [`NodeError::Truncated`]. A body length above [`MAX_BODY`] is
    /// [`NodeError::FrameTooLarge`], rejected before allocation.
    pub fn read<'a, R: Read>(
        &'a mut self,
        r: &mut R,
        stop: Option<&AtomicBool>,
    ) -> Result<ReadOutcome<'a>> {
        self.read_deadline(r, stop, None)
    }

    /// [`FrameReader::read`] with an optional total deadline. When the
    /// stream's read timeout fires (`WouldBlock`/`TimedOut`) and the
    /// deadline has passed, the read fails with
    /// [`NodeError::DeadlineExceeded`] instead of spinning — this is
    /// how a client bounds a stalled peer. A connection *reset* before
    /// the first byte of a frame is [`ReadEnd::Disconnected`]; a reset
    /// mid-frame is [`NodeError::Truncated`] like any other mid-frame
    /// loss.
    pub fn read_deadline<'a, R: Read>(
        &'a mut self,
        r: &mut R,
        stop: Option<&AtomicBool>,
        deadline: Option<Deadline>,
    ) -> Result<ReadOutcome<'a>> {
        let mut len_buf = [0u8; 4];
        match fill(r, &mut len_buf, stop, deadline)? {
            Fill::Full => {}
            Fill::CleanEof => return Ok(Err(ReadEnd::CleanEof)),
            Fill::Reset => return Ok(Err(ReadEnd::Disconnected)),
            Fill::Stopped => return Ok(Err(ReadEnd::Stopped)),
            Fill::Truncated { missing } => return Err(NodeError::Truncated { missing }),
        }
        let body_len = u32::from_le_bytes(len_buf) as usize;
        if body_len == 0 {
            return Err(NodeError::Malformed("zero-length frame body"));
        }
        if body_len > MAX_BODY {
            return Err(NodeError::FrameTooLarge {
                len: body_len as u64,
                max: MAX_BODY as u64,
            });
        }
        self.scratch.resize(body_len, 0);
        match fill(r, &mut self.scratch, stop, deadline)? {
            Fill::Full => {}
            Fill::CleanEof | Fill::Reset => return Err(NodeError::Truncated { missing: body_len }),
            Fill::Stopped => return Ok(Err(ReadEnd::Stopped)),
            Fill::Truncated { missing } => return Err(NodeError::Truncated { missing }),
        }
        parse_body(&self.scratch).map(Ok)
    }
}

/// Outcome of filling a buffer from a stream.
enum Fill {
    Full,
    /// EOF before the first byte.
    CleanEof,
    /// Connection reset before the first byte.
    Reset,
    /// EOF (or reset) after some bytes.
    Truncated {
        missing: usize,
    },
    /// The stop flag was raised.
    Stopped,
}

/// `read_exact` with explicit partial-fill tracking: survives
/// `WouldBlock`/`TimedOut` (polling `stop` and the deadline in
/// between), reports exactly how much of the buffer an early EOF left
/// unfilled, and distinguishes a pre-byte connection reset from a
/// mid-buffer one. The deadline is also checked between successful
/// partial reads so a drip-feeding peer cannot stretch one op forever.
fn fill<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
    deadline: Option<Deadline>,
) -> Result<Fill> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if let Some(d) = deadline {
            if filled > 0 && d.expired() {
                return Err(d.to_error());
            }
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::CleanEof
                } else {
                    Fill::Truncated {
                        missing: buf.len() - filled,
                    }
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
                ) =>
            {
                return Ok(if filled == 0 {
                    Fill::Reset
                } else {
                    Fill::Truncated {
                        missing: buf.len() - filled,
                    }
                })
            }
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && (stop.is_some() || deadline.is_some()) =>
            {
                if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                    return Ok(Fill::Stopped);
                }
                if let Some(d) = deadline {
                    if d.expired() {
                        return Err(d.to_error());
                    }
                }
            }
            Err(e) => return Err(NodeError::Io(e)),
        }
    }
    Ok(Fill::Full)
}

/// A bounds-checked little-endian cursor over a frame body.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn u8(&mut self) -> Result<u8> {
        let v = *self
            .b
            .get(self.pos)
            .ok_or(NodeError::Malformed("frame body too short"))?;
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self
            .b
            .get(self.pos..self.pos + 4)
            .ok_or(NodeError::Malformed("frame body too short"))?;
        self.pos += 4;
        let mut w = [0u8; 4];
        w.copy_from_slice(s);
        Ok(u32::from_le_bytes(w))
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self
            .b
            .get(self.pos..self.pos + 8)
            .ok_or(NodeError::Malformed("frame body too short"))?;
        self.pos += 8;
        let mut w = [0u8; 8];
        w.copy_from_slice(s);
        Ok(u64::from_le_bytes(w))
    }

    fn rest(self) -> &'a [u8] {
        self.b.get(self.pos..).unwrap_or(&[])
    }

    fn finish(self) -> Result<()> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(NodeError::Malformed("trailing bytes in frame body"))
        }
    }
}

/// Parses a complete frame body.
fn parse_body(body: &[u8]) -> Result<Frame<'_>> {
    let mut c = Cur { b: body, pos: 0 };
    match c.u8()? {
        OP_PUT => {
            let stripe = c.u64()?;
            let lane = c.u32()?;
            let digest = c.u64()?;
            Ok(Frame::Put {
                stripe,
                lane,
                digest,
                payload: c.rest(),
            })
        }
        OP_GET => {
            let stripe = c.u64()?;
            let lane = c.u32()?;
            c.finish()?;
            Ok(Frame::Get { stripe, lane })
        }
        OP_DELETE => {
            let stripe = c.u64()?;
            let lane = c.u32()?;
            c.finish()?;
            Ok(Frame::Delete { stripe, lane })
        }
        OP_PING => {
            c.finish()?;
            Ok(Frame::Ping)
        }
        OP_OK => {
            c.finish()?;
            Ok(Frame::Ok)
        }
        OP_CHUNK => {
            let digest = c.u64()?;
            Ok(Frame::Chunk {
                digest,
                payload: c.rest(),
            })
        }
        OP_ERR => {
            let code = c.u8()?;
            c.finish()?;
            let code = ErrCode::from_u8(code).ok_or(NodeError::Malformed("unknown error code"))?;
            Ok(Frame::Err { code })
        }
        _ => Err(NodeError::Malformed("unknown opcode")),
    }
}

/// Writes a PUT frame: fixed header in one `write_all`, payload in a
/// second (no assembly copy of the chunk bytes).
pub fn write_put<W: Write>(
    w: &mut W,
    stripe: u64,
    lane: u32,
    digest: u64,
    payload: &[u8],
) -> Result<()> {
    if payload.len() > MAX_CHUNK {
        return Err(NodeError::FrameTooLarge {
            len: payload.len() as u64,
            max: MAX_CHUNK as u64,
        });
    }
    let mut h = [0u8; 4 + 21];
    h[..4].copy_from_slice(&((21 + payload.len()) as u32).to_le_bytes());
    h[4] = OP_PUT;
    h[5..13].copy_from_slice(&stripe.to_le_bytes());
    h[13..17].copy_from_slice(&lane.to_le_bytes());
    h[17..25].copy_from_slice(&digest.to_le_bytes());
    w.write_all(&h)?;
    w.write_all(payload)?;
    Ok(())
}

/// Writes a CHUNK response frame (header, then the payload).
///
/// Fault sites: [`Site::ServeStall`] delays the whole reply by the
/// plan's param (the client sees a stalled peer); [`Site::ServeReset`]
/// writes the header plus half the payload and then errors, so the
/// serving connection is torn down mid-frame (the client sees
/// [`NodeError::Truncated`]). Both are no-ops when no plan is armed.
pub fn write_chunk<W: Write>(w: &mut W, digest: u64, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_CHUNK {
        return Err(NodeError::FrameTooLarge {
            len: payload.len() as u64,
            max: MAX_CHUNK as u64,
        });
    }
    fault::maybe_stall(Site::ServeStall);
    let mut h = [0u8; 4 + 9];
    h[..4].copy_from_slice(&((9 + payload.len()) as u32).to_le_bytes());
    h[4] = OP_CHUNK;
    h[5..13].copy_from_slice(&digest.to_le_bytes());
    w.write_all(&h)?;
    if fault::hit(Site::ServeReset) {
        w.write_all(payload.get(..payload.len() / 2).unwrap_or(payload))?;
        let _ = w.flush();
        return Err(NodeError::Injected("serve-reset"));
    }
    w.write_all(payload)?;
    Ok(())
}

/// Writes a GET or DELETE request frame (`op` picks which).
pub fn write_locator<W: Write>(w: &mut W, op: u8, stripe: u64, lane: u32) -> Result<()> {
    let mut h = [0u8; 4 + 13];
    h[..4].copy_from_slice(&13u32.to_le_bytes());
    h[4] = op;
    h[5..13].copy_from_slice(&stripe.to_le_bytes());
    h[13..17].copy_from_slice(&lane.to_le_bytes());
    w.write_all(&h)?;
    Ok(())
}

/// Writes a bare frame (PING or OK).
pub fn write_bare<W: Write>(w: &mut W, op: u8) -> Result<()> {
    let mut h = [0u8; 5];
    h[..4].copy_from_slice(&1u32.to_le_bytes());
    h[4] = op;
    w.write_all(&h)?;
    Ok(())
}

/// Writes an ERR response frame.
pub fn write_err<W: Write>(w: &mut W, code: ErrCode) -> Result<()> {
    let mut h = [0u8; 6];
    h[..4].copy_from_slice(&2u32.to_le_bytes());
    h[4] = OP_ERR;
    h[5] = code.as_u8();
    w.write_all(&h)?;
    Ok(())
}

#[inline]
fn le64(b: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[..8]);
    u64::from_le_bytes(w)
}

/// A fast 64-bit chunk digest: four independent FxHash-style lanes
/// folded over 32-byte blocks (instruction-level parallelism keeps it
/// near memory bandwidth), the tail and total length mixed in at the
/// end. Collision-resistant enough to catch disk or wire corruption;
/// **not** cryptographic.
// xlint::hot-path(chunk-digest)
pub fn chunk_digest(bytes: &[u8]) -> u64 {
    const M: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut lanes = [
        0x243F_6A88_85A3_08D3u64,
        0x1319_8A2E_0370_7344,
        0xA409_3822_299F_31D0,
        0x082E_FA98_EC4E_6C89,
    ];
    let mut rest = bytes;
    while rest.len() >= 32 {
        lanes[0] = (lanes[0].rotate_left(5) ^ le64(&rest[0..8])).wrapping_mul(M);
        lanes[1] = (lanes[1].rotate_left(5) ^ le64(&rest[8..16])).wrapping_mul(M);
        lanes[2] = (lanes[2].rotate_left(5) ^ le64(&rest[16..24])).wrapping_mul(M);
        lanes[3] = (lanes[3].rotate_left(5) ^ le64(&rest[24..32])).wrapping_mul(M);
        rest = &rest[32..];
    }
    let mut acc = lanes[0];
    acc = (acc.rotate_left(5) ^ lanes[1]).wrapping_mul(M);
    acc = (acc.rotate_left(5) ^ lanes[2]).wrapping_mul(M);
    acc = (acc.rotate_left(5) ^ lanes[3]).wrapping_mul(M);
    while rest.len() >= 8 {
        acc = (acc.rotate_left(5) ^ le64(&rest[0..8])).wrapping_mul(M);
        rest = &rest[8..];
    }
    let mut tail = [0u8; 8];
    tail[..rest.len()].copy_from_slice(rest);
    acc = (acc.rotate_left(5) ^ u64::from_le_bytes(tail)).wrapping_mul(M);
    (acc.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(M)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_one(bytes: &[u8]) -> Result<&'static str> {
        // Parse a frame out of raw bytes and summarize the outcome.
        let mut r = FrameReader::new();
        let mut cur = Cursor::new(bytes.to_vec());
        match r.read(&mut cur, None)? {
            Ok(Frame::Put { .. }) => Ok("put"),
            Ok(Frame::Get { .. }) => Ok("get"),
            Ok(Frame::Delete { .. }) => Ok("delete"),
            Ok(Frame::Ping) => Ok("ping"),
            Ok(Frame::Ok) => Ok("ok"),
            Ok(Frame::Chunk { .. }) => Ok("chunk"),
            Ok(Frame::Err { .. }) => Ok("err"),
            Err(ReadEnd::CleanEof) => Ok("eof"),
            Err(ReadEnd::Stopped) => Ok("stopped"),
            Err(ReadEnd::Disconnected) => Ok("disconnected"),
        }
    }

    /// A stream that yields `data`, then fails every read with `kind`.
    struct FailAfter {
        data: Vec<u8>,
        pos: usize,
        kind: ErrorKind,
    }

    impl Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos < self.data.len() {
                let n = buf.len().min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(std::io::Error::from(self.kind))
            }
        }
    }

    #[test]
    fn every_frame_round_trips() {
        let payload = [7u8, 8, 9];
        let digest = chunk_digest(&payload);
        let mut buf = Vec::new();
        write_put(&mut buf, 42, 3, digest, &payload).unwrap();
        write_locator(&mut buf, OP_GET, 42, 3).unwrap();
        write_locator(&mut buf, OP_DELETE, 9, 1).unwrap();
        write_bare(&mut buf, OP_PING).unwrap();
        write_bare(&mut buf, OP_OK).unwrap();
        write_chunk(&mut buf, digest, &payload).unwrap();
        write_err(&mut buf, ErrCode::NotFound).unwrap();

        let mut r = FrameReader::new();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            r.read(&mut cur, None).unwrap().unwrap(),
            Frame::Put {
                stripe: 42,
                lane: 3,
                digest,
                payload: &payload
            }
        );
        assert_eq!(
            r.read(&mut cur, None).unwrap().unwrap(),
            Frame::Get {
                stripe: 42,
                lane: 3
            }
        );
        assert_eq!(
            r.read(&mut cur, None).unwrap().unwrap(),
            Frame::Delete { stripe: 9, lane: 1 }
        );
        assert_eq!(r.read(&mut cur, None).unwrap().unwrap(), Frame::Ping);
        assert_eq!(r.read(&mut cur, None).unwrap().unwrap(), Frame::Ok);
        assert_eq!(
            r.read(&mut cur, None).unwrap().unwrap(),
            Frame::Chunk {
                digest,
                payload: &payload
            }
        );
        assert_eq!(
            r.read(&mut cur, None).unwrap().unwrap(),
            Frame::Err {
                code: ErrCode::NotFound
            }
        );
        // Stream exhausted between frames: a clean EOF, not an error.
        assert!(matches!(
            r.read(&mut cur, None).unwrap(),
            Err(ReadEnd::CleanEof)
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        // Announce a 4 GiB body: the reader must refuse based on the
        // prefix alone (the 4 bytes after the prefix never exist).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_one(&bytes).unwrap_err();
        assert!(
            matches!(err, NodeError::FrameTooLarge { len, .. } if len == u32::MAX as u64),
            "got {err:?}"
        );
        // Just above the cap is also refused…
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&((MAX_BODY as u32) + 1).to_le_bytes());
        assert!(matches!(
            read_one(&bytes).unwrap_err(),
            NodeError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        // Truncated inside the length prefix.
        let err = read_one(&[0x05, 0x00]).unwrap_err();
        assert!(
            matches!(err, NodeError::Truncated { missing: 2 }),
            "got {err:?}"
        );
        // Length prefix promises 100 bytes, body delivers 10.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[OP_PING; 10]);
        let err = read_one(&bytes).unwrap_err();
        assert!(
            matches!(err, NodeError::Truncated { missing: 90 }),
            "got {err:?}"
        );
        // Length prefix present, body entirely absent.
        let bytes = 13u32.to_le_bytes();
        let err = read_one(&bytes).unwrap_err();
        assert!(
            matches!(err, NodeError::Truncated { missing: 13 }),
            "got {err:?}"
        );
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        // Zero-length body.
        let bytes = 0u32.to_le_bytes();
        assert!(matches!(
            read_one(&bytes).unwrap_err(),
            NodeError::Malformed(_)
        ));
        // Unknown opcode.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0x7F);
        assert!(matches!(
            read_one(&bytes).unwrap_err(),
            NodeError::Malformed(_)
        ));
        // GET with a short body.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(OP_GET);
        bytes.extend_from_slice(&[0; 4]);
        assert!(matches!(
            read_one(&bytes).unwrap_err(),
            NodeError::Malformed(_)
        ));
        // GET with trailing bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&15u32.to_le_bytes());
        bytes.push(OP_GET);
        bytes.extend_from_slice(&[0; 14]);
        assert!(matches!(
            read_one(&bytes).unwrap_err(),
            NodeError::Malformed(_)
        ));
        // ERR with an unknown code.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.push(OP_ERR);
        bytes.push(200);
        assert!(matches!(
            read_one(&bytes).unwrap_err(),
            NodeError::Malformed(_)
        ));
    }

    #[test]
    fn digest_discriminates_and_is_stable() {
        let a = chunk_digest(b"hello world");
        let b = chunk_digest(b"hello worle");
        assert_ne!(a, b);
        assert_eq!(a, chunk_digest(b"hello world"));
        // Length is mixed in: a zero block and an empty block differ.
        assert_ne!(chunk_digest(&[0u8; 64]), chunk_digest(&[0u8; 63]));
        assert_ne!(chunk_digest(&[]), chunk_digest(&[0u8]));
        // Tail handling: every length near the 32-byte block boundary
        // hashes distinctly for distinct data.
        for len in 24..40 {
            let mut v = vec![0xA5u8; len];
            let base = chunk_digest(&v);
            v[len - 1] ^= 1;
            assert_ne!(base, chunk_digest(&v), "len {len}");
        }
    }

    #[test]
    fn err_codes_round_trip() {
        for code in [
            ErrCode::NotFound,
            ErrCode::Corrupt,
            ErrCode::Malformed,
            ErrCode::TooLarge,
            ErrCode::Io,
            ErrCode::Unavailable,
        ] {
            assert_eq!(ErrCode::from_u8(code.as_u8()), Some(code));
        }
        assert_eq!(ErrCode::from_u8(0), None);
        assert_eq!(ErrCode::from_u8(99), None);
    }

    #[test]
    fn reset_between_frames_is_a_clean_disconnect() {
        // The peer sends an RST before any byte of the next frame: the
        // reader reports Disconnected, not an I/O error or Truncated.
        let mut r = FrameReader::new();
        let mut s = FailAfter {
            data: Vec::new(),
            pos: 0,
            kind: ErrorKind::ConnectionReset,
        };
        assert!(matches!(
            r.read(&mut s, None).unwrap(),
            Err(ReadEnd::Disconnected)
        ));
        // Same for an abort.
        let mut s = FailAfter {
            data: Vec::new(),
            pos: 0,
            kind: ErrorKind::ConnectionAborted,
        };
        assert!(matches!(
            r.read(&mut s, None).unwrap(),
            Err(ReadEnd::Disconnected)
        ));
    }

    #[test]
    fn reset_mid_body_is_truncated_with_missing_count() {
        // Length prefix promises 100 bytes, peer delivers 10, then RST:
        // mid-frame loss must surface as Truncated{missing}, exactly
        // like an EOF mid-body would.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[OP_PING; 10]);
        let mut r = FrameReader::new();
        let mut s = FailAfter {
            data: bytes,
            pos: 0,
            kind: ErrorKind::ConnectionReset,
        };
        let err = r.read(&mut s, None).unwrap_err();
        assert!(
            matches!(err, NodeError::Truncated { missing: 90 }),
            "got {err:?}"
        );
    }

    #[test]
    fn peer_dying_mid_body_yields_truncated_within_the_read_budget() {
        // A real socket peer writes the prefix and part of the body,
        // then drops the connection and goes away. The client's reader
        // (short read timeout + total deadline) must type the loss as
        // Truncated well inside the deadline budget instead of
        // blocking.
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&64u32.to_le_bytes());
            bytes.extend_from_slice(&[OP_PING; 16]);
            conn.write_all(&bytes).unwrap();
            conn.flush().unwrap();
            // Give the reader a moment to consume the partial frame,
            // then die mid-body.
            std::thread::sleep(Duration::from_millis(30));
            drop(conn);
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let budget = Duration::from_secs(2);
        let started = Instant::now();
        let mut r = FrameReader::new();
        let err = r
            .read_deadline(&mut conn, None, Some(Deadline::after(budget)))
            .unwrap_err();
        let elapsed = started.elapsed();
        assert!(
            matches!(err, NodeError::Truncated { missing: 48 }),
            "got {err:?}"
        );
        assert!(elapsed < budget, "took {elapsed:?}, budget {budget:?}");
        peer.join().unwrap();
    }

    #[test]
    fn silent_peer_trips_the_deadline_not_a_hang() {
        // The peer sends a partial frame and then stalls forever: the
        // deadline converts the stall into DeadlineExceeded.
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let peer = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&64u32.to_le_bytes());
            bytes.extend_from_slice(&[OP_PING; 16]);
            conn.write_all(&bytes).unwrap();
            conn.flush().unwrap();
            // Hold the socket open, silent, until the reader finishes.
            let _ = done_rx.recv();
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let started = Instant::now();
        let mut r = FrameReader::new();
        let err = r
            .read_deadline(
                &mut conn,
                None,
                Some(Deadline::after(Duration::from_millis(80))),
            )
            .unwrap_err();
        assert!(
            matches!(err, NodeError::DeadlineExceeded { budget_ms: 80 }),
            "got {err:?}"
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(75) && elapsed < Duration::from_secs(2),
            "took {elapsed:?}"
        );
        let _ = done_tx.send(());
        peer.join().unwrap();
    }

    #[test]
    fn oversized_put_payload_is_refused_at_write_time() {
        // Zero-filled huge vec is cheap (virtual memory), so the guard
        // itself is testable without real allocation pressure.
        let payload = vec![0u8; MAX_CHUNK + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_put(&mut sink, 0, 0, 0, &payload).unwrap_err(),
            NodeError::FrameTooLarge { .. }
        ));
    }
}
