//! The client library: connection management with retry/backoff, the
//! streaming erasure-coded put, and direct + degraded gets.
//!
//! **Put** splits the file into stripes and runs a two-stage pipeline
//! over a scoped encoder thread: while stripe `i` streams to the chunk
//! servers, stripe `i+1` is being filled, encoded
//! ([`CodecInstance::encode_into`]) and digested. Two recycled buffer
//! sets bound memory at two stripes regardless of file size.
//!
//! **Get** reads data lanes straight from their servers, verifying the
//! digest end to end. Any failure — connection refused, a dead server
//! mid-read, a digest mismatch — flips the stripe to the *degraded*
//! path: the failure pattern is looked up in a [`SessionCache`] (one
//! [`RepairSession`] compile per pattern, replayed allocation-free
//! thereafter), only the lanes the session's plan actually reads are
//! fetched (an LRC light pattern touches one local group, the paper's
//! §3.2 repair-locality argument applied to reads), and the missing
//! lanes are reconstructed in place.

use crate::directory::{Directory, ServerId};
use crate::error::{NodeError, Result};
use crate::fault::{self, Site};
use crate::lock;
use crate::manifest::{Manifest, StripeEntry};
use crate::protocol::{
    chunk_digest, write_bare, write_locator, write_put, Deadline, ErrCode, Frame, FrameReader,
    ReadEnd, OP_DELETE, OP_GET, OP_PING,
};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xorbas_core::{CodeSpec, RepairSession, StripeViewMut};
use xorbas_sim::codecs::CodecInstance;
use xorbas_sim::fasthash::FastMap;

/// How hard to try when a connection does not come up at once.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Connection attempts before [`NodeError::ConnectFailed`].
    pub attempts: u32,
    /// Delay after the first failed attempt (the floor of every
    /// jittered backoff; the ramp base when jitter is off).
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay.
    pub max_delay: Duration,
    /// Per-request reply timeout (guards against a server that
    /// accepted the connection and then went dark).
    pub op_timeout: Duration,
    /// Total wall-clock cap across one [`connect_with_retry`] call —
    /// dialing plus every backoff sleep. A dead address costs at most
    /// this long however many attempts remain.
    pub total_deadline: Duration,
    /// Decorrelated jitter on the backoff (uniform in
    /// `[base_delay, 3·previous]`). On by default: a cluster of
    /// clients reconnecting after a kill must not stampede in
    /// lockstep. Turn off for exactly reproducible backoff timing.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            op_timeout: Duration::from_secs(2),
            total_deadline: Duration::from_secs(1),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after a delay of `prev`: doubled when
    /// jitter is off, decorrelated jitter (uniform in
    /// `[base_delay, 3·prev]`) when on; capped at `max_delay` either
    /// way. Decorrelation keeps a fleet of clients that failed at the
    /// same instant from re-dialing at the same instant forever.
    pub fn next_delay(&self, prev: Duration) -> Duration {
        if !self.jitter {
            return prev.saturating_mul(2).min(self.max_delay);
        }
        static SALT: AtomicU64 = AtomicU64::new(0x5eed_1e55_c0ff_ee00);
        let salt = SALT.fetch_add(1, Ordering::Relaxed);
        let base = (self.base_delay.as_nanos() as u64).max(1);
        let hi = (prev.as_nanos() as u64).saturating_mul(3).max(base + 1);
        let pick = base + fault::mix64(salt) % (hi - base);
        Duration::from_nanos(pick).min(self.max_delay)
    }
}

/// Dials `addr` with backoff per `policy`, bounded both by
/// `policy.attempts` and by `policy.total_deadline` of wall clock.
/// Each dial uses `connect_timeout` so a black-holed address cannot
/// hang an attempt. Fault site: [`Site::ConnectRefuse`] makes an
/// attempt fail as if refused.
pub fn connect_with_retry(addr: SocketAddr, policy: &RetryPolicy) -> Result<TcpStream> {
    let attempts = policy.attempts.max(1);
    let deadline = Instant::now() + policy.total_deadline;
    let mut delay = policy.base_delay;
    for attempt in 0..attempts {
        let dialed = if fault::hit(Site::ConnectRefuse) {
            None
        } else {
            let budget = deadline
                .saturating_duration_since(Instant::now())
                .min(policy.op_timeout)
                .max(Duration::from_millis(1));
            TcpStream::connect_timeout(&addr, budget).ok()
        };
        if let Some(s) = dialed {
            return Ok(s);
        }
        let now = Instant::now();
        if attempt + 1 >= attempts || now >= deadline {
            break;
        }
        std::thread::sleep(delay.min(deadline.saturating_duration_since(now)));
        delay = policy.next_delay(delay);
    }
    Err(NodeError::ConnectFailed { addr, attempts })
}

/// How often a blocked reply read wakes up to check its deadline. The
/// timeout only fires on an *idle* socket, so a healthy reply never
/// pays it; a stalled peer is noticed within one tick.
const READ_POLL_TICK: Duration = Duration::from_millis(25);

/// One connection to one chunk server.
#[derive(Debug)]
pub struct NodeConn {
    stream: TcpStream,
    reader: FrameReader,
    /// Total budget for one request's reply (from [`RetryPolicy`]).
    op_timeout: Duration,
}

impl NodeConn {
    /// Connects (with retry) and configures the socket for
    /// request/response traffic: a short read timeout for deadline
    /// polling, a write timeout so a wedged peer cannot absorb a put
    /// forever, and `op_timeout` as the total per-reply budget.
    pub fn connect(addr: SocketAddr, policy: &RetryPolicy) -> Result<Self> {
        let stream = connect_with_retry(addr, policy)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(
            policy
                .op_timeout
                .min(READ_POLL_TICK)
                .max(Duration::from_millis(1)),
        ))?;
        stream.set_write_timeout(Some(policy.op_timeout))?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            op_timeout: policy.op_timeout,
        })
    }

    fn read_reply(&mut self) -> Result<Frame<'_>> {
        let Self {
            stream,
            reader,
            op_timeout,
        } = self;
        let mut rd = &*stream;
        match reader.read_deadline(&mut rd, None, Some(Deadline::after(*op_timeout)))? {
            Ok(frame) => Ok(frame),
            Err(ReadEnd::CleanEof | ReadEnd::Stopped) => Err(NodeError::Truncated { missing: 0 }),
            Err(ReadEnd::Disconnected) => Err(NodeError::Disconnected),
        }
    }

    /// Stores one chunk.
    pub fn put(&mut self, stripe: u64, lane: u32, digest: u64, payload: &[u8]) -> Result<()> {
        write_put(&mut (&self.stream), stripe, lane, digest, payload)?;
        match self.read_reply()? {
            Frame::Ok => Ok(()),
            Frame::Err { code } => Err(remote_err(code, stripe, lane)),
            _ => Err(NodeError::Malformed("unexpected reply to PUT")),
        }
    }

    /// Fetches one chunk into `out` and verifies its digest end to end.
    pub fn get_chunk(&mut self, stripe: u64, lane: u32, out: &mut Vec<u8>) -> Result<u64> {
        write_locator(&mut (&self.stream), OP_GET, stripe, lane)?;
        let Self {
            stream,
            reader,
            op_timeout,
        } = self;
        let mut rd = &*stream;
        match reader.read_deadline(&mut rd, None, Some(Deadline::after(*op_timeout)))? {
            Ok(Frame::Chunk { digest, payload }) => {
                out.clear();
                out.extend_from_slice(payload);
                if chunk_digest(out) != digest {
                    return Err(NodeError::ChunkCorrupt { stripe, lane });
                }
                Ok(digest)
            }
            Ok(Frame::Err { code }) => Err(remote_err(code, stripe, lane)),
            Ok(_) => Err(NodeError::Malformed("unexpected reply to GET")),
            Err(ReadEnd::Disconnected) => Err(NodeError::Disconnected),
            Err(_) => Err(NodeError::Truncated { missing: 0 }),
        }
    }

    /// Deletes one chunk (test and failure-injection helper).
    pub fn delete(&mut self, stripe: u64, lane: u32) -> Result<()> {
        write_locator(&mut (&self.stream), OP_DELETE, stripe, lane)?;
        match self.read_reply()? {
            Frame::Ok => Ok(()),
            Frame::Err { code } => Err(remote_err(code, stripe, lane)),
            _ => Err(NodeError::Malformed("unexpected reply to DELETE")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        write_bare(&mut (&self.stream), OP_PING)?;
        match self.read_reply()? {
            Frame::Ok => Ok(()),
            Frame::Err { code } => Err(NodeError::Remote(code)),
            _ => Err(NodeError::Malformed("unexpected reply to PING")),
        }
    }
}

fn remote_err(code: ErrCode, stripe: u64, lane: u32) -> NodeError {
    match code {
        ErrCode::NotFound => NodeError::ChunkNotFound { stripe, lane },
        ErrCode::Corrupt => NodeError::ChunkCorrupt { stripe, lane },
        other => NodeError::Remote(other),
    }
}

/// Whether an error means "the server (or the pipe to it) is gone" as
/// opposed to "the server answered and the chunk is bad". A blown
/// deadline counts: a peer too slow to answer inside the budget is
/// failed over exactly like a dead one (the Rashmi-et-al. observation
/// that most "failures" are slowness, operationally).
fn is_transport(e: &NodeError) -> bool {
    matches!(
        e,
        NodeError::Io(_)
            | NodeError::Truncated { .. }
            | NodeError::Disconnected
            | NodeError::DeadlineExceeded { .. }
            | NodeError::ConnectFailed { .. }
            | NodeError::FrameTooLarge { .. }
            | NodeError::Remote(ErrCode::Unavailable)
    )
}

/// Compile-once cache of [`RepairSession`]s keyed by failure pattern,
/// shared between degraded reads and the repair agent.
#[derive(Debug, Clone, Default)]
pub struct SessionCache {
    inner: Arc<Mutex<FastMap<Vec<usize>, Arc<RepairSession>>>>,
}

impl SessionCache {
    /// Returns the cached session for `unavailable` (sorted lane
    /// indices), compiling and caching on first sight. `Ok(None)` for
    /// codecs without a session decoder (replication).
    pub fn get_or_compile(
        &self,
        codec: &CodecInstance,
        unavailable: &[usize],
    ) -> Result<Option<Arc<RepairSession>>> {
        let mut map = lock(&self.inner);
        if let Some(s) = map.get(unavailable) {
            return Ok(Some(Arc::clone(s)));
        }
        match codec.repair_session(unavailable) {
            None => Ok(None),
            Some(Ok(session)) => {
                let session = Arc::new(session);
                map.insert(unavailable.to_vec(), Arc::clone(&session));
                Ok(Some(session))
            }
            Some(Err(e)) => Err(e.into()),
        }
    }

    /// Number of compiled patterns.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether no pattern has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How a read was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// Straight from the chunk's server.
    Direct,
    /// Reconstructed from surviving lanes.
    Degraded {
        /// Whether the whole repair ran on the light (local-group)
        /// decoder.
        light: bool,
    },
}

/// Outcome accounting for a whole-file [`ClusterClient::get`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GetReport {
    /// Stripes read.
    pub stripes: u64,
    /// Stripes that needed the degraded path.
    pub degraded_stripes: u64,
}

/// A recycled stripe's worth of lane buffers plus their digests.
#[derive(Default)]
struct BufSet {
    lanes: Vec<Vec<u8>>,
    digests: Vec<u64>,
}

/// The cluster-facing client.
pub struct ClusterClient {
    codec: CodecInstance,
    chunk_bytes: usize,
    directory: Arc<Mutex<Directory>>,
    retry: RetryPolicy,
    conns: Vec<Option<NodeConn>>,
    sessions: SessionCache,
    stripe_scratch: Vec<Vec<u8>>,
    unavailable_scratch: Vec<usize>,
}

impl ClusterClient {
    /// A client striping with `codec` at `chunk_bytes` per chunk.
    pub fn new(
        codec: CodecInstance,
        chunk_bytes: usize,
        directory: Arc<Mutex<Directory>>,
        retry: RetryPolicy,
        sessions: SessionCache,
    ) -> Self {
        Self {
            codec,
            chunk_bytes,
            directory,
            retry,
            conns: Vec::new(),
            sessions,
            stripe_scratch: Vec::new(),
            unavailable_scratch: Vec::new(),
        }
    }

    /// The shared placement directory.
    pub fn directory(&self) -> &Arc<Mutex<Directory>> {
        &self.directory
    }

    /// The shared repair-session cache.
    pub fn sessions(&self) -> &SessionCache {
        &self.sessions
    }

    /// The codec this client stripes with.
    pub fn codec(&self) -> &CodecInstance {
        &self.codec
    }

    /// Registers a manifest's stripes with the directory (a fresh
    /// client reading a file it did not write). Fails with
    /// [`NodeError::ManifestMismatch`] when the manifest's geometry is
    /// not the one this client stripes with.
    pub fn register_manifest(&self, manifest: &Manifest) -> Result<()> {
        self.check_manifest(manifest)?;
        let mut dir = lock(&self.directory);
        for entry in &manifest.stripes {
            dir.register_stripe(entry.id, entry.servers.clone());
        }
        Ok(())
    }

    /// A manifest is only readable by a client configured with the
    /// exact same code spec and chunk size: scratch sizing, degraded
    /// repair, and extraction geometry all assume they agree. Anything
    /// else would silently misread, so it is a typed error instead.
    fn check_manifest(&self, manifest: &Manifest) -> Result<()> {
        if manifest.spec != self.codec.spec() {
            return Err(NodeError::ManifestMismatch(
                "manifest code spec differs from the client's codec",
            ));
        }
        if manifest.chunk_bytes != self.chunk_bytes as u64 {
            return Err(NodeError::ManifestMismatch(
                "manifest chunk size differs from the client's",
            ));
        }
        Ok(())
    }

    /// Streams `data` into the cluster: stripes are encoded on a
    /// pipelined encoder thread while the previous stripe's chunks are
    /// on the wire. Returns the manifest needed to read it back.
    pub fn put(&mut self, data: &[u8]) -> Result<Manifest> {
        let spec = self.codec.spec();
        let k = spec.data_blocks();
        let n = spec.total_blocks();
        let cb = self.chunk_bytes;
        let stripe_payload = k * cb;
        let stripe_count = if data.is_empty() {
            0
        } else {
            data.len().div_ceil(stripe_payload)
        };

        let (ready_tx, ready_rx) = mpsc::sync_channel::<Result<BufSet>>(2);
        let (free_tx, free_rx) = mpsc::sync_channel::<BufSet>(2);
        for _ in 0..2 {
            let _ = free_tx.send(BufSet::default());
        }

        let codec = &self.codec;
        let conns = &mut self.conns;
        let dir = &self.directory;
        let retry = &self.retry;

        let entries = std::thread::scope(|s| {
            s.spawn(move || {
                for stripe_idx in 0..stripe_count {
                    let Ok(mut set) = free_rx.recv() else { return };
                    let filled = fill_and_encode(codec, &mut set, data, stripe_idx, k, n, cb);
                    if ready_tx.send(filled.map(|()| set)).is_err() {
                        return;
                    }
                }
            });
            let free_tx = free_tx;
            let mut run = || -> Result<Vec<StripeEntry>> {
                let mut entries = Vec::with_capacity(stripe_count);
                for _ in 0..stripe_count {
                    let set = match ready_rx.recv() {
                        Ok(Ok(set)) => set,
                        Ok(Err(e)) => return Err(e),
                        Err(_) => {
                            return Err(NodeError::Malformed("encoder pipeline closed early"))
                        }
                    };
                    let stripe_id = {
                        let mut d = lock(dir);
                        d.place_stripe(n)?.0
                    };
                    let servers = put_stripe(conns, dir, retry, stripe_id, &set)?;
                    entries.push(StripeEntry {
                        id: stripe_id,
                        servers,
                    });
                    let _ = free_tx.send(set);
                }
                Ok(entries)
            };
            let out = run();
            // Unblock the encoder if we bailed early.
            drop(free_tx);
            out
        })?;

        let manifest = Manifest {
            spec,
            chunk_bytes: cb as u64,
            file_len: data.len() as u64,
            stripes: entries,
        };
        // Acknowledge durably: with a WAL-backed directory the manifest
        // is on disk before the caller sees Ok, so a restarted cluster
        // can hand the file back. (No-op for an in-memory directory.)
        lock(&self.directory).log_manifest(&manifest)?;
        Ok(manifest)
    }

    /// Reads a whole file back, bit-identical, serving stripes through
    /// the degraded path whenever the direct one fails.
    pub fn get(&mut self, manifest: &Manifest, out: &mut Vec<u8>) -> Result<GetReport> {
        self.check_manifest(manifest)?;
        let k = manifest.spec.data_blocks();
        let cb = manifest.chunk_bytes as usize;
        out.clear();
        let mut remaining = manifest.file_len as usize;
        let mut report = GetReport::default();
        // Every data lane must hold fresh bytes after a degraded
        // stripe: a light repair plan only reads one local group, so
        // lanes outside it are explicit fetch targets.
        let targets: Vec<usize> = (0..k).collect();
        for entry in &manifest.stripes {
            report.stripes += 1;
            if !self.try_direct_stripe(entry.id, k) {
                self.fetch_stripe_degraded(entry.id, &targets)?;
                report.degraded_stripes += 1;
            }
            for lane in 0..k {
                if remaining == 0 {
                    break;
                }
                let take = remaining.min(cb);
                let chunk = self
                    .stripe_scratch
                    .get(lane)
                    .ok_or(NodeError::Malformed("stripe scratch underfilled"))?;
                let bytes = chunk
                    .get(..take)
                    .ok_or(NodeError::Malformed("chunk shorter than manifest geometry"))?;
                out.extend_from_slice(bytes);
                remaining -= take;
            }
        }
        if remaining > 0 {
            return Err(NodeError::Malformed(
                "manifest stripes shorter than file_len",
            ));
        }
        Ok(report)
    }

    /// Reads one data chunk, reporting whether the direct or degraded
    /// path served it. This is the load generator's read op.
    pub fn read_data_chunk(
        &mut self,
        stripe: u64,
        lane: u32,
        out: &mut Vec<u8>,
    ) -> Result<ReadKind> {
        if self.read_chunk_direct(stripe, lane, out).is_ok() {
            return Ok(ReadKind::Direct);
        }
        let light = self.fetch_stripe_degraded(stripe, &[lane as usize])?;
        let chunk = self
            .stripe_scratch
            .get(lane as usize)
            .ok_or(NodeError::Malformed("lane out of range after repair"))?;
        out.clear();
        out.extend_from_slice(chunk);
        Ok(ReadKind::Degraded { light })
    }

    /// Direct read of `(stripe, lane)` from its assigned server,
    /// updating the directory (dead server / corrupt chunk) on failure
    /// so the caller can fall back to the degraded path.
    fn read_chunk_direct(&mut self, stripe: u64, lane: u32, out: &mut Vec<u8>) -> Result<()> {
        let (sid, addr) = {
            let d = lock(&self.directory);
            let servers = d
                .servers_of(stripe)
                .ok_or(NodeError::UnknownStripe(stripe))?;
            let sid = *servers
                .get(lane as usize)
                .ok_or(NodeError::Malformed("lane out of range for stripe"))?;
            if d.is_corrupt(stripe, lane) {
                return Err(NodeError::ChunkCorrupt { stripe, lane });
            }
            let addr = d
                .addr_of(sid)
                .ok_or(NodeError::Malformed("server id out of roster"))?;
            if !d.is_alive(sid) {
                return Err(NodeError::ConnectFailed { addr, attempts: 0 });
            }
            (sid, addr)
        };
        let outcome = ensure_conn(&mut self.conns, sid, addr, &self.retry)
            .and_then(|conn| conn.get_chunk(stripe, lane, out))
            .map(|_digest| ());
        if let Err(e) = &outcome {
            if is_transport(e) {
                if let Some(slot) = self.conns.get_mut(sid) {
                    *slot = None;
                }
                lock(&self.directory).mark_dead(sid);
            } else if matches!(
                e,
                NodeError::ChunkCorrupt { .. } | NodeError::ChunkNotFound { .. }
            ) {
                lock(&self.directory).report_corrupt(stripe, lane);
            }
        }
        outcome
    }

    /// Fills `stripe_scratch[0..k]` via direct reads; `false` means at
    /// least one lane failed and the stripe needs the degraded path.
    fn try_direct_stripe(&mut self, stripe: u64, k: usize) -> bool {
        self.ensure_scratch();
        for lane in 0..k {
            let mut buf = std::mem::take(&mut self.stripe_scratch[lane]);
            let res = self.read_chunk_direct(stripe, lane as u32, &mut buf);
            self.stripe_scratch[lane] = buf;
            if res.is_err() {
                return false;
            }
        }
        true
    }

    /// Serves a stripe degraded: compile (or reuse) the repair session
    /// for the current failure pattern, fetch the lanes its plan reads
    /// plus any `targets` the plan does not cover, and reconstruct the
    /// missing lanes in place in `stripe_scratch`. On `Ok`, every lane
    /// in `targets` holds fresh bytes — a light plan only reads one
    /// local group, so lanes the caller needs outside it are fetched
    /// directly rather than left stale. Returns whether the repair ran
    /// entirely on the light decoder.
    fn fetch_stripe_degraded(&mut self, stripe: u64, targets: &[usize]) -> Result<bool> {
        let n = self.codec.total_blocks();
        self.ensure_scratch();
        let mut last_err = NodeError::Malformed("degraded read did not converge");
        // The failure pattern can grow while we fetch (another server
        // dies); every directory update feeds back into the next turn.
        // Later turns back off briefly: transient unavailability (a
        // restarting server, an injected stall) often clears within
        // one liveness-probe round, and spinning through every attempt
        // in microseconds would burn them all before it can.
        for attempt in 0..n + 2 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(4 * (attempt as u64).min(10)));
            }
            let mut unavailable = std::mem::take(&mut self.unavailable_scratch);
            lock(&self.directory).unavailable_lanes(stripe, &mut unavailable)?;

            if matches!(self.codec.spec(), CodeSpec::Replication { .. }) {
                // Replication "repair" = read any surviving replica.
                for lane in 0..n {
                    if unavailable.contains(&lane) {
                        continue;
                    }
                    let mut buf = std::mem::take(&mut self.stripe_scratch[0]);
                    let res = self.read_chunk_direct(stripe, lane as u32, &mut buf);
                    if res.is_ok() {
                        // Replicas are identical: surface the bytes on
                        // every lane the caller is about to read.
                        for &t in targets {
                            if t != 0 {
                                if let Some(dst) = self.stripe_scratch.get_mut(t) {
                                    dst.clear();
                                    dst.extend_from_slice(&buf);
                                }
                            }
                        }
                    }
                    self.stripe_scratch[0] = buf;
                    if res.is_ok() {
                        self.unavailable_scratch = unavailable;
                        return Ok(true);
                    }
                }
                self.unavailable_scratch = unavailable;
                return Err(NodeError::Malformed("no surviving replica to read"));
            }

            let session = match self.sessions.get_or_compile(&self.codec, &unavailable) {
                Ok(Some(s)) => s,
                Ok(None) => {
                    self.unavailable_scratch = unavailable;
                    return Err(NodeError::Malformed("codec has no repair session"));
                }
                Err(e) => {
                    self.unavailable_scratch = unavailable;
                    return Err(e);
                }
            };

            // Fetch what the plan reads plus the caller's targets the
            // plan does not cover; missing lanes are reconstructed
            // locally, lanes neither read nor targeted are never
            // touched (and stay stale — callers must not read them).
            let mut fetch_ok = true;
            for lane in 0..n {
                let needed = (session.plan().tasks.iter().any(|t| t.reads.contains(&lane))
                    || targets.contains(&lane))
                    && !session.missing().contains(&lane);
                if !needed {
                    continue;
                }
                let mut buf = std::mem::take(&mut self.stripe_scratch[lane]);
                let res = self.read_chunk_direct(stripe, lane as u32, &mut buf);
                self.stripe_scratch[lane] = buf;
                if let Err(e) = res {
                    last_err = e;
                    fetch_ok = false;
                    break;
                }
            }
            self.unavailable_scratch = unavailable;
            if !fetch_ok {
                continue;
            }

            // All source lanes are in place: reconstruct the pattern.
            for lane in &mut self.stripe_scratch {
                lane.resize(self.chunk_bytes, 0);
            }
            let mut refs: Vec<&mut [u8]> = self
                .stripe_scratch
                .iter_mut()
                .map(Vec::as_mut_slice)
                .collect();
            let mut view = StripeViewMut::new(&mut refs, session.missing())?;
            session.repair(&mut view)?;
            return Ok(session.plan().is_light());
        }
        Err(last_err)
    }

    /// Sizes the stripe scratch to the codec's geometry.
    fn ensure_scratch(&mut self) {
        let n = self.codec.total_blocks();
        self.stripe_scratch.resize_with(n, Vec::new);
        for lane in &mut self.stripe_scratch {
            lane.resize(self.chunk_bytes, 0);
        }
    }
}

/// Fills a buffer set with stripe `stripe_idx`'s data (zero-padded),
/// encodes the parity lanes, and digests every lane. Runs on the
/// encoder thread of [`ClusterClient::put`].
fn fill_and_encode(
    codec: &CodecInstance,
    set: &mut BufSet,
    data: &[u8],
    stripe_idx: usize,
    k: usize,
    n: usize,
    chunk_bytes: usize,
) -> Result<()> {
    set.lanes.resize_with(n, Vec::new);
    set.digests.resize(n, 0);
    for lane in &mut set.lanes {
        lane.resize(chunk_bytes, 0);
    }
    let base = stripe_idx * k * chunk_bytes;
    for lane in 0..k {
        let start = (base + lane * chunk_bytes).min(data.len());
        let end = (base + (lane + 1) * chunk_bytes).min(data.len());
        let avail = end - start;
        let buf = set
            .lanes
            .get_mut(lane)
            .ok_or(NodeError::Malformed("lane buffer missing"))?;
        buf.get_mut(..avail)
            .ok_or(NodeError::Malformed("lane buffer too short"))?
            .copy_from_slice(&data[start..end]);
        if let Some(tail) = buf.get_mut(avail..) {
            tail.fill(0);
        }
    }
    let (data_lanes, parity_lanes) = set.lanes.split_at_mut(k);
    let data_refs: Vec<&[u8]> = data_lanes.iter().map(Vec::as_slice).collect();
    let mut parity_refs: Vec<&mut [u8]> = parity_lanes.iter_mut().map(Vec::as_mut_slice).collect();
    codec.encode_into(&data_refs, &mut parity_refs)?;
    for (lane, digest) in set.lanes.iter().zip(set.digests.iter_mut()) {
        *digest = chunk_digest(lane);
    }
    Ok(())
}

/// Returns (creating if needed) the cached connection to `sid`.
pub(crate) fn ensure_conn<'a>(
    conns: &'a mut Vec<Option<NodeConn>>,
    sid: ServerId,
    addr: SocketAddr,
    retry: &RetryPolicy,
) -> Result<&'a mut NodeConn> {
    if conns.len() <= sid {
        conns.resize_with(sid + 1, || None);
    }
    let slot = conns
        .get_mut(sid)
        .ok_or(NodeError::Malformed("server id out of roster"))?;
    if slot.is_none() {
        *slot = Some(NodeConn::connect(addr, retry)?);
    }
    slot.as_mut()
        .ok_or(NodeError::Malformed("connection slot empty"))
}

/// Streams one encoded stripe to its assigned servers, failing over to
/// a replacement placement when a server dies mid-put. Returns the
/// final lane→server assignment.
fn put_stripe(
    conns: &mut Vec<Option<NodeConn>>,
    dir: &Arc<Mutex<Directory>>,
    retry: &RetryPolicy,
    stripe: u64,
    set: &BufSet,
) -> Result<Vec<ServerId>> {
    let mut assigned: Vec<ServerId> = {
        let d = lock(dir);
        d.servers_of(stripe)
            .map(<[ServerId]>::to_vec)
            .ok_or(NodeError::UnknownStripe(stripe))?
    };
    for lane in 0..set.lanes.len() {
        // Fault site: the put pipeline dies mid-stripe, as if the
        // writer thread was killed. The file is never acknowledged —
        // the stripes already placed are harmless WAL ghosts.
        if fault::hit(Site::CrashPut) {
            return Err(NodeError::Injected("crash-put"));
        }
        let digest = *set
            .digests
            .get(lane)
            .ok_or(NodeError::Malformed("digest missing for lane"))?;
        let payload = set
            .lanes
            .get(lane)
            .ok_or(NodeError::Malformed("payload missing for lane"))?;
        let mut failovers = 0usize;
        loop {
            let sid = *assigned
                .get(lane)
                .ok_or(NodeError::Malformed("assignment missing for lane"))?;
            let addr = {
                lock(dir)
                    .addr_of(sid)
                    .ok_or(NodeError::Malformed("server id out of roster"))?
            };
            let attempt = ensure_conn(conns, sid, addr, retry)
                .and_then(|c| c.put(stripe, lane as u32, digest, payload));
            // A server that answered "I/O error" (e.g. a torn chunk
            // write) is alive but could not take the chunk: fail the
            // lane over to another server without declaring it dead.
            let disk_failed = matches!(attempt, Err(NodeError::Remote(ErrCode::Io)));
            match attempt {
                Ok(()) => break,
                Err(e) if is_transport(&e) || disk_failed => {
                    let mut d = lock(dir);
                    if !disk_failed {
                        if let Some(slot) = conns.get_mut(sid) {
                            *slot = None;
                        }
                        d.mark_dead(sid);
                    }
                    failovers += 1;
                    if failovers > d.server_count() {
                        return Err(e);
                    }
                    let new_sid = d.choose_replacement(stripe)?;
                    d.reassign(stripe, lane as u32, new_sid)?;
                    if let Some(slot) = assigned.get_mut(lane) {
                        *slot = new_sid;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(assigned)
}
