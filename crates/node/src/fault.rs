//! Deterministic fault injection for the node stack.
//!
//! The paper's reliability argument (§2, §5) is about how a storage
//! system behaves under the *messy* failures a warehouse actually sees —
//! transient unavailability, torn writes, silent bit rot — not just the
//! clean server kill `load_gen` has always staged. This module gives the
//! whole crate one seeded, process-global [`FaultPlan`]: code paths call
//! [`hit`]/[`hit_value`]/[`maybe_stall`] at labeled sites, and those
//! calls are a single relaxed atomic load (a branch, no lock) when no
//! plan is armed, so production paths pay essentially nothing.
//!
//! Decisions are deterministic: each site keeps its own call counter,
//! and the decision for call *i* at site *s* is a pure function of
//! `(seed, s, i)` via splitmix64. Two runs with the same plan inject
//! the same faults at the same per-site call indices (thread
//! interleaving may map them to different wall-clock moments, which is
//! exactly the nondeterminism a chaos harness should absorb).
//!
//! A plan is armed programmatically with [`arm`] or from the
//! `XORBAS_NODE_FAULTS` environment knob via [`arm_from_env`] using a
//! spec like `seed=42;connect-refuse=5;serve-stall=3:40;bit-flip=10`
//! (per-site rates in permille, an optional `:param` carrying
//! site-specific meaning such as a stall in milliseconds).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of injection sites (length of [`Site::ALL`]).
pub const SITE_COUNT: usize = 8;

/// A labeled fault-injection site.
///
/// Each variant names one place in the stack where an armed plan may
/// fire. The wire sites live in `protocol.rs`/`server.rs`, the storage
/// sites in `chunk_store.rs`, and the crash sites in `client.rs`/
/// `repair.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// Client-side: a dial attempt is treated as refused.
    ConnectRefuse = 0,
    /// Server-side: a CHUNK reply is cut mid-frame (header plus half
    /// the payload) and the connection dropped.
    ServeReset = 1,
    /// Server-side: the reply is delayed by the site param (ms) before
    /// any byte is written — a stalled peer from the client's view.
    ServeStall = 2,
    /// Chunk store: the temp-file write stops partway and errors,
    /// leaving a torn `.tmp` behind.
    TornWrite = 3,
    /// Chunk store: one payload byte is flipped *after* the chunk is
    /// durably renamed — silent bit rot for the scrubber to find.
    BitFlip = 4,
    /// Client: the put pipeline aborts mid-stripe, as if the writer
    /// thread died.
    CrashPut = 5,
    /// Repair agent: a stripe repair aborts after reconstruction but
    /// before all lanes are re-placed.
    CrashRepair = 6,
    /// Reserved for harness-specific experiments; never fired by
    /// library code.
    Extra = 7,
}

impl Site {
    /// Every site, in `repr` order.
    pub const ALL: [Site; SITE_COUNT] = [
        Site::ConnectRefuse,
        Site::ServeReset,
        Site::ServeStall,
        Site::TornWrite,
        Site::BitFlip,
        Site::CrashPut,
        Site::CrashRepair,
        Site::Extra,
    ];

    /// The spec/telemetry name of the site.
    pub fn name(self) -> &'static str {
        match self {
            Site::ConnectRefuse => "connect-refuse",
            Site::ServeReset => "serve-reset",
            Site::ServeStall => "serve-stall",
            Site::TornWrite => "torn-write",
            Site::BitFlip => "bit-flip",
            Site::CrashPut => "crash-put",
            Site::CrashRepair => "crash-repair",
            Site::Extra => "extra",
        }
    }

    fn from_name(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }
}

#[derive(Default)]
struct SiteCfg {
    /// Firing rate out of 1000 calls (0 = site disabled).
    permille: u32,
    /// Site-specific parameter (e.g. stall milliseconds).
    param: u64,
    /// Per-site call counter; the decision index.
    counter: AtomicU64,
    /// How many calls actually fired.
    fired: AtomicU64,
}

/// A seeded set of per-site firing rates.
///
/// Build one with [`FaultPlan::new`] + [`FaultPlan::with`] (or parse a
/// spec string with [`FaultPlan::parse`]), then [`arm`] it. Rates are
/// permille per *call* at the site, decided deterministically from
/// `(seed, site, call index)`.
pub struct FaultPlan {
    seed: u64,
    sites: [SiteCfg; SITE_COUNT],
}

impl FaultPlan {
    /// A plan with every site disabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: Default::default(),
        }
    }

    /// Enables `site` at `permille` firings per 1000 calls.
    pub fn with(self, site: Site, permille: u32) -> Self {
        self.with_param(site, permille, 0)
    }

    /// Enables `site` with a site-specific parameter (e.g. stall ms).
    pub fn with_param(mut self, site: Site, permille: u32, param: u64) -> Self {
        let cfg = &mut self.sites[site as usize];
        cfg.permille = permille.min(1000);
        cfg.param = param;
        self
    }

    /// Parses a `seed=N;site=permille[:param];…` spec (the
    /// `XORBAS_NODE_FAULTS` format). Unknown site names and malformed
    /// clauses are rejected so a typo can't silently disable chaos.
    pub fn parse(spec: &str) -> std::result::Result<FaultPlan, &'static str> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause.split_once('=').ok_or("clause missing `=`")?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value.parse().map_err(|_| "bad seed value")?;
                continue;
            }
            let site = Site::from_name(key).ok_or("unknown site name")?;
            let (rate, param) = match value.split_once(':') {
                Some((r, p)) => (r, p.parse().map_err(|_| "bad site param")?),
                None => (value, 0u64),
            };
            let permille: u32 = rate.parse().map_err(|_| "bad permille value")?;
            plan = plan.with_param(site, permille, param);
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides call `counter.fetch_add(1)` at `site`. `Some(h)` when
    /// the site fires, carrying the decision hash for callers that
    /// need site-specific entropy (e.g. which byte to flip).
    fn roll(&self, site: Site) -> Option<u64> {
        let cfg = &self.sites[site as usize];
        if cfg.permille == 0 {
            return None;
        }
        let idx = cfg.counter.fetch_add(1, Ordering::Relaxed);
        let h = mix64(
            self.seed
                ^ (site as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ idx.wrapping_mul(0xbf58_476d_1ce4_e5b9),
        );
        if h % 1000 < u64::from(cfg.permille) {
            cfg.fired.fetch_add(1, Ordering::Relaxed);
            Some(mix64(h))
        } else {
            None
        }
    }

    /// Per-site `(name, calls, fired)` counters, for chaos telemetry.
    pub fn counters(&self) -> [(&'static str, u64, u64); SITE_COUNT] {
        let mut out = [("", 0u64, 0u64); SITE_COUNT];
        for (slot, site) in out.iter_mut().zip(Site::ALL) {
            let cfg = &self.sites[site as usize];
            *slot = (
                site.name(),
                cfg.counter.load(Ordering::Relaxed),
                cfg.fired.load(Ordering::Relaxed),
            );
        }
        out
    }
}

/// Fast-path flag: a single relaxed load decides "is chaos on at all".
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

/// Unit tests that arm/disarm the process-global plan must hold this
/// lock so parallel test threads don't fight over it.
#[cfg(test)]
pub(crate) static TEST_PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Arms `plan` process-wide, replacing any previous plan. Returns a
/// handle so the harness can read [`FaultPlan::counters`] afterwards.
pub fn arm(plan: FaultPlan) -> Arc<FaultPlan> {
    let plan = Arc::new(plan);
    let mut slot = crate::lock(&PLAN);
    *slot = Some(Arc::clone(&plan));
    ARMED.store(true, Ordering::SeqCst);
    plan
}

/// Disarms fault injection; every site becomes a no-op again.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *crate::lock(&PLAN) = None;
}

/// Arms a plan from the `XORBAS_NODE_FAULTS` environment knob if it is
/// set, non-empty, and parseable (see [`FaultPlan::parse`] for the
/// format). Does nothing when a plan is already armed. Returns the
/// armed plan, if any.
pub fn arm_from_env() -> Option<Arc<FaultPlan>> {
    if ARMED.load(Ordering::SeqCst) {
        return crate::lock(&PLAN).clone();
    }
    let spec = std::env::var("XORBAS_NODE_FAULTS").ok()?;
    if spec.trim().is_empty() {
        return None;
    }
    match FaultPlan::parse(&spec) {
        Ok(plan) => Some(arm(plan)),
        Err(_) => None,
    }
}

fn with_plan<T>(f: impl FnOnce(&FaultPlan) -> T) -> Option<T> {
    let guard = crate::lock(&PLAN);
    guard.as_ref().map(|p| f(p))
}

/// Does `site` fire on this call? Always `false` when disarmed — the
/// disarmed cost is one relaxed atomic load.
#[inline]
pub fn hit(site: Site) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    with_plan(|p| p.roll(site).is_some()).unwrap_or(false)
}

/// Like [`hit`] but returns the decision hash on a firing, for sites
/// that need extra entropy (e.g. [`Site::BitFlip`] picking an offset).
#[inline]
pub fn hit_value(site: Site) -> Option<u64> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    with_plan(|p| p.roll(site)).flatten()
}

/// Fires `site` and, on a hit, sleeps for the site's configured param
/// in milliseconds (capped at 2 s so a typo can't wedge a worker).
#[inline]
pub fn maybe_stall(site: Site) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let ms = with_plan(|p| {
        p.roll(site)
            .map(|_| p.sites[site as usize].param.min(2_000))
    })
    .flatten();
    if let Some(ms) = ms {
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// splitmix64: the crate's standard cheap bit mixer (same finalizer the
/// load generator uses for deterministic payloads).
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_never_fire() {
        let _guard = crate::lock(&TEST_PLAN_LOCK);
        disarm();
        for site in Site::ALL {
            assert!(!hit(site));
            assert!(hit_value(site).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_index() {
        let a = FaultPlan::new(7).with(Site::BitFlip, 250);
        let b = FaultPlan::new(7).with(Site::BitFlip, 250);
        let rolls_a: Vec<Option<u64>> = (0..512).map(|_| a.roll(Site::BitFlip)).collect();
        let rolls_b: Vec<Option<u64>> = (0..512).map(|_| b.roll(Site::BitFlip)).collect();
        assert_eq!(rolls_a, rolls_b);
        let fired = rolls_a.iter().filter(|r| r.is_some()).count();
        // 250‰ over 512 calls: loose sanity band, exact count is fixed
        // by the seed so this can never flake.
        assert!((64..=192).contains(&fired), "fired {fired}/512");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).with(Site::CrashPut, 500);
        let b = FaultPlan::new(2).with(Site::CrashPut, 500);
        let ra: Vec<bool> = (0..256).map(|_| a.roll(Site::CrashPut).is_some()).collect();
        let rb: Vec<bool> = (0..256).map(|_| b.roll(Site::CrashPut).is_some()).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn parse_round_trips_the_env_format() {
        let plan =
            FaultPlan::parse("seed=99; connect-refuse=5; serve-stall=3:40; bit-flip=1000").unwrap();
        assert_eq!(plan.seed(), 99);
        assert_eq!(plan.sites[Site::ConnectRefuse as usize].permille, 5);
        assert_eq!(plan.sites[Site::ServeStall as usize].permille, 3);
        assert_eq!(plan.sites[Site::ServeStall as usize].param, 40);
        // 1000‰ always fires.
        assert!(plan.roll(Site::BitFlip).is_some());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("no-such-site=5").is_err());
        assert!(FaultPlan::parse("bit-flip").is_err());
        assert!(FaultPlan::parse("bit-flip=5:zz").is_err());
    }

    #[test]
    fn counters_report_calls_and_firings() {
        let plan = FaultPlan::new(3).with(Site::TornWrite, 1000);
        for _ in 0..10 {
            let _ = plan.roll(Site::TornWrite);
        }
        let counters = plan.counters();
        let (name, calls, fired) = counters[Site::TornWrite as usize];
        assert_eq!(name, "torn-write");
        assert_eq!(calls, 10);
        assert_eq!(fired, 10);
    }
}
