//! Information flow graphs for locality/distance achievability
//! (Appendix C of "XORing Elephants").
//!
//! The paper proves its distance bound is achievable by building a
//! "locality-aware" information flow graph `G(k, n-k, r, d)` (Fig. 9)
//! and showing that whenever `d` respects Theorem 2, every *data
//! collector* (a sink reading any `n - d + 1` coded blocks) receives
//! flow at least `M` — at which point random linear network codes
//! realize the multicast capacity (Theorem 3).
//!
//! This crate implements the gadget literally: a max-flow network with
//!
//! * a super-source feeding the `k` file-block sources,
//! * one `Γ_in → Γ_out` bottleneck of capacity `r·(M/k)` per
//!   `(r+1)`-group,
//! * one `Y_in → Y_out` edge of capacity `M/k` per coded block,
//! * one sink per data collector.
//!
//! Flow is measured in units of `M/k`, so feasibility is `flow ≥ k`.
//!
//! # Module map (paper section → module)
//!
//! | Paper | Item | What it provides |
//! |---|---|---|
//! | Fig. 9 gadget | [`FlowGadget`] / [`GadgetParams`] | the locality-aware flow network builder |
//! | Thm. 3 multicast argument | [`FlowNetwork`] | max-flow (feasibility oracle) |
//! | App. C achievability | [`all_collectors_feasible`] | every-collector check |
//! | Lemma 2 | [`lemma2_bound`] | group-structure flow bound |
//!
//! `xorbas_core::bounds` cross-checks its Theorem-2 distance formula
//! against this crate's feasibility verdicts (see the workspace's
//! `tests/theory_cross_checks.rs`).
//!
//! # Example
//!
//! ```
//! use xorbas_flowgraph::{GadgetParams, all_collectors_feasible};
//!
//! // k=4, n=6, r=2 with (r+1) | n: Theorem 2 allows d ≤ 6-2-4+2 = 2.
//! assert!(all_collectors_feasible(GadgetParams { k: 4, n: 6, r: 2, d: 2 }));
//! assert!(!all_collectors_feasible(GadgetParams { k: 4, n: 6, r: 2, d: 3 }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gadget;
mod maxflow;

pub use gadget::{
    all_collectors_feasible, lemma2_bound, min_collector_flow, FlowGadget, GadgetParams,
};
pub use maxflow::FlowNetwork;
