//! The locality-aware information flow graph `G(k, n-k, r, d)` (Fig. 9).

use crate::maxflow::{FlowNetwork, INF};

/// Parameters of the achievability gadget. Requires `(r + 1) | n`
/// (the appendix's non-overlapping-group assumption, Corollary 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GadgetParams {
    /// Data blocks (sources).
    pub k: usize,
    /// Coded blocks (intermediate storage nodes).
    pub n: usize,
    /// Locality: each block belongs to one `(r+1)`-group.
    pub r: usize,
    /// Target minimum distance; each data collector reads `n - d + 1`
    /// coded blocks.
    pub d: usize,
}

impl GadgetParams {
    fn validate(&self) {
        assert!(self.k >= 1 && self.r >= 1, "k and r must be positive");
        assert!(self.n > self.k, "need redundancy: n > k");
        assert!(
            self.n.is_multiple_of(self.r + 1),
            "the appendix gadget assumes (r+1) | n"
        );
        assert!(
            self.d >= 1 && self.d <= self.n - self.k + 1,
            "d must lie in 1..=n-k+1 (Singleton)"
        );
    }
}

/// Theorem 2 / Lemma 2 threshold: the largest feasible distance,
/// `n - ⌈k/r⌉ - k + 2`.
pub fn lemma2_bound(n: usize, k: usize, r: usize) -> usize {
    (n + 2).saturating_sub(k.div_ceil(r) + k)
}

/// The constructed flow network plus the node ids needed to attach
/// data collectors.
#[derive(Debug, Clone)]
pub struct FlowGadget {
    /// The network: super-source, X/Γ/Y layers (no collectors yet).
    pub network: FlowNetwork,
    /// The super-source node.
    pub source: usize,
    /// `Y_out` node of each coded block, indexed by block.
    pub y_out: Vec<usize>,
    params: GadgetParams,
}

impl FlowGadget {
    /// Builds the gadget of Fig. 9 with flow in units of `M/k`:
    /// `Y_in → Y_out` edges carry 1 unit, group bottlenecks carry `r`.
    pub fn build(params: GadgetParams) -> Self {
        params.validate();
        let GadgetParams { k, n, r, .. } = params;
        let groups = n / (r + 1);
        let mut net = FlowNetwork::new(0);
        let source = net.add_node();
        // X_i sources, fed by the super-source.
        let xs: Vec<usize> = (0..k).map(|_| net.add_node()).collect();
        for &x in &xs {
            net.add_edge(source, x, INF);
        }
        // Γ_in → Γ_out bottleneck per (r+1)-group.
        let gamma: Vec<(usize, usize)> = (0..groups)
            .map(|_| {
                let gin = net.add_node();
                let gout = net.add_node();
                net.add_edge(gin, gout, r as u64);
                (gin, gout)
            })
            .collect();
        for &(gin, _) in &gamma {
            for &x in &xs {
                net.add_edge(x, gin, INF);
            }
        }
        // Y_in → Y_out per coded block, fed by its group's Γ_out.
        let mut y_out = Vec::with_capacity(n);
        for i in 0..n {
            let yin = net.add_node();
            let yout = net.add_node();
            net.add_edge(gamma[i / (r + 1)].1, yin, INF);
            net.add_edge(yin, yout, 1);
            y_out.push(yout);
        }
        Self {
            network: net,
            source,
            y_out,
            params,
        }
    }

    /// Max flow into a data collector attached to the given blocks.
    pub fn collector_flow(&self, blocks: &[usize]) -> u64 {
        let mut net = self.network.clone();
        let dc = net.add_node();
        for &b in blocks {
            net.add_edge(self.y_out[b], dc, INF);
        }
        net.max_flow(self.source, dc)
    }

    /// Iterates every data collector (all `C(n, n-d+1)` block subsets)
    /// and returns the minimum flow any of them receives.
    pub fn min_collector_flow(&self) -> u64 {
        let GadgetParams { n, d, .. } = self.params;
        let take = n - d + 1;
        let mut best = u64::MAX;
        let mut subset: Vec<usize> = (0..take).collect();
        loop {
            best = best.min(self.collector_flow(&subset));
            // Advance combination (lexicographic).
            let mut i = take;
            loop {
                if i == 0 {
                    return best;
                }
                i -= 1;
                if subset[i] < n - take + i {
                    subset[i] += 1;
                    for j in (i + 1)..take {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

/// Minimum flow over all data collectors, in units of `M/k`.
pub fn min_collector_flow(params: GadgetParams) -> u64 {
    FlowGadget::build(params).min_collector_flow()
}

/// Lemma 2's feasibility check: every data collector receives flow at
/// least `M` (= `k` units), i.e. every choice of `n - d + 1` blocks can
/// reconstruct the file on the gadget.
pub fn all_collectors_feasible(params: GadgetParams) -> bool {
    min_collector_flow(params) >= params.k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula_matches_theorem_2() {
        assert_eq!(lemma2_bound(16, 10, 5), 6);
        assert_eq!(lemma2_bound(14, 10, 10), 5); // r = k: Singleton
        assert_eq!(lemma2_bound(6, 4, 2), 2);
    }

    #[test]
    fn feasible_exactly_up_to_the_bound_small() {
        // k=4, n=6, r=2 (groups of 3): bound d ≤ 2.
        for d in 1..=2 {
            assert!(
                all_collectors_feasible(GadgetParams {
                    k: 4,
                    n: 6,
                    r: 2,
                    d
                }),
                "d={d} should be feasible"
            );
        }
        assert!(!all_collectors_feasible(GadgetParams {
            k: 4,
            n: 6,
            r: 2,
            d: 3
        }));
    }

    #[test]
    fn feasible_exactly_up_to_the_bound_medium() {
        // k=6, n=9, r=2 (groups of 3): bound = 9 - 3 - 6 + 2 = 2.
        let bound = lemma2_bound(9, 6, 2);
        assert_eq!(bound, 2);
        assert!(all_collectors_feasible(GadgetParams {
            k: 6,
            n: 9,
            r: 2,
            d: bound
        }));
        assert!(!all_collectors_feasible(GadgetParams {
            k: 6,
            n: 9,
            r: 2,
            d: bound + 1
        }));
    }

    #[test]
    fn trivial_locality_reaches_singleton() {
        // r = k = 2, n = 3 (one group of 3): MDS point, d = n - k + 1 = 2.
        assert!(all_collectors_feasible(GadgetParams {
            k: 2,
            n: 3,
            r: 2,
            d: 2
        }));
    }

    #[test]
    fn group_bottleneck_limits_whole_group_collectors() {
        // k=4, n=6, r=2: a collector reading one whole (r+1)-group plus
        // two blocks of the other extracts at most r + 2 = 4 units; with
        // d=2 collectors read 5 blocks, so the worst collector reads a
        // full group (3) + 2 = at most 2 + 2 = 4 = k. Exactly feasible.
        let gadget = FlowGadget::build(GadgetParams {
            k: 4,
            n: 6,
            r: 2,
            d: 2,
        });
        assert_eq!(gadget.collector_flow(&[0, 1, 2, 3, 4]), 4);
        // Reading both full groups caps at 2r = 4 units too.
        assert_eq!(gadget.collector_flow(&[0, 1, 2, 3, 4, 5]), 4);
        // Reading 2 blocks of each group avoids the bottleneck: 4 units.
        assert_eq!(gadget.collector_flow(&[0, 1, 3, 4]), 4);
    }

    #[test]
    fn larger_instance_matches_bound() {
        // k=8, r=3, n=12 (groups of 4): bound = 12 - 3 - 8 + 2 = 3.
        let bound = lemma2_bound(12, 8, 3);
        assert_eq!(bound, 3);
        assert!(all_collectors_feasible(GadgetParams {
            k: 8,
            n: 12,
            r: 3,
            d: bound
        }));
        assert!(!all_collectors_feasible(GadgetParams {
            k: 8,
            n: 12,
            r: 3,
            d: bound + 1
        }));
    }

    #[test]
    #[should_panic(expected = "(r+1) | n")]
    fn rejects_non_divisible_group_structure() {
        let _ = FlowGadget::build(GadgetParams {
            k: 10,
            n: 16,
            r: 5,
            d: 5,
        });
    }

    #[test]
    #[should_panic(expected = "Singleton")]
    fn rejects_distance_beyond_singleton() {
        let _ = FlowGadget::build(GadgetParams {
            k: 4,
            n: 6,
            r: 2,
            d: 4,
        });
    }
}
