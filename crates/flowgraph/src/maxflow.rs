//! Dinic's maximum-flow algorithm on integer capacities.

/// Sentinel for "unbounded" edge capacity (large enough to never bind,
/// small enough to never overflow when summed).
pub const INF: u64 = u64::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: u64,
}

/// A directed flow network. Edges are stored as (forward, reverse) pairs
/// so residual updates are index arithmetic.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// An empty network with `nodes` vertices.
    pub fn new(nodes: usize) -> Self {
        Self {
            edges: Vec::new(),
            adj: vec![Vec::new(); nodes],
        }
    }

    /// Adds a vertex, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of vertices.
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from → to` with the given capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.edges.push(Edge { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
    }

    /// Computes the `s → t` max flow. The network itself is not mutated;
    /// each call works on a private copy of the residual capacities.
    pub fn max_flow(&self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut caps: Vec<u64> = self.edges.iter().map(|e| e.cap).collect();
        let mut flow = 0u64;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; self.adj.len()];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if caps[eid] > 0 && level[e.to] == usize::MAX {
                        level[e.to] = level[u] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[t] == usize::MAX {
                return flow;
            }
            // DFS blocking flow with an iteration pointer per node.
            let mut it = vec![0usize; self.adj.len()];
            loop {
                let pushed = self.dfs(s, t, INF, &level, &mut it, &mut caps);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(
        &self,
        u: usize,
        t: usize,
        limit: u64,
        level: &[usize],
        it: &mut [usize],
        caps: &mut [u64],
    ) -> u64 {
        if u == t {
            return limit;
        }
        while it[u] < self.adj[u].len() {
            let eid = self.adj[u][it[u]];
            let to = self.edges[eid].to;
            if caps[eid] > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs(to, t, limit.min(caps[eid]), level, it, caps);
                if pushed > 0 {
                    caps[eid] -= pushed;
                    caps[eid ^ 1] += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 7);
        assert_eq!(g.max_flow(0, 1), 7);
    }

    #[test]
    fn series_takes_minimum() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 3);
        assert_eq!(g.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(0, 2, 3);
        g.add_edge(2, 3, 3);
        assert_eq!(g.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut g = FlowNetwork::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 1, 4);
        g.add_edge(1, 3, 12);
        g.add_edge(3, 2, 9);
        g.add_edge(2, 4, 14);
        g.add_edge(4, 3, 7);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 5, 4);
        assert_eq!(g.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_sink_gets_zero() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        assert_eq!(g.max_flow(0, 2), 0);
    }

    #[test]
    fn repeated_calls_are_idempotent() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 4);
        assert_eq!(g.max_flow(0, 2), 4);
        assert_eq!(g.max_flow(0, 2), 4); // capacities are not consumed
    }

    #[test]
    fn inf_edges_do_not_overflow() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, INF);
        g.add_edge(0, 2, INF);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(g.max_flow(0, 3), 2);
    }

    #[test]
    fn add_node_grows_network() {
        let mut g = FlowNetwork::new(1);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(0, a, 2);
        g.add_edge(a, b, 1);
        assert_eq!(g.nodes(), 3);
        assert_eq!(g.max_flow(0, b), 1);
    }
}
