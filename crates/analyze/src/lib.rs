//! `xorbas_analyze` — the project lint engine (`cargo xlint`).
//!
//! A std-only, registry-free static analyzer that proves the
//! project-specific invariants CI otherwise takes on faith: unsafe
//! containment and safety-contract coverage, kernel-dispatch table
//! completeness, hot-path allocation freedom, the no-panic burn-down
//! ratchet, and the env-knob registry. See `docs/ARCHITECTURE.md`
//! ("Static analysis") for the rule catalog and annotation conventions.
//!
//! The engine is deliberately *lexical*: a literal-aware lexer
//! ([`lexer`]) splits every line into code and comment channels, and
//! rules match tokens against the code channel (plus light brace-based
//! structure where needed, e.g. the `KernelSuite` initializer parse).
//! No `syn`, no registry dependencies — the analyzer must build in the
//! same sealed container as the workspace it checks.
//!
//! | Module | Role |
//! |---|---|
//! | [`lexer`] | string/char/comment/raw-string aware line splitter |
//! | [`workspace`] | file walking, brace matching, `xlint::` directives |
//! | [`config`] | rule set, allowlists, project anchors |
//! | [`rules`] | the six shipped rules |
//! | [`diag`] | diagnostics, human and JSON rendering |

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use config::{Config, ALL_RULES, DIRECTIVE_RULE};
pub use diag::{Diagnostic, Report, Suppression};

use workspace::{Directive, Workspace};

/// Loads the workspace under `cfg.root` and runs the enabled rules.
/// Inline `xlint::allow(rule): reason` suppressions are applied here
/// (they never apply to `no-panic-in-lib`, whose single escape hatch is
/// the baseline file, nor to the directive meta-rule itself).
pub fn run(cfg: &Config) -> std::io::Result<Report> {
    let ws = Workspace::load(&cfg.root, &cfg.arch_doc)?;
    let mut report = Report::default();
    for rule in &cfg.rules {
        match *rule {
            rules::unsafe_containment::NAME => {
                rules::unsafe_containment::run(&ws, cfg, &mut report)
            }
            rules::safety_comments::NAME => rules::safety_comments::run(&ws, cfg, &mut report),
            rules::dispatch::NAME => rules::dispatch::run(&ws, cfg, &mut report),
            rules::hot_path::NAME => rules::hot_path::run(&ws, cfg, &mut report),
            rules::no_panic::NAME => rules::no_panic::run(&ws, cfg, &mut report),
            rules::env_knobs::NAME => rules::env_knobs::run(&ws, cfg, &mut report),
            other => report.notes.push(format!("unknown rule `{other}` ignored")),
        }
    }
    check_directives(&ws, &mut report);
    apply_suppressions(&ws, &mut report);
    report.sort();
    Ok(report)
}

/// Malformed or unknown `xlint::` markers are violations themselves: a
/// typo in an escape hatch must not silently disable it.
fn check_directives(ws: &Workspace, report: &mut Report) {
    for f in &ws.files {
        for (i, d) in &f.directives {
            match d {
                Directive::AllowMissingReason { rule } => {
                    report.diagnostics.push(Diagnostic::new(
                        DIRECTIVE_RULE,
                        &f.rel,
                        *i,
                        format!("`xlint::allow({rule})` requires a reason: append `: <why>`"),
                    ));
                }
                Directive::Allow { rule, .. } if !ALL_RULES.contains(&rule.as_str()) => {
                    report.diagnostics.push(Diagnostic::new(
                        DIRECTIVE_RULE,
                        &f.rel,
                        *i,
                        format!("`xlint::allow({rule})` names an unknown rule"),
                    ));
                }
                Directive::Unknown { text } => {
                    report.diagnostics.push(Diagnostic::new(
                        DIRECTIVE_RULE,
                        &f.rel,
                        *i,
                        format!("unrecognized xlint directive `xlint::{text}`"),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Moves diagnostics silenced by an `xlint::allow(rule): reason` on the
/// same line, or in the comment run directly above it, into the
/// suppressed list.
fn apply_suppressions(ws: &Workspace, report: &mut Report) {
    let diags = std::mem::take(&mut report.diagnostics);
    for d in diags {
        if d.rule == rules::no_panic::NAME || d.rule == DIRECTIVE_RULE {
            report.diagnostics.push(d);
            continue;
        }
        match suppression_reason(ws, &d) {
            Some(reason) => report.suppressed.push(Suppression {
                diagnostic: d,
                reason,
            }),
            None => report.diagnostics.push(d),
        }
    }
}

fn suppression_reason(ws: &Workspace, d: &Diagnostic) -> Option<String> {
    let f = ws.file(&d.path)?;
    let line0 = d.line.checked_sub(1)?;
    // Candidate directive lines: the diagnostic's own line, then the
    // contiguous blank/comment run above it.
    let mut candidates = vec![line0];
    let mut j = line0;
    while j > 0 {
        j -= 1;
        if !f.lines.get(j)?.is_blank_or_comment() {
            break;
        }
        candidates.push(j);
    }
    for (li, dir) in &f.directives {
        if let Directive::Allow { rule, reason } = dir {
            if rule == d.rule && candidates.contains(li) {
                return Some(reason.clone());
            }
        }
    }
    None
}
