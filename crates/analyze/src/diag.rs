//! Diagnostics and report rendering (human and JSON).

/// One finding: a named rule, a location, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (e.g. `unsafe-containment`).
    pub rule: &'static str,
    /// Path relative to the workspace root, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    pub fn new(rule: &'static str, path: &str, line0: usize, message: String) -> Self {
        Self {
            rule,
            path: path.to_owned(),
            line: line0 + 1,
            message,
        }
    }
}

/// A diagnostic silenced by an inline `xlint::allow` with a reason.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub diagnostic: Diagnostic,
    pub reason: String,
}

/// The outcome of one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived suppression, sorted by path and line.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations silenced by inline `xlint::allow` directives.
    pub suppressed: Vec<Suppression>,
    /// Informational notes (counts, baseline updates).
    pub notes: Vec<String>,
}

impl Report {
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// `path:line: [rule] message` lines plus a summary, as the CLI
    /// prints them.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.path, d.line, d.rule, d.message
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out.push_str(&format!(
            "xlint: {} violation(s), {} suppressed\n",
            self.diagnostics.len(),
            self.suppressed.len()
        ));
        out
    }

    /// The full report as a JSON object (hand-rolled; the analyzer is
    /// std-only by design).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                json_str(&d.message)
            ));
        }
        out.push_str("\n  ],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(s.diagnostic.rule),
                json_str(&s.diagnostic.path),
                s.diagnostic.line,
                json_str(&s.reason)
            ));
        }
        out.push_str("\n  ],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}", json_str(n)));
        }
        out.push_str(&format!(
            "\n  ],\n  \"violations\": {}\n}}\n",
            self.diagnostics.len()
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn human_render_counts() {
        let mut r = Report::default();
        r.diagnostics
            .push(Diagnostic::new("x-rule", "a.rs", 4, "boom".into()));
        let text = r.render_human();
        assert!(text.contains("a.rs:5: [x-rule] boom"));
        assert!(text.contains("1 violation(s)"));
    }
}
