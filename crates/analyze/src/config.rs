//! Analyzer configuration: which rules run, where the project-specific
//! anchors live, and the escape hatches. The defaults encode this
//! repository's policy; the fixture tests override `root` and narrow
//! `rules` to exercise one rule at a time.

use std::path::PathBuf;

/// Names of every shipped rule, in reporting order.
pub const ALL_RULES: [&str; 6] = [
    "unsafe-containment",
    "safety-comment-coverage",
    "dispatch-completeness",
    "hot-path-no-alloc",
    "no-panic-in-lib",
    "env-knob-registry",
];

/// Meta-rule name for malformed `xlint::` directives themselves.
pub const DIRECTIVE_RULE: &str = "xlint-directive";

#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root to analyze.
    pub root: PathBuf,
    /// Enabled rules (subset of [`ALL_RULES`]).
    pub rules: Vec<&'static str>,
    /// Files allowed to contain `unsafe` (relative, forward slashes).
    pub unsafe_allowlist: Vec<String>,
    /// The file holding the `KernelSuite`/`KernelBackend` dispatch
    /// tables that `dispatch-completeness` parses.
    pub dispatch_file: String,
    /// `(suite static name fragment, required fn-name prefix)` pairs:
    /// every field of a suite whose name contains the fragment must
    /// mention the prefix (catches a backend wired to another backend's
    /// kernels).
    pub backend_prefixes: Vec<(String, String)>,
    /// The checked-in no-panic baseline, relative to `root`.
    pub baseline_path: String,
    /// The knob-registry document, relative to `root`.
    pub arch_doc: String,
    /// `(file, marker)` pairs: each file must carry a
    /// `xlint::hot-path(marker)` annotation so the guarantee cannot be
    /// deleted silently.
    pub required_hot_paths: Vec<(String, String)>,
    /// Rewrite the baseline instead of diffing against it.
    pub update_baseline: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            root: PathBuf::from("."),
            rules: ALL_RULES.to_vec(),
            unsafe_allowlist: vec![
                // The single sanctioned unsafe surface: the SIMD kernels.
                "crates/gf/src/simd.rs".to_owned(),
                // The counting global allocator behind the zero-alloc pins.
                "crates/core/tests/zero_alloc.rs".to_owned(),
            ],
            dispatch_file: "crates/gf/src/simd.rs".to_owned(),
            backend_prefixes: vec![
                ("SSSE3_SUITE".to_owned(), "ssse3_".to_owned()),
                ("AVX2_SUITE".to_owned(), "avx2_".to_owned()),
            ],
            baseline_path: "crates/analyze/no_panic_baseline.txt".to_owned(),
            arch_doc: "docs/ARCHITECTURE.md".to_owned(),
            required_hot_paths: vec![
                (
                    "crates/core/src/session.rs".to_owned(),
                    "session-replay".to_owned(),
                ),
                (
                    "crates/gf/src/slice_ops.rs".to_owned(),
                    "payload-ops".to_owned(),
                ),
                (
                    "crates/gf/src/simd.rs".to_owned(),
                    "scalar-kernels".to_owned(),
                ),
                ("crates/gf/src/simd.rs".to_owned(), "x86-kernels".to_owned()),
                (
                    "crates/sim/src/engine.rs".to_owned(),
                    "event-loop".to_owned(),
                ),
                (
                    "crates/sim/src/network.rs".to_owned(),
                    "rate-recompute".to_owned(),
                ),
                (
                    "crates/node/src/server.rs".to_owned(),
                    "serve-read".to_owned(),
                ),
                (
                    "crates/node/src/repair.rs".to_owned(),
                    "repair-stream".to_owned(),
                ),
                (
                    "crates/node/src/repair.rs".to_owned(),
                    "scrub-stream".to_owned(),
                ),
            ],
            update_baseline: false,
        }
    }
}

impl Config {
    /// A configuration for one rule over an arbitrary tree — what the
    /// fixture self-tests use.
    pub fn for_rule(root: impl Into<PathBuf>, rule: &'static str) -> Self {
        Self {
            root: root.into(),
            rules: vec![rule],
            required_hot_paths: Vec::new(),
            ..Self::default()
        }
    }
}
