//! Workspace loading: walking the repository, lexing every Rust file,
//! and the shared structural helpers rules build on (brace matching,
//! `#[cfg(test)]` region detection, `xlint::` directive parsing).

use crate::lexer::{lex, Line};
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into. `fixtures` keeps the
/// analyzer's own seeded-violation corpus out of real runs; `vendor`
/// holds third-party miniatures that are not ours to lint.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

/// An `xlint::` directive found in comment text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `xlint::allow(rule): reason` — suppress `rule` on the next code
    /// line (or the directive's own line). The reason is mandatory.
    Allow { rule: String, reason: String },
    /// `xlint::allow(rule)` with no reason — reported as malformed.
    AllowMissingReason { rule: String },
    /// `xlint::hot-path(name)` — the next braced item is a hot path.
    HotPathItem { name: String },
    /// `xlint::hot-path(name) begin` — opens an explicit hot region.
    HotPathBegin { name: String },
    /// `xlint::hot-path(name) end` — closes it.
    HotPathEnd { name: String },
    /// An `xlint::` marker the parser does not recognize.
    Unknown { text: String },
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel: String,
    /// Per-line code/comment split.
    pub lines: Vec<Line>,
    /// Raw line text (needed when a rule must read literal contents,
    /// e.g. the env-var name inside `env::var("…")`).
    pub raw: Vec<String>,
    /// `test_lines[i]` is true for lines inside a `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// Directives, as `(line_index, directive)` pairs (0-based lines).
    pub directives: Vec<(usize, Directive)>,
}

impl SourceFile {
    fn from_source(rel: String, src: &str) -> Self {
        let lines = lex(src);
        let raw: Vec<String> = src.lines().map(str::to_owned).collect();
        let test_lines = mark_test_lines(&lines);
        let directives = collect_directives(&lines);
        Self {
            rel,
            lines,
            raw,
            test_lines,
            directives,
        }
    }

    /// Whether the file lives under a `tests/` or `benches/` directory
    /// (integration tests and benches, as opposed to library source).
    pub fn is_test_or_bench_path(&self) -> bool {
        self.rel
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches")
    }

    /// Whether the file is library source: `crates/<x>/src/…` or the
    /// facade `src/…`.
    pub fn is_library_source(&self) -> bool {
        let segs: Vec<&str> = self.rel.split('/').collect();
        matches!(segs.as_slice(), ["src", ..] | ["crates", _, "src", ..])
    }
}

/// Every lexed file plus the prose documents some rules cross-check.
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// The architecture document, when present: `(rel, raw lines)`.
    pub arch_doc: Option<(String, Vec<String>)>,
}

impl Workspace {
    /// Loads every `*.rs` under `root` (skipping `SKIP_DIRS`) plus the
    /// architecture document named by `arch_doc_rel`.
    pub fn load(root: &Path, arch_doc_rel: &str) -> std::io::Result<Self> {
        let mut paths: Vec<PathBuf> = Vec::new();
        walk(root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for p in &paths {
            let src = std::fs::read_to_string(p)?;
            let rel = relative_slash(root, p);
            files.push(SourceFile::from_source(rel, &src));
        }
        let arch_path = root.join(arch_doc_rel);
        let arch_doc = match std::fs::read_to_string(&arch_path) {
            Ok(text) => Some((
                arch_doc_rel.to_owned(),
                text.lines().map(str::to_owned).collect(),
            )),
            Err(_) => None,
        };
        Ok(Self { files, arch_doc })
    }

    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn relative_slash(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the first `{` in code text at or after `(line, col)` and
/// returns the 0-based line index of its matching `}`.
pub fn matching_brace(lines: &[Line], from_line: usize, from_col: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut started = false;
    for (li, line) in lines.iter().enumerate().skip(from_line) {
        let skip = if li == from_line { from_col } else { 0 };
        for c in line.code.chars().skip(skip) {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        return Some(li);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Marks the lines belonging to `#[cfg(test)]` items (the attribute
/// line through the close of the item's braces).
fn mark_test_lines(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for (i, line) in lines.iter().enumerate() {
        if !line.code.contains("#[cfg(test)]") || mask[i] {
            continue;
        }
        if let Some(end) = matching_brace(lines, i, 0) {
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
        } else {
            // Attribute with no braced item below (e.g. on a `use`):
            // conservatively mark just the attribute line.
            mask[i] = true;
        }
    }
    mask
}

/// Parses `xlint::` markers out of the comment channel. Only a marker
/// that *leads* the comment is a directive — `xlint::` mentioned
/// mid-sentence or quoted in backticks is prose, not an instruction.
fn collect_directives(lines: &[Line]) -> Vec<(usize, Directive)> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let mut body = line.comment.trim_start();
        // Strip comment leaders: `//`, `///`, `//!`, `/*`, `/**`, `/*!`,
        // and the `*` that opens block-comment continuation lines.
        loop {
            let stripped = body
                .strip_prefix("//")
                .or_else(|| body.strip_prefix("/*"))
                .or_else(|| body.strip_prefix('*'))
                .or_else(|| body.strip_prefix('/'))
                .or_else(|| body.strip_prefix('!'));
            match stripped {
                Some(s) => body = s,
                None => break,
            }
        }
        if let Some(tail) = body.trim_start().strip_prefix("xlint::") {
            let (dir, _) = parse_directive(tail);
            out.push((i, dir));
        }
    }
    out
}

/// Parses one directive body (text after `xlint::`), returning it and
/// how many bytes were consumed.
fn parse_directive(tail: &str) -> (Directive, usize) {
    if let Some(after) = tail.strip_prefix("allow(") {
        if let Some(close) = after.find(')') {
            let rule = after[..close].trim().to_owned();
            let rest = &after[close + 1..];
            let consumed = "allow(".len() + close + 1;
            if let Some(colon) = rest.strip_prefix(':') {
                // The reason runs to the end of the comment line.
                let reason = colon.trim().to_owned();
                if !reason.is_empty() {
                    return (Directive::Allow { rule, reason }, consumed);
                }
            }
            return (Directive::AllowMissingReason { rule }, consumed);
        }
    }
    if let Some(after) = tail.strip_prefix("hot-path") {
        let (name, after_name, consumed_name) = if let Some(body) = after.strip_prefix('(') {
            match body.find(')') {
                Some(close) => (
                    body[..close].trim().to_owned(),
                    &body[close + 1..],
                    "hot-path".len() + close + 2,
                ),
                None => (String::new(), after, "hot-path".len()),
            }
        } else {
            (String::new(), after, "hot-path".len())
        };
        let trimmed = after_name.trim_start();
        if trimmed.starts_with("begin") {
            return (Directive::HotPathBegin { name }, consumed_name);
        }
        if trimmed.starts_with("end") {
            return (Directive::HotPathEnd { name }, consumed_name);
        }
        return (Directive::HotPathItem { name }, consumed_name);
    }
    let text: String = tail.chars().take(40).collect();
    (Directive::Unknown { text }, tail.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        assert_eq!(f.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn directives_parse() {
        let src = "\
// xlint::allow(no-panic-in-lib): invariant, audited 2026-08\n\
// xlint::allow(some-rule)\n\
// xlint::hot-path(replay)\n\
// xlint::hot-path(ops) begin\n\
// xlint::hot-path(ops) end\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        let dirs: Vec<&Directive> = f.directives.iter().map(|(_, d)| d).collect();
        assert_eq!(
            dirs[0],
            &Directive::Allow {
                rule: "no-panic-in-lib".into(),
                reason: "invariant, audited 2026-08".into()
            }
        );
        assert_eq!(
            dirs[1],
            &Directive::AllowMissingReason {
                rule: "some-rule".into()
            }
        );
        assert_eq!(
            dirs[2],
            &Directive::HotPathItem {
                name: "replay".into()
            }
        );
        assert_eq!(dirs[3], &Directive::HotPathBegin { name: "ops".into() });
        assert_eq!(dirs[4], &Directive::HotPathEnd { name: "ops".into() });
    }

    #[test]
    fn directive_in_string_is_ignored() {
        let src = "let s = \"xlint::allow(x): nope\";\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(f.directives.is_empty());
    }
}
