//! The `cargo xlint` entry point (aliased in `.cargo/config.toml`).
//!
//! Exit codes: 0 clean, 1 violations, 2 usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;
use xorbas_analyze::Config;

const USAGE: &str = "\
usage: cargo xlint [--json] [--update-baseline] [--root DIR] [--rule NAME]...

  --json             machine-readable report on stdout
  --update-baseline  rewrite the no-panic-in-lib baseline from the
                     current tree (the ratchet commit)
  --root DIR         workspace root (default: the workspace containing
                     this binary's manifest)
  --rule NAME        run only the named rule (repeatable)
";

fn main() -> ExitCode {
    let mut cfg = Config {
        root: default_root(),
        ..Config::default()
    };
    let mut json = false;
    let mut only_rules: Vec<&'static str> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--update-baseline" => cfg.update_baseline = true,
            "--root" => match args.next() {
                Some(dir) => cfg.root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory"),
            },
            "--rule" => match args.next().as_deref().map(resolve_rule) {
                Some(Some(name)) => only_rules.push(name),
                _ => return usage_error("--rule requires a known rule name"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unrecognized argument `{other}`")),
        }
    }
    if !only_rules.is_empty() {
        cfg.rules = only_rules;
    }

    match xorbas_analyze::run(&cfg) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xlint: {e}");
            ExitCode::from(2)
        }
    }
}

fn resolve_rule(name: &str) -> Option<&'static str> {
    xorbas_analyze::ALL_RULES
        .iter()
        .copied()
        .find(|r| *r == name)
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("xlint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: two levels above this crate's manifest, or the
/// current directory when not built by cargo.
fn default_root() -> PathBuf {
    let manifest: Option<PathBuf> = option_env!("CARGO_MANIFEST_DIR").map(PathBuf::from);
    manifest
        .as_deref()
        .and_then(|m| m.parent())
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
