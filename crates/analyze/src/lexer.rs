//! A minimal, literal-aware Rust lexer.
//!
//! The analysis rules all work on *token text*, so the only job of this
//! lexer is to split each source line into the part that is code and
//! the part that is comment — without being fooled by `unsafe` inside a
//! string literal, `SAFETY:` inside a doc example, `//` inside a URL
//! string, or a brace inside a `char` literal. It understands:
//!
//! * line comments (`//`), doc line comments (`///`, `//!`),
//! * block comments (`/* */`, nested, `/** */`, `/*! */`),
//! * string literals with escapes (`"…\"…"`), byte strings (`b"…"`),
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char and byte-char literals (`'x'`, `'\n'`, `b'\''`) versus
//!   lifetimes (`'a`) and loop labels (`'outer:`).
//!
//! Literal *contents* are blanked to spaces in the code text (the
//! delimiters are kept), so token searches never match inside them and
//! column positions stay meaningful. Comment text is collected verbatim
//! per line, with the line flagged when any of it is documentation.

/// One physical source line, split into code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// All comment text on the line (markers included), concatenated.
    pub comment: String,
    /// Whether any comment on this line is a doc comment.
    pub doc: bool,
}

impl Line {
    /// True when the line carries no code tokens (blank or pure comment).
    pub fn is_blank_or_comment(&self) -> bool {
        self.code.trim().is_empty()
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

enum Mode {
    Code,
    LineComment,
    /// `usize`: nesting depth; `bool`: the comment is a doc comment.
    BlockComment(usize, bool),
    /// Inside `"…"` or `b"…"` (escape-aware).
    Str,
    /// Inside `r#…"…"#…` with the given hash count.
    RawStr(usize),
}

/// Splits `src` into per-line code/comment channels. Always returns at
/// least one line; a trailing newline does not produce a phantom line.
pub fn lex(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            if let Mode::BlockComment(_, doc) = mode {
                cur.doc = doc;
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    let c2 = chars.get(i + 2).copied();
                    let doc = c2 == Some('!')
                        || (c2 == Some('/') && chars.get(i + 3).copied() != Some('/'));
                    cur.doc |= doc;
                    cur.comment.push_str("//");
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    let c2 = chars.get(i + 2).copied();
                    let doc = c2 == Some('!') || (c2 == Some('*') && c2 != Some('/'));
                    cur.doc |= doc;
                    cur.comment.push_str("/*");
                    mode = Mode::BlockComment(1, doc);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == 'r' && (i == 0 || !is_ident(chars[i - 1])) {
                    // Possible raw string: r"…" or r#"…"#.
                    let mut h = 0;
                    while chars.get(i + 1 + h).copied() == Some('#') {
                        h += 1;
                    }
                    if chars.get(i + 1 + h).copied() == Some('"') {
                        cur.code.push('r');
                        for _ in 0..h {
                            cur.code.push('#');
                        }
                        cur.code.push('"');
                        mode = Mode::RawStr(h);
                        i += 2 + h;
                    } else {
                        cur.code.push('r');
                        i += 1;
                    }
                } else if c == 'b' && (i == 0 || !is_ident(chars[i - 1])) {
                    // b"…" byte string or br#"…"# raw byte string; a
                    // byte-char b'…' falls through to the '\'' arm.
                    if next == Some('"') {
                        cur.code.push_str("b\"");
                        mode = Mode::Str;
                        i += 2;
                    } else if next == Some('r') {
                        let mut h = 0;
                        while chars.get(i + 2 + h).copied() == Some('#') {
                            h += 1;
                        }
                        if chars.get(i + 2 + h).copied() == Some('"') {
                            cur.code.push_str("br");
                            for _ in 0..h {
                                cur.code.push('#');
                            }
                            cur.code.push('"');
                            mode = Mode::RawStr(h);
                            i += 3 + h;
                        } else {
                            cur.code.push('b');
                            i += 1;
                        }
                    } else {
                        cur.code.push('b');
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime/label. A literal is
                    // either '\…' (escape) or 'x' with a closing quote
                    // right after one character.
                    if next == Some('\\') {
                        cur.code.push('\'');
                        let mut j = i + 2;
                        while j < n && chars[j] != '\'' && chars[j] != '\n' {
                            cur.code.push(' ');
                            j += if chars[j] == '\\' { 2 } else { 1 };
                        }
                        if chars.get(j).copied() == Some('\'') {
                            cur.code.push('\'');
                            j += 1;
                        }
                        i = j;
                    } else if next.is_some() && chars.get(i + 2).copied() == Some('\'') {
                        cur.code.push_str("' '");
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth, doc) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur.comment.push_str("*/");
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1, doc);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    cur.comment.push_str("/*");
                    mode = Mode::BlockComment(depth + 1, doc);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Escape: blank it; a backslash before a newline is
                    // a line continuation (leave the newline for the
                    // outer loop so the line still flushes).
                    cur.code.push(' ');
                    if chars.get(i + 1).copied() == Some('\n') {
                        i += 1;
                    } else {
                        if chars.get(i + 1).is_some() {
                            cur.code.push(' ');
                        }
                        i += 2;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(h) => {
                if c == '"' && (0..h).all(|k| chars.get(i + 1 + k).copied() == Some('#')) {
                    cur.code.push('"');
                    for _ in 0..h {
                        cur.code.push('#');
                    }
                    mode = Mode::Code;
                    i += 1 + h;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || lines.is_empty() {
        lines.push(cur);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::lex;

    #[test]
    fn strings_are_blanked_but_comments_kept() {
        let l = lex("let s = \"unsafe { }\"; // SAFETY: not really");
        assert_eq!(l.len(), 1);
        assert!(!l[0].code.contains("unsafe"));
        assert!(l[0].code.contains("let s ="));
        assert!(l[0].comment.contains("SAFETY: not really"));
        assert!(!l[0].doc);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let l = lex("/// # Safety\n//! inner\n//// not doc\n// plain");
        assert!(l[0].doc && l[0].comment.contains("# Safety"));
        assert!(l[1].doc);
        assert!(!l[2].doc);
        assert!(!l[3].doc);
    }

    #[test]
    fn raw_strings_span_lines() {
        let l = lex("let r = r#\"unsafe\nstill \"in\" string\n\"#;");
        assert!(!l[0].code.contains("unsafe"));
        assert!(l[1].code.trim().chars().all(|c| c == ' ' || c == '"'));
        assert!(l[2].code.contains("\"#"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\''; }");
        let code = &l[0].code;
        // The literal brace is blanked; the real braces survive.
        assert_eq!(code.matches('{').count(), 1);
        assert_eq!(code.matches('}').count(), 1);
        assert!(code.contains("<'a>"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* one /* two */ still */ b");
        assert!(l[0].code.contains('a') && l[0].code.contains('b'));
        assert!(!l[0].code.contains("still"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex("let x = b\"unsafe\"; let y = b'u'; let z = br#\"vec!\"#;");
        assert!(!l[0].code.contains("unsafe"));
        assert!(!l[0].code.contains("vec!"));
    }
}
