//! `hot-path-no-alloc`: turns the point-pins in `zero_alloc.rs` into a
//! whole-surface guarantee. Code regions annotated `xlint::hot-path`
//! may not contain allocation tokens; the annotations themselves are
//! required per file (config), so deleting one fails the lint rather
//! than silently dropping the guarantee.
//!
//! Two annotation forms:
//!
//! * `// xlint::hot-path(name)` — covers the next braced item (fn,
//!   impl, or mod);
//! * `// xlint::hot-path(name) begin` … `// xlint::hot-path(name) end`
//!   — covers the lines between the pair.
//!
//! `#[cfg(test)]` items inside a region are exempt (test helpers may
//! allocate). The token list is deliberately conservative: amortized
//! `push` onto reused scratch is the sanctioned pattern and stays
//! legal; constructors, clones, and formatting are not.

use crate::config::Config;
use crate::diag::{Diagnostic, Report};
use crate::workspace::{matching_brace, Directive, SourceFile, Workspace};

pub const NAME: &str = "hot-path-no-alloc";

/// Tokens that allocate (or hand out something freshly allocated).
const BANNED: [&str; 16] = [
    "Vec::new",
    "vec!",
    ".to_vec",
    ".collect",
    ".clone(",
    "Box::new",
    "format!",
    ".to_string",
    ".to_owned",
    "String::new",
    "with_capacity",
    "HashMap::new",
    "BTreeMap::new",
    "VecDeque::new",
    "Arc::new",
    "Rc::new",
];

pub fn run(ws: &Workspace, cfg: &Config, report: &mut Report) {
    for f in &ws.files {
        let regions = hot_regions(f, report);
        for (name, start, end) in &regions {
            for li in *start..=(*end).min(f.lines.len().saturating_sub(1)) {
                if f.test_lines[li] {
                    continue;
                }
                let code = &f.lines[li].code;
                for token in BANNED {
                    if code.contains(token) {
                        report.diagnostics.push(Diagnostic::new(
                            NAME,
                            &f.rel,
                            li,
                            format!("allocation token `{token}` inside hot path `{name}`"),
                        ));
                    }
                }
            }
        }
    }
    for (rel, marker) in &cfg.required_hot_paths {
        let Some(f) = ws.file(rel) else {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                rel,
                0,
                format!("file required to carry hot-path marker `{marker}` is missing"),
            ));
            continue;
        };
        let found = f.directives.iter().any(|(_, d)| {
            matches!(d,
                Directive::HotPathItem { name }
                | Directive::HotPathBegin { name } if name == marker)
        });
        if !found {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                rel,
                0,
                format!(
                    "missing required `xlint::hot-path({marker})` annotation; \
                     the no-alloc guarantee for this surface would be silently dropped"
                ),
            ));
        }
    }
}

/// Resolves every hot-path directive in `f` to `(name, start, end)`
/// line ranges, reporting dangling/unmatched markers.
fn hot_regions(f: &SourceFile, report: &mut Report) -> Vec<(String, usize, usize)> {
    let mut regions = Vec::new();
    let mut open: Vec<(String, usize)> = Vec::new();
    for (li, d) in &f.directives {
        match d {
            Directive::HotPathItem { name } => match matching_brace(&f.lines, *li, 0) {
                Some(end) => regions.push((name.clone(), *li, end)),
                None => report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    *li,
                    format!("hot-path annotation `{name}` is not followed by a braced item"),
                )),
            },
            Directive::HotPathBegin { name } => open.push((name.clone(), *li)),
            Directive::HotPathEnd { name } => match open.iter().rposition(|(n, _)| n == name) {
                Some(idx) => {
                    let (n, start) = open.remove(idx);
                    regions.push((n, start, *li));
                }
                None => report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    *li,
                    format!("hot-path `end` marker `{name}` has no matching `begin`"),
                )),
            },
            _ => {}
        }
    }
    for (name, li) in open {
        report.diagnostics.push(Diagnostic::new(
            NAME,
            &f.rel,
            li,
            format!("hot-path `begin` marker `{name}` is never closed"),
        ));
    }
    regions
}
