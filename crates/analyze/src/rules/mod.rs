//! The shipped rules. Each rule is a function from the loaded
//! [`Workspace`](crate::workspace::Workspace) to diagnostics; the
//! engine in [`crate::run`] decides which run and applies inline
//! suppressions afterwards.

pub mod dispatch;
pub mod env_knobs;
pub mod hot_path;
pub mod no_panic;
pub mod safety_comments;
pub mod unsafe_containment;

/// True when `needle` occurs in `hay` as a whole word (not embedded in
/// a longer identifier).
pub(crate) fn has_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle, 0).is_some()
}

/// Finds the next whole-word occurrence of `needle` at or after `from`.
pub(crate) fn find_word(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while let Some(pos) = hay.get(start..).and_then(|h| h.find(needle)) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + needle.len();
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}
