//! `unsafe-containment`: `unsafe` may appear only in the allowlisted
//! files, and every crate root must carry the matching `unsafe_code`
//! lint header — `#![forbid(unsafe_code)]` for crates with no
//! sanctioned unsafe, `#![deny(unsafe_code)]` plus
//! `#![warn(unsafe_op_in_unsafe_fn)]` for crates that re-allow it in an
//! allowlisted module.

use super::has_word;
use crate::config::Config;
use crate::diag::{Diagnostic, Report};
use crate::workspace::Workspace;

pub const NAME: &str = "unsafe-containment";

pub fn run(ws: &Workspace, cfg: &Config, report: &mut Report) {
    for f in &ws.files {
        if cfg.unsafe_allowlist.contains(&f.rel) {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            if has_word(&line.code, "unsafe") {
                report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    i,
                    "`unsafe` outside the allowlisted files; the only sanctioned unsafe \
                     surface is the SIMD kernel module (and the zero-alloc test allocator)"
                        .to_owned(),
                ));
            }
        }
    }
    for f in &ws.files {
        let crate_src_prefix = match crate_src_prefix(&f.rel) {
            Some(p) => p,
            None => continue,
        };
        let sanctions_unsafe = cfg
            .unsafe_allowlist
            .iter()
            .any(|p| p.starts_with(crate_src_prefix));
        let has = |attr: &str| f.lines.iter().any(|l| l.code.contains(attr));
        if sanctions_unsafe {
            if !has("#![deny(unsafe_code)]") {
                report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    0,
                    "crate sanctions an unsafe module but its root lacks \
                     `#![deny(unsafe_code)]` (the allowlisted module re-allows locally)"
                        .to_owned(),
                ));
            }
            if !has("#![warn(unsafe_op_in_unsafe_fn)]") {
                report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    0,
                    "crate sanctions an unsafe module but its root lacks \
                     `#![warn(unsafe_op_in_unsafe_fn)]`"
                        .to_owned(),
                ));
            }
        } else if !has("#![forbid(unsafe_code)]") {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                &f.rel,
                0,
                "crate root lacks `#![forbid(unsafe_code)]`".to_owned(),
            ));
        }
    }
}

/// For a crate root path, the prefix its library sources share:
/// `crates/gf/src/lib.rs` → `crates/gf/src/`, `src/lib.rs` → `src/`.
fn crate_src_prefix(rel: &str) -> Option<&str> {
    if rel == "src/lib.rs" {
        return Some("src/");
    }
    let segs: Vec<&str> = rel.split('/').collect();
    match segs.as_slice() {
        ["crates", _, "src", "lib.rs"] => Some(&rel[..rel.len() - "lib.rs".len()]),
        _ => None,
    }
}
