//! `no-panic-in-lib`: a ratcheted burn-down of panic-capable calls in
//! non-test library code.
//!
//! Counts `.unwrap()` / `.expect(` / `panic!` / `unreachable!` /
//! `todo!` / `unimplemented!` per library file (doc comments, strings,
//! `#[cfg(test)]` items, `tests/` and `benches/` trees excluded) and
//! diffs against the checked-in baseline. A file exceeding its
//! allowance fails; a file *under* its allowance also fails until the
//! baseline is ratcheted down with `--update-baseline` — the count can
//! only go down, commit by commit. Inline `xlint::allow` does not apply
//! to this rule: the baseline is the single escape hatch, so the
//! outstanding debt stays enumerable in one file.

use crate::config::Config;
use crate::diag::{Diagnostic, Report};
use crate::workspace::Workspace;

pub const NAME: &str = "no-panic-in-lib";

const TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

pub fn run(ws: &Workspace, cfg: &Config, report: &mut Report) {
    // (path, hit line numbers) for every library file with sites.
    let mut actual: Vec<(String, Vec<usize>)> = Vec::new();
    let mut indexing_sites = 0usize;
    for f in &ws.files {
        if !f.is_library_source() || f.is_test_or_bench_path() {
            continue;
        }
        let mut hits = Vec::new();
        for (i, line) in f.lines.iter().enumerate() {
            if f.test_lines[i] {
                continue;
            }
            for token in TOKENS {
                for _ in line.code.matches(token) {
                    hits.push(i + 1);
                }
            }
            indexing_sites += count_indexing(&line.code);
        }
        if !hits.is_empty() {
            actual.push((f.rel.clone(), hits));
        }
    }
    actual.sort();
    let total: usize = actual.iter().map(|(_, h)| h.len()).sum();
    report.notes.push(format!(
        "no-panic-in-lib: {total} panic-capable call(s) in library code; \
         indexing escape report: {indexing_sites} `[...]` site(s) (informational — \
         see the clippy::indexing_slicing gate on the gf hot modules)"
    ));

    let baseline_file = cfg.root.join(&cfg.baseline_path);
    if cfg.update_baseline {
        let mut out = String::from(
            "# no-panic-in-lib baseline: panic-capable calls (.unwrap()/.expect()/\n\
             # panic!/unreachable!/todo!/unimplemented!) allowed per non-test library\n\
             # file. xlint fails when a file exceeds its allowance OR improves without\n\
             # this file being ratcheted down (cargo xlint --update-baseline).\n",
        );
        out.push_str(&format!("# entries: {total}\n"));
        for (path, hits) in &actual {
            out.push_str(&format!("{}\t{}\n", hits.len(), path));
        }
        match std::fs::write(&baseline_file, out) {
            Ok(()) => report.notes.push(format!(
                "no-panic-in-lib: baseline rewritten with {total} entr{} across {} file(s)",
                if total == 1 { "y" } else { "ies" },
                actual.len()
            )),
            Err(e) => report.diagnostics.push(Diagnostic::new(
                NAME,
                &cfg.baseline_path,
                0,
                format!("failed to write baseline: {e}"),
            )),
        }
        return;
    }

    let baseline = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => parse_baseline(&text),
        Err(_) => {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                &cfg.baseline_path,
                0,
                "baseline file missing; generate it with `cargo xlint --update-baseline`"
                    .to_owned(),
            ));
            return;
        }
    };

    for (path, hits) in &actual {
        let allowed = baseline
            .iter()
            .find(|(_, p, _)| p == path)
            .map_or(0, |(_, _, c)| *c);
        match hits.len() {
            n if n > allowed => report.diagnostics.push(Diagnostic::new(
                NAME,
                path,
                hits[0].saturating_sub(1),
                format!(
                    "{n} panic-capable call(s) exceed the baseline's {allowed} for this \
                     file (sites at lines {}); convert them to typed errors instead of \
                     growing the baseline",
                    render_lines(hits)
                ),
            )),
            n if n < allowed => report.diagnostics.push(Diagnostic::new(
                NAME,
                path,
                0,
                format!(
                    "baseline is stale: {allowed} allowed but only {n} present; \
                     ratchet down with `cargo xlint --update-baseline`"
                ),
            )),
            _ => {}
        }
    }
    for (bl_line, path, allowed) in &baseline {
        let present = actual.iter().any(|(p, _)| p == path);
        if !present && *allowed > 0 {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                &cfg.baseline_path,
                *bl_line,
                format!(
                    "baseline is stale: `{path}` is clean (or gone) but still has an \
                     allowance of {allowed}; ratchet down with `cargo xlint --update-baseline`"
                ),
            ));
        }
    }
}

/// `(0-based baseline line, path, allowed count)` triples.
fn parse_baseline(text: &str) -> Vec<(usize, String, usize)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let count = parts.next().and_then(|c| c.parse::<usize>().ok());
        let path = parts.next();
        if let (Some(count), Some(path)) = (count, path) {
            out.push((i, path.to_owned(), count));
        }
    }
    out
}

fn render_lines(hits: &[usize]) -> String {
    let mut s = String::new();
    for (i, h) in hits.iter().take(12).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&h.to_string());
    }
    if hits.len() > 12 {
        s.push_str(", …");
    }
    s
}

/// Indexing sites: `[` directly preceded by an identifier character,
/// `]`, or `)` — i.e. `x[i]`, `arr[0][1]`, `f()[k]` — as opposed to
/// array types/literals and attributes.
fn count_indexing(code: &str) -> usize {
    let bytes = code.as_bytes();
    let mut n = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'[' && i > 0 {
            let p = bytes[i - 1];
            if p.is_ascii_alphanumeric() || p == b'_' || p == b']' || p == b')' {
                n += 1;
            }
        }
    }
    n
}
