//! `dispatch-completeness`: proves the `KernelSuite` fn-pointer tables
//! stay complete and correctly wired as ops land.
//!
//! rustc already rejects a *missing* field in a struct literal — unless
//! someone reaches for `..` functional update, which is exactly the
//! silent-fallback vector this rule closes. Beyond that it checks what
//! the compiler cannot:
//!
//! * every `KernelBackend` variant has a `KernelSuite` initializer
//!   whose `backend:` field names it (a new backend can't ship half a
//!   table by never constructing it);
//! * every suite assigns every field, with no `..` spread;
//! * each SIMD suite's entries reference its own kernels (an `AVX2`
//!   table wired to `ssse3_*` — a plausible copy-paste — is flagged);
//! * the `KernelBackend::ALL` constant lists every variant (runtime
//!   backend enumeration, used by tests/benches, can't skip one).

use crate::config::Config;
use crate::diag::{Diagnostic, Report};
use crate::workspace::Workspace;
use crate::workspace::{matching_brace, SourceFile};

pub const NAME: &str = "dispatch-completeness";

pub fn run(ws: &Workspace, cfg: &Config, report: &mut Report) {
    let Some(f) = ws.file(&cfg.dispatch_file) else {
        report.diagnostics.push(Diagnostic::new(
            NAME,
            &cfg.dispatch_file,
            0,
            "dispatch file not found in the workspace".to_owned(),
        ));
        return;
    };

    let Some(fields) = struct_fields(f, "KernelSuite") else {
        report.diagnostics.push(Diagnostic::new(
            NAME,
            &f.rel,
            0,
            "could not locate `struct KernelSuite { … }`".to_owned(),
        ));
        return;
    };
    let Some(variants) = enum_variants(f, "KernelBackend") else {
        report.diagnostics.push(Diagnostic::new(
            NAME,
            &f.rel,
            0,
            "could not locate `enum KernelBackend { … }`".to_owned(),
        ));
        return;
    };

    let inits = suite_initializers(f);
    if inits.is_empty() {
        report.diagnostics.push(Diagnostic::new(
            NAME,
            &f.rel,
            0,
            "no `KernelSuite` initializers found".to_owned(),
        ));
        return;
    }

    let mut backends_with_suites: Vec<String> = Vec::new();
    for init in &inits {
        if init.has_spread {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                &f.rel,
                init.line,
                format!(
                    "`{}` uses `..` functional update; every kernel entry must be \
                     assigned explicitly so a new op cannot silently inherit a fallback",
                    init.name
                ),
            ));
        }
        for field in &fields {
            if !init.fields.iter().any(|(n, _, _)| n == field) {
                report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    init.line,
                    format!(
                        "`{}` does not assign `KernelSuite` field `{field}`",
                        init.name
                    ),
                ));
            }
        }
        for (n, line, _) in &init.fields {
            if !fields.contains(n) {
                report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    *line,
                    format!(
                        "`{}` assigns `{n}`, which is not a `KernelSuite` field",
                        init.name
                    ),
                ));
            }
        }
        if let Some((_, _, value)) = init.fields.iter().find(|(n, _, _)| n == "backend") {
            for v in &variants {
                if value.contains(&format!("KernelBackend::{v}")) {
                    backends_with_suites.push(v.clone());
                }
            }
        }
        for (fragment, prefix) in &cfg.backend_prefixes {
            if !init.name.contains(fragment.as_str()) {
                continue;
            }
            for (n, line, value) in &init.fields {
                if n != "backend" && !value.contains(prefix.as_str()) {
                    report.diagnostics.push(Diagnostic::new(
                        NAME,
                        &f.rel,
                        *line,
                        format!(
                            "`{}` field `{n}` does not reference a `{prefix}*` kernel; \
                             a backend wired to another backend's implementation \
                             defeats the per-backend test matrix",
                            init.name
                        ),
                    ));
                }
            }
        }
    }
    for v in &variants {
        if !backends_with_suites.contains(v) {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                &f.rel,
                0,
                format!("no `KernelSuite` initializer sets `backend: KernelBackend::{v}`"),
            ));
        }
    }

    if let Some((all_line, all_text)) = const_all_text(f) {
        for v in &variants {
            if !all_text.contains(&format!("KernelBackend::{v}")) {
                report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    all_line,
                    format!("`KernelBackend::ALL` is missing variant `{v}`"),
                ));
            }
        }
    } else {
        report.diagnostics.push(Diagnostic::new(
            NAME,
            &f.rel,
            0,
            "could not locate `const ALL: [KernelBackend; …]`".to_owned(),
        ));
    }
}

/// `(name, end-exclusive line, …)` of a braced region opened on the
/// first line whose code satisfies `pred`.
fn braced_region(f: &SourceFile, pred: impl Fn(&str) -> bool) -> Option<(usize, usize)> {
    let start = f.lines.iter().position(|l| pred(&l.code))?;
    let end = matching_brace(&f.lines, start, 0)?;
    Some((start, end))
}

fn struct_fields(f: &SourceFile, name: &str) -> Option<Vec<String>> {
    let (start, end) = braced_region(f, |c| c.contains(&format!("struct {name}")))?;
    let mut fields = Vec::new();
    for li in depth_one_lines(f, start, end) {
        if let Some(field) = leading_field_name(&f.lines[li].code) {
            fields.push(field);
        }
    }
    Some(fields)
}

fn enum_variants(f: &SourceFile, name: &str) -> Option<Vec<String>> {
    let (start, end) = braced_region(f, |c| c.contains(&format!("enum {name}")))?;
    let mut variants = Vec::new();
    for li in depth_one_lines(f, start, end) {
        let t = f.lines[li].code.trim();
        let ident: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let rest = &t[ident.len()..];
        if !ident.is_empty() && (rest.is_empty() || rest.starts_with(',')) {
            variants.push(ident);
        }
    }
    Some(variants)
}

struct SuiteInit {
    name: String,
    line: usize,
    has_spread: bool,
    /// `(field name, line, value text through the next field)`.
    fields: Vec<(String, usize, String)>,
}

fn suite_initializers(f: &SourceFile) -> Vec<SuiteInit> {
    let mut out = Vec::new();
    for (i, line) in f.lines.iter().enumerate() {
        if !line.code.contains("= KernelSuite {") {
            continue;
        }
        let Some(end) = matching_brace(&f.lines, i, 0) else {
            continue;
        };
        // `static NAME: KernelSuite = …` — the token before the colon.
        let name = line
            .code
            .split(':')
            .next()
            .and_then(|head| head.split_whitespace().last())
            .unwrap_or("?")
            .to_owned();
        let mut init = SuiteInit {
            name,
            line: i,
            has_spread: false,
            fields: Vec::new(),
        };
        let field_lines: Vec<usize> = depth_one_lines(f, i, end)
            .into_iter()
            .filter(|&li| {
                leading_field_name(&f.lines[li].code).is_some()
                    || f.lines[li].code.trim_start().starts_with("..")
            })
            .collect();
        for (k, &li) in field_lines.iter().enumerate() {
            let code = &f.lines[li].code;
            if code.trim_start().starts_with("..") {
                init.has_spread = true;
                continue;
            }
            let Some(field) = leading_field_name(code) else {
                continue;
            };
            let until = field_lines.get(k + 1).copied().unwrap_or(end);
            let mut value = String::new();
            for vl in li..until {
                value.push_str(&f.lines[vl].code);
                value.push(' ');
            }
            init.fields.push((field, li, value));
        }
        out.push(init);
    }
    out
}

fn const_all_text(f: &SourceFile) -> Option<(usize, String)> {
    let start = f
        .lines
        .iter()
        .position(|l| l.code.contains("const ALL:") || l.code.contains("const ALL "))?;
    let mut text = String::new();
    for (i, line) in f.lines.iter().enumerate().skip(start) {
        text.push_str(&line.code);
        text.push(' ');
        if line.code.contains(']') && i > start || line.code.contains("];") {
            break;
        }
    }
    Some((start, text))
}

/// Line indices strictly inside `(start, end)` whose brace depth —
/// measured at the line's first character — is exactly one level inside
/// the region's opening brace.
fn depth_one_lines(f: &SourceFile, start: usize, end: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    for (i, line) in f.lines.iter().enumerate().take(end + 1).skip(start) {
        if i > start && depth == 1 && i < end + 1 && i <= end && !line.is_blank_or_comment() {
            out.push(i);
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    out
}

/// `pub(crate) name:` / `name:` / shorthand `name,` at the head of a
/// line → `name`.
fn leading_field_name(code: &str) -> Option<String> {
    let mut t = code.trim_start();
    for prefix in ["pub(crate)", "pub(super)", "pub"] {
        if let Some(rest) = t.strip_prefix(prefix) {
            if rest.starts_with([' ', '(']) || rest.starts_with('\t') {
                t = rest.trim_start();
                break;
            }
        }
    }
    let ident: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    let rest = t[ident.len()..].trim_start();
    // Reserved words that can head a statement inside closure bodies
    // never name fields.
    if [
        "let", "if", "while", "for", "match", "return", "fn", "use", "unsafe", "const", "static",
        "struct", "enum", "impl", "mod",
    ]
    .contains(&ident.as_str())
    {
        return None;
    }
    if rest.starts_with(':') && !rest.starts_with("::") {
        return Some(ident);
    }
    if rest.starts_with(',') || rest.is_empty() {
        return Some(ident);
    }
    None
}
