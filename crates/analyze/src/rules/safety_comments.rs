//! `safety-comment-coverage`: every unsafe site must state its
//! contract.
//!
//! * An `unsafe {` block needs a `// SAFETY:` comment on the block's
//!   line or in the contiguous comment run directly above it.
//! * An `unsafe fn` / `unsafe impl` / `unsafe trait` needs a doc
//!   contract above its attributes: a `# Safety` section (or an
//!   explicit `SAFETY:` line).
//! * A `#[target_feature]` function — even a *safe* one — needs the
//!   same, or a `Safe to …` note explaining why defining it is sound
//!   (e.g. value-only operations callable only under the feature).

use super::find_word;
use crate::config::Config;
use crate::diag::{Diagnostic, Report};
use crate::workspace::{SourceFile, Workspace};

pub const NAME: &str = "safety-comment-coverage";

pub fn run(ws: &Workspace, _cfg: &Config, report: &mut Report) {
    for f in &ws.files {
        let mut decl_lines: Vec<usize> = Vec::new();
        for (i, line) in f.lines.iter().enumerate() {
            let mut from = 0;
            while let Some(at) = find_word(&line.code, "unsafe", from) {
                from = at + "unsafe".len();
                let rest = line.code[from..].trim_start();
                if rest.starts_with("fn")
                    || rest.starts_with("impl")
                    || rest.starts_with("trait")
                    || rest.starts_with("extern")
                {
                    decl_lines.push(i);
                    if !declaration_has_contract(f, i) {
                        report.diagnostics.push(Diagnostic::new(
                            NAME,
                            &f.rel,
                            i,
                            "unsafe declaration without a `# Safety` (or `SAFETY:`) \
                             contract in its doc comment"
                                .to_owned(),
                        ));
                    }
                    // One declaration per line; further `unsafe` tokens
                    // on it belong to the same item.
                    break;
                }
                if !block_has_contract(f, i) {
                    report.diagnostics.push(Diagnostic::new(
                        NAME,
                        &f.rel,
                        i,
                        "unsafe block without a `// SAFETY:` comment directly above it".to_owned(),
                    ));
                }
            }
        }
        for (i, line) in f.lines.iter().enumerate() {
            if !line.code.contains("#[target_feature") {
                continue;
            }
            // The function this attribute decorates; if it is an
            // `unsafe fn` it was already checked above.
            let Some(fn_line) = next_code_line(f, i + 1) else {
                continue;
            };
            if decl_lines.contains(&fn_line) {
                continue;
            }
            if !declaration_has_contract(f, i) {
                report.diagnostics.push(Diagnostic::new(
                    NAME,
                    &f.rel,
                    i,
                    "#[target_feature] fn without a safety contract (`# Safety`, \
                     `SAFETY:`, or a `Safe to …` note) in its doc comment"
                        .to_owned(),
                ));
            }
        }
    }
}

fn is_attr_line(f: &SourceFile, i: usize) -> bool {
    f.lines[i].code.trim_start().starts_with("#[")
}

/// The next line at or after `from` that carries code.
fn next_code_line(f: &SourceFile, from: usize) -> Option<usize> {
    (from..f.lines.len()).find(|&j| !f.lines[j].is_blank_or_comment())
}

fn comment_states_contract(text: &str) -> bool {
    text.contains("SAFETY:") || text.contains("# Safety") || text.contains("Safe to ")
}

/// Scans the doc/comment run above a declaration at `i`, skipping
/// attribute lines, for a safety contract.
fn declaration_has_contract(f: &SourceFile, i: usize) -> bool {
    if comment_states_contract(&f.lines[i].comment) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let line = &f.lines[j];
        if line.is_blank_or_comment() || is_attr_line(f, j) {
            if comment_states_contract(&line.comment) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// Checks the block's own line and the contiguous comment/blank run
/// directly above it for a `SAFETY:` comment.
fn block_has_contract(f: &SourceFile, i: usize) -> bool {
    if f.lines[i].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let line = &f.lines[j];
        if !line.is_blank_or_comment() {
            break;
        }
        if line.comment.contains("SAFETY:") {
            return true;
        }
    }
    false
}
