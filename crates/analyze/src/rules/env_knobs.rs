//! `env-knob-registry`: every `XORBAS_*` environment variable read in
//! code must be documented in the architecture doc's knob registry, and
//! every documented knob must still be read somewhere — tuning knobs
//! cannot appear or vanish silently.

use crate::config::Config;
use crate::diag::{Diagnostic, Report};
use crate::workspace::Workspace;

pub const NAME: &str = "env-knob-registry";

pub fn run(ws: &Workspace, cfg: &Config, report: &mut Report) {
    // Knobs read in code: `(name, file, 0-based line)`. The lexer blanks
    // string contents out of the code channel, so the name is recovered
    // from the raw line once a real `env::var` read is on it.
    let mut reads: Vec<(String, String, usize)> = Vec::new();
    for f in &ws.files {
        for (i, line) in f.lines.iter().enumerate() {
            if !line.code.contains("env::var") {
                continue;
            }
            let raw = f.raw.get(i).map(String::as_str).unwrap_or("");
            for name in knob_names(raw) {
                reads.push((name, f.rel.clone(), i));
            }
        }
    }

    let Some((doc_rel, doc_lines)) = &ws.arch_doc else {
        if !reads.is_empty() {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                &cfg.arch_doc,
                0,
                "knob registry document is missing but XORBAS_* knobs are read in code".to_owned(),
            ));
        }
        return;
    };

    let mut documented: Vec<(String, usize)> = Vec::new();
    for (i, line) in doc_lines.iter().enumerate() {
        for name in knob_names(line) {
            if !documented.iter().any(|(n, _)| n == &name) {
                documented.push((name, i));
            }
        }
    }

    for (name, file, line) in &reads {
        if !documented.iter().any(|(n, _)| n == name) {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                file,
                *line,
                format!("env knob `{name}` is read here but not documented in `{doc_rel}`"),
            ));
        }
    }
    for (name, line) in &documented {
        if !reads.iter().any(|(n, _, _)| n == name) {
            report.diagnostics.push(Diagnostic::new(
                NAME,
                doc_rel,
                *line,
                format!("env knob `{name}` is documented but never read in code"),
            ));
        }
    }
}

/// Every `XORBAS_…` name in `text` (uppercase letters, digits,
/// underscores), deduplicated in order of appearance.
fn knob_names(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("XORBAS_") {
        let tail = &rest[pos..];
        let name: String = tail
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        let trimmed = name.trim_end_matches('_').to_owned();
        if trimmed.len() > "XORBAS_".len() && !out.contains(&trimmed) {
            out.push(trimmed);
        }
        rest = &rest[pos + name.len().max(1)..];
    }
    out
}
