//! Fixture-based self-tests: each rule runs against a `good` tree that
//! must come back clean and a `bad` tree whose seeded violations must
//! be reported with exact rule names, paths, and line numbers. The
//! fixture corpus lives under `tests/fixtures/`, which the workspace
//! walker skips, so the seeded violations never leak into real runs.

use std::path::PathBuf;
use xorbas_analyze::{run, Config, Report};

fn fixture(rule_dir: &str, case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule_dir)
        .join(case)
}

fn run_rule(rule_dir: &str, case: &str, rule: &'static str) -> Report {
    run(&Config::for_rule(fixture(rule_dir, case), rule)).expect("fixture tree loads")
}

/// `(rule, path, line)` triples of a report's surviving diagnostics.
fn keys(report: &Report) -> Vec<(&str, &str, usize)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.path.as_str(), d.line))
        .collect()
}

fn assert_clean(report: &Report) {
    assert!(
        report.diagnostics.is_empty(),
        "expected a clean run, got:\n{}",
        report.render_human()
    );
}

// ----- unsafe-containment -------------------------------------------

#[test]
fn unsafe_containment_good_tree_is_clean() {
    // The good tree exercises the lexer's tricky cases: `unsafe` in a
    // doc comment, a plain string, and a raw string are all ignored.
    assert_clean(&run_rule(
        "unsafe_containment",
        "good",
        "unsafe-containment",
    ));
}

#[test]
fn unsafe_containment_flags_stray_unsafe_and_missing_header() {
    let report = run_rule("unsafe_containment", "bad", "unsafe-containment");
    assert_eq!(
        keys(&report),
        vec![
            ("unsafe-containment", "crates/core/src/lib.rs", 1),
            ("unsafe-containment", "crates/core/src/ptr.rs", 4),
        ]
    );
    assert!(report.diagnostics[0]
        .message
        .contains("#![forbid(unsafe_code)]"));
    assert!(report.diagnostics[1].message.contains("allowlisted"));
}

// ----- safety-comment-coverage --------------------------------------

#[test]
fn safety_comments_good_tree_is_clean() {
    assert_clean(&run_rule(
        "safety_comments",
        "good",
        "safety-comment-coverage",
    ));
}

#[test]
fn safety_comments_flags_missing_contracts() {
    let report = run_rule("safety_comments", "bad", "safety-comment-coverage");
    // Line 6: `SAFETY:` inside a string literal two lines up does not
    // count as a contract. Lines 10/11: undocumented unsafe fn and its
    // body block. Line 14: `#[target_feature]` without a contract.
    assert_eq!(
        keys(&report),
        vec![
            ("safety-comment-coverage", "src/ops.rs", 6),
            ("safety-comment-coverage", "src/ops.rs", 10),
            ("safety-comment-coverage", "src/ops.rs", 11),
            ("safety-comment-coverage", "src/ops.rs", 14),
        ]
    );
}

// ----- dispatch-completeness ----------------------------------------

#[test]
fn dispatch_good_tree_is_clean() {
    assert_clean(&run_rule("dispatch", "good", "dispatch-completeness"));
}

#[test]
fn dispatch_flags_miswired_and_incomplete_tables() {
    let report = run_rule("dispatch", "bad", "dispatch-completeness");
    let simd = "crates/gf/src/simd.rs";
    assert_eq!(
        keys(&report),
        vec![
            ("dispatch-completeness", simd, 16),
            ("dispatch-completeness", simd, 37),
            ("dispatch-completeness", simd, 40),
            ("dispatch-completeness", simd, 40),
        ]
    );
    assert!(report.diagnostics[0]
        .message
        .contains("`KernelBackend::ALL` is missing variant `Avx2`"));
    assert!(report.diagnostics[1]
        .message
        .contains("does not reference a `ssse3_*` kernel"));
    let at_40: Vec<&str> = report.diagnostics[2..]
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    assert!(at_40.iter().any(|m| m.contains("functional update")));
    assert!(at_40
        .iter()
        .any(|m| m.contains("does not assign `KernelSuite` field `mul`")));
}

// ----- hot-path-no-alloc --------------------------------------------

#[test]
fn hot_path_good_tree_is_clean() {
    // Allocation in `#[cfg(test)]` items inside a region, and anywhere
    // outside the annotated regions, is legal.
    assert_clean(&run_rule("hot_path", "good", "hot-path-no-alloc"));
}

#[test]
fn hot_path_flags_alloc_tokens_and_dangling_markers() {
    let report = run_rule("hot_path", "bad", "hot-path-no-alloc");
    assert_eq!(
        keys(&report),
        vec![
            ("hot-path-no-alloc", "src/hot.rs", 5),
            ("hot-path-no-alloc", "src/hot.rs", 6),
            ("hot-path-no-alloc", "src/hot.rs", 9),
        ]
    );
    assert!(report.diagnostics[0].message.contains("`.to_vec`"));
    assert!(report.diagnostics[1].message.contains("`.clone(`"));
    assert!(report.diagnostics[2].message.contains("never closed"));
}

// ----- no-panic-in-lib ----------------------------------------------

#[test]
fn no_panic_good_tree_matches_its_baseline() {
    // Doc-comment, string-literal, and `#[cfg(test)]` unwraps are not
    // counted; the single real site is covered by the fixture baseline.
    assert_clean(&run_rule("no_panic", "good", "no-panic-in-lib"));
}

#[test]
fn no_panic_flags_exceeded_and_stale_allowances() {
    let report = run_rule("no_panic", "bad", "no-panic-in-lib");
    assert_eq!(
        keys(&report),
        vec![
            ("no-panic-in-lib", "crates/analyze/no_panic_baseline.txt", 3),
            ("no-panic-in-lib", "crates/baz/src/lib.rs", 1),
            ("no-panic-in-lib", "crates/foo/src/lib.rs", 4),
        ]
    );
    assert!(report.diagnostics[0]
        .message
        .contains("`crates/bar/src/lib.rs` is clean"));
    assert!(report.diagnostics[1]
        .message
        .contains("2 allowed but only 1 present"));
    assert!(report.diagnostics[2]
        .message
        .contains("2 panic-capable call(s) exceed the baseline's 1"));
}

#[test]
fn no_panic_update_baseline_ratchets() {
    // Build a throwaway tree, generate its baseline, verify the run is
    // then clean, and verify new debt fails against it.
    let root = std::env::temp_dir().join(format!("xlint-ratchet-{}", std::process::id()));
    let src_dir = root.join("crates/foo/src");
    std::fs::create_dir_all(&src_dir).expect("fixture tree");
    std::fs::create_dir_all(root.join("crates/analyze")).expect("fixture tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    )
    .expect("fixture file");

    let mut cfg = Config::for_rule(&root, "no-panic-in-lib");
    cfg.update_baseline = true;
    assert_clean(&run(&cfg).expect("update run"));

    cfg.update_baseline = false;
    assert_clean(&run(&cfg).expect("ratcheted run"));

    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\npub fn g() {\n    panic!()\n}\n",
    )
    .expect("fixture file");
    let report = run(&cfg).expect("debt run");
    assert_eq!(
        keys(&report),
        vec![("no-panic-in-lib", "crates/foo/src/lib.rs", 2)]
    );

    let _ = std::fs::remove_dir_all(&root);
}

// ----- env-knob-registry --------------------------------------------

#[test]
fn env_knobs_good_tree_is_clean() {
    assert_clean(&run_rule("env_knobs", "good", "env-knob-registry"));
}

#[test]
fn env_knobs_flags_undocumented_and_ghost_knobs() {
    let report = run_rule("env_knobs", "bad", "env-knob-registry");
    assert_eq!(
        keys(&report),
        vec![
            ("env-knob-registry", "docs/ARCHITECTURE.md", 3),
            ("env-knob-registry", "src/knobs.rs", 4),
        ]
    );
    assert!(report.diagnostics[0]
        .message
        .contains("`XORBAS_GHOST_KNOB` is documented but never read"));
    assert!(report.diagnostics[1]
        .message
        .contains("`XORBAS_SECRET_TUNING` is read here but not documented"));
}

// ----- directive hygiene and suppressions ---------------------------

#[test]
fn malformed_directives_are_violations_and_valid_allows_suppress() {
    let report = run_rule("directives", "bad", "unsafe-containment");
    assert_eq!(
        keys(&report),
        vec![
            ("xlint-directive", "src/hygiene.rs", 3),
            ("xlint-directive", "src/hygiene.rs", 6),
            ("xlint-directive", "src/hygiene.rs", 9),
        ]
    );
    assert!(report.diagnostics[0].message.contains("requires a reason"));
    assert!(report.diagnostics[1].message.contains("unknown rule"));
    assert!(report.diagnostics[2]
        .message
        .contains("unrecognized xlint directive"));
    // The well-formed allow on line 12 moved the unsafe hit on line 13
    // into the suppressed list, reason intact.
    assert_eq!(report.suppressed.len(), 1);
    let s = &report.suppressed[0];
    assert_eq!(
        (
            s.diagnostic.rule,
            s.diagnostic.path.as_str(),
            s.diagnostic.line
        ),
        ("unsafe-containment", "src/hygiene.rs", 13)
    );
    assert_eq!(s.reason, "audited fixture escape hatch");
}

// ----- the real workspace -------------------------------------------

#[test]
fn the_shipped_workspace_is_clean_with_zero_suppressions() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&Config {
        root,
        ..Config::default()
    })
    .expect("workspace loads");
    assert_clean(&report);
    assert!(
        report.suppressed.is_empty(),
        "the shipped tree must not need inline suppressions"
    );
}
