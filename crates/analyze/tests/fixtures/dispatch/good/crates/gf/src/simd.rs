//! Fixture: complete, correctly wired dispatch tables.

pub struct KernelSuite {
    pub backend: KernelBackend,
    pub xor: fn(),
    pub mul: fn(),
}

pub enum KernelBackend {
    Scalar,
    Ssse3,
    Avx2,
}

impl KernelBackend {
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Ssse3,
        KernelBackend::Avx2,
    ];
}

fn scalar_xor() {}
fn scalar_mul() {}
fn ssse3_xor() {}
fn ssse3_mul() {}
fn avx2_xor() {}
fn avx2_mul() {}

static SCALAR_SUITE: KernelSuite = KernelSuite {
    backend: KernelBackend::Scalar,
    xor: scalar_xor,
    mul: scalar_mul,
};

static SSSE3_SUITE: KernelSuite = KernelSuite {
    backend: KernelBackend::Ssse3,
    xor: ssse3_xor,
    mul: ssse3_mul,
};

static AVX2_SUITE: KernelSuite = KernelSuite {
    backend: KernelBackend::Avx2,
    xor: avx2_xor,
    mul: avx2_mul,
};
