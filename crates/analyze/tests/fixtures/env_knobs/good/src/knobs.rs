//! Fixture: every knob read is documented.

pub fn force_scalar() -> bool {
    std::env::var("XORBAS_FORCE_SCALAR").is_ok()
}
