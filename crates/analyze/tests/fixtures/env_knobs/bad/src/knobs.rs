//! Fixture: an undocumented knob read.

pub fn secret() -> bool {
    std::env::var("XORBAS_SECRET_TUNING").is_ok()
}
