//! Fixture: directive hygiene and the suppression escape hatch.

// xlint::allow(unsafe-containment)
pub fn missing_reason() {}

// xlint::allow(not-a-rule): unknown rule names must be flagged
pub fn unknown_rule() {}

// xlint::frobnicate the lexer
pub fn unknown_directive() {}

// xlint::allow(unsafe-containment): audited fixture escape hatch
pub fn escape(p: *const u8) -> u8 { unsafe { *p } }
