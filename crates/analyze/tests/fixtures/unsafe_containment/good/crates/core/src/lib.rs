#![forbid(unsafe_code)]
//! Fixture crate with no unsafe; lexer tricky cases below.
//!
//! Doc comments may mention unsafe code freely.

/// Prose about unsafe blocks is not a violation.
pub fn safe() -> &'static str {
    let a = "unsafe { in a plain string }";
    let b = r#"unsafe { in a raw string }"#;
    if a.len() > b.len() {
        a
    } else {
        b
    }
}
