//! Allowlisted file: the sanctioned unsafe surface.

/// Reads one byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn load(p: *const u8) -> u8 {
    // SAFETY: the caller upholds the contract.
    unsafe { *p }
}
