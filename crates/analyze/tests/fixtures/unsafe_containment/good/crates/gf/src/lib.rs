#![deny(unsafe_code)]
#![warn(unsafe_op_in_unsafe_fn)]
//! Fixture crate root that sanctions an unsafe module (`simd.rs`).
