//! Fixture crate root missing its `#![forbid(unsafe_code)]` header.

pub mod ptr;
