//! Fixture: seeded safety-contract violations.

pub fn string_trap(p: *const u8) -> u8 {
    let tag = "SAFETY: a string literal is not a contract";
    let _ = tag;
    unsafe { *p }
}

/// Reads one byte, contract forgotten.
pub unsafe fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

#[target_feature(enable = "avx2")]
pub fn wide() {}
