//! Fixture: every unsafe site states its contract.

/// Reads one byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read(p: *const u8) -> u8 {
    // SAFETY: the caller upholds validity.
    unsafe { *p }
}

/// Safe to define: value-only shuffle, callable anywhere.
#[target_feature(enable = "ssse3")]
pub fn shuffle() {}

pub fn inline_contract(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: `p` derives from a live reference above.
}
