//! Fixture: seeded allocation tokens inside hot regions.

// xlint::hot-path(fuse)
pub fn fuse(dst: &mut [u8]) -> Vec<u8> {
    let tmp: Vec<u8> = dst.to_vec();
    tmp.clone()
}

// xlint::hot-path(orphan) begin
pub fn orphan() {}
