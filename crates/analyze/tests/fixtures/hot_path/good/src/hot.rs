//! Fixture: hot regions that stay allocation-free.

// xlint::hot-path(xor-row)
pub fn xor_row(dst: &mut [u8], src: &[u8], scratch: &mut Vec<u8>) {
    scratch.clear();
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
        scratch.push(*d);
    }
}

// xlint::hot-path(replay) begin
pub fn replay(xs: &mut [u64]) {
    for x in xs.iter_mut() {
        *x = x.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    pub fn scratch() -> Vec<u8> {
        Vec::new()
    }
}
// xlint::hot-path(replay) end

pub fn setup() -> Vec<u8> {
    vec![0u8; 8]
}
