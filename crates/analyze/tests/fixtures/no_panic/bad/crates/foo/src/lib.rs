//! Fixture: the debt exceeds the baseline's allowance.

pub fn double(a: Option<u8>, b: Option<u8>) -> u8 {
    a.unwrap() + b.expect("b")
}
