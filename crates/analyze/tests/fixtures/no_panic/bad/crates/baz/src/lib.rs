//! Fixture: improved file whose allowance was not ratcheted down.

pub fn once(v: Option<u8>) -> u8 {
    v.unwrap()
}
