//! Fixture: clean file that still has a stale allowance.

pub fn fine(v: Option<u8>) -> u8 {
    v.unwrap_or_default()
}
