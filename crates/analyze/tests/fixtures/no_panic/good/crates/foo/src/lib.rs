//! Fixture: exactly one panic-capable call, covered by the baseline.
//! Prose saying `.unwrap()` is not counted.

pub fn risky(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn graceful(v: Option<u8>) -> u8 {
    let prose = ".unwrap() inside a string literal is not counted";
    let _ = prose;
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_free() {
        assert_eq!(Some(3u8).unwrap(), 3);
    }
}
