//! Pins the zero-copy guarantees of the borrowed-buffer codec API:
//!
//! * `encode_into` performs **zero heap allocations** per stripe once
//!   buffers exist (measured with a counting global allocator);
//! * a compiled [`RepairSession`] repairs repeated stripes of one
//!   failure pattern with **zero allocations** and **zero further
//!   linear solves** (the `decode_solve_count` hook), while the legacy
//!   owned-`Vec` `reconstruct` re-solves every call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use xorbas_core::{
    decode_solve_count, ErasureCodec, Lrc, LrcSpec, PiggybackRs, ReedSolomon, StripeViewMut,
};
use xorbas_gf::{Gf256, Gf65536};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter update is a
// plain thread-local `Cell` write with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (nonzero
    // layout); forwarded verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    // SAFETY: caller passes a pointer previously returned by this
    // allocator with its original layout; forwarded verbatim to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same contract as `dealloc` plus a nonzero `new_size`;
    // forwarded verbatim to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.with(Cell::get)
}

fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| ((i * 53 + j * 11 + 1) % 256) as u8)
                .collect()
        })
        .collect()
}

fn assert_encode_into_allocates_nothing<C: ErasureCodec>(codec: &C, label: &str) {
    let k = codec.data_blocks();
    let m = codec.total_blocks() - k;
    const LEN: usize = 4096;
    let data = sample_data(k, LEN);
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0u8; LEN]; m];
    let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
    // Warmup, then count.
    codec.encode_into(&data_refs, &mut parity_refs).unwrap();
    let before = allocs_now();
    for _ in 0..10 {
        codec.encode_into(&data_refs, &mut parity_refs).unwrap();
    }
    let after = allocs_now();
    assert_eq!(
        after - before,
        0,
        "{label}: encode_into allocated on the steady state"
    );
    // The lanes really were encoded: compare against the owned path.
    let stripe = codec.encode_stripe(&data).unwrap();
    assert_eq!(&stripe[k..], &parity[..], "{label}: parity mismatch");
}

#[test]
fn encode_into_is_allocation_free_after_warmup() {
    let rs: ReedSolomon<Gf256> = ReedSolomon::new(10, 4).unwrap();
    assert_encode_into_allocates_nothing(&rs, "rs(10,4)");
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    assert_encode_into_allocates_nothing(&lrc, "lrc(10,6,5)");
}

#[test]
fn session_repair_is_allocation_free_and_solve_free() {
    let rs: ReedSolomon<Gf256> = ReedSolomon::new(10, 4).unwrap();
    const LEN: usize = 2048;
    let stripe = rs.encode_stripe(&sample_data(10, LEN)).unwrap();

    // Compiling the session runs the one Gaussian elimination.
    let solves_before_compile = decode_solve_count();
    let session = rs.repair_session(&[3, 7]).unwrap();
    assert_eq!(decode_solve_count(), solves_before_compile + 1);
    assert_eq!(session.solve_count(), 1);

    let mut lanes = stripe.clone();
    lanes[3].fill(0);
    lanes[7].fill(0);
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    // Warmup repair (first call touches nothing lazily, but keep the
    // measurement honest), then count allocations and solves across many
    // same-pattern repairs.
    {
        let mut view = StripeViewMut::new(&mut lane_refs, &[3, 7]).unwrap();
        session.repair(&mut view).unwrap();
    }
    let solves_before = decode_solve_count();
    let allocs_before = allocs_now();
    for _ in 0..25 {
        let mut view = StripeViewMut::new(&mut lane_refs, &[3, 7]).unwrap();
        session.repair(&mut view).unwrap();
    }
    assert_eq!(
        allocs_now() - allocs_before,
        0,
        "session repair allocated on the steady state"
    );
    assert_eq!(
        decode_solve_count() - solves_before,
        0,
        "session repair re-ran the linear solve"
    );
    drop(lane_refs);
    assert_eq!(lanes[3], stripe[3]);
    assert_eq!(lanes[7], stripe[7]);

    // Contrast: the legacy owned-Vec path re-solves on every call.
    let solves_before_legacy = decode_solve_count();
    for _ in 0..5 {
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[3] = None;
        shards[7] = None;
        rs.reconstruct(&mut shards).unwrap();
    }
    assert_eq!(decode_solve_count() - solves_before_legacy, 5);
}

#[test]
fn gf65536_session_repair_is_allocation_free_and_solve_free() {
    // The GF(2^16) replay path builds its nibble tables per fused call;
    // they must live on the stack, and the compiled heavy solve must be
    // reused exactly like the GF(2^8) path. A wide-field (not wide-lane)
    // geometry keeps the test quick while exercising the same kernels a
    // 260-lane stripe runs.
    let rs: ReedSolomon<Gf65536> = ReedSolomon::new(12, 4).unwrap();
    assert_encode_into_allocates_nothing(&rs, "rs(12,4)/gf65536");
    const LEN: usize = 2048;
    let stripe = rs.encode_stripe(&sample_data(12, LEN)).unwrap();
    let solves_before_compile = decode_solve_count();
    let session = rs.repair_session(&[1, 9]).unwrap();
    assert_eq!(decode_solve_count(), solves_before_compile + 1);
    assert_eq!(session.solve_count(), 1);

    let mut lanes = stripe.clone();
    lanes[1].fill(0);
    lanes[9].fill(0);
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    {
        let mut view = StripeViewMut::new(&mut lane_refs, &[1, 9]).unwrap();
        session.repair(&mut view).unwrap();
    }
    let solves_before = decode_solve_count();
    let allocs_before = allocs_now();
    for _ in 0..25 {
        let mut view = StripeViewMut::new(&mut lane_refs, &[1, 9]).unwrap();
        session.repair(&mut view).unwrap();
    }
    assert_eq!(
        allocs_now() - allocs_before,
        0,
        "gf65536 session repair allocated on the steady state"
    );
    assert_eq!(
        decode_solve_count() - solves_before,
        0,
        "gf65536 session repair re-ran the linear solve"
    );
    drop(lane_refs);
    assert_eq!(lanes[1], stripe[1]);
    assert_eq!(lanes[9], stripe[9]);

    // The light (XOR-partition) GF(2^16) replay is equally pinned.
    let spec = LrcSpec {
        k: 8,
        global_parities: 3,
        group_size: 4,
        implied_parity: true,
    };
    let lrc: Lrc<Gf65536> = Lrc::new(spec).unwrap();
    assert_encode_into_allocates_nothing(&lrc, "lrc(8,5,4)/gf65536");
    let stripe = lrc.encode_stripe(&sample_data(8, LEN)).unwrap();
    let session = lrc.repair_session(&[2]).unwrap();
    assert_eq!(session.solve_count(), 0);
    let mut lanes = stripe.clone();
    lanes[2].fill(0xEE);
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    {
        let mut view = StripeViewMut::new(&mut lane_refs, &[2]).unwrap();
        session.repair(&mut view).unwrap();
    }
    let allocs_before = allocs_now();
    for _ in 0..25 {
        let mut view = StripeViewMut::new(&mut lane_refs, &[2]).unwrap();
        session.repair(&mut view).unwrap();
    }
    assert_eq!(allocs_now() - allocs_before, 0);
    drop(lane_refs);
    assert_eq!(lanes[2], stripe[2]);
}

/// Replays one compiled piggyback session 25 times and asserts the
/// steady state allocates nothing and never re-solves, then checks the
/// repaired lanes bit-for-bit against the pristine stripe.
fn assert_piggyback_replay_is_free(
    pb: &PiggybackRs<Gf256>,
    stripe: &[Vec<u8>],
    missing: &[usize],
    label: &str,
) {
    let solves_before_compile = decode_solve_count();
    let session = pb.repair_session(missing).unwrap();
    assert_eq!(
        decode_solve_count(),
        solves_before_compile + 1,
        "{label}: compile runs exactly one solve"
    );
    assert_eq!(session.solve_count(), 1, "{label}");

    let mut lanes = stripe.to_vec();
    for &e in missing {
        lanes[e].fill(0xEE);
    }
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    {
        let mut view = StripeViewMut::new(&mut lane_refs, missing).unwrap();
        session.repair(&mut view).unwrap();
    }
    let solves_before = decode_solve_count();
    let allocs_before = allocs_now();
    for _ in 0..25 {
        let mut view = StripeViewMut::new(&mut lane_refs, missing).unwrap();
        session.repair(&mut view).unwrap();
    }
    assert_eq!(
        allocs_now() - allocs_before,
        0,
        "{label}: piggyback replay allocated on the steady state"
    );
    assert_eq!(
        decode_solve_count() - solves_before,
        0,
        "{label}: piggyback replay re-ran the linear solve"
    );
    drop(lane_refs);
    for &e in missing {
        assert_eq!(lanes[e], stripe[e], "{label}: lane {e}");
    }
}

#[test]
fn piggyback_session_repair_is_allocation_free_and_solve_free() {
    // The 2-substripe replay runs through the sublane kernel path
    // (sibling half-lane reads split the destination lane three ways);
    // both it and the plain path must stay on the zero-alloc ratchet.
    let pb: PiggybackRs<Gf256> = PiggybackRs::new(10, 4).unwrap();
    assert_encode_into_allocates_nothing(&pb, "pb(10,4)");
    const LEN: usize = 2048;
    let stripe = pb.encode_stripe(&sample_data(10, LEN)).unwrap();

    // The fast path: one data lane, decoded from k+1 lanes' halves.
    assert_piggyback_replay_is_free(&pb, &stripe, &[4], "fast path");
    // The general path: a data + piggybacked-parity pair replays the
    // compiled coefficient rows plus the piggyback corrections.
    assert_piggyback_replay_is_free(&pb, &stripe, &[0, 12], "general path");
}

#[test]
fn light_lrc_session_compiles_without_any_solve() {
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let before = decode_solve_count();
    let session = lrc.repair_session(&[2]).unwrap();
    assert_eq!(session.solve_count(), 0);
    assert_eq!(decode_solve_count(), before);

    const LEN: usize = 1024;
    let stripe = lrc.encode_stripe(&sample_data(10, LEN)).unwrap();
    let mut lanes = stripe.clone();
    lanes[2].fill(0xEE);
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    {
        let mut view = StripeViewMut::new(&mut lane_refs, &[2]).unwrap();
        session.repair(&mut view).unwrap();
    }
    let allocs_before = allocs_now();
    for _ in 0..25 {
        let mut view = StripeViewMut::new(&mut lane_refs, &[2]).unwrap();
        session.repair(&mut view).unwrap();
    }
    assert_eq!(allocs_now() - allocs_before, 0);
    drop(lane_refs);
    assert_eq!(lanes[2], stripe[2]);
    assert_eq!(decode_solve_count(), before, "light repair never solves");
}
