//! Information-theoretic bounds on locality and distance.
//!
//! Theorem 2 of the paper: any `(k, n-k)` code in which every block has
//! locality `r` satisfies `d ≤ n - ⌈k/r⌉ - k + 2`. This module provides
//! that bound, the MDS (Singleton) baseline, the Theorem-1 asymptotic
//! parameters, and the Figure-8 set-building algorithm that *certifies*
//! an upper bound on the distance of a concrete generator matrix.

use xorbas_gf::Field;
use xorbas_linalg::Matrix;

/// The Singleton bound / MDS distance `d = n - k + 1`.
pub fn mds_distance(n: usize, k: usize) -> usize {
    assert!(k <= n, "k must not exceed n");
    n - k + 1
}

/// Theorem 2: the optimal distance of a length-`n` code with `k` data
/// blocks and uniform block locality `r`:
/// `d ≤ n - ⌈k/r⌉ - k + 2`.
pub fn lrc_distance_bound(n: usize, k: usize, r: usize) -> usize {
    assert!(r >= 1 && k >= 1 && k <= n, "invalid parameters");
    (n + 2).saturating_sub(k.div_ceil(r) + k)
}

/// The storage premium locality costs relative to MDS at equal `n, k`:
/// `d_MDS - d_LRC = ⌈k/r⌉ - 1` blocks of distance.
pub fn locality_distance_penalty(k: usize, r: usize) -> usize {
    k.div_ceil(r) - 1
}

/// Theorem 1 parameters: for `r = log2(k)`, LRCs achieve
/// `d = n - (1 + δ_k)·k + 1` with `δ_k = 1/log2(k) - 1/k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem1Params {
    /// Logarithmic locality `r = log2(k)`.
    pub locality: f64,
    /// The overhead exponent `δ_k`.
    pub delta_k: f64,
    /// The achievable distance `n - (1 + δ_k)·k + 1`.
    pub distance: f64,
}

/// Computes the Theorem-1 parameter set for a `(k, n-k)` code.
pub fn theorem1_params(n: usize, k: usize) -> Theorem1Params {
    assert!(k >= 2, "Theorem 1 needs k >= 2 for log(k) locality");
    let log_k = (k as f64).log2();
    let delta_k = 1.0 / log_k - 1.0 / (k as f64);
    Theorem1Params {
        locality: log_k,
        delta_k,
        distance: n as f64 - (1.0 + delta_k) * k as f64 + 1.0,
    }
}

/// Corollary 1: the ratio `d_LRC / d_MDS` at a fixed rate `R = k/n`,
/// which tends to 1 as `k` grows.
pub fn corollary1_ratio(k: usize, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate < 1.0, "rate must be in (0,1)");
    let n = (k as f64 / rate).ceil();
    let t = theorem1_params(n as usize, k);
    t.distance / mds_distance(n as usize, k) as f64
}

/// The Figure-8 set-building algorithm: greedily accumulates repair
/// groups while the collected columns cannot reconstruct the file, and
/// returns the size of the final set `S` with `H(S) < M`.
///
/// For a linear code the entropy of a block set is `rank · (M/k)`, so the
/// condition `H(S) < M` becomes `rank(G_S) < k`. The result certifies
/// `d ≤ n - |S|` for this specific code — the mechanism behind the proof
/// of Theorem 2 — and is exact when groups are non-overlapping
/// (Corollary 2).
pub fn distance_upper_bound_via_groups<F: Field>(
    generator: &Matrix<F>,
    groups: &[Vec<usize>],
) -> usize {
    let k = generator.rows();
    let n = generator.cols();
    let rank_of = |set: &[usize]| generator.select_columns(set).rank();

    let mut s: Vec<usize> = Vec::new();
    loop {
        // Pick a group that still fits below full rank (line 4 of Fig. 8).
        let mut grew = false;
        for group in groups {
            let mut candidate = s.clone();
            for &j in group {
                if !candidate.contains(&j) {
                    candidate.push(j);
                }
            }
            if candidate.len() > s.len() && rank_of(&candidate) < k {
                s = candidate;
                grew = true;
                break;
            }
        }
        if grew {
            continue;
        }
        // Lines 6-8: take a maximal proper subset of some group.
        for group in groups {
            let fresh: Vec<usize> = group.iter().copied().filter(|j| !s.contains(j)).collect();
            if fresh.is_empty() {
                continue;
            }
            let mut candidate = s.clone();
            for &j in &fresh {
                let mut trial = candidate.clone();
                trial.push(j);
                if rank_of(&trial) < k {
                    candidate = trial;
                }
            }
            if candidate.len() > s.len() {
                s = candidate;
                grew = true;
                break;
            }
        }
        if !grew {
            break;
        }
    }
    n - s.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::minimum_distance;
    use crate::{Lrc, LrcSpec, ReedSolomon};
    use xorbas_gf::Gf256;

    #[test]
    fn theorem_2_bound_for_the_paper_parameters() {
        // n=16, k=10, r=5: d ≤ 16 - 2 - 10 + 2 = 6?  No: ⌈10/5⌉ = 2, so
        // d ≤ 16 - 2 - 10 + 2 = 6. The paper's Theorem 5 shows d = 5 is
        // optimal *for this structure* because 5 does not divide 16 and
        // groups must overlap; the generic bound is not tight here.
        assert_eq!(lrc_distance_bound(16, 10, 5), 6);
        // MDS comparison: the RS(10,4) reaches the Singleton bound.
        assert_eq!(mds_distance(14, 10), 5);
    }

    #[test]
    fn bound_reduces_to_singleton_for_trivial_locality() {
        // r = k: locality constraint is vacuous; bound = n - k + 1.
        assert_eq!(lrc_distance_bound(14, 10, 10), mds_distance(14, 10));
        assert_eq!(locality_distance_penalty(10, 10), 0);
    }

    #[test]
    fn penalty_grows_as_locality_shrinks() {
        assert_eq!(locality_distance_penalty(10, 5), 1);
        assert_eq!(locality_distance_penalty(10, 2), 4);
        assert_eq!(locality_distance_penalty(12, 3), 3);
    }

    #[test]
    fn theorem_1_delta_matches_formula() {
        let t = theorem1_params(16, 8);
        assert!((t.locality - 3.0).abs() < 1e-12);
        assert!((t.delta_k - (1.0 / 3.0 - 1.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn corollary_1_ratio_tends_to_one() {
        let r16 = corollary1_ratio(16, 0.5);
        let r256 = corollary1_ratio(256, 0.5);
        let r65536 = corollary1_ratio(65536, 0.5);
        assert!(r16 < r256 && r256 < r65536);
        assert!(r65536 > 0.9 && r65536 < 1.0);
    }

    #[test]
    fn codes_respect_their_bounds() {
        // Distances computed by brute force never exceed the bounds.
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        assert_eq!(minimum_distance(rs.generator()), mds_distance(14, 10));

        let lrc = Lrc::xorbas_10_6_5().unwrap();
        let d = minimum_distance(lrc.generator());
        assert!(d <= lrc_distance_bound(16, 10, 5));
        assert_eq!(d, 5);
    }

    #[test]
    fn figure_8_certificate_matches_brute_force_for_xorbas() {
        let lrc = Lrc::xorbas_10_6_5().unwrap();
        let groups: Vec<Vec<usize>> = lrc
            .equations()
            .iter()
            .map(|eq| eq.indices().collect())
            .collect();
        let bound = distance_upper_bound_via_groups(lrc.generator(), &groups);
        let actual = minimum_distance(lrc.generator());
        assert!(actual <= bound, "certificate {bound} below actual {actual}");
        // For the Xorbas structure the certificate is tight.
        assert_eq!(bound, actual);
    }

    #[test]
    fn figure_8_certificate_on_partitioned_groups_is_theorem_2() {
        // A (4, 2+2, 2) LRC with non-overlapping groups: the certificate
        // should equal the Theorem-2 bound (Corollary 2: non-overlapping
        // groups are optimal).
        let spec = LrcSpec {
            k: 4,
            global_parities: 2,
            group_size: 2,
            implied_parity: false,
        };
        let lrc: Lrc<Gf256> = Lrc::new(spec).unwrap();
        let n = lrc.generator().cols();
        let data_groups: Vec<Vec<usize>> = vec![vec![0, 1, 6], vec![2, 3, 7]];
        let bound = distance_upper_bound_via_groups(lrc.generator(), &data_groups);
        assert!(minimum_distance(lrc.generator()) <= bound);
        assert!(bound <= lrc_distance_bound(n, 4, 2) + 1);
    }
}
