//! Shared generator-matrix decode compilation.
//!
//! Both codecs express a stripe as `y = x · G` (row vector of `k` data
//! payloads times a `k × n` generator). Heavy decoding picks `k`
//! independent surviving columns `S`, inverts `G_S`, and recovers
//! `x = y_S · G_S⁻¹`; any block `b` is then `y_b = x · g_b`. The
//! compiler below folds those two products into one coefficient row per
//! target — `y_b = y_S · (G_S⁻¹ · g_b)` — so executing a repair is pure
//! slice arithmetic with no matrix work left.

use std::cell::Cell;

use xorbas_gf::Field;
use xorbas_linalg::Matrix;

use crate::session::CompiledStep;

thread_local! {
    static DECODE_SOLVES: Cell<u64> = const { Cell::new(0) };
}

/// Number of decode linear solves (Gaussian eliminations of a selected
/// `k × k` generator submatrix) this thread has ever run.
///
/// A diagnostic/test hook: compiling a heavy [`crate::RepairSession`]
/// adds exactly one; executing a compiled session adds zero, however
/// many stripes it repairs.
pub fn decode_solve_count() -> u64 {
    DECODE_SOLVES.with(Cell::get)
}

/// Greedily selects independent columns from `candidates` (in order)
/// until `gen.rows()` of them are found. Returns `None` if the candidate
/// columns do not span the row space.
pub(crate) fn select_independent_columns<F: Field>(
    gen: &Matrix<F>,
    candidates: &[usize],
) -> Option<Vec<usize>> {
    let sub = gen.select_columns(candidates);
    let (_, pivots) = sub.rref();
    if pivots.len() < gen.rows() {
        return None;
    }
    Some(pivots.into_iter().map(|p| candidates[p]).collect())
}

/// Compiles the heavy decode of `targets` from the shards at `selection`
/// (which must index `k` independent, present columns) into one
/// [`CompiledStep`] per target: `y_b = Σ_j (G_S⁻¹ · g_b)_j · y_{S_j}`.
///
/// Runs the one Gaussian elimination of the repair (counted in
/// [`decode_solve_count`]); the inverse is folded into the returned
/// coefficients and never needed again. Fails with
/// [`CodeError::ConstructionFailed`] if the selected columns turn out
/// dependent — the planner guarantees independence, so a failure here
/// means the caller selected columns without checking.
pub(crate) fn compile_combination_steps<F: Field>(
    gen: &Matrix<F>,
    selection: &[usize],
    targets: &[usize],
) -> crate::Result<Vec<CompiledStep>> {
    let k = gen.rows();
    debug_assert_eq!(selection.len(), k);
    let sub = gen.select_columns(selection);
    let Some(inv) = sub.invert() else {
        return Err(crate::CodeError::ConstructionFailed(format!(
            "selected columns {selection:?} are not independent"
        )));
    };
    DECODE_SOLVES.with(|c| c.set(c.get() + 1));
    Ok(targets
        .iter()
        .map(|&b| {
            let sources = selection
                .iter()
                .enumerate()
                .filter_map(|(j, &s)| {
                    let c: F = (0..k).map(|i| inv[(j, i)] * gen[(i, b)]).sum();
                    (!c.is_zero()).then(|| (s, c.index()))
                })
                .collect();
            CompiledStep { target: b, sources }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorbas_gf::slice_ops::payload_mul_acc;
    use xorbas_gf::Gf256;
    use xorbas_linalg::special;

    #[test]
    fn select_independent_columns_respects_order() {
        let g: Matrix<Gf256> = special::systematize(&special::vandermonde(3, 6)).unwrap();
        let sel = select_independent_columns(&g, &[5, 4, 3, 2, 1, 0]).unwrap();
        assert_eq!(sel, vec![5, 4, 3]); // first three candidates are independent (MDS)
    }

    #[test]
    fn select_independent_columns_skips_dependent() {
        // G = [I_2 | duplicate of column 0].
        let id = Matrix::<Gf256>::identity(2);
        let mut g = id.clone();
        g.push_column(&id.column(0));
        let sel = select_independent_columns(&g, &[0, 2, 1]).unwrap();
        assert_eq!(sel, vec![0, 1]); // column 2 is dependent on column 0
    }

    #[test]
    fn select_reports_rank_deficiency() {
        let id = Matrix::<Gf256>::identity(3);
        assert!(select_independent_columns(&id, &[0, 1]).is_none());
    }

    #[test]
    fn compiled_steps_reproduce_the_stripe() {
        let g: Matrix<Gf256> = special::systematize(&special::vandermonde(3, 6)).unwrap();
        let data = [vec![1u8, 2], vec![3u8, 4], vec![5u8, 6]];
        let stripe: Vec<Vec<u8>> = (0..6)
            .map(|c| {
                let mut out = vec![0u8; 2];
                for (i, d) in data.iter().enumerate() {
                    payload_mul_acc(&mut out, d, g[(i, c)]);
                }
                out
            })
            .collect();
        // Recover blocks 0..3 (the data half) from the parity columns.
        let before = decode_solve_count();
        let steps = compile_combination_steps(&g, &[3, 4, 5], &[0, 1, 2]).unwrap();
        assert_eq!(decode_solve_count(), before + 1);
        for step in steps {
            let mut out = vec![0u8; 2];
            for (src, c) in step.sources {
                payload_mul_acc(&mut out, &stripe[src], Gf256::from_index(c));
            }
            assert_eq!(out, stripe[step.target], "target {}", step.target);
        }
    }

    #[test]
    fn identity_targets_compile_to_single_source_steps() {
        // Selecting the systematic columns makes each data target a
        // trivial copy: exactly one source with coefficient 1.
        let g: Matrix<Gf256> = special::systematize(&special::vandermonde(2, 4)).unwrap();
        let steps = compile_combination_steps(&g, &[0, 1], &[2, 3]).unwrap();
        assert_eq!(steps.len(), 2);
        for s in &steps {
            assert!(!s.sources.is_empty());
        }
        let copy = compile_combination_steps(&g, &[0, 1], &[0]).unwrap();
        assert_eq!(copy[0].sources, vec![(0, 1)]);
    }
}
