//! Shared generator-matrix payload operations.
//!
//! Both codecs express a stripe as `y = x · G` (row vector of `k` data
//! payloads times a `k × n` generator). Heavy decoding picks `k`
//! independent surviving columns `S`, inverts `G_S`, and recovers
//! `x = y_S · G_S⁻¹`; re-encoding any block is a column combination.

use xorbas_gf::slice_ops::payload_mul_acc;
use xorbas_gf::Field;
use xorbas_linalg::Matrix;

/// Greedily selects independent columns from `candidates` (in order)
/// until `gen.rows()` of them are found. Returns `None` if the candidate
/// columns do not span the row space.
pub(crate) fn select_independent_columns<F: Field>(
    gen: &Matrix<F>,
    candidates: &[usize],
) -> Option<Vec<usize>> {
    let sub = gen.select_columns(candidates);
    let (_, pivots) = sub.rref();
    if pivots.len() < gen.rows() {
        return None;
    }
    Some(pivots.into_iter().map(|p| candidates[p]).collect())
}

/// Recovers all `k` data payloads from the shards at `selection`
/// (which must index `k` independent, present columns).
pub(crate) fn solve_data_payloads<F: Field>(
    gen: &Matrix<F>,
    shards: &[Option<Vec<u8>>],
    selection: &[usize],
    len: usize,
) -> Vec<Vec<u8>> {
    let k = gen.rows();
    debug_assert_eq!(selection.len(), k);
    let sub = gen.select_columns(selection);
    let inv = sub.invert().expect("selected columns are independent");
    // x = y_S · inv  =>  x_i = Σ_j y_{S_j} · inv[j][i]
    let mut data = vec![vec![0u8; len]; k];
    for (j, &s) in selection.iter().enumerate() {
        let payload = shards[s].as_ref().expect("selected shard is present");
        for (i, out) in data.iter_mut().enumerate() {
            payload_mul_acc(out, payload, inv[(j, i)]);
        }
    }
    data
}

/// Encodes stripe position `col` from the data payloads:
/// `y_col = Σ_i x_i · G[i, col]`.
pub(crate) fn encode_column<F: Field>(
    gen: &Matrix<F>,
    data: &[Vec<u8>],
    col: usize,
    len: usize,
) -> Vec<u8> {
    let mut out = vec![0u8; len];
    for (i, d) in data.iter().enumerate() {
        payload_mul_acc(&mut out, d, gen[(i, col)]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorbas_gf::Gf256;
    use xorbas_linalg::special;

    #[test]
    fn select_independent_columns_respects_order() {
        let g: Matrix<Gf256> = special::systematize(&special::vandermonde(3, 6)).unwrap();
        let sel = select_independent_columns(&g, &[5, 4, 3, 2, 1, 0]).unwrap();
        assert_eq!(sel, vec![5, 4, 3]); // first three candidates are independent (MDS)
    }

    #[test]
    fn select_independent_columns_skips_dependent() {
        // G = [I_2 | duplicate of column 0].
        let id = Matrix::<Gf256>::identity(2);
        let mut g = id.clone();
        g.push_column(&id.column(0));
        let sel = select_independent_columns(&g, &[0, 2, 1]).unwrap();
        assert_eq!(sel, vec![0, 1]); // column 2 is dependent on column 0
    }

    #[test]
    fn select_reports_rank_deficiency() {
        let id = Matrix::<Gf256>::identity(3);
        assert!(select_independent_columns(&id, &[0, 1]).is_none());
    }

    #[test]
    fn solve_then_encode_round_trips() {
        let g: Matrix<Gf256> = special::systematize(&special::vandermonde(3, 6)).unwrap();
        let data = vec![vec![1u8, 2], vec![3u8, 4], vec![5u8, 6]];
        let stripe: Vec<Vec<u8>> = (0..6).map(|c| encode_column(&g, &data, c, 2)).collect();
        // Recover from parity columns only.
        let shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        let sel = vec![3, 4, 5];
        let solved = solve_data_payloads(&g, &shards, &sel, 2);
        assert_eq!(solved, data);
    }
}
