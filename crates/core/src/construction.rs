//! Randomized and deterministic code construction (Appendix C/D).
//!
//! Theorem 4: random linear codes with the right group structure achieve
//! the distance bound with high probability over a large enough field.
//! [`random_aligned_mds`] draws random parity matrices (with the last
//! column forced so that the alignment `Σ g_j = 0` holds, keeping the
//! implied-parity optimization available) and verifies the MDS property
//! by exhaustive erasure checking; [`random_lrc`] stacks local parities
//! on top and verifies the target distance.
//!
//! [`exhaustive_search_small`] is the deterministic alternative the paper
//! describes as "exponential in the code parameters (n, k) and therefore
//! useful only for small code constructions".

use rand::Rng;

use xorbas_gf::Field;
use xorbas_linalg::Matrix;

use crate::analysis::{combinations, minimum_distance, reconstructable};
use crate::error::{CodeError, Result};
use crate::spec::LrcSpec;
use crate::{Lrc, ReedSolomon};

fn random_nonzero<F: Field, R: Rng>(rng: &mut R) -> F {
    F::from_index(rng.gen_range(1..F::ORDER))
}

/// Verifies the MDS property of a systematic `[I | P]` generator by
/// checking every `m`-erasure pattern is recoverable.
pub fn is_mds<F: Field>(generator: &Matrix<F>) -> bool {
    let k = generator.rows();
    let n = generator.cols();
    let m = n - k;
    combinations(n, m).all(|pattern| reconstructable(generator, &pattern))
}

/// Draws random `(k, m)` MDS codes whose generator columns sum to zero
/// (the Appendix-D alignment), retrying up to `attempts` times.
///
/// Alignment is arranged by forcing the last parity column to
/// `Σ data columns + Σ other parity columns`, which is one linear
/// constraint and leaves the rest of `P` uniform.
pub fn random_aligned_mds<F: Field, R: Rng>(
    k: usize,
    m: usize,
    rng: &mut R,
    attempts: usize,
) -> Result<ReedSolomon<F>> {
    for _ in 0..attempts {
        let mut p = Matrix::from_fn(k, m, |_, _| random_nonzero::<F, _>(rng));
        // Force row sums of [I | P] to zero: P[i][m-1] = 1 + Σ_{j<m-1} P[i][j].
        for i in 0..k {
            let partial: F = (0..m - 1).map(|j| p[(i, j)]).sum();
            p[(i, m - 1)] = F::ONE + partial;
        }
        if (0..k).any(|i| p[(i, m - 1)].is_zero()) {
            continue; // zero parity coefficient would break light repair
        }
        let rs = ReedSolomon::from_parity_matrix(k, m, p)?;
        debug_assert!(rs.is_aligned());
        if is_mds(rs.generator()) {
            return Ok(rs);
        }
    }
    Err(CodeError::ConstructionFailed(format!(
        "no aligned MDS ({k},{m}) code found in {attempts} attempts"
    )))
}

/// Randomized LRC construction: random aligned MDS base + unit local
/// parities, retried until the brute-force distance reaches `target_d`.
///
/// This is the practical face of Theorem 4: with `|F| = 2^8` or `2^16`
/// the first draw almost always succeeds.
pub fn random_lrc<F: Field, R: Rng>(
    spec: LrcSpec,
    target_d: usize,
    rng: &mut R,
    attempts: usize,
) -> Result<Lrc<F>> {
    spec.validate()?;
    for _ in 0..attempts {
        let Ok(rs) = random_aligned_mds::<F, R>(spec.k, spec.global_parities, rng, 16) else {
            continue;
        };
        let coeffs = vec![vec![F::ONE; spec.group_size]; spec.data_groups()];
        let lrc = Lrc::with_base(spec, rs, coeffs)?;
        if minimum_distance(lrc.generator()) >= target_d {
            return Ok(lrc);
        }
    }
    Err(CodeError::ConstructionFailed(format!(
        "no LRC with d >= {target_d} found in {attempts} attempts"
    )))
}

/// Deterministic exhaustive search over all parity matrices of a tiny
/// `(k, m)` code, returning the first aligned MDS instance.
///
/// Complexity is `O(q^{k·(m-1)})` — exponential, exactly as the paper
/// warns; callers should keep `k·(m-1)` at a handful of field symbols.
pub fn exhaustive_search_small<F: Field>(k: usize, m: usize) -> Result<ReedSolomon<F>> {
    let q = F::ORDER as u64;
    let cells = k * (m - 1);
    let space = q
        .checked_pow(cells as u32)
        .ok_or_else(|| CodeError::InvalidParameters("search space exceeds u64".into()))?;
    if space > 1 << 24 {
        return Err(CodeError::InvalidParameters(format!(
            "search space {space} too large for exhaustive search"
        )));
    }
    for idx in 0..space {
        // Decode idx into the free cells of P (all but the last column).
        let mut p = Matrix::zero(k, m);
        let mut rest = idx;
        for i in 0..k {
            for j in 0..m - 1 {
                p[(i, j)] = F::from_index((rest % q) as u32);
                rest /= q;
            }
        }
        // Alignment forces the last column.
        let mut ok = true;
        for i in 0..k {
            let partial: F = (0..m - 1).map(|j| p[(i, j)]).sum();
            p[(i, m - 1)] = F::ONE + partial;
            if p[(i, m - 1)].is_zero() {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let rs = ReedSolomon::from_parity_matrix(k, m, p)?;
        if is_mds(rs.generator()) {
            return Ok(rs);
        }
    }
    Err(CodeError::ConstructionFailed(format!(
        "no aligned MDS ({k},{m}) code exists over this field"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::code_locality;
    use crate::codec::ErasureCodec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xorbas_gf::{Gf16, Gf256};

    #[test]
    fn appendix_d_code_is_mds() {
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        assert!(is_mds(rs.generator()));
    }

    #[test]
    fn random_aligned_mds_first_try_over_gf256() {
        let mut rng = StdRng::seed_from_u64(7);
        let rs = random_aligned_mds::<Gf256, _>(6, 3, &mut rng, 32).unwrap();
        assert!(rs.is_aligned());
        assert!(is_mds(rs.generator()));
    }

    #[test]
    fn random_lrc_reaches_target_distance() {
        let spec = LrcSpec {
            k: 6,
            global_parities: 3,
            group_size: 3,
            implied_parity: true,
        };
        let mut rng = StdRng::seed_from_u64(11);
        // n = 6 + 3 + 2 = 11; Theorem-2 bound: 11 - 2 - 6 + 2 = 5.
        // A random draw reaches at least 4 (and 5 when no minimum-weight
        // base codeword happens to have zero group sums).
        let lrc = random_lrc::<Gf256, _>(spec, 4, &mut rng, 8).unwrap();
        let d = minimum_distance(lrc.generator());
        assert!((4..=5).contains(&d), "unexpected distance {d}");
        assert!(code_locality(lrc.generator(), 4).is_some());
    }

    #[test]
    fn random_lrc_round_trips_payloads() {
        let spec = LrcSpec {
            k: 4,
            global_parities: 2,
            group_size: 2,
            implied_parity: true,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let lrc = random_lrc::<Gf256, _>(spec, 3, &mut rng, 8).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 * 13 + 1; 8]).collect();
        let stripe = lrc.encode_stripe(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[1] = None;
        shards[5] = None;
        lrc.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &stripe[i]);
        }
    }

    #[test]
    fn exhaustive_search_finds_tiny_aligned_mds() {
        // (2, 2) over GF(2^4): search space 16^2 = 256.
        let rs = exhaustive_search_small::<Gf16>(2, 2).unwrap();
        assert!(rs.is_aligned());
        assert!(is_mds(rs.generator()));
    }

    #[test]
    fn exhaustive_search_rejects_oversized_spaces() {
        assert!(matches!(
            exhaustive_search_small::<Gf256>(10, 4),
            Err(CodeError::InvalidParameters(_))
        ));
    }

    #[test]
    fn randomized_construction_is_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ra = random_aligned_mds::<Gf256, _>(4, 2, &mut a, 8).unwrap();
        let rb = random_aligned_mds::<Gf256, _>(4, 2, &mut b, 8).unwrap();
        assert_eq!(ra.generator(), rb.generator());
    }
}
