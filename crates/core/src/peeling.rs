//! The iterative light decoder.
//!
//! An LRC's local parities induce XOR equations over the stored blocks
//! (`Σ c_i · Y_i = 0` per repair group). When a single member of an
//! equation is missing it can be resolved immediately; resolving one
//! block may unlock another equation, so the decoder *peels* until no
//! equation has exactly one unknown. This generalizes the paper's light
//! decoder (§3.1.2) from one failure to any pattern whose failures are
//! spread across repair groups — including the double failures the paper
//! notes stay cheap "as long as the two missing blocks belong to
//! different local XORs".

use xorbas_gf::Field;

/// A homogeneous XOR equation over stored blocks: `Σ cᵢ · Y_{idxᵢ} = 0`.
///
/// Coefficients must be nonzero (zero-coefficient members are simply not
/// members).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorEquation<F> {
    /// `(block index, coefficient)` pairs.
    pub members: Vec<(usize, F)>,
}

impl<F: Field> XorEquation<F> {
    /// Builds an equation, asserting coefficients are nonzero.
    pub fn new(members: Vec<(usize, F)>) -> Self {
        assert!(
            members.iter().all(|(_, c)| !c.is_zero()),
            "equation members must have nonzero coefficients"
        );
        Self { members }
    }

    /// The block indices participating in this equation.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().map(|&(i, _)| i)
    }
}

/// One resolved unknown: `Y_repaired = Σ cᵢ · Y_srcᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeelStep<F> {
    /// The block this step reconstructs.
    pub repaired: usize,
    /// Sources and the coefficient each is scaled by.
    pub sources: Vec<(usize, F)>,
}

/// Result of a peeling pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeelOutcome<F> {
    /// Reconstruction steps in dependency order.
    pub steps: Vec<PeelStep<F>>,
    /// Blocks that remained unresolved (empty = light decode succeeded).
    pub unresolved: Vec<usize>,
}

/// Runs the peeling decoder.
///
/// `available[i]` says whether block `i` can be read; `targets` lists the
/// blocks that must be reconstructed (peeling stops early once all
/// targets are resolved, but intermediate non-target blocks may be
/// resolved on the way when they unlock a target).
pub fn peel<F: Field>(
    equations: &[XorEquation<F>],
    available: &[bool],
    targets: &[usize],
) -> PeelOutcome<F> {
    let mut avail = available.to_vec();
    let mut steps = Vec::new();
    let mut remaining: Vec<usize> = targets.iter().copied().filter(|&t| !avail[t]).collect();

    'progress: while !remaining.is_empty() {
        for eq in equations {
            let mut missing_iter = eq.members.iter().filter(|&&(i, _)| !avail[i]);
            let (Some(&(idx, coeff)), None) = (missing_iter.next(), missing_iter.next()) else {
                continue;
            };
            // Solve c·Y = Σ others  =>  Y = c⁻¹ · Σ cᵢ·Yᵢ (char 2 drops signs).
            // Equations are built with nonzero coefficients; an
            // uninvertible one cannot peel, so skip it rather than panic.
            let Some(inv) = coeff.inv() else {
                debug_assert!(false, "equation coefficients are nonzero");
                continue;
            };
            let sources: Vec<(usize, F)> = eq
                .members
                .iter()
                .filter(|&&(i, _)| i != idx)
                .map(|&(i, c)| (i, inv * c))
                .collect();
            avail[idx] = true;
            steps.push(PeelStep {
                repaired: idx,
                sources,
            });
            remaining.retain(|&t| t != idx);
            continue 'progress;
        }
        break; // no equation with exactly one unknown
    }

    PeelOutcome {
        steps,
        unresolved: remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorbas_gf::{Field, Gf256};

    fn one() -> Gf256 {
        Gf256::ONE
    }

    /// Equations of a toy code: group {0,1,2} with parity 3, group {4,5}
    /// with parity 6.
    fn toy_equations() -> Vec<XorEquation<Gf256>> {
        vec![
            XorEquation::new(vec![(0, one()), (1, one()), (2, one()), (3, one())]),
            XorEquation::new(vec![(4, one()), (5, one()), (6, one())]),
        ]
    }

    #[test]
    fn single_missing_block_resolves_from_its_group() {
        let eqs = toy_equations();
        let mut avail = vec![true; 7];
        avail[1] = false;
        let out = peel(&eqs, &avail, &[1]);
        assert!(out.unresolved.is_empty());
        assert_eq!(out.steps.len(), 1);
        assert_eq!(out.steps[0].repaired, 1);
        let mut srcs: Vec<usize> = out.steps[0].sources.iter().map(|&(i, _)| i).collect();
        srcs.sort_unstable();
        assert_eq!(srcs, vec![0, 2, 3]);
    }

    #[test]
    fn failures_in_different_groups_both_resolve() {
        let eqs = toy_equations();
        let mut avail = vec![true; 7];
        avail[2] = false;
        avail[5] = false;
        let out = peel(&eqs, &avail, &[2, 5]);
        assert!(out.unresolved.is_empty());
        assert_eq!(out.steps.len(), 2);
    }

    #[test]
    fn two_failures_in_one_group_stall() {
        let eqs = toy_equations();
        let mut avail = vec![true; 7];
        avail[0] = false;
        avail[1] = false;
        let out = peel(&eqs, &avail, &[0, 1]);
        assert_eq!(out.steps.len(), 0);
        assert_eq!(out.unresolved, vec![0, 1]);
    }

    #[test]
    fn chained_peeling_crosses_groups() {
        // Groups {0,1,2} and {2,3,4}: block 2 participates in both, so
        // repairing it unlocks the second equation.
        let eqs = vec![
            XorEquation::new(vec![(0, one()), (1, one()), (2, one())]),
            XorEquation::new(vec![(2, one()), (3, one()), (4, one())]),
        ];
        let mut avail = vec![true; 5];
        avail[2] = false;
        avail[3] = false;
        let out = peel(&eqs, &avail, &[2, 3]);
        assert!(out.unresolved.is_empty());
        assert_eq!(out.steps[0].repaired, 2);
        assert_eq!(out.steps[1].repaired, 3);
        // Step 2 reads the block step 1 reconstructed.
        assert!(out.steps[1].sources.iter().any(|&(i, _)| i == 2));
    }

    #[test]
    fn nonunit_coefficients_are_inverted() {
        // 3·Y0 + 5·Y1 = 0  =>  Y0 = 3⁻¹·5·Y1.
        let c3 = Gf256::from_index(3);
        let c5 = Gf256::from_index(5);
        let eqs = vec![XorEquation::new(vec![(0, c3), (1, c5)])];
        let avail = vec![false, true];
        let out = peel(&eqs, &avail, &[0]);
        assert_eq!(out.steps[0].sources, vec![(1, c3.inv().unwrap() * c5)]);
    }

    #[test]
    fn targets_already_available_are_skipped() {
        let eqs = toy_equations();
        let avail = vec![true; 7];
        let out = peel(&eqs, &avail, &[0, 4]);
        assert!(out.steps.is_empty());
        assert!(out.unresolved.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero coefficients")]
    fn zero_coefficient_rejected() {
        let _ = XorEquation::new(vec![(0, Gf256::ZERO)]);
    }
}
