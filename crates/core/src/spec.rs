//! Code specifications and stripe geometry.
//!
//! The paper compares three redundancy schemes on equal data-stripe size
//! (§4): 3-way replication, the (10,4) Reed-Solomon code deployed in
//! HDFS-RAID, and the (10,6,5) LRC deployed in HDFS-Xorbas. [`CodeSpec`]
//! captures their geometry; [`LrcSpec`] carries the extra structure an
//! LRC needs (group size, implied parity).

use crate::error::{CodeError, Result};

/// Geometry of an LRC: which blocks exist and how they are grouped.
///
/// Using the paper's notation, this describes a `(k, n - k, r)` code
/// where `n = k + global_parities + k/group_size (+ 1 when the parity
/// group's local parity is stored rather than implied)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LrcSpec {
    /// Number of data blocks per stripe (`k`).
    pub k: usize,
    /// Number of Reed-Solomon global parities (`P_1..P_g`).
    pub global_parities: usize,
    /// Data blocks per local repair group (`r`); must divide `k`.
    pub group_size: usize,
    /// When true, the local parity of the *parity* group (`S3` in Fig. 2)
    /// is not stored: the alignment `S1 + S2 + S3 = 0` makes it implied.
    /// Requires the aligned Reed-Solomon construction with unit
    /// coefficients (§2.1, Appendix D).
    pub implied_parity: bool,
}

impl LrcSpec {
    /// The (10,6,5) LRC implemented in HDFS-Xorbas (Fig. 2).
    pub const XORBAS: LrcSpec = LrcSpec {
        k: 10,
        global_parities: 4,
        group_size: 5,
        implied_parity: true,
    };

    /// A mid-width (50, 20, 10)-class LRC: 5 data groups of 10, 15
    /// global parities, implied parity — n = 70 at 1.4x storage. Still
    /// fits GF(2^8); the step between the paper's 16-lane stripe and the
    /// truly wide [`LrcSpec::WIDE`] layout.
    pub const WIDE_50_20_10: LrcSpec = LrcSpec {
        k: 50,
        global_parities: 15,
        group_size: 10,
        implied_parity: true,
    };

    /// A wide-stripe (200, 60, 10)-class LRC beyond GF(2^8)'s 255-lane
    /// ceiling: 20 data groups of 10, 40 global parities, implied
    /// parity — n = 260 stored lanes at 1.3x storage (the same overhead
    /// as its RS(200, 60) MDS contrast, but any single data-block
    /// failure repairs from 10 lanes instead of 200). Requires a field
    /// with at least 240 nonzero points for the base code — GF(2^16).
    pub const WIDE: LrcSpec = LrcSpec {
        k: 200,
        global_parities: 40,
        group_size: 10,
        implied_parity: true,
    };

    /// Validates the structural constraints.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 || self.global_parities == 0 || self.group_size == 0 {
            return Err(CodeError::InvalidParameters(
                "k, global parities and group size must be positive".into(),
            ));
        }
        if !self.k.is_multiple_of(self.group_size) {
            return Err(CodeError::InvalidParameters(format!(
                "group size {} must divide k = {}",
                self.group_size, self.k
            )));
        }
        Ok(())
    }

    /// Number of data groups (`k / r`), each with one stored local parity.
    pub fn data_groups(&self) -> usize {
        self.k / self.group_size
    }

    /// Number of stored local parity blocks.
    pub fn stored_local_parities(&self) -> usize {
        self.data_groups() + usize::from(!self.implied_parity)
    }

    /// Total stored blocks per stripe (`n`).
    pub fn total_blocks(&self) -> usize {
        self.k + self.global_parities + self.stored_local_parities()
    }

    /// Stored parity blocks per stripe (`n - k`).
    pub fn parity_blocks(&self) -> usize {
        self.total_blocks() - self.k
    }

    /// Block locality: the number of blocks read to repair any single
    /// failure. Data and local-parity blocks read `group_size`; a global
    /// parity reads its `g - 1` peers plus either the stored parity-group
    /// local parity (1 block) or all data-group local parities (implied).
    pub fn locality(&self) -> usize {
        let parity_repair = if self.implied_parity {
            self.global_parities - 1 + self.data_groups()
        } else {
            self.global_parities
        };
        self.group_size.max(parity_repair)
    }

    /// The paper-style `(k, n - k, r)` triple.
    pub fn triple(&self) -> (usize, usize, usize) {
        (self.k, self.parity_blocks(), self.locality())
    }
}

/// A redundancy scheme, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeSpec {
    /// `f`-way replication (the stripe is one logical block stored
    /// `replicas` times).
    Replication {
        /// Total number of copies, e.g. 3 for HDFS default replication.
        replicas: usize,
    },
    /// A `(k, n - k)` Reed-Solomon code: `k` data and `m = n - k` parity
    /// blocks; tolerates any `m` erasures (MDS).
    ReedSolomon {
        /// Data blocks per stripe.
        k: usize,
        /// Parity blocks per stripe.
        m: usize,
    },
    /// A locally repairable code.
    Lrc(LrcSpec),
    /// A 2-substripe *piggybacked* `(k, m)` Reed-Solomon code: the same
    /// lanes, storage overhead and erasure tolerance as
    /// [`CodeSpec::ReedSolomon`], but every lane is split into two
    /// substripes and the parities of the second substripe carry
    /// piggybacks of first-substripe data, so a single lost data block
    /// repairs from roughly `(k + k/(m-1))/2` block-volumes of reads
    /// instead of `k`.
    Piggyback {
        /// Data blocks per stripe.
        k: usize,
        /// Parity blocks per stripe; must be at least 2 (one parity
        /// stays clean, the rest carry piggybacks).
        m: usize,
    },
}

impl CodeSpec {
    /// 3-way replication, the HDFS default the paper benchmarks against.
    pub const REPLICATION_3: CodeSpec = CodeSpec::Replication { replicas: 3 };
    /// The RS(10,4) used in Facebook's HDFS-RAID ("HDFS-RS").
    pub const RS_10_4: CodeSpec = CodeSpec::ReedSolomon { k: 10, m: 4 };
    /// The (10,6,5) LRC used in HDFS-Xorbas.
    pub const LRC_10_6_5: CodeSpec = CodeSpec::Lrc(LrcSpec::XORBAS);
    /// The wide-stripe (200, 60, 10)-class LRC (260 lanes, GF(2^16)).
    pub const LRC_WIDE: CodeSpec = CodeSpec::Lrc(LrcSpec::WIDE);
    /// The RS(200, 60) wide-stripe MDS contrast (260 lanes, GF(2^16)):
    /// the same 1.3x storage as [`CodeSpec::LRC_WIDE`], but every repair
    /// reads `k = 200` blocks.
    pub const RS_200_60: CodeSpec = CodeSpec::ReedSolomon { k: 200, m: 60 };
    /// The piggybacked RS(10,4): identical geometry and 1.4x storage to
    /// [`CodeSpec::RS_10_4`], but a single lost data block reads ~6.7
    /// block-volumes instead of 10.
    pub const PB_10_4: CodeSpec = CodeSpec::Piggyback { k: 10, m: 4 };
    /// The wide-stripe piggybacked RS(200, 60) (260 lanes, GF(2^16)):
    /// the same 1.3x storage as [`CodeSpec::RS_200_60`] with ~0.5x its
    /// single-data-loss repair bytes.
    pub const PB_200_60: CodeSpec = CodeSpec::Piggyback { k: 200, m: 60 };

    /// Data blocks per stripe (`k`).
    pub fn data_blocks(&self) -> usize {
        match *self {
            CodeSpec::Replication { .. } => 1,
            CodeSpec::ReedSolomon { k, .. } => k,
            CodeSpec::Lrc(spec) => spec.k,
            CodeSpec::Piggyback { k, .. } => k,
        }
    }

    /// Stored blocks per stripe (`n`).
    pub fn total_blocks(&self) -> usize {
        match *self {
            CodeSpec::Replication { replicas } => replicas,
            CodeSpec::ReedSolomon { k, m } => k + m,
            CodeSpec::Lrc(spec) => spec.total_blocks(),
            CodeSpec::Piggyback { k, m } => k + m,
        }
    }

    /// Storage overhead beyond the data itself, `(n - k) / k`:
    /// 2.0 for 3-replication, 0.4 for RS(10,4), 0.6 for LRC(10,6,5)
    /// (Table 1's "storage overhead" column).
    pub fn storage_overhead(&self) -> f64 {
        let k = self.data_blocks() as f64;
        (self.total_blocks() as f64 - k) / k
    }

    /// Blocks that must be *touched* to repair a single lost block.
    ///
    /// Replication reads the surviving copy (1); RS reads `k`; LRC reads
    /// its locality (5 for the Xorbas code). This is Table 1's "repair
    /// traffic" column, normalized to replication. The piggybacked RS
    /// touches `k + 1` distinct blocks for a lost data block but fetches
    /// only half of most of them — the byte-volume win shows up in
    /// [`crate::RepairPlan::read_volume`], not here.
    pub fn single_repair_reads(&self) -> usize {
        match *self {
            CodeSpec::Replication { .. } => 1,
            CodeSpec::ReedSolomon { k, .. } => k,
            CodeSpec::Lrc(spec) => spec.locality(),
            CodeSpec::Piggyback { k, .. } => k + 1,
        }
    }

    /// Upper bound on the minimum distance implied by the parameters.
    ///
    /// Replication and MDS specs are exact (`replicas` and `m + 1`); for
    /// LRC specs this is the Theorem-2 bound `n - ⌈k/r⌉ - k + 2`, which
    /// overlapping-group structures like the Xorbas code may not reach —
    /// use `analysis::minimum_distance` on the built codec for the exact
    /// value (5 for the (10,6,5) code, per Theorem 5).
    pub fn distance_upper_bound(&self) -> usize {
        match *self {
            CodeSpec::Replication { replicas } => replicas,
            // Piggybacking preserves the MDS property: each substripe
            // decodes from any k lanes (the second after subtracting the
            // piggybacks, which live entirely in the first).
            CodeSpec::ReedSolomon { m, .. } | CodeSpec::Piggyback { m, .. } => m + 1,
            CodeSpec::Lrc(spec) => {
                let n = spec.total_blocks();
                let k = spec.k;
                let r = spec.locality();
                n - k.div_ceil(r) - k + 2
            }
        }
    }

    /// Human-readable name in the paper's style.
    pub fn name(&self) -> String {
        match *self {
            CodeSpec::Replication { replicas } => format!("{replicas}-replication"),
            CodeSpec::ReedSolomon { k, m } => format!("RS ({k}, {m})"),
            CodeSpec::Lrc(spec) => {
                let (k, nk, r) = spec.triple();
                format!("LRC ({k}, {nk}, {r})")
            }
            CodeSpec::Piggyback { k, m } => format!("Piggybacked RS ({k}, {m})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorbas_spec_matches_paper_figure_2() {
        let s = LrcSpec::XORBAS;
        s.validate().unwrap();
        assert_eq!(s.total_blocks(), 16);
        assert_eq!(s.parity_blocks(), 6);
        assert_eq!(s.data_groups(), 2);
        assert_eq!(s.stored_local_parities(), 2);
        assert_eq!(s.locality(), 5);
        assert_eq!(s.triple(), (10, 6, 5));
    }

    #[test]
    fn stored_parity_variant_costs_one_more_block() {
        let stored = LrcSpec {
            implied_parity: false,
            ..LrcSpec::XORBAS
        };
        assert_eq!(stored.total_blocks(), 17);
        assert_eq!(stored.locality(), 5);
    }

    #[test]
    fn wide_specs_cross_the_255_lane_ceiling_at_rs_storage() {
        let w = LrcSpec::WIDE;
        w.validate().unwrap();
        assert_eq!(w.total_blocks(), 260);
        assert_eq!(w.parity_blocks(), 60);
        assert_eq!(w.data_groups(), 20);
        // Equal storage overhead with the MDS contrast; ~4.6x less than
        // the paper's (10,6,5) per-byte overhead gap vs RS(10,4).
        assert!((CodeSpec::LRC_WIDE.storage_overhead() - 0.3).abs() < 1e-12);
        assert!((CodeSpec::RS_200_60.storage_overhead() - 0.3).abs() < 1e-12);
        assert_eq!(CodeSpec::RS_200_60.total_blocks(), 260);
        // Repair asymmetry: the whole point of the wide LRC.
        assert_eq!(CodeSpec::RS_200_60.single_repair_reads(), 200);
        assert!(CodeSpec::LRC_WIDE.single_repair_reads() < 60);
        // The mid-width layout still fits GF(2^8).
        let m = LrcSpec::WIDE_50_20_10;
        m.validate().unwrap();
        assert_eq!(m.total_blocks(), 70);
        assert_eq!(m.parity_blocks(), 20);
    }

    #[test]
    fn table_1_storage_overheads() {
        assert_eq!(CodeSpec::REPLICATION_3.storage_overhead(), 2.0);
        assert!((CodeSpec::RS_10_4.storage_overhead() - 0.4).abs() < 1e-12);
        assert!((CodeSpec::LRC_10_6_5.storage_overhead() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn table_1_repair_traffic() {
        assert_eq!(CodeSpec::REPLICATION_3.single_repair_reads(), 1);
        assert_eq!(CodeSpec::RS_10_4.single_repair_reads(), 10);
        assert_eq!(CodeSpec::LRC_10_6_5.single_repair_reads(), 5);
    }

    #[test]
    fn distance_bounds_match_section_4() {
        // Replication loses data at 3 erasures; RS(10,4) at 5 (exact,
        // MDS). The LRC's Theorem-2 *bound* is 6; the structural optimum
        // for n=16, r=5 is 5 (Theorem 5), verified exactly in
        // `analysis::tests::xorbas_lrc_distance_is_5`.
        assert_eq!(CodeSpec::REPLICATION_3.distance_upper_bound(), 3);
        assert_eq!(CodeSpec::RS_10_4.distance_upper_bound(), 5);
        assert_eq!(CodeSpec::LRC_10_6_5.distance_upper_bound(), 6);
    }

    #[test]
    fn names_follow_paper_notation() {
        assert_eq!(CodeSpec::REPLICATION_3.name(), "3-replication");
        assert_eq!(CodeSpec::RS_10_4.name(), "RS (10, 4)");
        assert_eq!(CodeSpec::LRC_10_6_5.name(), "LRC (10, 6, 5)");
    }

    #[test]
    fn piggyback_matches_rs_geometry_at_lower_repair_bytes() {
        // Equal storage and distance to the RS contrast at both widths;
        // the spec-level read count only reports *touched* blocks (k+1) —
        // the ~0.67x byte volume is pinned against the real planner in
        // `piggyback::tests`.
        assert_eq!(
            CodeSpec::PB_10_4.storage_overhead(),
            CodeSpec::RS_10_4.storage_overhead()
        );
        assert_eq!(CodeSpec::PB_10_4.total_blocks(), 14);
        assert_eq!(CodeSpec::PB_10_4.distance_upper_bound(), 5);
        assert_eq!(CodeSpec::PB_10_4.single_repair_reads(), 11);
        assert_eq!(CodeSpec::PB_10_4.name(), "Piggybacked RS (10, 4)");
        assert_eq!(
            CodeSpec::PB_200_60.storage_overhead(),
            CodeSpec::RS_200_60.storage_overhead()
        );
        assert_eq!(CodeSpec::PB_200_60.total_blocks(), 260);
    }

    #[test]
    fn invalid_group_size_rejected() {
        let bad = LrcSpec {
            group_size: 3,
            ..LrcSpec::XORBAS
        };
        assert!(bad.validate().is_err());
        let zero = LrcSpec {
            k: 0,
            ..LrcSpec::XORBAS
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn storage_overhead_of_implied_parity_is_14_percent_over_rs() {
        // §1: "requires 14% more storage compared to RS": 16/14 ≈ 1.143.
        let lrc = CodeSpec::LRC_10_6_5.total_blocks() as f64;
        let rs = CodeSpec::RS_10_4.total_blocks() as f64;
        assert!((lrc / rs - 1.0 - 0.142857).abs() < 1e-5);
    }
}
