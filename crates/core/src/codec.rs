//! The [`ErasureCodec`] trait and repair accounting types.

use crate::error::Result;
use crate::spec::CodeSpec;

/// One reconstruction task: the unit of work a BlockFixer map task
/// performs (§3.1.2 — "a single map task opens parallel streams to the
/// nodes containing the required blocks, downloads them, and performs a
/// simple XOR").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairTask {
    /// Blocks this task reconstructs and writes back.
    pub repairs: Vec<usize>,
    /// Blocks this task reads (distinct within the task).
    pub reads: Vec<usize>,
    /// Whether this task runs the light decoder (XOR of a repair group)
    /// rather than the heavy full-stripe linear solve.
    pub light: bool,
}

/// What a repair would read, before any bytes move.
///
/// Produced by [`ErasureCodec::repair_plan`]; the cluster simulator
/// schedules one network/compute task per entry in `tasks`, and the
/// reliability model uses plans to derive expected repair traffic per
/// Markov state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// Indices of the missing blocks this plan repairs.
    pub missing: Vec<usize>,
    /// The tasks, in execution order (a later task may read a block an
    /// earlier task reconstructed).
    pub tasks: Vec<RepairTask>,
}

impl RepairPlan {
    /// Whether every task is a light-decoder task.
    pub fn is_light(&self) -> bool {
        self.tasks.iter().all(|t| t.light)
    }

    /// Number of *distinct* blocks read across all tasks.
    pub fn blocks_read(&self) -> usize {
        let mut seen: Vec<usize> = self
            .tasks
            .iter()
            .flat_map(|t| t.reads.iter().copied())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total block-read events, counting a block once per task that reads
    /// it — this is what HDFS "bytes read" counters aggregate, since each
    /// map task opens its own streams.
    pub fn read_events(&self) -> usize {
        self.tasks.iter().map(|t| t.reads.len()).sum()
    }
}

/// Outcome of an executed reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Indices that were missing and have been restored.
    pub repaired: Vec<usize>,
    /// Distinct blocks that were read.
    pub reads: Vec<usize>,
    /// Number of distinct blocks read (`reads.len()`).
    pub blocks_read: usize,
    /// Total block-read events counting per-task multiplicity.
    pub read_events: usize,
    /// Whether the light decoder handled the whole repair.
    pub used_light_decoder: bool,
}

impl RepairReport {
    pub(crate) fn from_plan(plan: &RepairPlan) -> Self {
        let mut reads: Vec<usize> = plan
            .tasks
            .iter()
            .flat_map(|t| t.reads.iter().copied())
            .collect();
        reads.sort_unstable();
        reads.dedup();
        RepairReport {
            repaired: plan.missing.clone(),
            blocks_read: reads.len(),
            read_events: plan.read_events(),
            reads,
            used_light_decoder: plan.is_light(),
        }
    }
}

/// A systematic erasure codec operating on equal-length block payloads.
///
/// Block indices are stripe positions: `0..k` are data blocks, the rest
/// parity blocks (layout is codec-specific). `encode_stripe` returns all
/// `n` blocks with the data blocks bit-identical to the input (the codes
/// here are systematic — the paper's §6 explains why exact/systematic
/// repair is required for MapReduce workloads).
pub trait ErasureCodec {
    /// Number of data blocks `k`.
    fn data_blocks(&self) -> usize;

    /// Total stored blocks `n`.
    fn total_blocks(&self) -> usize;

    /// This codec's [`CodeSpec`].
    fn spec(&self) -> CodeSpec;

    /// Encodes `k` equal-length data payloads into `n` stored payloads.
    fn encode_stripe(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>>;

    /// Plans reconstruction of `targets` when `unavailable` blocks cannot
    /// be read. `targets ⊆ unavailable`. Degraded reads plan a single
    /// target while other failures may coexist in the stripe.
    fn repair_plan_for(&self, unavailable: &[usize], targets: &[usize]) -> Result<RepairPlan>;

    /// Plans the repair of all missing blocks.
    fn repair_plan(&self, missing: &[usize]) -> Result<RepairPlan> {
        self.repair_plan_for(missing, missing)
    }

    /// Restores every `None` shard in place and reports what was read.
    ///
    /// `shards` must have length `n`; present shards must share one size.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<RepairReport>;

    /// Convenience: verifies a full stripe round-trips through encoding.
    fn verify_stripe(&self, stripe: &[Vec<u8>]) -> Result<bool> {
        let data: Vec<Vec<u8>> = stripe[..self.data_blocks()].to_vec();
        let re = self.encode_stripe(&data)?;
        Ok(re == stripe)
    }
}

/// Validates shard shape: `n` entries, consistent payload length.
///
/// Returns the common payload length (0 when everything is missing).
pub(crate) fn check_shards(shards: &[Option<Vec<u8>>], expected: usize) -> Result<usize> {
    use crate::error::CodeError;
    if shards.len() != expected {
        return Err(CodeError::ShardCountMismatch {
            expected,
            got: shards.len(),
        });
    }
    let mut len = None;
    for s in shards.iter().flatten() {
        match len {
            None => len = Some(s.len()),
            Some(l) if l != s.len() => return Err(CodeError::ShardSizeMismatch),
            _ => {}
        }
    }
    Ok(len.unwrap_or(0))
}

/// Validates encode input: exactly `k` payloads of one shared length.
pub(crate) fn check_data(data: &[Vec<u8>], k: usize) -> Result<usize> {
    use crate::error::CodeError;
    if data.len() != k {
        return Err(CodeError::ShardCountMismatch {
            expected: k,
            got: data.len(),
        });
    }
    let len = data.first().map_or(0, Vec::len);
    if data.iter().any(|d| d.len() != len) {
        return Err(CodeError::ShardSizeMismatch);
    }
    Ok(len)
}

/// Sorted, deduplicated copy of an index list; rejects out-of-range.
pub(crate) fn normalize_indices(indices: &[usize], n: usize) -> Result<Vec<usize>> {
    use crate::error::CodeError;
    let mut v = indices.to_vec();
    v.sort_unstable();
    v.dedup();
    if let Some(&bad) = v.iter().find(|&&i| i >= n) {
        return Err(CodeError::InvalidParameters(format!(
            "block index {bad} out of range for blocklength {n}"
        )));
    }
    Ok(v)
}
