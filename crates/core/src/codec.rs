//! The [`ErasureCodec`] trait, borrowed stripe views, and repair
//! accounting types.
//!
//! # The zero-copy surface
//!
//! The codecs operate on *borrowed* stripe storage: the caller owns the
//! lane buffers (one per stripe position) and the codec reads and writes
//! through slices. The owned-`Vec` methods remain as thin wrappers so
//! existing call sites keep working, but every hot path should move to
//! the slice-first API:
//!
//! | old call (owned)                               | new call (zero-copy)                              |
//! |------------------------------------------------|---------------------------------------------------|
//! | `encode_stripe(&[Vec<u8>]) -> Vec<Vec<u8>>`    | [`ErasureCodec::encode_into`] into caller buffers |
//! | `encode_stripe` + a thread pool                | [`crate::encode_into_parallel`]                   |
//! | `reconstruct(&mut [Option<Vec<u8>>])` per call | [`ErasureCodec::repair_session`] compiled once, then [`crate::RepairSession::repair`] on a [`StripeViewMut`] |
//! | `verify_stripe(&[Vec<u8>])` (full re-encode + full compare) | still `verify_stripe`, now re-encoding parity only into scratch and comparing parity lanes |
//!
//! A [`RepairSession`](crate::RepairSession) caches the compiled decode
//! (the inverted submatrix folded into per-target coefficient rows), so
//! repeated repairs of one failure pattern — the simulator's common case
//! — run no Gaussian elimination and allocate nothing after compilation.
//! The number of eliminations ever performed is observable through
//! [`crate::decode_solve_count`].

use crate::error::{CodeError, Result};
use crate::session::RepairSession;
use crate::spec::CodeSpec;
use xorbas_gf::slice_ops::{payload_mul_acc_multi, payload_mul_into_multi};
use xorbas_gf::Field;

/// Maximum lane count a [`LaneMask`] stores without heap spill.
const INLINE_LANES: usize = 256;

/// A small bitset over stripe lane indices.
///
/// Stripes up to 256 lanes (every code in the paper, and anything that
/// fits GF(2^8)) are tracked inline without heap allocation; wider
/// stripes over larger fields spill to a heap vector at construction
/// time only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMask {
    lanes: usize,
    bits: MaskBits,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum MaskBits {
    Inline([u64; INLINE_LANES / 64]),
    Spilled(Vec<u64>),
}

impl LaneMask {
    /// An all-clear mask over `lanes` lane indices.
    pub fn empty(lanes: usize) -> Self {
        let bits = if lanes <= INLINE_LANES {
            MaskBits::Inline([0; INLINE_LANES / 64])
        } else {
            MaskBits::Spilled(vec![0; lanes.div_ceil(64)])
        };
        Self { lanes, bits }
    }

    /// An all-set mask over `lanes` lane indices.
    pub fn full(lanes: usize) -> Self {
        let mut mask = Self::empty(lanes);
        for i in 0..lanes {
            mask.set(i);
        }
        mask
    }

    /// Number of lane indices this mask covers.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    fn words(&self) -> &[u64] {
        match &self.bits {
            MaskBits::Inline(w) => w,
            MaskBits::Spilled(w) => w,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.bits {
            MaskBits::Inline(w) => w,
            MaskBits::Spilled(w) => w,
        }
    }

    /// Sets bit `i`. Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.lanes, "lane {i} out of range for {}", self.lanes);
        self.words_mut()[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`. Panics if `i` is out of range.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.lanes, "lane {i} out of range for {}", self.lanes);
        self.words_mut()[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set. Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.lanes, "lane {i} out of range for {}", self.lanes);
        self.words()[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// Panics if the masks cover different lane counts — a truncated
    /// word-wise comparison would silently answer wrong.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.lanes, other.lanes, "mask width mismatch");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// The set lane indices, ascending.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.lanes).filter(|&i| self.get(i))
    }
}

/// Validates a set of borrowed lanes: expected count, one shared length.
fn check_lane_shape(lens: impl Iterator<Item = usize>, expected: usize) -> Result<usize> {
    let mut count = 0;
    let mut shared = None;
    for len in lens {
        count += 1;
        match shared {
            None => shared = Some(len),
            Some(l) if l != len => return Err(CodeError::ShardSizeMismatch),
            _ => {}
        }
    }
    if count != expected {
        return Err(CodeError::ShardCountMismatch {
            expected,
            got: count,
        });
    }
    Ok(shared.unwrap_or(0))
}

/// Validates encode input lanes: exactly `k` borrowed payloads of one
/// shared length, returned.
pub(crate) fn check_data_lanes(data: &[&[u8]], k: usize) -> Result<usize> {
    check_lane_shape(data.iter().map(|d| d.len()), k)
}

/// Validates encode output lanes: exactly `m` borrowed buffers of length
/// `len` each.
pub(crate) fn check_parity_lanes(parity: &[&mut [u8]], m: usize, len: usize) -> Result<()> {
    let got = check_lane_shape(parity.iter().map(|p| p.len()), m)?;
    if m > 0 && got != len {
        return Err(CodeError::ShardSizeMismatch);
    }
    Ok(())
}

/// Rejects payload lengths that are not a whole number of field symbols.
///
/// Multi-byte-symbol codecs (GF(2^16): 2-byte symbols) cannot interpret
/// a trailing partial symbol; rather than silently truncating or
/// panicking deep in a kernel, every encode and session replay checks
/// the boundary up front and returns
/// [`CodeError::PayloadNotSymbolAligned`].
pub(crate) fn check_symbol_alignment(len: usize, symbol_bytes: usize) -> Result<()> {
    if symbol_bytes > 1 && !len.is_multiple_of(symbol_bytes) {
        return Err(CodeError::PayloadNotSymbolAligned { symbol_bytes, len });
    }
    Ok(())
}

/// How many sources an encode row hands to one fused kernel call; wider
/// rows are folded in stack-buffered batches.
pub(crate) const ENC_FUSE: usize = 16;

/// Fused-row encode of one output lane: `out = Σᵢ coeff(i)·data[i]`.
///
/// Convenience front of [`encode_row_iter`] for the common
/// coefficient-per-data-lane shape.
pub(crate) fn encode_row<F: Field>(out: &mut [u8], data: &[&[u8]], coeff: impl Fn(usize) -> F) {
    encode_row_iter(out, data.iter().enumerate().map(|(i, d)| (coeff(i), *d)));
}

/// Fused-row encode of one output lane from any `(coefficient, source)`
/// stream: `out = Σ cᵢ·srcᵢ`.
///
/// Gathers the row on the stack in [`ENC_FUSE`] batches and issues the
/// fused multi-source kernels, so `out` is overwritten exactly once and
/// streamed through memory once — instead of once per source as the old
/// `mul_into` + `k-1 × mul_acc` loop did. Allocation-free; zero-fills
/// `out` when the stream is empty.
pub(crate) fn encode_row_iter<'a, F: Field>(
    out: &mut [u8],
    srcs: impl Iterator<Item = (F, &'a [u8])>,
) {
    let mut accumulate = false;
    let mut batch: [(F, &[u8]); ENC_FUSE] = [(F::ZERO, &[]); ENC_FUSE];
    let mut n = 0;
    let mut flush = |batch: &[(F, &[u8])], accumulate: &mut bool| {
        if *accumulate {
            payload_mul_acc_multi(out, batch);
        } else {
            payload_mul_into_multi(out, batch);
            *accumulate = true;
        }
    };
    for item in srcs {
        batch[n] = item;
        n += 1;
        if n == ENC_FUSE {
            flush(&batch[..n], &mut accumulate);
            n = 0;
        }
    }
    if n > 0 {
        flush(&batch[..n], &mut accumulate);
    }
    if !accumulate {
        out.fill(0);
    }
}

/// A borrowed read-only stripe: `n` equal-length payload lanes over
/// caller-owned storage, plus a present/missing mask.
///
/// Missing lanes still have backing storage (their contents are simply
/// meaningless); the mask records which lanes carry real data.
#[derive(Debug)]
pub struct StripeView<'a> {
    lanes: &'a [&'a [u8]],
    present: LaneMask,
}

impl<'a> StripeView<'a> {
    /// A view with every lane present. Fails on ragged lane lengths.
    pub fn new(lanes: &'a [&'a [u8]]) -> Result<Self> {
        Self::with_missing(lanes, &[])
    }

    /// A view whose `missing` lane indices carry no data.
    ///
    /// Fails on ragged lane lengths or out-of-range indices.
    pub fn with_missing(lanes: &'a [&'a [u8]], missing: &[usize]) -> Result<Self> {
        check_lane_shape(lanes.iter().map(|l| l.len()), lanes.len())?;
        let mut present = LaneMask::full(lanes.len());
        for &i in missing {
            if i >= lanes.len() {
                return Err(CodeError::InvalidParameters(format!(
                    "missing lane {i} out of range for {} lanes",
                    lanes.len()
                )));
            }
            present.clear(i);
        }
        Ok(Self { lanes, present })
    }

    /// Number of lanes (the stripe blocklength `n`).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Shared payload length in bytes.
    pub fn lane_len(&self) -> usize {
        self.lanes.first().map_or(0, |l| l.len())
    }

    /// Lane `i`'s payload (meaningless when the lane is missing).
    pub fn lane(&self, i: usize) -> &[u8] {
        self.lanes[i]
    }

    /// All lanes, in stripe order.
    pub fn lanes(&self) -> &[&'a [u8]] {
        self.lanes
    }

    /// Whether lane `i` carries real data.
    pub fn is_present(&self, i: usize) -> bool {
        self.present.get(i)
    }

    /// The present/missing mask.
    pub fn present_mask(&self) -> &LaneMask {
        &self.present
    }

    /// The missing lane indices, ascending.
    pub fn missing_lanes(&self) -> Vec<usize> {
        (0..self.lanes.len())
            .filter(|&i| !self.present.get(i))
            .collect()
    }
}

/// A borrowed mutable stripe: `n` equal-length payload lanes over
/// caller-owned storage, plus a present/missing mask.
///
/// This is the repair surface: a [`RepairSession`] reads the present
/// lanes and writes reconstructed payloads into the missing ones,
/// marking them present as it goes. Construct one per repair over
/// whatever storage the caller keeps (arena lanes, pooled buffers,
/// `Vec<Vec<u8>>` shards) — construction allocates nothing.
#[derive(Debug)]
pub struct StripeViewMut<'s, 'l> {
    lanes: &'s mut [&'l mut [u8]],
    present: LaneMask,
    lane_len: usize,
}

impl<'s, 'l> StripeViewMut<'s, 'l> {
    /// A view over `lanes` whose `missing` indices await reconstruction.
    ///
    /// Fails on ragged lane lengths or out-of-range indices.
    pub fn new(lanes: &'s mut [&'l mut [u8]], missing: &[usize]) -> Result<Self> {
        let lane_len = check_lane_shape(lanes.iter().map(|l| l.len()), lanes.len())?;
        let mut present = LaneMask::full(lanes.len());
        for &i in missing {
            if i >= lanes.len() {
                return Err(CodeError::InvalidParameters(format!(
                    "missing lane {i} out of range for {} lanes",
                    lanes.len()
                )));
            }
            present.clear(i);
        }
        Ok(Self {
            lanes,
            present,
            lane_len,
        })
    }

    /// Number of lanes (the stripe blocklength `n`).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Shared payload length in bytes.
    pub fn lane_len(&self) -> usize {
        self.lane_len
    }

    /// Lane `i`'s payload (meaningless while the lane is missing).
    pub fn lane(&self, i: usize) -> &[u8] {
        self.lanes[i]
    }

    /// Mutable access to lane `i`'s payload.
    pub fn lane_mut(&mut self, i: usize) -> &mut [u8] {
        self.lanes[i]
    }

    /// Whether lane `i` carries real data.
    pub fn is_present(&self, i: usize) -> bool {
        self.present.get(i)
    }

    /// Marks lane `i` as carrying real data (a decoder finished it).
    pub fn mark_present(&mut self, i: usize) {
        self.present.set(i);
    }

    /// The present/missing mask.
    pub fn present_mask(&self) -> &LaneMask {
        &self.present
    }

    /// The missing lane indices, ascending.
    pub fn missing_lanes(&self) -> Vec<usize> {
        (0..self.lanes.len())
            .filter(|&i| !self.present.get(i))
            .collect()
    }

    /// Simultaneous `(&mut dst, &src)` access to two distinct lanes —
    /// the split borrow every `dst ^= c · src` decode step needs.
    ///
    /// Panics if `dst == src`.
    pub fn lane_pair_mut(&mut self, dst: usize, src: usize) -> (&mut [u8], &[u8]) {
        assert_ne!(dst, src, "decode step reads and writes one lane");
        if dst < src {
            let (head, tail) = self.lanes.split_at_mut(src);
            (&mut *head[dst], &*tail[0])
        } else {
            let (head, tail) = self.lanes.split_at_mut(dst);
            (&mut *tail[0], &*head[src])
        }
    }

    /// Split borrow for fused row kernels: mutable access to lane `dst`
    /// plus shared access to every other lane, exposed as the lanes
    /// before `dst` and the lanes after it. A source lane `i ≠ dst`
    /// reads as `&head[i]` when `i < dst` and `&tail[i - dst - 1]`
    /// otherwise — which is what [`crate::RepairSession`] does to gather
    /// a whole `lane[dst] = Σ cᵢ·lane[srcᵢ]` row for one fused kernel
    /// call instead of one pass over `dst` per source.
    #[allow(clippy::type_complexity)] // (dst, lanes-before, lanes-after)
    pub fn lane_split_mut(&mut self, dst: usize) -> (&mut [u8], &[&'l mut [u8]], &[&'l mut [u8]]) {
        let (head, rest) = self.lanes.split_at_mut(dst);
        let (dst_lane, tail) = rest.split_at_mut(1);
        (&mut *dst_lane[0], &*head, &*tail)
    }
}

/// One reconstruction task: the unit of work a BlockFixer map task
/// performs (§3.1.2 — "a single map task opens parallel streams to the
/// nodes containing the required blocks, downloads them, and performs a
/// simple XOR").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairTask {
    /// Blocks this task reconstructs and writes back.
    pub repairs: Vec<usize>,
    /// Blocks this task reads (distinct within the task).
    pub reads: Vec<usize>,
    /// The subset of `reads` from which only *half* the block's bytes
    /// are fetched. Substripe codecs (the piggybacked RS) repair a
    /// single data loss from mostly half-lane reads; whole-lane codecs
    /// leave this empty. Every entry must also appear in `reads`.
    pub half_reads: Vec<usize>,
    /// Whether this task runs the light decoder (XOR of a repair group)
    /// rather than the heavy full-stripe linear solve.
    pub light: bool,
}

impl RepairTask {
    /// Bytes this task reads, in block units: a whole-lane read counts
    /// 1.0, a half-lane read 0.5.
    pub fn read_volume(&self) -> f64 {
        self.reads.len() as f64 - 0.5 * self.half_reads.len() as f64
    }

    /// The fraction of a block fetched when this task reads `lane`
    /// (1.0, or 0.5 for half-lane reads). Lanes the task does not read
    /// report 0.0.
    pub fn read_fraction(&self, lane: usize) -> f64 {
        if !self.reads.contains(&lane) {
            0.0
        } else if self.half_reads.contains(&lane) {
            0.5
        } else {
            1.0
        }
    }
}

/// What a repair would read, before any bytes move.
///
/// Produced by [`ErasureCodec::repair_plan`]; the cluster simulator
/// schedules one network/compute task per entry in `tasks`, and the
/// reliability model uses plans to derive expected repair traffic per
/// Markov state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// Indices of the missing blocks this plan repairs.
    pub missing: Vec<usize>,
    /// The tasks, in execution order (a later task may read a block an
    /// earlier task reconstructed).
    pub tasks: Vec<RepairTask>,
}

impl RepairPlan {
    /// Whether every task is a light-decoder task.
    pub fn is_light(&self) -> bool {
        self.tasks.iter().all(|t| t.light)
    }

    /// Number of *distinct* blocks read across all tasks.
    ///
    /// Computed with a lane bitset — no sorting, and no heap traffic for
    /// stripes up to 256 blocks.
    pub fn blocks_read(&self) -> usize {
        let width = self
            .tasks
            .iter()
            .flat_map(|t| t.reads.iter())
            .max()
            .map_or(0, |&m| m + 1);
        let mut seen = LaneMask::empty(width);
        for task in &self.tasks {
            for &r in &task.reads {
                seen.set(r);
            }
        }
        seen.count_ones()
    }

    /// Total block-read events, counting a block once per task that reads
    /// it — this is what HDFS "bytes read" counters aggregate, since each
    /// map task opens its own streams.
    pub fn read_events(&self) -> usize {
        self.tasks.iter().map(|t| t.reads.len()).sum()
    }

    /// Bytes the whole plan fetches, in block units, deduplicated across
    /// tasks: a block any task reads whole counts 1.0; a block read only
    /// as a half-lane counts 0.5. This is the §5 repair-*bytes* metric —
    /// for whole-lane codecs it equals [`RepairPlan::blocks_read`], and
    /// the piggybacked RS's single-data-loss advantage shows up here.
    pub fn read_volume(&self) -> f64 {
        let width = self
            .tasks
            .iter()
            .flat_map(|t| t.reads.iter())
            .max()
            .map_or(0, |&m| m + 1);
        let mut full = LaneMask::empty(width);
        let mut half = LaneMask::empty(width);
        for task in &self.tasks {
            for &r in &task.reads {
                if task.half_reads.contains(&r) {
                    half.set(r);
                } else {
                    full.set(r);
                }
            }
        }
        let mut volume = full.count_ones() as f64;
        for i in half.indices() {
            if !full.get(i) {
                volume += 0.5;
            }
        }
        volume
    }

    /// Per-block read fractions for the plan, deduplicated across tasks:
    /// `(block, fraction)` with fraction 1.0 for whole-lane reads and
    /// 0.5 for blocks only ever read as half-lanes. Ascending by block.
    pub fn read_fractions(&self) -> Vec<(usize, f64)> {
        let width = self
            .tasks
            .iter()
            .flat_map(|t| t.reads.iter())
            .max()
            .map_or(0, |&m| m + 1);
        let mut full = LaneMask::empty(width);
        let mut half = LaneMask::empty(width);
        for task in &self.tasks {
            for &r in &task.reads {
                if task.half_reads.contains(&r) {
                    half.set(r);
                } else {
                    full.set(r);
                }
            }
        }
        (0..width)
            .filter_map(|i| {
                if full.get(i) {
                    Some((i, 1.0))
                } else if half.get(i) {
                    Some((i, 0.5))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Outcome of an executed reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Indices that were missing and have been restored.
    pub repaired: Vec<usize>,
    /// Distinct blocks that were read.
    pub reads: Vec<usize>,
    /// Number of distinct blocks read (`reads.len()`).
    pub blocks_read: usize,
    /// Total block-read events counting per-task multiplicity.
    pub read_events: usize,
    /// Whether the light decoder handled the whole repair.
    pub used_light_decoder: bool,
}

impl RepairReport {
    pub(crate) fn from_plan(plan: &RepairPlan) -> Self {
        let mut reads: Vec<usize> = plan
            .tasks
            .iter()
            .flat_map(|t| t.reads.iter().copied())
            .collect();
        reads.sort_unstable();
        reads.dedup();
        RepairReport {
            repaired: plan.missing.clone(),
            blocks_read: reads.len(),
            read_events: plan.read_events(),
            reads,
            used_light_decoder: plan.is_light(),
        }
    }
}

/// A systematic erasure codec operating on equal-length block payloads.
///
/// Block indices are stripe positions: `0..k` are data blocks, the rest
/// parity blocks (layout is codec-specific). Encoding leaves the data
/// lanes untouched (the codes here are systematic — the paper's §6
/// explains why exact/systematic repair is required for MapReduce
/// workloads) and derives only the parity lanes.
///
/// Implementors provide the borrowed-buffer core ([`encode_into`],
/// [`repair_session`]); the owned-`Vec` methods are default wrappers
/// over it:
///
/// | old call (owned)                            | new call (zero-copy)                            |
/// |---------------------------------------------|-------------------------------------------------|
/// | `encode_stripe(&[Vec<u8>]) -> Vec<Vec<u8>>` | [`encode_into`] into caller buffers             |
/// | `encode_stripe` + a thread pool             | [`crate::encode_into_parallel`]                 |
/// | `reconstruct(&mut [Option<Vec<u8>>])`       | [`repair_session`] once, then [`crate::RepairSession::repair`] on a [`StripeViewMut`] |
///
/// [`encode_into`]: ErasureCodec::encode_into
/// [`repair_session`]: ErasureCodec::repair_session
pub trait ErasureCodec {
    /// Number of data blocks `k`.
    fn data_blocks(&self) -> usize;

    /// Total stored blocks `n`.
    fn total_blocks(&self) -> usize;

    /// This codec's [`CodeSpec`].
    fn spec(&self) -> CodeSpec;

    /// Bytes per field symbol in a payload — the granularity at which a
    /// payload may be split without breaking symbol boundaries (1 for
    /// GF(2^8), 2 for GF(2^16)). [`crate::encode_into_parallel`] aligns
    /// its range shards to this.
    fn symbol_bytes(&self) -> usize {
        1
    }

    /// Encodes `k` borrowed data payloads into `n - k` caller-provided
    /// parity buffers, allocating nothing.
    ///
    /// `data` must hold `k` equal-length lanes and `parity` the code's
    /// parity-lane count at the same length. Parity lanes are fully
    /// overwritten (no pre-zeroing needed).
    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<()>;

    /// Encodes one contiguous shard of the parity lanes: `parity` holds
    /// each parity lane's bytes `offset..offset + shard_len`, while
    /// `data` holds the *full* data lanes. [`crate::encode_into_parallel`]
    /// calls this so each worker writes only its disjoint parity shard.
    ///
    /// The default delegates to [`encode_into`] over the matching data
    /// ranges, which is exact for position-independent codes (byte `i` of
    /// every parity depends only on byte `i` of every data lane — RS,
    /// LRC). Substripe codecs whose output mixes distant payload
    /// positions (the piggybacked RS) must override it.
    ///
    /// `offset` and the shard length must be multiples of
    /// [`symbol_bytes`](ErasureCodec::symbol_bytes), and the shard must
    /// lie within the data-lane length.
    ///
    /// [`encode_into`]: ErasureCodec::encode_into
    fn encode_range_into(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        offset: usize,
    ) -> Result<()> {
        let len = check_data_lanes(data, self.data_blocks())?;
        let shard = parity.first().map_or(0, |p| p.len());
        if offset + shard > len {
            return Err(CodeError::ShardSizeMismatch);
        }
        let dshard: Vec<&[u8]> = data.iter().map(|d| &d[offset..offset + shard]).collect();
        self.encode_into(&dshard, parity)
    }

    /// Plans reconstruction of `targets` when `unavailable` blocks cannot
    /// be read. `targets ⊆ unavailable`. Degraded reads plan a single
    /// target while other failures may coexist in the stripe.
    fn repair_plan_for(&self, unavailable: &[usize], targets: &[usize]) -> Result<RepairPlan>;

    /// Plans the repair of all missing blocks.
    fn repair_plan(&self, missing: &[usize]) -> Result<RepairPlan> {
        self.repair_plan_for(missing, missing)
    }

    /// Compiles a reusable repair for one failure pattern.
    ///
    /// Compilation runs the planner and (for heavy patterns) a single
    /// Gaussian elimination, folding the inverted decode submatrix into
    /// per-target coefficient rows. The returned session repairs any
    /// stripe with this pattern via [`RepairSession::repair`] with no
    /// further solves and no allocation — compile once per pattern, reuse
    /// across stripes.
    fn repair_session(&self, unavailable: &[usize]) -> Result<RepairSession>;

    /// Convenience wrapper: encodes `k` owned data payloads into all `n`
    /// stored payloads (data lanes copied through bit-identically).
    ///
    /// Allocates the output stripe; hot paths should hold reusable
    /// buffers and call [`ErasureCodec::encode_into`] directly.
    fn encode_stripe(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let len = check_data(data, self.data_blocks())?;
        let m = self.total_blocks() - self.data_blocks();
        let mut parity = vec![vec![0u8; len]; m];
        {
            let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let mut parity_refs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            self.encode_into(&data_refs, &mut parity_refs)?;
        }
        let mut stripe = data.to_vec();
        stripe.extend(parity);
        Ok(stripe)
    }

    /// Convenience wrapper: restores every `None` shard in place and
    /// reports what was read.
    ///
    /// `shards` must have length `n`; present shards must share one size.
    /// Compiles a fresh [`RepairSession`] per call; repeated repairs of
    /// one pattern should compile once and reuse the session.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<RepairReport> {
        let len = check_shards(shards, self.total_blocks())?;
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        let session = self.repair_session(&missing)?;
        if missing.is_empty() {
            return Ok(session.report());
        }
        for &b in &missing {
            shards[b] = Some(vec![0u8; len]);
        }
        // Every lane is `Some` here (missing ones were just zero-filled);
        // if one were not, the lane count would shrink and the view
        // constructor below would reject the stripe with a typed error.
        let mut lane_refs: Vec<&mut [u8]> = shards
            .iter_mut()
            .filter_map(|s| s.as_mut().map(Vec::as_mut_slice))
            .collect();
        let mut view = StripeViewMut::new(&mut lane_refs, &missing)?;
        session.repair(&mut view)?;
        Ok(session.report())
    }

    /// Convenience: verifies a full stripe round-trips through encoding.
    ///
    /// Re-derives only the parity lanes (into scratch buffers) and
    /// compares them against the stored parity — the data half is
    /// systematic by construction and is neither cloned nor compared.
    fn verify_stripe(&self, stripe: &[Vec<u8>]) -> Result<bool> {
        let k = self.data_blocks();
        let n = self.total_blocks();
        if stripe.len() != n {
            return Err(CodeError::ShardCountMismatch {
                expected: n,
                got: stripe.len(),
            });
        }
        let data_refs: Vec<&[u8]> = stripe[..k].iter().map(Vec::as_slice).collect();
        let len = check_data_lanes(&data_refs, k)?;
        let mut parity = vec![vec![0u8; len]; n - k];
        {
            let mut parity_refs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            self.encode_into(&data_refs, &mut parity_refs)?;
        }
        Ok(parity
            .iter()
            .zip(&stripe[k..])
            .all(|(re, stored)| re == stored))
    }
}

/// Validates shard shape: `n` entries, consistent payload length.
///
/// Returns the common payload length (0 when everything is missing).
pub(crate) fn check_shards(shards: &[Option<Vec<u8>>], expected: usize) -> Result<usize> {
    if shards.len() != expected {
        return Err(CodeError::ShardCountMismatch {
            expected,
            got: shards.len(),
        });
    }
    let mut len = None;
    for s in shards.iter().flatten() {
        match len {
            None => len = Some(s.len()),
            Some(l) if l != s.len() => return Err(CodeError::ShardSizeMismatch),
            _ => {}
        }
    }
    Ok(len.unwrap_or(0))
}

/// Validates encode input: exactly `k` payloads of one shared length.
pub(crate) fn check_data(data: &[Vec<u8>], k: usize) -> Result<usize> {
    if data.len() != k {
        return Err(CodeError::ShardCountMismatch {
            expected: k,
            got: data.len(),
        });
    }
    let len = data.first().map_or(0, Vec::len);
    if data.iter().any(|d| d.len() != len) {
        return Err(CodeError::ShardSizeMismatch);
    }
    Ok(len)
}

/// Sorted, deduplicated copy of an index list; rejects out-of-range.
pub(crate) fn normalize_indices(indices: &[usize], n: usize) -> Result<Vec<usize>> {
    let mut v = indices.to_vec();
    v.sort_unstable();
    v.dedup();
    if let Some(&bad) = v.iter().find(|&&i| i >= n) {
        return Err(CodeError::InvalidParameters(format!(
            "block index {bad} out of range for blocklength {n}"
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErasureCodec, Lrc, ReedSolomon};
    use xorbas_gf::Gf256;

    #[test]
    fn lane_mask_inline_set_get_count() {
        let mut m = LaneMask::empty(16);
        assert_eq!(m.count_ones(), 0);
        m.set(0);
        m.set(15);
        m.set(15);
        assert!(m.get(0) && m.get(15) && !m.get(7));
        assert_eq!(m.count_ones(), 2);
        m.clear(0);
        assert_eq!(m.indices().collect::<Vec<_>>(), vec![15]);
    }

    #[test]
    fn lane_mask_spills_past_256_lanes() {
        let mut m = LaneMask::empty(300);
        m.set(299);
        m.set(0);
        assert_eq!(m.count_ones(), 2);
        assert!(m.get(299));
        let full = LaneMask::full(300);
        assert!(m.is_subset_of(&full));
        assert!(!full.is_subset_of(&m));
    }

    #[test]
    fn lane_mask_subset() {
        let mut a = LaneMask::empty(64);
        let mut b = LaneMask::empty(64);
        a.set(3);
        b.set(3);
        b.set(9);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn blocks_read_is_5_for_xorbas_single_failure_plan() {
        // The headline locality: one lost block of the (10,6,5) LRC reads
        // exactly its 5-block repair group (Fig. 2 / §3.1.2). Pinned here
        // against the bitset rewrite of `blocks_read`.
        let lrc = Lrc::xorbas_10_6_5().unwrap();
        let plan = lrc.repair_plan(&[0]).unwrap();
        assert_eq!(plan.blocks_read(), 5);
        assert_eq!(plan.read_events(), 5);
    }

    #[test]
    fn blocks_read_dedups_across_tasks() {
        let plan = RepairPlan {
            missing: vec![1, 2],
            tasks: vec![
                RepairTask {
                    repairs: vec![1],
                    reads: vec![0, 3, 4],
                    half_reads: vec![],
                    light: true,
                },
                RepairTask {
                    repairs: vec![2],
                    reads: vec![0, 3, 5],
                    half_reads: vec![],
                    light: true,
                },
            ],
        };
        assert_eq!(plan.blocks_read(), 4); // {0, 3, 4, 5}
        assert_eq!(plan.read_events(), 6);
        assert_eq!(plan.read_volume(), 4.0); // no half reads: volume = blocks
    }

    #[test]
    fn read_volume_counts_half_reads_and_upgrades_on_overlap() {
        let plan = RepairPlan {
            missing: vec![4],
            tasks: vec![
                RepairTask {
                    repairs: vec![4],
                    reads: vec![0, 1, 2],
                    half_reads: vec![1, 2],
                    light: false,
                },
                RepairTask {
                    repairs: vec![4],
                    reads: vec![2],
                    half_reads: vec![],
                    light: false,
                },
            ],
        };
        // Block 0 whole (1.0), block 1 half only (0.5), block 2 read half
        // by one task but whole by another → whole (1.0).
        assert_eq!(plan.read_volume(), 2.5);
        assert_eq!(plan.read_fractions(), vec![(0, 1.0), (1, 0.5), (2, 1.0)]);
        assert_eq!(plan.tasks[0].read_volume(), 2.0);
        assert_eq!(plan.tasks[0].read_fraction(1), 0.5);
        assert_eq!(plan.tasks[0].read_fraction(0), 1.0);
        assert_eq!(plan.tasks[0].read_fraction(9), 0.0);
    }

    #[test]
    fn stripe_view_rejects_ragged_lanes() {
        let a = [1u8, 2, 3];
        let b = [4u8, 5];
        let lanes: Vec<&[u8]> = vec![&a, &b];
        assert!(matches!(
            StripeView::new(&lanes),
            Err(CodeError::ShardSizeMismatch)
        ));
    }

    #[test]
    fn stripe_view_tracks_missing() {
        let a = [1u8, 2];
        let b = [3u8, 4];
        let lanes: Vec<&[u8]> = vec![&a, &b];
        let v = StripeView::with_missing(&lanes, &[1]).unwrap();
        assert!(v.is_present(0) && !v.is_present(1));
        assert_eq!(v.missing_lanes(), vec![1]);
        assert_eq!(v.lane_len(), 2);
        assert!(StripeView::with_missing(&lanes, &[2]).is_err());
    }

    #[test]
    fn stripe_view_mut_lane_pair_splits_both_ways() {
        let mut a = vec![1u8, 1];
        let mut b = vec![2u8, 2];
        let mut lanes: Vec<&mut [u8]> = vec![&mut a, &mut b];
        let mut v = StripeViewMut::new(&mut lanes, &[0]).unwrap();
        {
            let (dst, src) = v.lane_pair_mut(0, 1);
            dst.copy_from_slice(src);
        }
        v.mark_present(0);
        assert!(v.is_present(0));
        assert_eq!(v.lane(0), &[2, 2]);
        let (dst, src) = v.lane_pair_mut(1, 0);
        assert_eq!(dst.len(), src.len());
    }

    #[test]
    fn verify_stripe_checks_parity_lanes_only() {
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 8]).collect();
        let mut stripe = rs.encode_stripe(&data).unwrap();
        assert!(rs.verify_stripe(&stripe).unwrap());
        stripe[5][0] ^= 0xFF; // corrupt a parity lane
        assert!(!rs.verify_stripe(&stripe).unwrap());
        stripe[5][0] ^= 0xFF;
        stripe.pop();
        assert!(matches!(
            rs.verify_stripe(&stripe),
            Err(CodeError::ShardCountMismatch { .. })
        ));
    }
}
