//! The Reed-Solomon baseline ("HDFS-RS").
//!
//! Facebook's HDFS-RAID encodes cold files with an RS(10,4): 4 parity
//! blocks per 10 data blocks, tolerating any 4 erasures at 1.4× storage.
//! Its weakness — the reason the paper exists — is repair: rebuilding a
//! single lost block reads `k = 10` blocks (§1.1).
//!
//! Two generator constructions are provided:
//!
//! * [`ReedSolomon::new`] — the Appendix-D construction: `G` is the right
//!   null space of the Vandermonde parity-check matrix
//!   `[H]_{i,j} = α^{(i-1)(j-1)}`, systematized. Because `H`'s first row
//!   is all ones, every codeword's blocks XOR to zero — the *alignment*
//!   property `Σ g_i = 0` that makes the LRC's implied parity possible.
//! * [`ReedSolomon::with_vandermonde_generator`] — the textbook
//!   systematic-Vandermonde construction, which lacks alignment; kept as
//!   a baseline for the ablation of the implied-parity design.

use xorbas_gf::{Field, Gf256};
use xorbas_linalg::{special, Matrix};

use crate::codec::{
    check_data_lanes, check_parity_lanes, check_symbol_alignment, encode_row, normalize_indices,
    ErasureCodec, RepairPlan, RepairTask,
};
use crate::error::{CodeError, Result};
use crate::session::RepairSession;
use crate::spec::CodeSpec;

/// A systematic `(k, m)` Reed-Solomon erasure code over `F`.
///
/// Block layout: indices `0..k` are data, `k..k+m` are parities.
#[derive(Debug, Clone)]
pub struct ReedSolomon<F: Field = Gf256> {
    k: usize,
    m: usize,
    /// Systematic generator, `k × (k + m)`, `G = [I_k | P]`.
    generator: Matrix<F>,
    /// Whether `Σ_j g_j = 0` (Appendix-D construction).
    aligned: bool,
}

impl<F: Field> ReedSolomon<F> {
    /// Builds the aligned Appendix-D code: `G = null(H)` systematized,
    /// `H` the canonical Vandermonde parity-check matrix.
    pub fn new(k: usize, m: usize) -> Result<Self> {
        Self::validate_params(k, m)?;
        let n = k + m;
        let h = special::vandermonde::<F>(m, n);
        let g = h.right_null_space();
        debug_assert_eq!(g.rows(), k);
        let gs = special::systematize(&g).ok_or_else(|| {
            CodeError::ConstructionFailed("null-space generator could not be systematized".into())
        })?;
        debug_assert!(gs.mul(&h.transpose()).is_zero());
        Ok(Self {
            k,
            m,
            generator: gs,
            aligned: true,
        })
    }

    /// Builds the textbook systematic-Vandermonde code (not aligned).
    pub fn with_vandermonde_generator(k: usize, m: usize) -> Result<Self> {
        Self::validate_params(k, m)?;
        let n = k + m;
        let w = special::vandermonde::<F>(k, n);
        let gs = special::systematize(&w).ok_or_else(|| {
            CodeError::ConstructionFailed("Vandermonde generator could not be systematized".into())
        })?;
        let aligned = (0..k).all(|r| gs.row(r).iter().copied().sum::<F>().is_zero());
        Ok(Self {
            k,
            m,
            generator: gs,
            aligned,
        })
    }

    /// Builds a code from an explicit `k × m` parity submatrix `P`
    /// (`G = [I | P]`). The caller is responsible for `P` yielding the
    /// desired distance; used by the randomized constructions.
    pub fn from_parity_matrix(k: usize, m: usize, p: Matrix<F>) -> Result<Self> {
        Self::validate_params(k, m)?;
        if p.rows() != k || p.cols() != m {
            return Err(CodeError::InvalidParameters(format!(
                "parity matrix must be {k}x{m}, got {}x{}",
                p.rows(),
                p.cols()
            )));
        }
        let generator = Matrix::identity(k).hcat(&p);
        let aligned = (0..k).all(|r| generator.row(r).iter().copied().sum::<F>().is_zero());
        Ok(Self {
            k,
            m,
            generator,
            aligned,
        })
    }

    fn validate_params(k: usize, m: usize) -> Result<()> {
        if k == 0 || m == 0 {
            return Err(CodeError::InvalidParameters(
                "k and m must be positive".into(),
            ));
        }
        let n = (k + m) as u64;
        if n > u64::from(F::ORDER) - 1 {
            return Err(CodeError::InvalidParameters(format!(
                "blocklength {n} exceeds field capacity {}",
                F::ORDER - 1
            )));
        }
        Ok(())
    }

    /// Number of parity blocks `m = n - k`.
    pub fn parity_blocks(&self) -> usize {
        self.m
    }

    /// The systematic generator matrix `[I_k | P]`.
    pub fn generator(&self) -> &Matrix<F> {
        &self.generator
    }

    /// Whether the code has the Appendix-D alignment `Σ_j g_j = 0`
    /// (all blocks of every stripe XOR to zero), the property the LRC's
    /// implied parity relies on.
    pub fn is_aligned(&self) -> bool {
        self.aligned
    }

    /// Selects `k` independent available columns, preferring data blocks
    /// (identity columns make the solve cheap and mirror HDFS-RAID's
    /// preference for reading surviving data).
    fn select_decode_columns(&self, available: &[usize]) -> Result<Vec<usize>> {
        let (data, parity): (Vec<usize>, Vec<usize>) = available.iter().partition(|&&i| i < self.k);
        let ordered: Vec<usize> = data.into_iter().chain(parity).collect();
        // For an MDS code any k columns are independent, so the selection
        // fails exactly when fewer than k blocks survive.
        crate::linear::select_independent_columns(&self.generator, &ordered).ok_or_else(|| {
            CodeError::Unrecoverable {
                erased: (0..self.total_blocks())
                    .filter(|i| !available.contains(i))
                    .collect(),
            }
        })
    }
}

impl<F: Field> ErasureCodec for ReedSolomon<F> {
    fn data_blocks(&self) -> usize {
        self.k
    }

    fn total_blocks(&self) -> usize {
        self.k + self.m
    }

    fn spec(&self) -> CodeSpec {
        CodeSpec::ReedSolomon {
            k: self.k,
            m: self.m,
        }
    }

    fn symbol_bytes(&self) -> usize {
        F::SYMBOL_BYTES
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<()> {
        let len = check_data_lanes(data, self.k)?;
        check_parity_lanes(parity, self.m, len)?;
        check_symbol_alignment(len, F::SYMBOL_BYTES)?;
        // One fused-row pass per parity lane: the whole generator column
        // is gathered (on the stack, in ENC_FUSE batches) and handed to
        // the multi-source kernels, so each output lane is streamed
        // through memory once instead of once per data lane.
        for (p, out) in parity.iter_mut().enumerate() {
            let col = self.k + p;
            encode_row(out, data, |i| self.generator[(i, col)]);
        }
        Ok(())
    }

    fn repair_plan_for(&self, unavailable: &[usize], targets: &[usize]) -> Result<RepairPlan> {
        let n = self.total_blocks();
        let unavailable = normalize_indices(unavailable, n)?;
        let targets = normalize_indices(targets, n)?;
        if let Some(&bad) = targets.iter().find(|t| !unavailable.contains(t)) {
            return Err(CodeError::InvalidParameters(format!(
                "target block {bad} is not among the unavailable blocks"
            )));
        }
        if targets.is_empty() {
            return Ok(RepairPlan {
                missing: vec![],
                tasks: vec![],
            });
        }
        let available: Vec<usize> = (0..n).filter(|i| !unavailable.contains(i)).collect();
        let selection = self.select_decode_columns(&available)?;
        // RS repair is always heavy: one task rebuilds every target from
        // the same k streams.
        Ok(RepairPlan {
            missing: targets.clone(),
            tasks: vec![RepairTask {
                repairs: targets,
                reads: selection,
                half_reads: vec![],
                light: false,
            }],
        })
    }

    fn repair_session(&self, unavailable: &[usize]) -> Result<RepairSession> {
        let plan = self.repair_plan(unavailable)?;
        let missing = plan.missing.clone();
        let mut steps = Vec::new();
        let mut solves = 0;
        if let Some(task) = plan.tasks.first() {
            // RS repair is a single heavy task; fold the inverse of the
            // selected columns into per-target coefficient rows.
            steps = crate::linear::compile_combination_steps(
                &self.generator,
                &task.reads,
                &task.repairs,
            )?;
            solves = 1;
        }
        Ok(RepairSession::from_parts::<F>(
            self.total_blocks(),
            missing,
            plan,
            steps,
            solves,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xorbas_gf::{Gf16, Gf65536};

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let data = sample_data(10, 32);
        let stripe = rs.encode_stripe(&data).unwrap();
        assert_eq!(stripe.len(), 14);
        assert_eq!(&stripe[..10], &data[..]);
    }

    #[test]
    fn appendix_d_construction_is_aligned() {
        // Σ of all 14 blocks is the zero payload — the implied-parity
        // precondition (Appendix D: G·1ᵀ = 0).
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        assert!(rs.is_aligned());
        let stripe = rs.encode_stripe(&sample_data(10, 64)).unwrap();
        let mut acc = vec![0u8; 64];
        for b in &stripe {
            xorbas_gf::slice_ops::xor_into(&mut acc, b);
        }
        assert_eq!(acc, vec![0u8; 64]);
    }

    #[test]
    fn vandermonde_generator_is_not_aligned_for_10_4() {
        let rs = ReedSolomon::<Gf256>::with_vandermonde_generator(10, 4).unwrap();
        assert!(!rs.is_aligned());
    }

    #[test]
    fn single_failure_reads_k_blocks() {
        // The repair problem (§1): RS repairs one block by reading k = 10.
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let plan = rs.repair_plan(&[3]).unwrap();
        assert_eq!(plan.blocks_read(), 10);
        assert!(!plan.is_light());
    }

    #[test]
    fn all_4_erasure_patterns_recover() {
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let data = sample_data(10, 8);
        let stripe = rs.encode_stripe(&data).unwrap();
        for pattern in crate::analysis::combinations(14, 4) {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            let report = rs.reconstruct(&mut shards).unwrap();
            assert_eq!(report.blocks_read, 10);
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &stripe[i], "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn five_erasures_are_unrecoverable() {
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let data = sample_data(10, 8);
        let stripe = rs.encode_stripe(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.into_iter().map(Some).collect();
        for shard in shards.iter_mut().take(5) {
            *shard = None;
        }
        assert!(matches!(
            rs.reconstruct(&mut shards),
            Err(CodeError::Unrecoverable { .. })
        ));
    }

    #[test]
    fn works_over_gf16_and_gf65536() {
        let rs4 = ReedSolomon::<Gf16>::new(4, 2).unwrap();
        // GF(2^4) payloads carry one 4-bit symbol per byte.
        let data: Vec<Vec<u8>> = sample_data(4, 6)
            .into_iter()
            .map(|d| d.iter().map(|b| b % 16).collect())
            .collect();
        let stripe = rs4.encode_stripe(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[5] = None;
        rs4.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &stripe[0]);
        assert_eq!(shards[5].as_ref().unwrap(), &stripe[5]);

        let rs16 = ReedSolomon::<Gf65536>::new(6, 3).unwrap();
        let data = sample_data(6, 8); // even length: whole GF(2^16) symbols
        let stripe = rs16.encode_stripe(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[2] = None;
        shards[7] = None;
        shards[8] = None;
        rs16.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[2].as_ref().unwrap(), &stripe[2]);
    }

    #[test]
    fn blocklength_must_fit_the_field() {
        assert!(ReedSolomon::<Gf16>::new(12, 4).is_err());
        assert!(ReedSolomon::<Gf16>::new(11, 4).is_ok());
    }

    #[test]
    fn rejects_bad_shapes() {
        let rs = ReedSolomon::<Gf256>::new(4, 2).unwrap();
        assert!(matches!(
            rs.encode_stripe(&sample_data(3, 8)),
            Err(CodeError::ShardCountMismatch {
                expected: 4,
                got: 3
            })
        ));
        let mut ragged = sample_data(4, 8);
        ragged[2].pop();
        assert!(matches!(
            rs.encode_stripe(&ragged),
            Err(CodeError::ShardSizeMismatch)
        ));
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; 5];
        shards[0] = Some(vec![0u8; 4]);
        assert!(rs.reconstruct(&mut shards).is_err());
    }

    #[test]
    fn degraded_read_plans_single_target_among_many_failures() {
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let plan = rs.repair_plan_for(&[1, 2, 3], &[2]).unwrap();
        assert_eq!(plan.missing, vec![2]);
        assert_eq!(plan.tasks.len(), 1);
        assert_eq!(plan.blocks_read(), 10);
        // Reads avoid every unavailable block.
        for b in [1, 2, 3] {
            assert!(!plan.tasks[0].reads.contains(&b));
        }
    }

    #[test]
    fn empty_repair_is_a_no_op() {
        let rs = ReedSolomon::<Gf256>::new(4, 2).unwrap();
        let plan = rs.repair_plan(&[]).unwrap();
        assert_eq!(plan.blocks_read(), 0);
        let stripe = rs.encode_stripe(&sample_data(4, 4)).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.into_iter().map(Some).collect();
        let report = rs.reconstruct(&mut shards).unwrap();
        assert_eq!(report.blocks_read, 0);
        assert!(report.repaired.is_empty());
    }

    proptest! {
        #[test]
        fn any_recoverable_pattern_round_trips(
            seed in any::<u64>(),
            erasures in proptest::collection::btree_set(0usize..14, 0..=4),
            len in 1usize..64,
        ) {
            let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
            let mut rng_state = seed;
            let mut next = || {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (rng_state >> 33) as u8
            };
            let data: Vec<Vec<u8>> =
                (0..10).map(|_| (0..len).map(|_| next()).collect()).collect();
            let stripe = rs.encode_stripe(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> =
                stripe.iter().cloned().map(Some).collect();
            for &e in &erasures {
                shards[e] = None;
            }
            rs.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                prop_assert_eq!(s.as_ref().unwrap(), &stripe[i]);
            }
        }
    }
}
