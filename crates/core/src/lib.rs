//! Locally Repairable Codes and their Reed-Solomon baseline — the core
//! of the "XORing Elephants" (VLDB 2013) reproduction.
//!
//! # What this crate provides
//!
//! * [`ReedSolomon`] — the `(k, m)` MDS baseline ("HDFS-RS"), including
//!   the Appendix-D aligned construction whose blocks XOR to zero.
//! * [`Lrc`] — `(k, n-k, r)` Locally Repairable Codes with local XOR
//!   parities, the implied-parity optimization, a peeling *light
//!   decoder* and a full-rank *heavy decoder* (§2.1, §3.1.2).
//! * [`PiggybackRs`] — the repair-bandwidth-optimal third family: a
//!   2-substripe piggybacked RS at RS storage whose single-data-loss
//!   repairs read ~0.67x the bytes.
//! * [`analysis`] — brute-force ground truth: minimum distance
//!   (Definition 1), block locality (Definition 2), and the expected
//!   single-repair read counts that drive the §4 reliability model.
//! * [`bounds`] — Theorem 1/2 formulas and the Figure-8 certificate.
//! * [`construction`] — Theorem-4 randomized constructions and the
//!   exponential deterministic search.
//!
//! # Module map (paper section → item)
//!
//! | Paper | Item | What it provides |
//! |---|---|---|
//! | §2.1 / App. D codes | [`Lrc`], [`ReedSolomon`] | the two contenders, Appendix-D constructions |
//! | §3.1.2 decoders | [`ErasureCodec`], [`peeling`] | light/heavy repair planning and execution |
//! | §3.1.2 hot path | [`ErasureCodec::encode_into`], [`RepairSession`], [`StripeViewMut`] | the zero-copy surface (see `docs/ARCHITECTURE.md`) |
//! | Defs. 1–2 | [`analysis`] | brute-force distance / locality ground truth |
//! | Thms. 1–2, Fig. 8 | [`bounds`] | bound formulas and certificates |
//! | Thm. 4 | [`construction`] | randomized/deterministic constructions |
//! | — | [`encode_into_parallel`] | thread-sharded encode for multi-core hosts |
//!
//! Field arithmetic and the SIMD payload kernels live below in
//! [`xorbas_gf`]; matrix solves in [`xorbas_linalg`]. The simulator
//! (`xorbas_sim`) and the reliability model (`xorbas_reliability`)
//! consume this crate's planners, so every simulated repair and every
//! MTTDL row is backed by the real decoders.
//!
//! # Example: repair cost of RS vs LRC
//!
//! ```
//! use xorbas_core::{ErasureCodec, Lrc, ReedSolomon};
//!
//! let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
//! let lrc = Lrc::xorbas_10_6_5().unwrap();
//!
//! // One lost block: RS reads 10 blocks, the LRC reads 5 (§1).
//! assert_eq!(rs.repair_plan(&[0]).unwrap().blocks_read(), 10);
//! assert_eq!(lrc.repair_plan(&[0]).unwrap().blocks_read(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bounds;
mod codec;
pub mod construction;
mod error;
mod linear;
mod lrc;
mod parallel;
pub mod peeling;
mod piggyback;
mod reed_solomon;
mod session;
mod spec;

pub use codec::{
    ErasureCodec, LaneMask, RepairPlan, RepairReport, RepairTask, StripeView, StripeViewMut,
};
pub use error::{CodeError, Result};
pub use linear::decode_solve_count;
pub use lrc::Lrc;
pub use parallel::encode_into_parallel;
pub use piggyback::PiggybackRs;
pub use reed_solomon::ReedSolomon;

/// A Reed-Solomon codec over GF(2^16) — for wide stripes past GF(2^8)'s
/// 255-lane ceiling (e.g. [`CodeSpec::RS_200_60`]).
pub type WideReedSolomon = ReedSolomon<xorbas_gf::Gf65536>;

/// An LRC over GF(2^16) — for wide stripes past GF(2^8)'s 255-lane
/// ceiling (e.g. [`LrcSpec::WIDE`]).
pub type WideLrc = Lrc<xorbas_gf::Gf65536>;

/// A piggybacked RS over GF(2^16) — for wide stripes past GF(2^8)'s
/// 255-lane ceiling (e.g. [`CodeSpec::PB_200_60`]).
pub type WidePiggyback = PiggybackRs<xorbas_gf::Gf65536>;
pub use session::RepairSession;
pub use spec::{CodeSpec, LrcSpec};
