//! The piggybacked Reed-Solomon code — the third codec family.
//!
//! §1.1's dilemma is that RS repairs a single lost block by reading
//! `k` whole blocks, while the LRC buys locality with 14% extra
//! storage. The *piggybacking framework* (Rashmi et al., applied to
//! HDFS as "Hitchhiker") occupies a third corner of that trade-off:
//! keep the RS geometry — same lanes, same 1.4x storage, same MDS
//! erasure tolerance — but split every lane into two substripes and let
//! the second substripe's parities carry *piggybacks* (XORs of
//! first-substripe data), so a single lost data block repairs from
//! roughly `(k + k/(m-1))/2` block-volumes instead of `k` (~33% fewer
//! repair bytes for the (10,4) geometry).
//!
//! # Construction
//!
//! Each lane payload of length `L` is two substripes: `A = [0, L/2)`
//! and `B = [L/2, L)`. With `G = [I_k | P]` the aligned Appendix-D
//! generator and `g_j` the column of parity `j`:
//!
//! * substripe A of every parity is a clean RS row: `pA_j = Σ_i G[i,k+j]·a_i`;
//! * parity 0's substripe B is also clean: `pB_0 = Σ_i G[i,k]·b_i`;
//! * parity `j ≥ 1` carries a piggyback: `pB_j = Σ_i G[i,k+j]·b_i ⊕
//!   Σ_{d ∈ group j} a_d`, where data lane `i` belongs to group
//!   `1 + (i mod (m-1))`.
//!
//! # Repair
//!
//! A single lost data lane `i` (group `g`) decodes in two sublane
//! steps: first `b_i` from the surviving data B-halves plus `pB_0` (one
//! `k`-column solve), then `a_i` peels out of `pB_g`'s piggyback using
//! the data B-halves and the other group members' A-halves. Only group
//! members are read whole; everything else is a half-lane read, so the
//! plan's [`RepairPlan::read_volume`] is `(k + |group g|)/2` — 6.7 for
//! the (10,4) code against RS's 10. Every other failure pattern
//! (parities, multi-loss, and the paper's §6 degraded reads) falls back
//! to an RS-style `k`-column decode at RS cost, compiled once and
//! corrected for the piggybacks sublane-by-sublane.

use xorbas_gf::{Field, Gf256};

use crate::codec::{
    check_data_lanes, check_parity_lanes, check_symbol_alignment, encode_row_iter,
    normalize_indices, ErasureCodec, RepairPlan, RepairTask,
};
use crate::error::{CodeError, Result};
use crate::session::{CompiledStep, RepairSession};
use crate::spec::CodeSpec;
use crate::ReedSolomon;

/// A 2-substripe piggybacked `(k, m)` Reed-Solomon code over `F`.
///
/// Block layout matches [`ReedSolomon`]: indices `0..k` are data,
/// `k..k+m` parities (parity 0 clean, parities `1..m` piggybacked).
/// Payload lengths must be multiples of
/// [`symbol_bytes`](ErasureCodec::symbol_bytes) `= 2 · F::SYMBOL_BYTES`
/// so both substripes hold whole field symbols.
#[derive(Debug, Clone)]
pub struct PiggybackRs<F: Field = Gf256> {
    k: usize,
    m: usize,
    /// The aligned Appendix-D base code; supplies the generator both
    /// substripes share.
    base: ReedSolomon<F>,
}

impl<F: Field> PiggybackRs<F> {
    /// Builds the piggybacked code on the aligned Appendix-D RS base.
    ///
    /// Requires `m ≥ 2`: parity 0 stays clean (it anchors the substripe-B
    /// solve), so at least one further parity must exist to carry
    /// piggybacks.
    pub fn new(k: usize, m: usize) -> Result<Self> {
        if m < 2 {
            return Err(CodeError::InvalidParameters(
                "piggybacked RS needs m >= 2 (one clean parity plus piggybacked ones)".into(),
            ));
        }
        Ok(Self {
            k,
            m,
            base: ReedSolomon::new(k, m)?,
        })
    }

    /// Number of parity blocks `m = n - k`.
    pub fn parity_blocks(&self) -> usize {
        self.m
    }

    /// Number of piggyback groups (`m - 1`; parity `j` owns group `j`
    /// for `j ≥ 1`).
    pub fn piggyback_groups(&self) -> usize {
        self.m - 1
    }

    /// The piggyback group data lane `i` feeds: `1 + (i mod (m-1))`,
    /// i.e. the index of the parity carrying its A-half.
    pub fn group_of(&self, data_lane: usize) -> usize {
        debug_assert!(data_lane < self.k);
        1 + data_lane % (self.m - 1)
    }

    /// The data lanes whose A-halves parity `j ≥ 1` piggybacks.
    pub fn group_members(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        debug_assert!((1..self.m).contains(&j));
        (0..self.k).filter(move |i| i % (self.m - 1) == j - 1)
    }

    /// `Some(j)` when `lane` is the piggybacked parity of group `j`.
    fn piggyback_index(&self, lane: usize) -> Option<usize> {
        (lane > self.k && lane < self.k + self.m).then(|| lane - self.k)
    }

    /// Selects `k` independent available columns, preferring data, then
    /// the clean parity 0, then the piggybacked parities — which is the
    /// natural index order, and keeps piggyback corrections cheap
    /// (whenever a piggybacked parity is selected, every available data
    /// lane already is too).
    fn select_decode_columns(&self, unavailable: &[usize]) -> Result<Vec<usize>> {
        let ordered: Vec<usize> = (0..self.total_blocks())
            .filter(|i| !unavailable.contains(i))
            .collect();
        crate::linear::select_independent_columns(self.base.generator(), &ordered).ok_or_else(
            || CodeError::Unrecoverable {
                erased: unavailable.to_vec(),
            },
        )
    }

    /// The fast single-data-loss task: half-lane reads everywhere except
    /// lane `i`'s fellow group members (whose A- and B-halves are both
    /// needed), for a read volume of `(k + |group|)/2`.
    fn fast_task(&self, i: usize) -> RepairTask {
        let g = self.group_of(i);
        let reads: Vec<usize> = (0..self.k)
            .filter(|&t| t != i)
            .chain([self.k, self.k + g])
            .collect();
        let half_reads: Vec<usize> = reads
            .iter()
            .copied()
            .filter(|&t| !(t < self.k && self.group_of(t) == g))
            .collect();
        RepairTask {
            repairs: vec![i],
            reads,
            half_reads,
            light: false,
        }
    }

    /// Compiles the fast path's two sublane steps (one solve).
    fn compile_fast_steps(&self, i: usize) -> Result<Vec<CompiledStep>> {
        let gen = self.base.generator();
        let g = self.group_of(i);
        // Step 1: the lost B-half from the surviving data B-halves plus
        // the clean parity's — substripe B restricted to these columns
        // is an ordinary RS codeword.
        let selection: Vec<usize> = (0..self.k).filter(|&t| t != i).chain([self.k]).collect();
        let rows = crate::linear::compile_combination_steps(gen, &selection, &[i])?;
        let mut steps: Vec<CompiledStep> = rows
            .into_iter()
            .map(|row| CompiledStep {
                target: 2 * row.target + 1,
                sources: row.sources.iter().map(|&(s, c)| (2 * s + 1, c)).collect(),
            })
            .collect();
        // Step 2: the lost A-half peels out of parity g's piggyback:
        // a_i = pB_g + Σ_t G[t,k+g]·b_t + Σ_{d ∈ group g, d ≠ i} a_d
        // (b_i being the sibling sublane step 1 just repaired).
        let one = F::ONE.index();
        let mut sources: Vec<(usize, u32)> = vec![(2 * (self.k + g) + 1, one)];
        for t in 0..self.k {
            let c = gen[(t, self.k + g)];
            if !c.is_zero() {
                sources.push((2 * t + 1, c.index()));
            }
        }
        sources.extend(
            self.group_members(g)
                .filter(|&d| d != i)
                .map(|d| (2 * d, one)),
        );
        steps.push(CompiledStep {
            target: 2 * i,
            sources,
        });
        Ok(steps)
    }

    /// Compiles the general path: one `k`-column solve shared by both
    /// substripes, with piggyback corrections spliced into the B steps.
    fn compile_general_steps(
        &self,
        selection: &[usize],
        targets: &[usize],
    ) -> Result<Vec<CompiledStep>> {
        let gen = self.base.generator();
        let rows = crate::linear::compile_combination_steps(gen, selection, targets)?;
        let one = F::ONE.index();
        let mut steps = Vec::with_capacity(2 * rows.len());
        // Every A step first: substripe A is a clean RS codeword, so the
        // coefficient rows apply verbatim — and the B steps below may
        // read just-repaired A-halves as piggyback corrections (a
        // missing correction lane is always itself a target here, the
        // planner prefers data columns so an available one is always in
        // the selection).
        for row in &rows {
            steps.push(CompiledStep {
                target: 2 * row.target,
                sources: row.sources.iter().map(|&(s, c)| (2 * s, c)).collect(),
            });
        }
        // B steps: the same row over the stored B-halves cancels each
        // selected piggybacked parity's piggyback with that parity's
        // coefficient, and a piggybacked *target* re-adds its own.
        for row in &rows {
            let mut sources: Vec<(usize, u32)> =
                row.sources.iter().map(|&(s, c)| (2 * s + 1, c)).collect();
            for &(s, c) in &row.sources {
                if let Some(j) = self.piggyback_index(s) {
                    sources.extend(self.group_members(j).map(|d| (2 * d, c)));
                }
            }
            if let Some(j) = self.piggyback_index(row.target) {
                sources.extend(self.group_members(j).map(|d| (2 * d, one)));
            }
            steps.push(CompiledStep {
                target: 2 * row.target + 1,
                sources,
            });
        }
        Ok(steps)
    }
}

impl<F: Field> ErasureCodec for PiggybackRs<F> {
    fn data_blocks(&self) -> usize {
        self.k
    }

    fn total_blocks(&self) -> usize {
        self.k + self.m
    }

    fn spec(&self) -> CodeSpec {
        CodeSpec::Piggyback {
            k: self.k,
            m: self.m,
        }
    }

    fn symbol_bytes(&self) -> usize {
        2 * F::SYMBOL_BYTES
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<()> {
        let len = check_data_lanes(data, self.k)?;
        check_parity_lanes(parity, self.m, len)?;
        check_symbol_alignment(len, 2 * F::SYMBOL_BYTES)?;
        let half = len / 2;
        let gen = self.base.generator();
        let groups = self.m - 1;
        for (j, out) in parity.iter_mut().enumerate() {
            let col = self.k + j;
            let (pa, pb) = out.split_at_mut(half);
            // Substripe A: a clean RS row over the data A-halves.
            encode_row_iter(
                pa,
                data.iter()
                    .enumerate()
                    .map(|(i, d)| (gen[(i, col)], &d[..half])),
            );
            // Substripe B: the RS row over the B-halves, plus — on the
            // piggybacked parities j ≥ 1 — group j's A-halves.
            encode_row_iter(
                pb,
                data.iter()
                    .enumerate()
                    .map(|(i, d)| (gen[(i, col)], &d[half..]))
                    .chain(
                        data.iter()
                            .enumerate()
                            .filter(move |&(i, _)| j >= 1 && i % groups == j - 1)
                            .map(move |(_, d)| (F::ONE, &d[..half])),
                    ),
            );
        }
        Ok(())
    }

    fn encode_range_into(
        &self,
        data: &[&[u8]],
        parity: &mut [&mut [u8]],
        offset: usize,
    ) -> Result<()> {
        let len = check_data_lanes(data, self.k)?;
        check_symbol_alignment(len, 2 * F::SYMBOL_BYTES)?;
        let shard = parity.first().map_or(0, |p| p.len());
        check_parity_lanes(parity, self.m, shard)?;
        if offset + shard > len {
            return Err(CodeError::ShardSizeMismatch);
        }
        check_symbol_alignment(offset, F::SYMBOL_BYTES)?;
        check_symbol_alignment(shard, F::SYMBOL_BYTES)?;
        let half = len / 2;
        // The shard's intersection with the A substripe ([0, half)) and,
        // in substripe-local coordinates, with B ([half, len)). A parity
        // byte at stripe offset `half + o` mixes data B bytes at the same
        // offset with data A bytes at `o` — so a B shard needs *distant*
        // data ranges, which is why the default whole-row slicing cannot
        // serve this codec.
        let a_lo = offset.min(half);
        let a_hi = (offset + shard).min(half);
        let b_lo = offset.max(half) - half;
        let b_hi = (offset + shard).max(half) - half;
        let gen = self.base.generator();
        let groups = self.m - 1;
        for (j, out) in parity.iter_mut().enumerate() {
            let col = self.k + j;
            let (oa, ob) = out.split_at_mut(a_hi - a_lo);
            if a_lo < a_hi {
                encode_row_iter(
                    oa,
                    data.iter()
                        .enumerate()
                        .map(|(i, d)| (gen[(i, col)], &d[a_lo..a_hi])),
                );
            }
            if b_lo < b_hi {
                encode_row_iter(
                    ob,
                    data.iter()
                        .enumerate()
                        .map(|(i, d)| (gen[(i, col)], &d[half + b_lo..half + b_hi]))
                        .chain(
                            data.iter()
                                .enumerate()
                                .filter(move |&(i, _)| j >= 1 && i % groups == j - 1)
                                .map(move |(_, d)| (F::ONE, &d[b_lo..b_hi])),
                        ),
                );
            }
        }
        Ok(())
    }

    fn repair_plan_for(&self, unavailable: &[usize], targets: &[usize]) -> Result<RepairPlan> {
        let n = self.total_blocks();
        let unavailable = normalize_indices(unavailable, n)?;
        let targets = normalize_indices(targets, n)?;
        if let Some(&bad) = targets.iter().find(|t| !unavailable.contains(t)) {
            return Err(CodeError::InvalidParameters(format!(
                "target block {bad} is not among the unavailable blocks"
            )));
        }
        if targets.is_empty() {
            return Ok(RepairPlan {
                missing: vec![],
                tasks: vec![],
            });
        }
        // The piggyback dividend: exactly one lane lost, and it is data.
        if let [i] = unavailable[..] {
            if i < self.k {
                return Ok(RepairPlan {
                    missing: targets,
                    tasks: vec![self.fast_task(i)],
                });
            }
        }
        // Anything else decodes RS-style from k whole columns.
        let selection = self.select_decode_columns(&unavailable)?;
        Ok(RepairPlan {
            missing: targets.clone(),
            tasks: vec![RepairTask {
                repairs: targets,
                reads: selection,
                half_reads: vec![],
                light: false,
            }],
        })
    }

    fn repair_session(&self, unavailable: &[usize]) -> Result<RepairSession> {
        let plan = self.repair_plan(unavailable)?;
        let missing = plan.missing.clone();
        let mut steps = Vec::new();
        let mut solves = 0;
        if let Some(task) = plan.tasks.first() {
            steps = match missing[..] {
                [i] if i < self.k => self.compile_fast_steps(i)?,
                _ => self.compile_general_steps(&task.reads, &missing)?,
            };
            solves = 1;
        }
        Ok(RepairSession::from_sub_parts::<F>(
            self.total_blocks(),
            2,
            missing,
            plan,
            steps,
            solves,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::StripeViewMut;
    use xorbas_gf::slice_ops::xor_into;
    use xorbas_gf::Gf65536;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 151 + j * 23 + 11) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn needs_at_least_two_parities() {
        assert!(PiggybackRs::<Gf256>::new(10, 1).is_err());
        assert!(PiggybackRs::<Gf256>::new(10, 2).is_ok());
    }

    #[test]
    fn groups_partition_the_data_lanes() {
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        assert_eq!(pb.piggyback_groups(), 3);
        let sizes: Vec<usize> = (1..4).map(|j| pb.group_members(j).count()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        for i in 0..10 {
            let g = pb.group_of(i);
            assert!(pb.group_members(g).any(|d| d == i));
        }
    }

    #[test]
    fn encode_is_rs_plus_piggybacks() {
        // Substripe A of every parity and substripe B of parity 0 match
        // the plain RS encode of the half-payloads; each piggybacked
        // parity's B-half differs by exactly the XOR of its group's
        // A-halves.
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let len = 64;
        let half = len / 2;
        let data = sample_data(10, len);
        let stripe = pb.encode_stripe(&data).unwrap();
        assert_eq!(&stripe[..10], &data[..]);
        let a_half: Vec<Vec<u8>> = data.iter().map(|d| d[..half].to_vec()).collect();
        let b_half: Vec<Vec<u8>> = data.iter().map(|d| d[half..].to_vec()).collect();
        let rs_a = rs.encode_stripe(&a_half).unwrap();
        let rs_b = rs.encode_stripe(&b_half).unwrap();
        for j in 0..4 {
            assert_eq!(&stripe[10 + j][..half], &rs_a[10 + j][..], "pA_{j}");
            let mut expect = rs_b[10 + j].clone();
            if j >= 1 {
                for d in pb.group_members(j) {
                    xor_into(&mut expect, &data[d][..half]);
                }
            }
            assert_eq!(&stripe[10 + j][half..], &expect[..], "pB_{j}");
        }
    }

    #[test]
    fn single_data_loss_reads_fewer_bytes_than_rs() {
        // The headline: every single data-lane plan reads (k + group)/2
        // block-volumes — at most 7.0 and 6.7 on average, against RS's
        // 10.0 — while touching k + 1 distinct lanes.
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let mut total = 0.0;
        for i in 0..10 {
            let plan = pb.repair_plan(&[i]).unwrap();
            let gsz = pb.group_members(pb.group_of(i)).count();
            assert_eq!(plan.read_volume(), (10 + gsz) as f64 / 2.0, "lane {i}");
            assert!(plan.read_volume() <= 7.0);
            assert_eq!(plan.blocks_read(), 11);
            total += plan.read_volume();
        }
        assert!((total / 10.0 - 6.7).abs() < 1e-12);
    }

    #[test]
    fn parity_and_multi_loss_cost_rs_volume() {
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        for missing in [vec![10], vec![13], vec![0, 5], vec![2, 11, 13]] {
            let plan = pb.repair_plan(&missing).unwrap();
            assert_eq!(plan.blocks_read(), 10, "{missing:?}");
            assert_eq!(plan.read_volume(), 10.0, "{missing:?}");
            for task in &plan.tasks {
                assert!(task.half_reads.is_empty());
            }
        }
    }

    #[test]
    fn every_single_loss_round_trips_bit_identically() {
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let data = sample_data(10, 48);
        let stripe = pb.encode_stripe(&data).unwrap();
        for i in 0..14 {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            shards[i] = None;
            pb.reconstruct(&mut shards).unwrap();
            assert_eq!(shards[i].as_ref().unwrap(), &stripe[i], "lane {i}");
        }
    }

    #[test]
    fn all_recoverable_erasure_patterns_recover() {
        // MDS is preserved: every 4-erasure pattern of the (10,4)
        // geometry round-trips, mixed data/parity losses included.
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let data = sample_data(10, 8);
        let stripe = pb.encode_stripe(&data).unwrap();
        for pattern in crate::analysis::combinations(14, 4) {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            pb.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &stripe[i], "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn five_erasures_are_unrecoverable() {
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        assert!(matches!(
            pb.repair_plan(&[0, 1, 2, 3, 4]),
            Err(CodeError::Unrecoverable { .. })
        ));
    }

    #[test]
    fn session_replays_both_paths_bit_identically() {
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let data = sample_data(10, 32);
        let stripe = pb.encode_stripe(&data).unwrap();
        for missing in [vec![4], vec![12], vec![3, 7], vec![0, 10, 13]] {
            let session = pb.repair_session(&missing).unwrap();
            assert_eq!(session.solve_count(), 1);
            let mut work = stripe.clone();
            for &i in &missing {
                work[i].fill(0xEE);
            }
            let mut lane_refs: Vec<&mut [u8]> = work.iter_mut().map(Vec::as_mut_slice).collect();
            let mut view = StripeViewMut::new(&mut lane_refs, &missing).unwrap();
            session.repair(&mut view).unwrap();
            for &i in &missing {
                assert!(view.is_present(i));
            }
            drop(lane_refs);
            assert_eq!(work, stripe, "{missing:?}");
        }
    }

    #[test]
    fn degraded_read_plans_one_target_among_many_failures() {
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let plan = pb.repair_plan_for(&[1, 2, 3], &[2]).unwrap();
        assert_eq!(plan.missing, vec![2]);
        assert_eq!(plan.blocks_read(), 10);
        for b in [1, 2, 3] {
            assert!(!plan.tasks[0].reads.contains(&b));
        }
    }

    #[test]
    fn odd_payloads_are_rejected_at_the_substripe_boundary() {
        // symbol_bytes is 2·F::SYMBOL_BYTES: a payload must split into
        // two whole-symbol substripes.
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        assert_eq!(pb.symbol_bytes(), 2);
        assert!(matches!(
            pb.encode_stripe(&sample_data(10, 7)),
            Err(CodeError::PayloadNotSymbolAligned {
                symbol_bytes: 2,
                len: 7
            })
        ));
        let session = pb.repair_session(&[0]).unwrap();
        let mut work = sample_data(14, 7);
        let mut lane_refs: Vec<&mut [u8]> = work.iter_mut().map(Vec::as_mut_slice).collect();
        let mut view = StripeViewMut::new(&mut lane_refs, &[0]).unwrap();
        assert!(matches!(
            session.repair(&mut view),
            Err(CodeError::PayloadNotSymbolAligned { .. })
        ));
    }

    #[test]
    fn parallel_encode_matches_serial_across_the_substripe_seam() {
        // 3 threads put a shard boundary inside both substripes and one
        // shard across the A/B seam — the encode_range_into override.
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let data = sample_data(10, 64 * 1024);
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut serial = vec![vec![0u8; 64 * 1024]; 4];
        let mut serial_refs: Vec<&mut [u8]> = serial.iter_mut().map(Vec::as_mut_slice).collect();
        pb.encode_into(&data_refs, &mut serial_refs).unwrap();
        for threads in [2, 3, 5] {
            let mut par = vec![vec![0x55u8; 64 * 1024]; 4];
            let mut par_refs: Vec<&mut [u8]> = par.iter_mut().map(Vec::as_mut_slice).collect();
            crate::encode_into_parallel(&pb, &data_refs, &mut par_refs, threads).unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn wide_gf65536_geometry_round_trips() {
        // GF(2^16) symbols are 2 bytes, so lanes align at 4 bytes.
        let pb = PiggybackRs::<Gf65536>::new(6, 3).unwrap();
        assert_eq!(pb.symbol_bytes(), 4);
        let data = sample_data(6, 16);
        let stripe = pb.encode_stripe(&data).unwrap();
        for missing in [vec![1], vec![7], vec![0, 8], vec![2, 3, 6]] {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            for &i in &missing {
                shards[i] = None;
            }
            pb.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &stripe[i], "{missing:?}");
            }
        }
        assert!(matches!(
            pb.encode_stripe(&sample_data(6, 6)),
            Err(CodeError::PayloadNotSymbolAligned {
                symbol_bytes: 4,
                len: 6
            })
        ));
    }

    #[test]
    fn empty_repair_is_a_no_op() {
        let pb = PiggybackRs::<Gf256>::new(4, 2).unwrap();
        let plan = pb.repair_plan(&[]).unwrap();
        assert_eq!(plan.blocks_read(), 0);
        let session = pb.repair_session(&[]).unwrap();
        assert_eq!(session.solve_count(), 0);
    }

    #[test]
    fn fast_session_runs_exactly_one_solve() {
        let pb = PiggybackRs::<Gf256>::new(10, 4).unwrap();
        let before = crate::decode_solve_count();
        let _session = pb.repair_session(&[3]).unwrap();
        assert_eq!(crate::decode_solve_count(), before + 1);
    }
}
