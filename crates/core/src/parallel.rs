//! Range-sharded parallel stripe encoding.
//!
//! Erasure encoding is embarrassingly parallel along the payload axis:
//! byte `i` of every parity lane depends only on byte `i` of every data
//! lane (symbol `i` for wider fields). [`encode_into_parallel`] splits
//! the borrowed lanes into contiguous, symbol-aligned ranges and encodes
//! each range on its own scoped thread — no thread pool, no channels, no
//! external dependencies, and no copying: every worker writes straight
//! into a disjoint slice of the caller's parity buffers.

use crate::codec::{check_data_lanes, check_parity_lanes, ErasureCodec};
use crate::error::{CodeError, Result};

/// Encodes `k` borrowed data payloads into caller-provided parity
/// buffers, sharding the payload range across up to `threads` scoped
/// threads.
///
/// Bit-identical to [`ErasureCodec::encode_into`] (property-tested), and
/// falls back to it when a single shard would be fastest: one thread
/// requested or a payload too small to split. Accepts unsized codecs,
/// so `&dyn ErasureCodec + Sync` works.
///
/// # Errors
///
/// Shape errors ([`crate::CodeError::ShardCountMismatch`],
/// [`crate::CodeError::ShardSizeMismatch`]) are detected up front,
/// before any thread spawns. A payload that is not a whole number of
/// field symbols takes the serial path, which rejects it with
/// [`crate::CodeError::PayloadNotSymbolAligned`] for multi-byte-symbol
/// codecs.
pub fn encode_into_parallel<C>(
    codec: &C,
    data: &[&[u8]],
    parity: &mut [&mut [u8]],
    threads: usize,
) -> Result<()>
where
    C: ErasureCodec + Sync + ?Sized,
{
    let k = codec.data_blocks();
    let len = check_data_lanes(data, k)?;
    check_parity_lanes(parity, codec.total_blocks() - k, len)?;
    let sym = codec.symbol_bytes().max(1);
    let threads = threads.max(1);
    let symbols = len / sym;
    // Below ~4 KiB per shard the spawn overhead dominates the kernel.
    const MIN_SHARD_BYTES: usize = 4096;
    if threads == 1
        || len % sym != 0
        || symbols < threads
        || len / threads < MIN_SHARD_BYTES
        || parity.is_empty()
    {
        return codec.encode_into(data, parity);
    }
    let per_shard = symbols.div_ceil(threads) * sym;
    let bounds: Vec<(usize, usize)> = (0..threads)
        .filter_map(|t| {
            let start = t * per_shard;
            let end = ((t + 1) * per_shard).min(len);
            (start < end).then_some((start, end))
        })
        .collect();
    // Transpose the parity lanes into per-shard lane sets: shard `t`
    // owns bytes `bounds[t]` of every parity lane, disjointly.
    let mut shard_parity: Vec<Vec<&mut [u8]>> = bounds
        .iter()
        .map(|_| Vec::with_capacity(parity.len()))
        .collect();
    for lane in parity.iter_mut() {
        let mut rest: &mut [u8] = lane;
        for (t, &(start, end)) in bounds.iter().enumerate() {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(end - start);
            shard_parity[t].push(head);
            rest = tail;
        }
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shard_parity
            .into_iter()
            .zip(&bounds)
            .map(|(mut pshard, &(start, _))| {
                scope.spawn(move || codec.encode_range_into(data, &mut pshard, start))
            })
            .collect();
        handles.into_iter().try_for_each(|h| {
            h.join().unwrap_or_else(|_| {
                Err(CodeError::ConstructionFailed(
                    "encode worker panicked".to_owned(),
                ))
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lrc, ReedSolomon};
    use xorbas_gf::{Gf256, Gf65536};

    fn sample(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 83 + j * 29 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn assert_parallel_matches<C: ErasureCodec + Sync>(codec: &C, len: usize, threads: usize) {
        let k = codec.data_blocks();
        let m = codec.total_blocks() - k;
        let data = sample(k, len);
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut serial = vec![vec![0u8; len]; m];
        let mut serial_refs: Vec<&mut [u8]> = serial.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_into(&data_refs, &mut serial_refs).unwrap();
        let mut par = vec![vec![0xAAu8; len]; m];
        let mut par_refs: Vec<&mut [u8]> = par.iter_mut().map(Vec::as_mut_slice).collect();
        encode_into_parallel(codec, &data_refs, &mut par_refs, threads).unwrap();
        assert_eq!(serial, par, "threads={threads} len={len}");
    }

    #[test]
    fn parallel_encode_matches_serial_rs_and_lrc() {
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(10, 4).unwrap();
        let lrc = Lrc::xorbas_10_6_5().unwrap();
        for len in [0, 1, 1000, 64 * 1024, 64 * 1024 + 13] {
            for threads in [1, 2, 4, 7] {
                assert_parallel_matches(&rs, len, threads);
                assert_parallel_matches(&lrc, len, threads);
            }
        }
    }

    #[test]
    fn parallel_encode_respects_symbol_alignment() {
        // GF(2^16): shard boundaries must land on 2-byte symbols; an odd
        // payload length falls back to the serial path (which asserts the
        // same invariant the codec itself requires of whole payloads).
        let rs: ReedSolomon<Gf65536> = ReedSolomon::new(6, 3).unwrap();
        assert_eq!(rs.symbol_bytes(), 2);
        for len in [0, 2, 4096 * 6, 4096 * 6 + 2] {
            assert_parallel_matches(&rs, len, 4);
        }
    }

    #[test]
    fn parallel_encode_works_through_dyn_codec() {
        let lrc = Lrc::xorbas_10_6_5().unwrap();
        let dyn_codec: &(dyn ErasureCodec + Sync) = &lrc;
        let data = sample(10, 32 * 1024);
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; 32 * 1024]; 6];
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        encode_into_parallel(dyn_codec, &data_refs, &mut parity_refs, 4).unwrap();
        let stripe = lrc.encode_stripe(&data).unwrap();
        assert_eq!(&stripe[10..], &parity[..]);
    }

    #[test]
    fn parallel_encode_rejects_bad_shapes_before_spawning() {
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(4, 2).unwrap();
        let data = sample(3, 8);
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; 8]; 2];
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        assert!(encode_into_parallel(&rs, &data_refs, &mut parity_refs, 4).is_err());
    }
}
