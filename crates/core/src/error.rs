//! Error types for code construction and decoding.

use std::fmt;

/// Errors produced by code construction, encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The requested code parameters are structurally invalid
    /// (e.g. `r` does not divide `k`, blocklength exceeds the field).
    InvalidParameters(String),
    /// The number of shards handed to encode/reconstruct does not match
    /// the code's geometry.
    ShardCountMismatch {
        /// Shards the code expects.
        expected: usize,
        /// Shards actually provided.
        got: usize,
    },
    /// Shards have inconsistent byte lengths.
    ShardSizeMismatch,
    /// A payload length is not a whole number of field symbols, so the
    /// codec cannot interpret it (GF(2^16) codecs require even byte
    /// lengths; callers must pad or split on symbol boundaries).
    PayloadNotSymbolAligned {
        /// Bytes per field symbol (2 for GF(2^16)).
        symbol_bytes: usize,
        /// The offending payload length in bytes.
        len: usize,
    },
    /// The erasure pattern exceeds what the code can recover:
    /// the surviving blocks do not span the file.
    Unrecoverable {
        /// Indices of the erased blocks.
        erased: Vec<usize>,
    },
    /// A randomized or searched construction failed to find coefficients
    /// satisfying the required independence conditions.
    ConstructionFailed(String),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters(msg) => {
                write!(f, "invalid code parameters: {msg}")
            }
            CodeError::ShardCountMismatch { expected, got } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            CodeError::ShardSizeMismatch => {
                write!(f, "shards have inconsistent sizes")
            }
            CodeError::PayloadNotSymbolAligned { symbol_bytes, len } => {
                write!(
                    f,
                    "payload length {len} is not a multiple of the \
                     {symbol_bytes}-byte field symbol"
                )
            }
            CodeError::Unrecoverable { erased } => {
                write!(f, "erasure pattern {erased:?} is unrecoverable")
            }
            CodeError::ConstructionFailed(msg) => {
                write!(f, "code construction failed: {msg}")
            }
        }
    }
}

impl std::error::Error for CodeError {}

/// Convenience alias used throughout the codec crate.
pub type Result<T> = std::result::Result<T, CodeError>;
