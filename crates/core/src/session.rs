//! Reusable, pre-compiled repairs: [`RepairSession`].
//!
//! Planning a repair and executing it have very different costs. The
//! plan of a heavy repair hides a Gaussian elimination (inverting the
//! `k × k` decode submatrix), and the simulator's BlockFixer replays the
//! *same* failure pattern across thousands of stripes. A
//! [`RepairSession`] therefore compiles the whole repair once — light
//! peeling steps and the heavy solve alike — into a flat list of
//! `lane_target = Σ cᵢ · lane_srcᵢ` steps with the inverse already
//! folded into the coefficients. Executing the session against a
//! [`StripeViewMut`] then runs pure slice kernels: no planning, no
//! elimination, no allocation — and each step's whole row is issued as
//! *fused* multi-source kernel calls ([`xorbas_gf::slice_ops`]), so the
//! target lane makes one pass through memory however many source lanes
//! the row combines.

use crate::codec::{LaneMask, RepairPlan, RepairReport, StripeViewMut};
use crate::error::{CodeError, Result};
use xorbas_gf::slice_ops::{payload_mul_acc_multi, payload_mul_into_multi};
use xorbas_gf::Field;

/// One compiled reconstruction: `lane[target] = Σ cᵢ · lane[srcᵢ]`.
///
/// Coefficients are stored as field bit-pattern indices so the session
/// type stays independent of the codec's field parameter.
///
/// In a *sublane* session (compiled via [`RepairSession::from_sub_parts`]
/// by substripe codecs like the piggybacked RS), `target` and the source
/// indices address sublanes — lane `ℓ`'s `s`-th of `sub` equal substripe
/// slices is sublane `ℓ·sub + s` — and a step may source a sibling
/// sublane of its own target lane (the piggyback peel reads the
/// just-repaired other half).
#[derive(Debug, Clone)]
pub(crate) struct CompiledStep {
    /// The lane (or sublane) this step reconstructs.
    pub(crate) target: usize,
    /// `(source lane, coefficient index)` pairs; zero coefficients are
    /// dropped at compile time.
    pub(crate) sources: Vec<(usize, u32)>,
}

/// How many sources a replayed row hands to one fused kernel call; rows
/// wider than this are folded in stack-buffered batches.
const ROW_FUSE: usize = 16;

/// Monomorphized fused-row kernel: `dst = [dst ^] Σ cᵢ·srcᵢ` with
/// coefficients as field bit-pattern indices; the `bool` is `accumulate`.
type ApplyRowFn = for<'a> fn(&mut [u8], &[(u32, &'a [u8])], bool);

/// A repair compiled for one failure pattern, reusable across stripes.
///
/// Created by [`ErasureCodec::repair_session`]; see the
/// [codec module docs](crate::ErasureCodec) for the migration table.
/// [`RepairSession::repair`] takes `&self`, so one compiled session can
/// serve many threads repairing different stripes concurrently.
///
/// [`ErasureCodec::repair_session`]: crate::ErasureCodec::repair_session
#[derive(Debug, Clone)]
pub struct RepairSession {
    lanes: usize,
    /// Substripe slices per lane: 1 for whole-lane codecs; 2 for the
    /// piggybacked RS, whose steps address half-lanes.
    sublanes: usize,
    missing: Vec<usize>,
    missing_mask: LaneMask,
    plan: RepairPlan,
    steps: Vec<CompiledStep>,
    apply_row: ApplyRowFn,
    solves: usize,
    /// Bytes per field symbol; replayed stripes must be whole symbols.
    symbol_bytes: usize,
}

// xlint::hot-path(session-replay)
fn apply_row_in<F: Field>(dst: &mut [u8], srcs: &[(u32, &[u8])], accumulate: bool) {
    debug_assert!(srcs.len() <= ROW_FUSE);
    let mut batch: [(F, &[u8]); ROW_FUSE] = [(F::ZERO, &[]); ROW_FUSE];
    for (slot, &(c, s)) in batch.iter_mut().zip(srcs) {
        *slot = (F::from_index(c), s);
    }
    if accumulate {
        payload_mul_acc_multi(dst, &batch[..srcs.len()]);
    } else {
        payload_mul_into_multi(dst, &batch[..srcs.len()]);
    }
}

impl RepairSession {
    /// Assembles a session from codec-compiled parts. `missing` must be
    /// sorted and deduplicated (the codecs normalize before compiling).
    pub(crate) fn from_parts<F: Field>(
        lanes: usize,
        missing: Vec<usize>,
        plan: RepairPlan,
        steps: Vec<CompiledStep>,
        solves: usize,
    ) -> Self {
        Self::from_sub_parts::<F>(lanes, 1, missing, plan, steps, solves)
    }

    /// Assembles a *sublane* session: steps address the `sublanes` equal
    /// substripe slices of each lane (sublane `ℓ·sublanes + s`). Lane
    /// lengths replayed through it must divide into `sublanes` slices of
    /// whole field symbols, so the alignment granularity is
    /// `sublanes · F::SYMBOL_BYTES`.
    pub(crate) fn from_sub_parts<F: Field>(
        lanes: usize,
        sublanes: usize,
        missing: Vec<usize>,
        plan: RepairPlan,
        steps: Vec<CompiledStep>,
        solves: usize,
    ) -> Self {
        debug_assert!(sublanes >= 1);
        let mut missing_mask = LaneMask::empty(lanes);
        for &i in &missing {
            missing_mask.set(i);
        }
        Self {
            lanes,
            sublanes,
            missing,
            missing_mask,
            plan,
            steps,
            apply_row: apply_row_in::<F>,
            solves,
            symbol_bytes: sublanes * F::SYMBOL_BYTES,
        }
    }

    /// The stripe blocklength `n` this session operates on.
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// The failure pattern this session repairs (sorted lane indices).
    pub fn missing(&self) -> &[usize] {
        &self.missing
    }

    /// The repair plan this session was compiled from.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// Number of linear solves (Gaussian eliminations) compilation ran:
    /// 1 for patterns needing the heavy decoder, 0 for pure-light
    /// patterns. [`RepairSession::repair`] never adds to this — the test
    /// hook that pins "repeated same-pattern repairs skip the solve"
    /// (see also the global [`crate::decode_solve_count`]).
    pub fn solve_count(&self) -> usize {
        self.solves
    }

    /// The accounting report for one execution of this session.
    pub fn report(&self) -> RepairReport {
        RepairReport::from_plan(&self.plan)
    }

    /// Reconstructs this session's failure pattern in `stripe`, in place.
    ///
    /// Every lane the view reports missing must be part of the session's
    /// pattern (lanes the session covers but the view already has are
    /// simply rewritten with identical bytes). Runs no planning, no
    /// elimination, and allocates nothing; each step's row is issued as
    /// fused multi-source kernel calls gathered over an on-stack batch,
    /// and repaired lanes are marked present. For multi-byte-symbol
    /// codecs (GF(2^16)), lane lengths must be a whole number of symbols
    /// or the replay fails with
    /// [`CodeError::PayloadNotSymbolAligned`](crate::CodeError).
    // xlint::hot-path(session-replay)
    pub fn repair(&self, stripe: &mut StripeViewMut<'_, '_>) -> Result<()> {
        if stripe.lane_count() != self.lanes {
            return Err(CodeError::ShardCountMismatch {
                expected: self.lanes,
                got: stripe.lane_count(),
            });
        }
        crate::codec::check_symbol_alignment(stripe.lane_len(), self.symbol_bytes)?;
        // view-missing ⊆ session-missing: every lane the view lacks must
        // be one this session knows how to rebuild.
        for i in 0..self.lanes {
            if !stripe.is_present(i) && !self.missing_mask.get(i) {
                return Err(CodeError::InvalidParameters(
                    "stripe is missing lanes outside this session's failure pattern".into(),
                ));
            }
        }
        if self.sublanes == 1 {
            for step in &self.steps {
                let (dst, head, tail) = stripe.lane_split_mut(step.target);
                let mut accumulate = false;
                for chunk in step.sources.chunks(ROW_FUSE) {
                    let mut batch: [(u32, &[u8]); ROW_FUSE] = [(0, &[]); ROW_FUSE];
                    for (slot, &(lane, c)) in batch.iter_mut().zip(chunk) {
                        let src: &[u8] = if lane < step.target {
                            &*head[lane]
                        } else {
                            &*tail[lane - step.target - 1]
                        };
                        *slot = (c, src);
                    }
                    (self.apply_row)(dst, &batch[..chunk.len()], accumulate);
                    accumulate = true;
                }
                if step.sources.is_empty() {
                    // A target with no sources decodes to the zero payload.
                    dst.fill(0);
                }
                stripe.mark_present(step.target);
            }
        } else {
            self.repair_sublanes(stripe);
            // A sublane step writes one slice of a lane; the compiler
            // emits every slice of every missing lane, so the pattern is
            // whole again only once the full step list has run.
            for &i in &self.missing {
                stripe.mark_present(i);
            }
        }
        Ok(())
    }

    /// The sublane replay loop: each step targets one substripe slice of
    /// a lane and may source any slice of any *other* lane — or a sibling
    /// slice of its own lane (the piggyback peel reads the just-repaired
    /// other half). Same fused-batch kernel discipline as the whole-lane
    /// loop; allocates nothing.
    // xlint::hot-path(session-replay)
    fn repair_sublanes(&self, stripe: &mut StripeViewMut<'_, '_>) {
        let sub = self.sublanes;
        let sub_len = stripe.lane_len() / sub;
        for step in &self.steps {
            let lane = step.target / sub;
            let part = step.target % sub;
            let (dst, head, tail) = stripe.lane_split_mut(lane);
            // Split the target lane into its slices so sibling sublanes
            // stay readable while the target slice is written.
            let (left, rest) = dst.split_at_mut(part * sub_len);
            let (mine, right) = rest.split_at_mut(sub_len);
            let mut accumulate = false;
            for chunk in step.sources.chunks(ROW_FUSE) {
                let mut batch: [(u32, &[u8]); ROW_FUSE] = [(0, &[]); ROW_FUSE];
                for (slot, &(src, c)) in batch.iter_mut().zip(chunk) {
                    let s_lane = src / sub;
                    let s_part = src % sub;
                    let src_slice: &[u8] = if s_lane < lane {
                        &head[s_lane][s_part * sub_len..(s_part + 1) * sub_len]
                    } else if s_lane > lane {
                        &tail[s_lane - lane - 1][s_part * sub_len..(s_part + 1) * sub_len]
                    } else if s_part < part {
                        &left[s_part * sub_len..(s_part + 1) * sub_len]
                    } else {
                        debug_assert_ne!(s_part, part, "step reads its own target sublane");
                        let base = (s_part - part - 1) * sub_len;
                        &right[base..base + sub_len]
                    };
                    *slot = (c, src_slice);
                }
                (self.apply_row)(mine, &batch[..chunk.len()], accumulate);
                accumulate = true;
            }
            if step.sources.is_empty() {
                mine.fill(0);
            }
        }
    }
}
