//! Locally Repairable Codes — the paper's contribution (§2, Fig. 2).
//!
//! An LRC extends a Reed-Solomon code with *local parities*: the `k` data
//! blocks are split into groups of `r`, each group XOR-ed into a local
//! parity. A single failure then repairs from `r` blocks instead of `k`.
//! The global parities form their own repair group whose local parity
//! `S3 = S1 + S2` need not be stored — the *implied parity* — because the
//! Appendix-D Reed-Solomon construction aligns all blocks to XOR to zero.
//!
//! The (10,6,5) instance deployed in HDFS-Xorbas:
//!
//! ```text
//! X1 ... X5 | X6 ... X10 | P1 P2 P3 P4 | S1 S2     (16 stored blocks)
//! \___ S1 = X1+..+X5     \___ S3 = P1+..+P4 = S1+S2 (implied)
//!            \___ S2 = X6+..+X10
//! ```
//!
//! Every block has locality 5 and the code has optimal distance 5 for
//! that locality (Theorem 5); tests verify both by brute force.

use xorbas_gf::{Field, Gf256, Gf65536};
use xorbas_linalg::Matrix;

use crate::codec::{
    check_data_lanes, check_parity_lanes, check_symbol_alignment, encode_row, encode_row_iter,
    normalize_indices, ErasureCodec, RepairPlan, RepairTask,
};
use crate::error::{CodeError, Result};
use crate::linear;
use crate::peeling::{peel, PeelStep, XorEquation};
use crate::session::{CompiledStep, RepairSession};
use crate::spec::{CodeSpec, LrcSpec};
use crate::ReedSolomon;

/// A `(k, n - k, r)` Locally Repairable Code over `F`.
///
/// Block layout: `0..k` data, `k..k+g` global (RS) parities,
/// `k+g..k+g+k/r` local parities `S_t`, and — only when
/// `spec.implied_parity` is false — one stored parity-group local parity
/// at the last index.
#[derive(Debug, Clone)]
pub struct Lrc<F: Field = Gf256> {
    spec: LrcSpec,
    rs: ReedSolomon<F>,
    /// Per data group, the coefficient of each member in its local parity.
    local_coeffs: Vec<Vec<F>>,
    /// Full `k × n` generator (RS columns followed by local columns).
    generator: Matrix<F>,
    /// The XOR repair-group equations the light decoder peels.
    equations: Vec<XorEquation<F>>,
}

impl Lrc<Gf256> {
    /// The explicit (10,6,5) LRC of HDFS-Xorbas over GF(2^8).
    pub fn xorbas_10_6_5() -> Result<Self> {
        Self::new(LrcSpec::XORBAS)
    }
}

impl Lrc<Gf65536> {
    /// The wide-stripe (200, 60, 10)-class LRC over GF(2^16)
    /// ([`LrcSpec::WIDE`]): 260 stored lanes — past GF(2^8)'s 255-lane
    /// ceiling — at the same 1.3x storage as RS(200, 60), repairing any
    /// single data-block failure from 10 lanes instead of 200.
    pub fn wide_200_60_10() -> Result<Self> {
        Self::new(LrcSpec::WIDE)
    }
}

impl<F: Field> Lrc<F> {
    /// Builds an LRC with unit local coefficients (`c_i = 1`, plain XOR)
    /// on top of the aligned Appendix-D Reed-Solomon code — the paper
    /// proves this choice suffices for RS parities (§2.1).
    pub fn new(spec: LrcSpec) -> Result<Self> {
        spec.validate()?;
        let rs = ReedSolomon::new(spec.k, spec.global_parities)?;
        let coeffs = vec![vec![F::ONE; spec.group_size]; spec.data_groups()];
        Self::with_base(spec, rs, coeffs)
    }

    /// Builds an LRC from an explicit base code and local coefficients.
    ///
    /// `local_coeffs[t][i]` is the coefficient of the `i`-th member of
    /// data group `t` (all must be nonzero — Eq. (1) divides by them).
    /// The implied-parity optimization additionally requires the aligned
    /// base construction with unit coefficients, since the alignment
    /// identity `S1 + S2 + S3 = 0` is what replaces the stored block.
    pub fn with_base(spec: LrcSpec, rs: ReedSolomon<F>, local_coeffs: Vec<Vec<F>>) -> Result<Self> {
        spec.validate()?;
        if rs.data_blocks() != spec.k || rs.parity_blocks() != spec.global_parities {
            return Err(CodeError::InvalidParameters(format!(
                "base code is ({}, {}), spec needs ({}, {})",
                rs.data_blocks(),
                rs.parity_blocks(),
                spec.k,
                spec.global_parities
            )));
        }
        if local_coeffs.len() != spec.data_groups()
            || local_coeffs.iter().any(|g| g.len() != spec.group_size)
        {
            return Err(CodeError::InvalidParameters(
                "local coefficient shape must be (k/r) groups of r".into(),
            ));
        }
        if local_coeffs.iter().flatten().any(|c| c.is_zero()) {
            return Err(CodeError::InvalidParameters(
                "local parity coefficients must be nonzero".into(),
            ));
        }
        if spec.implied_parity {
            if !rs.is_aligned() {
                return Err(CodeError::InvalidParameters(
                    "implied parity requires the aligned (Appendix-D) base code".into(),
                ));
            }
            if local_coeffs.iter().flatten().any(|&c| c != F::ONE) {
                return Err(CodeError::InvalidParameters(
                    "implied parity requires unit local coefficients".into(),
                ));
            }
        }

        let generator = Self::build_generator(&spec, &rs, &local_coeffs);
        let equations = Self::build_equations(&spec, &local_coeffs);
        Ok(Self {
            spec,
            rs,
            local_coeffs,
            generator,
            equations,
        })
    }

    fn build_generator(spec: &LrcSpec, rs: &ReedSolomon<F>, coeffs: &[Vec<F>]) -> Matrix<F> {
        let k = spec.k;
        let g = spec.global_parities;
        let mut gen = rs.generator().clone();
        for (t, group) in coeffs.iter().enumerate() {
            let mut col = vec![F::ZERO; k];
            for (i, &c) in group.iter().enumerate() {
                col[t * spec.group_size + i] = c;
            }
            gen.push_column(&col);
        }
        if !spec.implied_parity {
            // Stored parity-group local parity: S_p = Σ_j P_j.
            let mut col = vec![F::ZERO; k];
            for j in 0..g {
                let parity_col = rs.generator().column(k + j);
                for (slot, &v) in col.iter_mut().zip(&parity_col) {
                    *slot += v;
                }
            }
            gen.push_column(&col);
        }
        gen
    }

    fn build_equations(spec: &LrcSpec, coeffs: &[Vec<F>]) -> Vec<XorEquation<F>> {
        let k = spec.k;
        let g = spec.global_parities;
        let dg = spec.data_groups();
        let mut eqs = Vec::with_capacity(dg + 1);
        // Data groups: Σ c_i · X_i + S_t = 0.
        for (t, group) in coeffs.iter().enumerate() {
            let mut members: Vec<(usize, F)> = group
                .iter()
                .enumerate()
                .map(|(i, &c)| (t * spec.group_size + i, c))
                .collect();
            members.push((k + g + t, F::ONE));
            eqs.push(XorEquation::new(members));
        }
        // Parity group.
        let mut members: Vec<(usize, F)> = (0..g).map(|j| (k + j, F::ONE)).collect();
        if spec.implied_parity {
            // Alignment: Σ_j P_j + Σ_t S_t = 0 (S3 is implied).
            members.extend((0..dg).map(|t| (k + g + t, F::ONE)));
        } else {
            // Stored: Σ_j P_j + S_p = 0 by definition of S_p.
            members.push((k + g + dg, F::ONE));
        }
        eqs.push(XorEquation::new(members));
        eqs
    }

    /// The LRC-specific spec (group structure, implied parity).
    pub fn lrc_spec(&self) -> LrcSpec {
        self.spec
    }

    /// The base Reed-Solomon code.
    pub fn base(&self) -> &ReedSolomon<F> {
        &self.rs
    }

    /// The full `k × n` generator matrix.
    pub fn generator(&self) -> &Matrix<F> {
        &self.generator
    }

    /// The repair-group XOR equations used by the light decoder.
    pub fn equations(&self) -> &[XorEquation<F>] {
        &self.equations
    }

    /// The local parity coefficients, one vector per data group.
    pub fn local_coefficients(&self) -> &[Vec<F>] {
        &self.local_coeffs
    }

    /// Stripe index of local parity `S_t` (`t < k/r`, plus the stored
    /// parity-group parity at `t = k/r` when not implied).
    pub fn local_parity_index(&self, t: usize) -> usize {
        self.spec.k + self.spec.global_parities + t
    }

    /// Keeps only the steps needed (transitively) to repair `targets`,
    /// preserving dependency order.
    fn prune_steps(steps: Vec<PeelStep<F>>, targets: &[usize]) -> Vec<PeelStep<F>> {
        let mut needed: Vec<usize> = targets.to_vec();
        let mut keep = vec![false; steps.len()];
        for (i, step) in steps.iter().enumerate().rev() {
            if needed.contains(&step.repaired) {
                keep[i] = true;
                needed.extend(step.sources.iter().map(|&(s, _)| s));
            }
        }
        steps
            .into_iter()
            .zip(keep)
            .filter_map(|(s, k)| k.then_some(s))
            .collect()
    }

    /// Light steps + optional heavy remainder for a repair request.
    #[allow(clippy::type_complexity)] // (steps, Option<(unresolved, selection)>)
    fn plan_internal(
        &self,
        unavailable: &[usize],
        targets: &[usize],
    ) -> Result<(Vec<PeelStep<F>>, Option<(Vec<usize>, Vec<usize>)>)> {
        let n = self.total_blocks();
        let unavailable = normalize_indices(unavailable, n)?;
        let targets = normalize_indices(targets, n)?;
        if let Some(&bad) = targets.iter().find(|t| !unavailable.contains(t)) {
            return Err(CodeError::InvalidParameters(format!(
                "target block {bad} is not among the unavailable blocks"
            )));
        }
        let mut avail = vec![true; n];
        for &u in &unavailable {
            avail[u] = false;
        }
        let outcome = peel(&self.equations, &avail, &targets);
        let steps = Self::prune_steps(
            outcome.steps,
            &targets
                .iter()
                .copied()
                .filter(|t| !outcome.unresolved.contains(t))
                .collect::<Vec<_>>(),
        );
        if outcome.unresolved.is_empty() {
            return Ok((steps, None));
        }
        // Heavy decoder: k independent columns among originally available
        // blocks, data-first (mirrors the RS decoder's stream choice).
        let available: Vec<usize> = (0..n).filter(|&i| avail[i]).collect();
        let (data, parity): (Vec<usize>, Vec<usize>) =
            available.iter().partition(|&&i| i < self.spec.k);
        let ordered: Vec<usize> = data.into_iter().chain(parity).collect();
        let selection = linear::select_independent_columns(&self.generator, &ordered).ok_or(
            CodeError::Unrecoverable {
                erased: unavailable,
            },
        )?;
        Ok((steps, Some((outcome.unresolved, selection))))
    }

    /// Assembles the public [`RepairPlan`] from a planner outcome.
    fn assemble_plan(
        missing: Vec<usize>,
        steps: &[PeelStep<F>],
        heavy: Option<&(Vec<usize>, Vec<usize>)>,
    ) -> RepairPlan {
        let mut tasks: Vec<RepairTask> = steps
            .iter()
            .map(|s| RepairTask {
                repairs: vec![s.repaired],
                reads: s.sources.iter().map(|&(i, _)| i).collect(),
                half_reads: vec![],
                light: true,
            })
            .collect();
        if let Some((unresolved, selection)) = heavy {
            tasks.push(RepairTask {
                repairs: unresolved.clone(),
                reads: selection.clone(),
                half_reads: vec![],
                light: false,
            });
        }
        RepairPlan { missing, tasks }
    }
}

impl<F: Field> ErasureCodec for Lrc<F> {
    fn data_blocks(&self) -> usize {
        self.spec.k
    }

    fn total_blocks(&self) -> usize {
        self.spec.total_blocks()
    }

    fn spec(&self) -> CodeSpec {
        CodeSpec::Lrc(self.spec)
    }

    fn symbol_bytes(&self) -> usize {
        F::SYMBOL_BYTES
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<()> {
        let k = self.spec.k;
        let g = self.spec.global_parities;
        let len = check_data_lanes(data, k)?;
        check_parity_lanes(parity, self.total_blocks() - k, len)?;
        check_symbol_alignment(len, F::SYMBOL_BYTES)?;
        let (globals, locals) = parity.split_at_mut(g);
        // Every parity lane is one fused row — a single pass over the
        // output lane however many sources combine into it (the local
        // parities' unit coefficients route to the fused-XOR kernel).
        // Global (Reed-Solomon) parities: columns k..k+g of the generator.
        for (p, out) in globals.iter_mut().enumerate() {
            let col = k + p;
            encode_row(out, data, |i| self.generator[(i, col)]);
        }
        // Local parities: Σ cᵢ · Xᵢ over each data group.
        for (t, group) in self.local_coeffs.iter().enumerate() {
            let base = t * self.spec.group_size;
            let members = &data[base..base + self.spec.group_size];
            encode_row(&mut *locals[t], members, |i| group[i]);
        }
        // Stored parity-group parity S_p = Σ_j P_j (implied codes omit it).
        if !self.spec.implied_parity {
            let (_, tail) = locals.split_at_mut(self.spec.data_groups());
            encode_row_iter(&mut *tail[0], globals.iter().map(|p| (F::ONE, &**p)));
        }
        Ok(())
    }

    fn repair_plan_for(&self, unavailable: &[usize], targets: &[usize]) -> Result<RepairPlan> {
        let (steps, heavy) = self.plan_internal(unavailable, targets)?;
        Ok(Self::assemble_plan(
            normalize_indices(targets, self.total_blocks())?,
            &steps,
            heavy.as_ref(),
        ))
    }

    fn repair_session(&self, unavailable: &[usize]) -> Result<RepairSession> {
        let missing = normalize_indices(unavailable, self.total_blocks())?;
        let (steps, heavy) = self.plan_internal(&missing, &missing)?;
        let plan = Self::assemble_plan(missing.clone(), &steps, heavy.as_ref());
        // Light peeling steps translate one-to-one into compiled steps.
        let mut compiled: Vec<CompiledStep> = steps
            .iter()
            .map(|s| CompiledStep {
                target: s.repaired,
                sources: s.sources.iter().map(|&(i, c)| (i, c.index())).collect(),
            })
            .collect();
        let mut solves = 0;
        if let Some((unresolved, selection)) = &heavy {
            compiled.extend(linear::compile_combination_steps(
                &self.generator,
                selection,
                unresolved,
            )?);
            solves = 1;
        }
        Ok(RepairSession::from_parts::<F>(
            self.total_blocks(),
            missing,
            plan,
            compiled,
            solves,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StripeViewMut;
    use xorbas_gf::slice_ops::xor_into;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 101 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn xorbas() -> Lrc<Gf256> {
        Lrc::xorbas_10_6_5().unwrap()
    }

    #[test]
    fn stripe_layout_matches_figure_2() {
        let lrc = xorbas();
        assert_eq!(lrc.total_blocks(), 16);
        let data = sample_data(10, 32);
        let stripe = lrc.encode_stripe(&data).unwrap();
        // Systematic prefix.
        assert_eq!(&stripe[..10], &data[..]);
        // S1 = X1+..+X5, S2 = X6+..+X10 (unit coefficients = XOR).
        let mut s1 = vec![0u8; 32];
        for d in &data[..5] {
            xor_into(&mut s1, d);
        }
        assert_eq!(stripe[14], s1);
        let mut s2 = vec![0u8; 32];
        for d in &data[5..10] {
            xor_into(&mut s2, d);
        }
        assert_eq!(stripe[15], s2);
    }

    #[test]
    fn implied_parity_identity_holds() {
        // S1 + S2 = P1 + P2 + P3 + P4 — the stored S3 is redundant.
        let lrc = xorbas();
        let stripe = lrc.encode_stripe(&sample_data(10, 64)).unwrap();
        let mut lhs = stripe[14].clone();
        xor_into(&mut lhs, &stripe[15]);
        let mut rhs = vec![0u8; 64];
        for p in &stripe[10..14] {
            xor_into(&mut rhs, p);
        }
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn every_single_failure_light_decodes_reading_5_blocks() {
        // The headline property: locality 5 for all 16 blocks.
        let lrc = xorbas();
        let stripe = lrc.encode_stripe(&sample_data(10, 16)).unwrap();
        for lost in 0..16 {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            shards[lost] = None;
            let report = lrc.reconstruct(&mut shards).unwrap();
            assert!(report.used_light_decoder, "block {lost} went heavy");
            assert_eq!(report.blocks_read, 5, "block {lost} read != 5");
            assert_eq!(shards[lost].as_ref().unwrap(), &stripe[lost]);
        }
    }

    #[test]
    fn global_parity_repair_uses_equation_2() {
        // P2 lost: read P1, P3, P4, S1, S2 (Eq. (2) of the paper).
        let lrc = xorbas();
        let plan = lrc.repair_plan(&[11]).unwrap();
        assert!(plan.is_light());
        let mut reads = plan.tasks[0].reads.clone();
        reads.sort_unstable();
        assert_eq!(reads, vec![10, 12, 13, 14, 15]);
    }

    #[test]
    fn double_failure_in_different_groups_stays_light() {
        let lrc = xorbas();
        let stripe = lrc.encode_stripe(&sample_data(10, 16)).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[2] = None; // group 1
        shards[7] = None; // group 2
        let report = lrc.reconstruct(&mut shards).unwrap();
        assert!(report.used_light_decoder);
        assert_eq!(report.read_events, 10); // two tasks x 5 streams
        assert_eq!(shards[2].as_ref().unwrap(), &stripe[2]);
        assert_eq!(shards[7].as_ref().unwrap(), &stripe[7]);
    }

    #[test]
    fn double_failure_in_same_group_goes_heavy() {
        let lrc = xorbas();
        let stripe = lrc.encode_stripe(&sample_data(10, 16)).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[2] = None;
        shards[3] = None; // same local group as 2
        let report = lrc.reconstruct(&mut shards).unwrap();
        assert!(!report.used_light_decoder);
        assert_eq!(report.blocks_read, 10);
        assert_eq!(shards[2].as_ref().unwrap(), &stripe[2]);
        assert_eq!(shards[3].as_ref().unwrap(), &stripe[3]);
    }

    #[test]
    fn peeling_cascades_when_parity_group_unlocks() {
        // Lose S1 and P1. P1's equation has 2 unknowns at first (P1 and…
        // actually S1): repair S1 from its data group, which unlocks the
        // parity-group equation for P1.
        let lrc = xorbas();
        let stripe = lrc.encode_stripe(&sample_data(10, 16)).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[14] = None; // S1
        shards[10] = None; // P1
        let report = lrc.reconstruct(&mut shards).unwrap();
        assert!(report.used_light_decoder);
        assert_eq!(shards[14].as_ref().unwrap(), &stripe[14]);
        assert_eq!(shards[10].as_ref().unwrap(), &stripe[10]);
    }

    #[test]
    fn all_four_erasure_patterns_recover() {
        // d = 5: any 4 erasures must decode (exhaustive, C(16,4) = 1820).
        let lrc = xorbas();
        let stripe = lrc.encode_stripe(&sample_data(10, 4)).unwrap();
        for pattern in crate::analysis::combinations(16, 4) {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            lrc.reconstruct(&mut shards)
                .unwrap_or_else(|e| panic!("pattern {pattern:?} failed: {e}"));
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &stripe[i], "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn some_five_erasure_pattern_fails() {
        // d = 5 exactly: there exists an unrecoverable 5-pattern.
        // Erasing a whole local group (5 data blocks + … here: the 5
        // blocks X1..X4 + S1 leaves group 1 with rank deficit).
        let lrc = xorbas();
        let stripe = lrc.encode_stripe(&sample_data(10, 4)).unwrap();
        let mut found_failure = false;
        for pattern in crate::analysis::combinations(16, 5) {
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            if lrc.reconstruct(&mut shards).is_err() {
                found_failure = true;
                break;
            }
        }
        assert!(found_failure, "minimum distance should be exactly 5");
    }

    #[test]
    fn stored_parity_variant_encodes_s3_explicitly() {
        let spec = LrcSpec {
            implied_parity: false,
            ..LrcSpec::XORBAS
        };
        let lrc: Lrc<Gf256> = Lrc::new(spec).unwrap();
        assert_eq!(lrc.total_blocks(), 17);
        let stripe = lrc.encode_stripe(&sample_data(10, 16)).unwrap();
        let mut s3 = vec![0u8; 16];
        for p in &stripe[10..14] {
            xor_into(&mut s3, p);
        }
        assert_eq!(stripe[16], s3);
        // Global parity repair now reads P-peers + stored S3: 4 blocks.
        let plan = lrc.repair_plan(&[11]).unwrap();
        assert!(plan.is_light());
        assert_eq!(plan.blocks_read(), 4);
    }

    #[test]
    fn degraded_read_repairs_only_the_target() {
        let lrc = xorbas();
        // Blocks 0 and 9 both missing (different groups); job needs only 0.
        let plan = lrc.repair_plan_for(&[0, 9], &[0]).unwrap();
        assert_eq!(plan.missing, vec![0]);
        assert_eq!(plan.tasks.len(), 1);
        assert_eq!(plan.tasks[0].repairs, vec![0]);
        assert_eq!(plan.blocks_read(), 5);
    }

    #[test]
    fn non_unit_coefficients_decode_via_equation_1() {
        // General c_i with a stored (non-implied) parity-group parity.
        let spec = LrcSpec {
            implied_parity: false,
            ..LrcSpec::XORBAS
        };
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let coeffs: Vec<Vec<Gf256>> = (0..2)
            .map(|t| {
                (0..5)
                    .map(|i| Gf256::from_index((t * 5 + i + 2) as u32))
                    .collect()
            })
            .collect();
        let lrc = Lrc::with_base(spec, rs, coeffs).unwrap();
        let stripe = lrc.encode_stripe(&sample_data(10, 16)).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[3] = None;
        let report = lrc.reconstruct(&mut shards).unwrap();
        assert!(report.used_light_decoder);
        assert_eq!(report.blocks_read, 5);
        assert_eq!(shards[3].as_ref().unwrap(), &stripe[3]);
    }

    #[test]
    fn implied_parity_rejects_unaligned_base_or_nonunit_coeffs() {
        let unaligned = ReedSolomon::<Gf256>::with_vandermonde_generator(10, 4).unwrap();
        let unit = vec![vec![Gf256::ONE; 5]; 2];
        assert!(matches!(
            Lrc::with_base(LrcSpec::XORBAS, unaligned, unit.clone()),
            Err(CodeError::InvalidParameters(_))
        ));
        let aligned = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let mut nonunit = unit;
        nonunit[0][0] = Gf256::from_index(3);
        assert!(matches!(
            Lrc::with_base(LrcSpec::XORBAS, aligned, nonunit),
            Err(CodeError::InvalidParameters(_))
        ));
    }

    #[test]
    fn zero_coefficient_rejected() {
        let spec = LrcSpec {
            implied_parity: false,
            ..LrcSpec::XORBAS
        };
        let rs = ReedSolomon::<Gf256>::new(10, 4).unwrap();
        let mut coeffs = vec![vec![Gf256::ONE; 5]; 2];
        coeffs[1][2] = Gf256::ZERO;
        assert!(Lrc::with_base(spec, rs, coeffs).is_err());
    }

    #[test]
    fn generator_matches_paper_shape_and_rank() {
        let lrc = xorbas();
        let g = lrc.generator();
        assert_eq!((g.rows(), g.cols()), (10, 16));
        assert_eq!(g.rank(), 10);
        // Equations annihilate the generator: for each equation,
        // Σ c_i · g_{idx_i} = 0 columnwise.
        for eq in lrc.equations() {
            for row in 0..10 {
                let sum: Gf256 = eq.members.iter().map(|&(i, c)| c * g[(row, i)]).sum();
                assert!(sum.is_zero());
            }
        }
    }

    #[test]
    fn small_lrc_with_more_groups() {
        // (12, 4+3, 4) LRC with implied parity over GF(2^8): 3 data
        // groups of 4, 4 global parities, n = 12 + 4 + 3 = 19.
        let spec = LrcSpec {
            k: 12,
            global_parities: 4,
            group_size: 4,
            implied_parity: true,
        };
        let lrc: Lrc<Gf256> = Lrc::new(spec).unwrap();
        assert_eq!(lrc.total_blocks(), 19);
        let stripe = lrc.encode_stripe(&sample_data(12, 8)).unwrap();
        // Single data failure reads 4; parity failure reads g-1 + 3 = 6.
        let plan = lrc.repair_plan(&[1]).unwrap();
        assert_eq!(plan.blocks_read(), 4);
        let plan = lrc.repair_plan(&[13]).unwrap();
        assert_eq!(plan.blocks_read(), 6);
        assert!(plan.is_light());
        // Round-trip a triple failure.
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        for i in [0, 4, 16] {
            shards[i] = None;
        }
        lrc.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &stripe[i]);
        }
    }

    #[test]
    fn roundtrip_light_repair_at_assorted_payload_lengths() {
        // The (10,6,5) encode → lose-block → light-repair loop must be
        // payload-length agnostic: single bytes, odd lengths that don't
        // divide the table-kernel stride, and block-sized payloads.
        let lrc = xorbas();
        for len in [1, 7, 64, 1000] {
            let stripe = lrc.encode_stripe(&sample_data(10, len)).unwrap();
            for lost in 0..16 {
                let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
                shards[lost] = None;
                let report = lrc.reconstruct(&mut shards).unwrap();
                assert!(report.used_light_decoder, "len {len} block {lost}");
                assert_eq!(report.blocks_read, 5, "len {len} block {lost}");
                assert_eq!(
                    shards[lost].as_ref().unwrap(),
                    &stripe[lost],
                    "len {len} block {lost}"
                );
            }
        }
    }

    #[test]
    fn wide_lrc_encodes_and_repairs_past_255_lanes() {
        // The (200, 60, 10)-class layout over GF(2^16): 260 stored
        // lanes. One construction is shared across every check below —
        // wide generators are the expensive part of this test.
        let lrc = Lrc::wide_200_60_10().unwrap();
        assert_eq!(lrc.total_blocks(), 260);
        assert_eq!(lrc.symbol_bytes(), 2);
        let data = sample_data(200, 8);
        let stripe = lrc.encode_stripe(&data).unwrap();
        assert_eq!(&stripe[..200], &data[..]);

        // Single data failure: light, reads its 10-lane group.
        let plan = lrc.repair_plan(&[7]).unwrap();
        assert!(plan.is_light());
        assert_eq!(plan.blocks_read(), 10);
        // Global parity failure: light via the alignment equation,
        // reading the other 39 globals plus the 20 data-group locals.
        let plan = lrc.repair_plan(&[205]).unwrap();
        assert!(plan.is_light());
        assert_eq!(plan.blocks_read(), 59);

        // Session replay round-trips a light and a heavy pattern.
        for pattern in [vec![7usize], vec![3, 4]] {
            let session = lrc.repair_session(&pattern).unwrap();
            let mut lanes = stripe.clone();
            for &i in &pattern {
                lanes[i].fill(0xEE);
            }
            let mut refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
            let mut view = StripeViewMut::new(&mut refs, &pattern).unwrap();
            session.repair(&mut view).unwrap();
            drop(refs);
            for &i in &pattern {
                assert_eq!(lanes[i], stripe[i], "lane {i} of {pattern:?}");
            }
        }
    }

    #[test]
    fn odd_payload_lengths_are_rejected_for_two_byte_symbols() {
        // GF(2^16) symbols span two bytes: a 7-byte lane has no valid
        // interpretation, so encode and session replay both return the
        // typed boundary error instead of truncating or panicking.
        // A small wide-field geometry keeps this test cheap.
        let spec = LrcSpec {
            k: 4,
            global_parities: 2,
            group_size: 2,
            implied_parity: true,
        };
        let lrc: Lrc<Gf65536> = Lrc::new(spec).unwrap();
        let data = sample_data(4, 7);
        assert!(matches!(
            lrc.encode_stripe(&data),
            Err(CodeError::PayloadNotSymbolAligned {
                symbol_bytes: 2,
                len: 7
            })
        ));
        // Even lengths encode; replaying a session against odd lanes is
        // rejected by the same check.
        let stripe = lrc.encode_stripe(&sample_data(4, 8)).unwrap();
        let session = lrc.repair_session(&[1]).unwrap();
        let mut odd_lanes = vec![vec![0u8; 7]; stripe.len()];
        let mut refs: Vec<&mut [u8]> = odd_lanes.iter_mut().map(Vec::as_mut_slice).collect();
        let mut view = StripeViewMut::new(&mut refs, &[1]).unwrap();
        assert!(matches!(
            session.repair(&mut view),
            Err(CodeError::PayloadNotSymbolAligned {
                symbol_bytes: 2,
                len: 7
            })
        ));
        // Byte-symbol codecs are unaffected: odd lengths stay valid.
        let narrow = xorbas();
        assert!(narrow.encode_stripe(&sample_data(10, 7)).is_ok());
    }

    #[test]
    fn implied_parity_identity_beyond_the_paper_geometry() {
        // §3.1.1 generalizes: with the aligned base code and unit local
        // coefficients, the XOR of all stored local parities equals the
        // XOR of all RS parities, whatever the (k, g, r) geometry.
        for (k, g, r) in [(4, 2, 2), (6, 3, 3), (12, 4, 4), (9, 2, 3)] {
            let spec = LrcSpec {
                k,
                global_parities: g,
                group_size: r,
                implied_parity: true,
            };
            let lrc: Lrc<Gf256> = Lrc::new(spec).unwrap();
            let stripe = lrc.encode_stripe(&sample_data(k, 48)).unwrap();
            let mut locals_xor = vec![0u8; 48];
            for s in &stripe[k + g..] {
                xor_into(&mut locals_xor, s);
            }
            let mut globals_xor = vec![0u8; 48];
            for p in &stripe[k..k + g] {
                xor_into(&mut globals_xor, p);
            }
            assert_eq!(locals_xor, globals_xor, "({k},{g},{r})");
        }
    }
}
