//! Failure-trace generation (Fig. 1) and failure statistics.
//!
//! The paper shows a month of node-failure counts from the 3000-node
//! Facebook production cluster: "it is quite typical to have 20 or more
//! node failures per day", with bursts reaching ~100. The raw trace is
//! proprietary, so we generate a synthetic one from an overdispersed
//! counting process: a Poisson base rate plus occasional correlated
//! burst days (rack/switch events), matching the reported statistics.

use rand::Rng;

/// Configuration of the synthetic failure trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Days to generate.
    pub days: usize,
    /// Mean of the per-day Poisson base failure count.
    pub base_mean: f64,
    /// Probability a day carries a correlated burst.
    pub burst_prob: f64,
    /// Mean extra failures on a burst day (geometric).
    pub burst_mean: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // Calibrated to Fig. 1: median ≈ 20, occasional days near 100.
        Self {
            days: 30,
            base_mean: 18.0,
            burst_prob: 0.12,
            burst_mean: 40.0,
        }
    }
}

/// Samples a Poisson variate (Knuth's product method; fine for the
/// small means used here).
pub fn sample_poisson<R: Rng>(mean: f64, rng: &mut R) -> u32 {
    assert!(mean > 0.0, "mean must be positive");
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples a geometric variate with the given mean (support `1..`).
fn sample_geometric<R: Rng>(mean: f64, rng: &mut R) -> u32 {
    assert!(mean >= 1.0, "mean must be at least 1");
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u32
}

/// Samples one day's failure count from the overdispersed process: a
/// Poisson base plus, with probability `burst_prob`, a geometric burst
/// (the heavy tail behind Fig. 1's near-100-failure days). Shared by
/// [`generate_trace`] and the warehouse scenario driver so both replay
/// the same statistics. A non-positive `base_mean` contributes zero
/// base failures (tiny-fleet scalings use this).
pub fn sample_day_failures<R: Rng>(cfg: &TraceConfig, rng: &mut R) -> u32 {
    let mut failures = if cfg.base_mean > 0.0 {
        sample_poisson(cfg.base_mean, rng)
    } else {
        0
    };
    if rng.gen::<f64>() < cfg.burst_prob {
        failures += sample_geometric(cfg.burst_mean, rng);
    }
    failures
}

/// Generates a per-day failed-node trace.
pub fn generate_trace<R: Rng>(cfg: TraceConfig, rng: &mut R) -> Vec<u32> {
    (0..cfg.days)
        .map(|_| sample_day_failures(&cfg, rng))
        .collect()
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Median failures/day.
    pub median: f64,
    /// Mean failures/day.
    pub mean: f64,
    /// Maximum failures in a day.
    pub max: u32,
    /// Days with 20 or more failures.
    pub days_at_least_20: usize,
}

/// Computes [`TraceStats`].
pub fn trace_stats(trace: &[u32]) -> TraceStats {
    assert!(!trace.is_empty(), "empty trace");
    let mut sorted = trace.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
    };
    TraceStats {
        median,
        mean: trace.iter().map(|&x| x as f64).sum::<f64>() / n as f64,
        // The trace was asserted non-empty on entry.
        max: sorted.last().copied().unwrap_or(0),
        days_at_least_20: trace.iter().filter(|&&x| x >= 20).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_poisson(18.0, &mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 18.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn trace_matches_figure_1_statistics() {
        let mut rng = StdRng::seed_from_u64(99);
        // Aggregate several months so the statistics are stable.
        let trace = generate_trace(
            TraceConfig {
                days: 600,
                ..Default::default()
            },
            &mut rng,
        );
        let stats = trace_stats(&trace);
        // "quite typical to have 20 or more node failures per day".
        assert!(stats.median >= 15.0 && stats.median <= 25.0, "{stats:?}");
        assert!(stats.days_at_least_20 as f64 / 600.0 > 0.3, "{stats:?}");
        // Bursts approach the ~100 spike of Fig. 1.
        assert!(stats.max >= 60, "{stats:?}");
        assert!(stats.max <= 400, "{stats:?}");
    }

    #[test]
    fn trace_is_deterministic_under_seed() {
        let a = generate_trace(TraceConfig::default(), &mut StdRng::seed_from_u64(5));
        let b = generate_trace(TraceConfig::default(), &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn stats_of_known_sequence() {
        let s = trace_stats(&[10, 30, 20, 40, 25]);
        assert_eq!(s.median, 25.0);
        assert_eq!(s.mean, 25.0);
        assert_eq!(s.max, 40);
        assert_eq!(s.days_at_least_20, 4);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = trace_stats(&[]);
    }
}
