//! The simulated DRFS namespace: files, stripes, blocks, placement.
//!
//! # Scaling design
//!
//! The namespace is built for warehouse-size clusters (3000 nodes,
//! hundreds of thousands of tracked blocks — see
//! [`ClusterScale`](crate::config::ClusterScale)):
//!
//! * **Arena-indexed stripe positions** — stripe layouts live in one
//!   shared [`Position`] arena; a [`StripeMeta`] is a `(start, len)`
//!   window into it, so creating a stripe performs no per-stripe heap
//!   allocation and iterating positions is a cache-friendly slice scan.
//! * **Per-node slab indices** — each node's block inventory is a dense
//!   `Vec<BlockId>` paired with a per-block back-pointer (`node_slot`),
//!   giving O(1) insert/remove/membership with deterministic iteration
//!   order (unlike the hash-set it replaces).
//! * **Lost-block slab** — lost blocks are tracked incrementally in the
//!   same slab style, so the BlockFixer's scan is O(lost), not
//!   O(namespace).
//! * **Rejection-sampling placement** — on large clusters,
//!   [`Placement`] samples candidate nodes instead of shuffling the
//!   full node list, making block placement O(stripe width) rather than
//!   O(cluster).
//!
//! Verify-mode payloads live in a side table (empty unless
//! `verify_payloads` is on) so [`BlockMeta`] stays small at scale.

use rand::seq::SliceRandom;
use rand::Rng;

use xorbas_core::CodeSpec;

/// Identifies a worker node.
pub type NodeId = usize;
/// Identifies a stored block.
pub type BlockId = usize;
/// Identifies a file.
pub type FileId = usize;
/// Identifies a stripe.
pub type StripeId = usize;

/// Sentinel slot value for "not a member of any slab".
const NO_SLOT: u32 = u32::MAX;

/// Role of a stored block within its stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A systematic data block (or a replica of one, under replication).
    Data,
    /// A Reed-Solomon global parity.
    GlobalParity,
    /// A local XOR parity.
    LocalParity,
}

/// One stripe position: either a stored block or a structurally-zero
/// position of a zero-padded stripe ("incomplete stripes are considered
/// as zero-padded full-stripes", §3.1.1). Virtual positions cost nothing
/// to read and never need repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    /// A materialized block.
    Real(BlockId),
    /// Structurally zero content; not stored.
    Virtual,
}

/// A stored block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Identifier.
    pub id: BlockId,
    /// Owning file.
    pub file: FileId,
    /// Owning stripe.
    pub stripe: StripeId,
    /// Stripe position (codec index; for replication, the replica index).
    pub pos: usize,
    /// Role.
    pub kind: BlockKind,
    /// Size in bytes.
    pub bytes: u64,
    /// Hosting node; `None` while lost.
    pub location: Option<NodeId>,
}

/// A stripe: a codec stripe, or a replica set under replication. Its
/// positions live in the shared arena — read them through
/// [`Hdfs::positions`].
#[derive(Debug, Clone)]
pub struct StripeMeta {
    /// Identifier.
    pub id: StripeId,
    /// Owning file.
    pub file: FileId,
    /// Redundancy scheme.
    pub code: CodeSpec,
    /// Number of real (non-padded) data blocks in this stripe.
    pub real_data: usize,
    /// Marked unrecoverable by the BlockFixer (data loss); its lost
    /// blocks are withdrawn from the scan index and never re-planned.
    pub unrecoverable: bool,
    /// Start of this stripe's window in the position arena.
    pos_start: usize,
    /// Width of this stripe's window in the position arena.
    pos_len: usize,
}

/// A file. Stripes are created contiguously, so the stripe set is a
/// range rather than a per-file vector.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Identifier.
    pub id: FileId,
    /// Human-readable name.
    pub name: String,
    /// Logical data blocks.
    pub data_blocks: usize,
    /// Stripes, as a contiguous id range.
    pub stripes: std::ops::Range<StripeId>,
}

/// The namespace plus block→node inventory.
#[derive(Debug, Clone)]
pub struct Hdfs {
    files: Vec<FileMeta>,
    stripes: Vec<StripeMeta>,
    blocks: Vec<BlockMeta>,
    /// Shared position arena backing every stripe's layout.
    position_arena: Vec<Position>,
    /// Per-node inventory slabs (dense, unordered).
    node_blocks: Vec<Vec<BlockId>>,
    /// Back-pointer: a block's index within its node's slab.
    node_slot: Vec<u32>,
    /// Dense index of currently-lost blocks awaiting repair.
    lost: Vec<BlockId>,
    /// Back-pointer: a block's index within `lost`.
    lost_slot: Vec<u32>,
    /// Verify-mode payloads, indexed by block id (empty = none stored).
    payloads: Vec<Vec<u8>>,
}

impl Hdfs {
    /// An empty namespace over `nodes` DataNodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            files: Vec::new(),
            stripes: Vec::new(),
            blocks: Vec::new(),
            position_arena: Vec::new(),
            node_blocks: vec![Vec::new(); nodes],
            node_slot: Vec::new(),
            lost: Vec::new(),
            lost_slot: Vec::new(),
            payloads: Vec::new(),
        }
    }

    /// All files.
    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// All stripes.
    pub fn stripes(&self) -> &[StripeMeta] {
        &self.stripes
    }

    /// A stripe by id.
    pub fn stripe(&self, id: StripeId) -> &StripeMeta {
        &self.stripes[id]
    }

    /// A stripe's positions in codec order (for replication: replicas).
    pub fn positions(&self, id: StripeId) -> &[Position] {
        let s = &self.stripes[id];
        &self.position_arena[s.pos_start..s.pos_start + s.pos_len]
    }

    /// A block by id.
    pub fn block(&self, id: BlockId) -> &BlockMeta {
        &self.blocks[id]
    }

    /// A block's verify-mode payload as a borrowed slice (`None` outside
    /// verify mode). The zero-copy decode paths read stripes through
    /// this instead of cloning payload vectors.
    pub fn payload(&self, id: BlockId) -> Option<&[u8]> {
        self.payloads
            .get(id)
            .filter(|p| !p.is_empty())
            .map(|p| &p[..])
    }

    /// Total stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks currently hosted by `node` (slab order: insertion order
    /// perturbed by O(1) removals — deterministic under a fixed seed).
    pub fn blocks_on(&self, node: NodeId) -> &[BlockId] {
        &self.node_blocks[node]
    }

    /// O(1) slab insert of `block` into `node`'s inventory.
    fn attach(&mut self, block: BlockId, node: NodeId) {
        debug_assert_eq!(self.node_slot[block], NO_SLOT);
        self.node_slot[block] = self.node_blocks[node].len() as u32;
        self.node_blocks[node].push(block);
        self.blocks[block].location = Some(node);
    }

    /// O(1) slab removal of `block` from its hosting node's inventory.
    /// No-op (with a debug assertion) if the block is already lost —
    /// both callers check `location` first.
    fn detach(&mut self, block: BlockId) {
        let Some(node) = self.blocks[block].location.take() else {
            debug_assert!(false, "detaching a located block");
            return;
        };
        let slot = self.node_slot[block] as usize;
        let slab = &mut self.node_blocks[node];
        let removed = slab.swap_remove(slot);
        debug_assert_eq!(removed, block);
        if let Some(&moved) = slab.get(slot) {
            self.node_slot[moved] = slot as u32;
        }
        self.node_slot[block] = NO_SLOT;
    }

    /// O(1) insert into the lost-block index.
    fn mark_lost(&mut self, block: BlockId) {
        debug_assert_eq!(self.lost_slot[block], NO_SLOT);
        self.lost_slot[block] = self.lost.len() as u32;
        self.lost.push(block);
    }

    /// O(1) removal from the lost-block index (no-op if not indexed).
    fn unmark_lost(&mut self, block: BlockId) {
        if self.lost_slot[block] == NO_SLOT {
            return;
        }
        let slot = self.lost_slot[block] as usize;
        let removed = self.lost.swap_remove(slot);
        debug_assert_eq!(removed, block);
        if let Some(&moved) = self.lost.get(slot) {
            self.lost_slot[moved] = slot as u32;
        }
        self.lost_slot[block] = NO_SLOT;
    }

    /// Registers a new stored block at a location.
    #[allow(clippy::too_many_arguments)] // mirrors the BlockMeta fields
    fn add_block(
        &mut self,
        file: FileId,
        stripe: StripeId,
        pos: usize,
        kind: BlockKind,
        bytes: u64,
        location: NodeId,
        payload: Option<Vec<u8>>,
    ) -> BlockId {
        let id = self.blocks.len();
        self.blocks.push(BlockMeta {
            id,
            file,
            stripe,
            pos,
            kind,
            bytes,
            location: None,
        });
        self.node_slot.push(NO_SLOT);
        self.lost_slot.push(NO_SLOT);
        self.payloads.push(payload.unwrap_or_default());
        self.attach(id, location);
        id
    }

    /// Creates a fully-RAIDed file: `data_blocks` logical blocks encoded
    /// into stripes of `code`, placed by `placement`. `virtual_mask(s,
    /// buf)` fills `buf` with the structurally-zero positions for a
    /// stripe with `s` real data blocks; `payload(stripe, stripe_pos)`
    /// supplies verify-mode content (or `None`).
    #[allow(clippy::too_many_arguments)]
    pub fn create_raided_file<R: Rng>(
        &mut self,
        name: &str,
        data_blocks: usize,
        code: CodeSpec,
        block_bytes: u64,
        placement: &Placement,
        alive: &[bool],
        rng: &mut R,
        mut virtual_mask: impl FnMut(usize, &mut Vec<bool>),
        mut payload: impl FnMut(StripeId, usize) -> Option<Vec<u8>>,
    ) -> Option<FileId> {
        let file_id = self.files.len();
        let k = code.data_blocks();
        let n = code.total_blocks();
        let stripe_start = self.stripes.len();
        let mut remaining = data_blocks;
        let mut mask = Vec::with_capacity(n);
        let mut nodes = Vec::with_capacity(n);
        while remaining > 0 || self.stripes.len() == stripe_start {
            let real_data = remaining.min(k);
            remaining -= real_data;
            let stripe_id = self.stripes.len();
            virtual_mask(real_data, &mut mask);
            assert_eq!(mask.len(), n, "virtual mask must cover the stripe");
            let real_count = mask.iter().filter(|&&v| !v).count();
            placement.place_best_effort(real_count, alive, &[], rng, &mut nodes)?;
            let pos_start = self.position_arena.len();
            let mut node_iter = 0usize;
            for (pos, &is_virtual) in mask.iter().enumerate() {
                if is_virtual {
                    self.position_arena.push(Position::Virtual);
                    continue;
                }
                let kind = if pos < k {
                    BlockKind::Data
                } else {
                    // Positions `k..n` are parities: the codec layout
                    // puts global parities right after data, local
                    // parities after that. Replication never reaches
                    // this branch, and the loop bound keeps `pos < n`.
                    match code {
                        CodeSpec::Lrc(spec) if pos >= k + spec.global_parities => {
                            BlockKind::LocalParity
                        }
                        _ => BlockKind::GlobalParity,
                    }
                };
                let node = nodes[node_iter];
                node_iter += 1;
                let bid = self.add_block(
                    file_id,
                    stripe_id,
                    pos,
                    kind,
                    block_bytes,
                    node,
                    payload(stripe_id, pos),
                );
                self.position_arena.push(Position::Real(bid));
            }
            self.stripes.push(StripeMeta {
                id: stripe_id,
                file: file_id,
                code,
                real_data,
                unrecoverable: false,
                pos_start,
                pos_len: n,
            });
            if remaining == 0 {
                break;
            }
        }
        self.files.push(FileMeta {
            id: file_id,
            name: name.to_string(),
            data_blocks,
            stripes: stripe_start..self.stripes.len(),
        });
        Some(file_id)
    }

    /// Creates an `f`-way replicated file: one stripe per logical block,
    /// holding `f` replicas on distinct nodes.
    #[allow(clippy::too_many_arguments)] // mirrors create_raided_file's shape
    pub fn create_replicated_file<R: Rng>(
        &mut self,
        name: &str,
        data_blocks: usize,
        replicas: usize,
        block_bytes: u64,
        placement: &Placement,
        alive: &[bool],
        rng: &mut R,
    ) -> Option<FileId> {
        let file_id = self.files.len();
        let stripe_start = self.stripes.len();
        let mut nodes = Vec::with_capacity(replicas);
        for _ in 0..data_blocks {
            let stripe_id = self.stripes.len();
            placement.place_many(replicas, alive, &[], rng, &mut nodes)?;
            let pos_start = self.position_arena.len();
            for (pos, &node) in nodes.iter().enumerate() {
                let bid = self.add_block(
                    file_id,
                    stripe_id,
                    pos,
                    BlockKind::Data,
                    block_bytes,
                    node,
                    None,
                );
                self.position_arena.push(Position::Real(bid));
            }
            self.stripes.push(StripeMeta {
                id: stripe_id,
                file: file_id,
                code: CodeSpec::Replication { replicas },
                real_data: 1,
                unrecoverable: false,
                pos_start,
                pos_len: replicas,
            });
        }
        self.files.push(FileMeta {
            id: file_id,
            name: name.to_string(),
            data_blocks,
            stripes: stripe_start..self.stripes.len(),
        });
        Some(file_id)
    }

    /// Marks every block on `node` as lost; returns the lost block ids.
    pub fn kill_node(&mut self, node: NodeId) -> Vec<BlockId> {
        let lost = std::mem::take(&mut self.node_blocks[node]);
        for &b in &lost {
            self.blocks[b].location = None;
            self.node_slot[b] = NO_SLOT;
            if !self.stripes[self.blocks[b].stripe].unrecoverable {
                self.mark_lost(b);
            }
        }
        lost
    }

    /// Drops a single block (Fig.-7-style simulated block loss).
    pub fn drop_block(&mut self, block: BlockId) {
        if self.blocks[block].location.is_some() {
            self.detach(block);
            if !self.stripes[self.blocks[block].stripe].unrecoverable {
                self.mark_lost(block);
            }
        }
    }

    /// Moves a live block to a new node (decommission drain).
    pub fn relocate_block(&mut self, block: BlockId, node: NodeId) {
        assert!(
            self.blocks[block].location.is_some(),
            "relocating a block that is lost"
        );
        self.detach(block);
        self.attach(block, node);
    }

    /// Restores a repaired block at `node`.
    pub fn restore_block(&mut self, block: BlockId, node: NodeId) {
        assert!(
            self.blocks[block].location.is_none(),
            "restoring a block that is not lost"
        );
        self.unmark_lost(block);
        self.attach(block, node);
    }

    /// All currently-lost blocks that are still worth repairing
    /// (blocks of abandoned stripes are withdrawn). Maintained
    /// incrementally: O(lost), not O(namespace).
    pub fn lost_blocks(&self) -> &[BlockId] {
        &self.lost
    }

    /// Marks a stripe unrecoverable and withdraws its lost blocks from
    /// the scan index (they stay lost; nothing will re-plan them).
    /// Returns whether this was the first time (data-loss accounting
    /// counts each stripe once).
    pub fn mark_unrecoverable(&mut self, stripe: StripeId) -> bool {
        if self.stripes[stripe].unrecoverable {
            return false;
        }
        self.stripes[stripe].unrecoverable = true;
        let s = &self.stripes[stripe];
        let (start, len) = (s.pos_start, s.pos_len);
        for i in start..start + len {
            if let Position::Real(b) = self.position_arena[i] {
                if self.blocks[b].location.is_none() {
                    self.unmark_lost(b);
                }
            }
        }
        true
    }

    /// The stripe positions (codec indices) of `stripe` that are real and
    /// currently unavailable.
    pub fn unavailable_positions(&self, stripe: StripeId) -> Vec<usize> {
        let mut out = Vec::new();
        self.unavailable_positions_into(stripe, &mut out);
        out
    }

    /// Like [`Hdfs::unavailable_positions`], but appends into a
    /// caller-reused buffer (cleared first) — the allocation-free variant
    /// for per-event scan loops.
    pub fn unavailable_positions_into(&self, stripe: StripeId, out: &mut Vec<usize>) {
        out.clear();
        for (pos, p) in self.positions(stripe).iter().enumerate() {
            if let Position::Real(b) = p {
                if self.blocks[*b].location.is_none() {
                    out.push(pos);
                }
            }
        }
    }

    /// Nodes currently hosting blocks of `stripe` (for placement
    /// exclusion: never two blocks of a stripe on one node).
    pub fn stripe_nodes(&self, stripe: StripeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.stripe_nodes_into(stripe, &mut out);
        out
    }

    /// Allocation-free variant of [`Hdfs::stripe_nodes`] (buffer is
    /// cleared first; duplicates are not added).
    pub fn stripe_nodes_into(&self, stripe: StripeId, out: &mut Vec<NodeId>) {
        out.clear();
        let s = &self.stripes[stripe];
        for p in &self.position_arena[s.pos_start..s.pos_start + s.pos_len] {
            if let Position::Real(b) = p {
                if let Some(node) = self.blocks[*b].location {
                    if !out.contains(&node) {
                        out.push(node);
                    }
                }
            }
        }
    }
}

/// Block placement: random distinct nodes, rack-aware when possible
/// (Hadoop's default policy "randomly places blocks at DataNodes,
/// avoiding collocating blocks of the same stripe", §3.1.1).
///
/// On clusters larger than [`Placement::EXACT_THRESHOLD`] nodes,
/// candidates are drawn by rejection sampling (O(stripe width) per
/// stripe) instead of shuffling the full node list (O(cluster)); the
/// greedy rack-spreading step then runs over the sampled pool. Small
/// clusters keep the exact full-scan policy, which the §5 testbed
/// experiments rely on for tight spreading guarantees.
#[derive(Debug, Clone)]
pub struct Placement {
    rack_of: Vec<usize>,
    racks: usize,
}

impl Placement {
    /// Cluster size up to which placement scans all candidates exactly.
    pub const EXACT_THRESHOLD: usize = 256;

    /// Rejection-sampling attempts per needed candidate before falling
    /// back to the exact scan (covers adversarially-full clusters).
    const REJECTION_TRIES: usize = 32;

    /// Assigns `nodes` round-robin over `racks`.
    pub fn new(nodes: usize, racks: usize) -> Self {
        assert!(racks >= 1, "need at least one rack");
        Self {
            rack_of: (0..nodes).map(|n| n % racks).collect(),
            racks,
        }
    }

    /// The rack of a node.
    pub fn rack_of(&self, node: NodeId) -> usize {
        self.rack_of[node]
    }

    /// Picks `count` distinct alive nodes avoiding `exclude`, spreading
    /// racks as evenly as the candidate set allows, into `out` (cleared
    /// first). `None` if not enough candidates exist.
    pub fn place_many<R: Rng>(
        &self,
        count: usize,
        alive: &[bool],
        exclude: &[NodeId],
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) -> Option<()> {
        out.clear();
        if count == 0 {
            return Some(());
        }
        let n = self.rack_of.len();
        if n > Self::EXACT_THRESHOLD {
            // Sample a pool of ~4x the needed candidates; rack-greedy
            // selection over the pool approximates the exact spread.
            let pool_target = (4 * count).min(n);
            let mut pool: Vec<NodeId> = Vec::with_capacity(pool_target);
            for _ in 0..Self::REJECTION_TRIES * pool_target {
                if pool.len() >= pool_target {
                    break;
                }
                let c = rng.gen_range(0..n);
                if alive[c] && !exclude.contains(&c) && !pool.contains(&c) {
                    pool.push(c);
                }
            }
            if pool.len() >= count {
                self.rack_greedy(&mut pool, count, out);
                return Some(());
            }
            // Nearly-full cluster: fall through to the exact scan.
        }
        let mut candidates: Vec<NodeId> = (0..n)
            .filter(|&c| alive[c] && !exclude.contains(&c))
            .collect();
        if candidates.len() < count {
            return None;
        }
        candidates.shuffle(rng);
        self.rack_greedy(&mut candidates, count, out);
        Some(())
    }

    /// Greedy rack spreading: repeatedly take a candidate from the
    /// least-used rack among the remaining ones.
    fn rack_greedy(&self, candidates: &mut Vec<NodeId>, count: usize, out: &mut Vec<NodeId>) {
        let mut rack_use = vec![0usize; self.racks];
        for _ in 0..count {
            // The caller provides at least `count` candidates.
            let Some((idx, _)) = candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| rack_use[self.rack_of[c]])
            else {
                debug_assert!(false, "candidates remain");
                break;
            };
            let node = candidates.swap_remove(idx);
            rack_use[self.rack_of[node]] += 1;
            out.push(node);
        }
    }

    /// Picks one node (repair-target placement). Uniform over the
    /// allowed set; O(1) expected on large, mostly-placeable clusters.
    pub fn place_one<R: Rng>(
        &self,
        alive: &[bool],
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Option<NodeId> {
        let n = self.rack_of.len();
        if n > Self::EXACT_THRESHOLD {
            for _ in 0..Self::REJECTION_TRIES {
                let c = rng.gen_range(0..n);
                if alive[c] && !exclude.contains(&c) {
                    return Some(c);
                }
            }
        }
        let mut buf = Vec::with_capacity(1);
        self.place_many(1, alive, exclude, rng, &mut buf)?;
        Some(buf[0])
    }

    /// Like [`Placement::place_many`], but degrades gracefully when the
    /// cluster is smaller than the stripe: candidates are reused
    /// round-robin, collocating as few stripe blocks as possible. This
    /// mirrors HDFS's best-effort spreading — the paper's own workload
    /// experiment ran 16-block stripes on 15-slave clusters. `None` only
    /// when no candidate exists at all.
    pub fn place_best_effort<R: Rng>(
        &self,
        count: usize,
        alive: &[bool],
        exclude: &[NodeId],
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) -> Option<()> {
        // The common large-cluster case never needs the distinct count.
        if self.place_many(count, alive, exclude, rng, out).is_some() {
            return Some(());
        }
        let distinct = (0..self.rack_of.len())
            .filter(|&c| alive[c] && !exclude.contains(&c))
            .count();
        if distinct == 0 {
            return None;
        }
        let mut base = Vec::with_capacity(distinct);
        // `distinct` was counted from the same predicate, so this cannot
        // miss; `?` still propagates cleanly if it somehow does.
        self.place_many(distinct, alive, exclude, rng, &mut base)?;
        out.clear();
        let mut i = 0;
        while out.len() < count {
            out.push(base[i % base.len()]);
            i += 1;
            if i % base.len() == 0 {
                base.shuffle(rng);
            }
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn full_mask(code: CodeSpec) -> impl FnMut(usize, &mut Vec<bool>) {
        move |_real, buf| {
            buf.clear();
            buf.resize(code.total_blocks(), false);
        }
    }

    #[test]
    fn raided_file_creates_full_stripes() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 4);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(1);
        let code = CodeSpec::RS_10_4;
        let f = fs
            .create_raided_file(
                "f1",
                20,
                code,
                64,
                &placement,
                &alive,
                &mut rng,
                full_mask(code),
                |_, _| None,
            )
            .unwrap();
        assert_eq!(fs.files()[f].stripes.len(), 2);
        assert_eq!(fs.block_count(), 28);
        // No two blocks of a stripe share a node.
        for s in fs.stripes() {
            let nodes = fs.stripe_nodes(s.id);
            assert_eq!(nodes.len(), 14);
        }
    }

    #[test]
    fn replicated_file_spreads_replicas() {
        let mut fs = Hdfs::new(10);
        let placement = Placement::new(10, 2);
        let alive = vec![true; 10];
        let mut rng = StdRng::seed_from_u64(2);
        fs.create_replicated_file("r", 4, 3, 64, &placement, &alive, &mut rng)
            .unwrap();
        assert_eq!(fs.block_count(), 12);
        for s in fs.stripes() {
            assert_eq!(fs.stripe_nodes(s.id).len(), 3);
            // 3 replicas over 2 racks: both racks used.
            let racks: HashSet<usize> = fs
                .stripe_nodes(s.id)
                .iter()
                .map(|&n| placement.rack_of(n))
                .collect();
            assert_eq!(racks.len(), 2);
        }
    }

    #[test]
    fn kill_and_restore_round_trip() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 1);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(3);
        let code = CodeSpec::RS_10_4;
        fs.create_raided_file(
            "f",
            10,
            code,
            64,
            &placement,
            &alive,
            &mut rng,
            full_mask(code),
            |_, _| None,
        )
        .unwrap();
        let victim = fs.block(0).location.unwrap();
        let lost = fs.kill_node(victim);
        assert!(!lost.is_empty());
        assert_eq!(fs.lost_blocks().len(), lost.len());
        let stripe = fs.block(lost[0]).stripe;
        assert!(fs
            .unavailable_positions(stripe)
            .contains(&fs.block(lost[0]).pos));
        fs.restore_block(lost[0], victim);
        assert!(!fs.lost_blocks().contains(&lost[0]));
    }

    #[test]
    fn zero_padded_stripes_have_virtual_positions() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 1);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(4);
        let code = CodeSpec::RS_10_4;
        // 3 real data blocks: positions 3..10 virtual, parities real.
        let f = fs
            .create_raided_file(
                "small",
                3,
                code,
                64,
                &placement,
                &alive,
                &mut rng,
                |real, buf| {
                    buf.clear();
                    buf.extend((0..14).map(|p| p < 10 && p >= real));
                },
                |_, _| None,
            )
            .unwrap();
        let s = fs.files()[f].stripes.start;
        let stripe = fs.stripe(s);
        assert_eq!(stripe.real_data, 3);
        let virtuals = fs
            .positions(s)
            .iter()
            .filter(|p| **p == Position::Virtual)
            .count();
        assert_eq!(virtuals, 7);
        assert_eq!(fs.block_count(), 7); // 3 data + 4 parities
    }

    #[test]
    fn placement_fails_when_capacity_exhausted() {
        let placement = Placement::new(5, 1);
        let alive = vec![true; 5];
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        assert!(placement
            .place_many(6, &alive, &[], &mut rng, &mut out)
            .is_none());
        let mut dead = alive;
        dead[0] = false;
        assert!(placement
            .place_many(5, &dead, &[], &mut rng, &mut out)
            .is_none());
    }

    #[test]
    fn drop_block_loses_exactly_one() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 1);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(6);
        let code = CodeSpec::LRC_10_6_5;
        fs.create_raided_file(
            "f",
            10,
            code,
            64,
            &placement,
            &alive,
            &mut rng,
            full_mask(code),
            |_, _| None,
        )
        .unwrap();
        fs.drop_block(5);
        assert_eq!(fs.lost_blocks(), &[5]);
    }

    #[test]
    fn rejection_placement_spreads_large_clusters() {
        // 1000 nodes, 50 racks: the rejection path must give distinct
        // nodes on distinct racks for a 14-wide stripe.
        let placement = Placement::new(1000, 50);
        let alive = vec![true; 1000];
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = Vec::new();
        placement
            .place_many(14, &alive, &[], &mut rng, &mut out)
            .unwrap();
        assert_eq!(out.len(), 14);
        let distinct: HashSet<NodeId> = out.iter().copied().collect();
        assert_eq!(distinct.len(), 14);
        let racks: HashSet<usize> = out.iter().map(|&c| placement.rack_of(c)).collect();
        assert_eq!(racks.len(), 14, "each block on its own rack");
    }

    #[test]
    fn rejection_place_one_respects_exclusions() {
        let placement = Placement::new(1000, 10);
        let mut alive = vec![true; 1000];
        alive[17] = false;
        let exclude = vec![3usize, 4, 5];
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            let c = placement.place_one(&alive, &exclude, &mut rng).unwrap();
            assert!(c != 17 && !exclude.contains(&c));
        }
    }

    #[test]
    fn mark_unrecoverable_withdraws_lost_blocks_once() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 1);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(9);
        let code = CodeSpec::RS_10_4;
        fs.create_raided_file(
            "f",
            10,
            code,
            64,
            &placement,
            &alive,
            &mut rng,
            full_mask(code),
            |_, _| None,
        )
        .unwrap();
        fs.drop_block(0);
        fs.drop_block(1);
        assert_eq!(fs.lost_blocks().len(), 2);
        let stripe = fs.block(0).stripe;
        assert!(fs.mark_unrecoverable(stripe));
        assert!(!fs.mark_unrecoverable(stripe), "counted once");
        assert!(fs.lost_blocks().is_empty(), "withdrawn from the index");
        // Later losses on an abandoned stripe never enter the index.
        fs.drop_block(2);
        assert!(fs.lost_blocks().is_empty());
        assert!(fs.block(0).location.is_none(), "still lost");
    }
}
