//! The simulated DRFS namespace: files, stripes, blocks, placement.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use xorbas_core::CodeSpec;

/// Identifies a worker node.
pub type NodeId = usize;
/// Identifies a stored block.
pub type BlockId = usize;
/// Identifies a file.
pub type FileId = usize;
/// Identifies a stripe.
pub type StripeId = usize;

/// Role of a stored block within its stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A systematic data block (or a replica of one, under replication).
    Data,
    /// A Reed-Solomon global parity.
    GlobalParity,
    /// A local XOR parity.
    LocalParity,
}

/// One stripe position: either a stored block or a structurally-zero
/// position of a zero-padded stripe ("incomplete stripes are considered
/// as zero-padded full-stripes", §3.1.1). Virtual positions cost nothing
/// to read and never need repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    /// A materialized block.
    Real(BlockId),
    /// Structurally zero content; not stored.
    Virtual,
}

/// A stored block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Identifier.
    pub id: BlockId,
    /// Owning file.
    pub file: FileId,
    /// Owning stripe.
    pub stripe: StripeId,
    /// Stripe position (codec index; for replication, the replica index).
    pub pos: usize,
    /// Role.
    pub kind: BlockKind,
    /// Size in bytes.
    pub bytes: u64,
    /// Hosting node; `None` while lost.
    pub location: Option<NodeId>,
    /// Verify-mode payload (original content; repairs must reproduce it).
    pub payload: Option<Vec<u8>>,
}

/// A stripe: a codec stripe, or a replica set under replication.
#[derive(Debug, Clone)]
pub struct StripeMeta {
    /// Identifier.
    pub id: StripeId,
    /// Owning file.
    pub file: FileId,
    /// Redundancy scheme.
    pub code: CodeSpec,
    /// Stripe positions in codec order (for replication: the replicas).
    pub positions: Vec<Position>,
    /// Number of real (non-padded) data blocks in this stripe.
    pub real_data: usize,
}

/// A file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Identifier.
    pub id: FileId,
    /// Human-readable name.
    pub name: String,
    /// Logical data blocks.
    pub data_blocks: usize,
    /// Stripes, in order.
    pub stripes: Vec<StripeId>,
}

/// The namespace plus block→node inventory.
#[derive(Debug, Clone)]
pub struct Hdfs {
    files: Vec<FileMeta>,
    stripes: Vec<StripeMeta>,
    blocks: Vec<BlockMeta>,
    node_blocks: Vec<HashSet<BlockId>>,
}

impl Hdfs {
    /// An empty namespace over `nodes` DataNodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            files: Vec::new(),
            stripes: Vec::new(),
            blocks: Vec::new(),
            node_blocks: vec![HashSet::new(); nodes],
        }
    }

    /// All files.
    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// All stripes.
    pub fn stripes(&self) -> &[StripeMeta] {
        &self.stripes
    }

    /// A stripe by id.
    pub fn stripe(&self, id: StripeId) -> &StripeMeta {
        &self.stripes[id]
    }

    /// A block by id.
    pub fn block(&self, id: BlockId) -> &BlockMeta {
        &self.blocks[id]
    }

    /// Mutable block access (payload updates in verify mode).
    pub fn block_mut(&mut self, id: BlockId) -> &mut BlockMeta {
        &mut self.blocks[id]
    }

    /// A block's verify-mode payload as a borrowed slice (`None` outside
    /// verify mode). The zero-copy decode paths read stripes through
    /// this instead of cloning payload vectors.
    pub fn payload(&self, id: BlockId) -> Option<&[u8]> {
        self.blocks[id].payload.as_deref()
    }

    /// Total stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks currently hosted by `node`.
    pub fn blocks_on(&self, node: NodeId) -> &HashSet<BlockId> {
        &self.node_blocks[node]
    }

    /// Registers a new stored block at a location.
    #[allow(clippy::too_many_arguments)] // mirrors the BlockMeta fields
    fn add_block(
        &mut self,
        file: FileId,
        stripe: StripeId,
        pos: usize,
        kind: BlockKind,
        bytes: u64,
        location: NodeId,
        payload: Option<Vec<u8>>,
    ) -> BlockId {
        let id = self.blocks.len();
        self.blocks.push(BlockMeta {
            id,
            file,
            stripe,
            pos,
            kind,
            bytes,
            location: Some(location),
            payload,
        });
        self.node_blocks[location].insert(id);
        id
    }

    /// Creates a fully-RAIDed file: `data_blocks` logical blocks encoded
    /// into stripes of `code`, placed by `placement`. `virtual_mask(s)`
    /// marks structurally-zero positions for a stripe with `s` real data
    /// blocks; `payload(block_pos_in_file, stripe_pos)` supplies
    /// verify-mode content (or `None`).
    #[allow(clippy::too_many_arguments)]
    pub fn create_raided_file<R: Rng>(
        &mut self,
        name: &str,
        data_blocks: usize,
        code: CodeSpec,
        block_bytes: u64,
        placement: &Placement,
        alive: &[bool],
        rng: &mut R,
        mut virtual_mask: impl FnMut(usize) -> Vec<bool>,
        mut payload: impl FnMut(StripeId, usize) -> Option<Vec<u8>>,
    ) -> Option<FileId> {
        let file_id = self.files.len();
        let k = code.data_blocks();
        let n = code.total_blocks();
        let mut stripes = Vec::new();
        let mut remaining = data_blocks;
        while remaining > 0 || stripes.is_empty() {
            let real_data = remaining.min(k);
            remaining -= real_data;
            let stripe_id = self.stripes.len();
            let mask = virtual_mask(real_data);
            assert_eq!(mask.len(), n, "virtual mask must cover the stripe");
            let real_count = mask.iter().filter(|&&v| !v).count();
            let nodes = placement.place_best_effort(real_count, alive, &HashSet::new(), rng)?;
            let mut positions = Vec::with_capacity(n);
            let mut node_iter = nodes.into_iter();
            for (pos, &is_virtual) in mask.iter().enumerate() {
                if is_virtual {
                    positions.push(Position::Virtual);
                    continue;
                }
                let kind = if pos < k {
                    BlockKind::Data
                } else if pos < n {
                    // The codec layout puts global parities right after
                    // data; local parities after that. Replication never
                    // reaches this branch.
                    match code {
                        CodeSpec::Lrc(spec) if pos >= k + spec.global_parities => {
                            BlockKind::LocalParity
                        }
                        _ => BlockKind::GlobalParity,
                    }
                } else {
                    unreachable!()
                };
                let node = node_iter.next().expect("placement count matches");
                let bid = self.add_block(
                    file_id,
                    stripe_id,
                    pos,
                    kind,
                    block_bytes,
                    node,
                    payload(stripe_id, pos),
                );
                positions.push(Position::Real(bid));
            }
            self.stripes.push(StripeMeta {
                id: stripe_id,
                file: file_id,
                code,
                positions,
                real_data,
            });
            stripes.push(stripe_id);
            if remaining == 0 {
                break;
            }
        }
        self.files.push(FileMeta {
            id: file_id,
            name: name.to_string(),
            data_blocks,
            stripes,
        });
        Some(file_id)
    }

    /// Creates an `f`-way replicated file: one stripe per logical block,
    /// holding `f` replicas on distinct nodes.
    #[allow(clippy::too_many_arguments)] // mirrors create_raided_file's shape
    pub fn create_replicated_file<R: Rng>(
        &mut self,
        name: &str,
        data_blocks: usize,
        replicas: usize,
        block_bytes: u64,
        placement: &Placement,
        alive: &[bool],
        rng: &mut R,
    ) -> Option<FileId> {
        let file_id = self.files.len();
        let mut stripes = Vec::new();
        for _ in 0..data_blocks {
            let stripe_id = self.stripes.len();
            let nodes = placement.place_many(replicas, alive, &HashSet::new(), rng)?;
            let positions: Vec<Position> = nodes
                .into_iter()
                .enumerate()
                .map(|(pos, node)| {
                    Position::Real(self.add_block(
                        file_id,
                        stripe_id,
                        pos,
                        BlockKind::Data,
                        block_bytes,
                        node,
                        None,
                    ))
                })
                .collect();
            self.stripes.push(StripeMeta {
                id: stripe_id,
                file: file_id,
                code: CodeSpec::Replication { replicas },
                positions,
                real_data: 1,
            });
            stripes.push(stripe_id);
        }
        self.files.push(FileMeta {
            id: file_id,
            name: name.to_string(),
            data_blocks,
            stripes,
        });
        Some(file_id)
    }

    /// Marks every block on `node` as lost; returns the lost block ids.
    pub fn kill_node(&mut self, node: NodeId) -> Vec<BlockId> {
        let lost: Vec<BlockId> = self.node_blocks[node].drain().collect();
        for &b in &lost {
            self.blocks[b].location = None;
        }
        lost
    }

    /// Drops a single block (Fig.-7-style simulated block loss).
    pub fn drop_block(&mut self, block: BlockId) {
        if let Some(node) = self.blocks[block].location.take() {
            self.node_blocks[node].remove(&block);
        }
    }

    /// Moves a live block to a new node (decommission drain).
    pub fn relocate_block(&mut self, block: BlockId, node: NodeId) {
        let old = self.blocks[block]
            .location
            .expect("relocating a block that is lost");
        self.node_blocks[old].remove(&block);
        self.blocks[block].location = Some(node);
        self.node_blocks[node].insert(block);
    }

    /// Restores a repaired block at `node`.
    pub fn restore_block(&mut self, block: BlockId, node: NodeId) {
        assert!(
            self.blocks[block].location.is_none(),
            "restoring a block that is not lost"
        );
        self.blocks[block].location = Some(node);
        self.node_blocks[node].insert(block);
    }

    /// All currently-lost blocks.
    pub fn lost_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|b| b.location.is_none())
            .map(|b| b.id)
            .collect()
    }

    /// The stripe positions (codec indices) of `stripe` that are real and
    /// currently unavailable.
    pub fn unavailable_positions(&self, stripe: StripeId) -> Vec<usize> {
        let mut out = Vec::new();
        self.unavailable_positions_into(stripe, &mut out);
        out
    }

    /// Like [`Hdfs::unavailable_positions`], but appends into a
    /// caller-reused buffer (cleared first) — the allocation-free variant
    /// for per-event scan loops.
    pub fn unavailable_positions_into(&self, stripe: StripeId, out: &mut Vec<usize>) {
        out.clear();
        for (pos, p) in self.stripes[stripe].positions.iter().enumerate() {
            if let Position::Real(b) = p {
                if self.blocks[*b].location.is_none() {
                    out.push(pos);
                }
            }
        }
    }

    /// Nodes currently hosting blocks of `stripe` (for placement
    /// exclusion: never two blocks of a stripe on one node).
    pub fn stripe_nodes(&self, stripe: StripeId) -> HashSet<NodeId> {
        self.stripes[stripe]
            .positions
            .iter()
            .filter_map(|p| match p {
                Position::Real(b) => self.blocks[*b].location,
                Position::Virtual => None,
            })
            .collect()
    }
}

/// Block placement: random distinct nodes, rack-aware when possible
/// (Hadoop's default policy "randomly places blocks at DataNodes,
/// avoiding collocating blocks of the same stripe", §3.1.1).
#[derive(Debug, Clone)]
pub struct Placement {
    rack_of: Vec<usize>,
}

impl Placement {
    /// Assigns `nodes` round-robin over `racks`.
    pub fn new(nodes: usize, racks: usize) -> Self {
        assert!(racks >= 1, "need at least one rack");
        Self {
            rack_of: (0..nodes).map(|n| n % racks).collect(),
        }
    }

    /// The rack of a node.
    pub fn rack_of(&self, node: NodeId) -> usize {
        self.rack_of[node]
    }

    /// Picks `count` distinct alive nodes avoiding `exclude`, spreading
    /// racks as evenly as the candidate set allows. `None` if not enough
    /// candidates exist.
    pub fn place_many<R: Rng>(
        &self,
        count: usize,
        alive: &[bool],
        exclude: &HashSet<NodeId>,
        rng: &mut R,
    ) -> Option<Vec<NodeId>> {
        let mut candidates: Vec<NodeId> = (0..self.rack_of.len())
            .filter(|&n| alive[n] && !exclude.contains(&n))
            .collect();
        if candidates.len() < count {
            return None;
        }
        candidates.shuffle(rng);
        // Greedy rack spreading: repeatedly take a candidate from the
        // least-used rack among the remaining ones.
        let mut rack_use = vec![0usize; self.rack_of.iter().max().map_or(1, |m| m + 1)];
        let mut chosen = Vec::with_capacity(count);
        for _ in 0..count {
            let (idx, _) = candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &n)| rack_use[self.rack_of[n]])
                .expect("candidates remain");
            let node = candidates.swap_remove(idx);
            rack_use[self.rack_of[node]] += 1;
            chosen.push(node);
        }
        Some(chosen)
    }

    /// Picks one node (repair-target placement).
    pub fn place_one<R: Rng>(
        &self,
        alive: &[bool],
        exclude: &HashSet<NodeId>,
        rng: &mut R,
    ) -> Option<NodeId> {
        self.place_many(1, alive, exclude, rng).map(|v| v[0])
    }

    /// Like [`Placement::place_many`], but degrades gracefully when the
    /// cluster is smaller than the stripe: candidates are reused
    /// round-robin, collocating as few stripe blocks as possible. This
    /// mirrors HDFS's best-effort spreading — the paper's own workload
    /// experiment ran 16-block stripes on 15-slave clusters. `None` only
    /// when no candidate exists at all.
    pub fn place_best_effort<R: Rng>(
        &self,
        count: usize,
        alive: &[bool],
        exclude: &HashSet<NodeId>,
        rng: &mut R,
    ) -> Option<Vec<NodeId>> {
        let distinct = (0..self.rack_of.len())
            .filter(|&n| alive[n] && !exclude.contains(&n))
            .count();
        if distinct == 0 {
            return None;
        }
        if distinct >= count {
            return self.place_many(count, alive, exclude, rng);
        }
        let mut base = self
            .place_many(distinct, alive, exclude, rng)
            .expect("distinct candidates exist");
        let mut out = Vec::with_capacity(count);
        let mut i = 0;
        while out.len() < count {
            out.push(base[i % base.len()]);
            i += 1;
            if i % base.len() == 0 {
                base.shuffle(rng);
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn full_mask(code: CodeSpec) -> impl FnMut(usize) -> Vec<bool> {
        move |_real| vec![false; code.total_blocks()]
    }

    #[test]
    fn raided_file_creates_full_stripes() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 4);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(1);
        let code = CodeSpec::RS_10_4;
        let f = fs
            .create_raided_file(
                "f1",
                20,
                code,
                64,
                &placement,
                &alive,
                &mut rng,
                full_mask(code),
                |_, _| None,
            )
            .unwrap();
        assert_eq!(fs.files()[f].stripes.len(), 2);
        assert_eq!(fs.block_count(), 28);
        // No two blocks of a stripe share a node.
        for s in fs.stripes() {
            let nodes = fs.stripe_nodes(s.id);
            assert_eq!(nodes.len(), 14);
        }
    }

    #[test]
    fn replicated_file_spreads_replicas() {
        let mut fs = Hdfs::new(10);
        let placement = Placement::new(10, 2);
        let alive = vec![true; 10];
        let mut rng = StdRng::seed_from_u64(2);
        fs.create_replicated_file("r", 4, 3, 64, &placement, &alive, &mut rng)
            .unwrap();
        assert_eq!(fs.block_count(), 12);
        for s in fs.stripes() {
            assert_eq!(fs.stripe_nodes(s.id).len(), 3);
            // 3 replicas over 2 racks: both racks used.
            let racks: HashSet<usize> = fs
                .stripe_nodes(s.id)
                .iter()
                .map(|&n| placement.rack_of(n))
                .collect();
            assert_eq!(racks.len(), 2);
        }
    }

    #[test]
    fn kill_and_restore_round_trip() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 1);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(3);
        let code = CodeSpec::RS_10_4;
        fs.create_raided_file(
            "f",
            10,
            code,
            64,
            &placement,
            &alive,
            &mut rng,
            full_mask(code),
            |_, _| None,
        )
        .unwrap();
        let victim = fs.block(0).location.unwrap();
        let lost = fs.kill_node(victim);
        assert!(!lost.is_empty());
        assert_eq!(fs.lost_blocks().len(), lost.len());
        let stripe = fs.block(lost[0]).stripe;
        assert!(fs
            .unavailable_positions(stripe)
            .contains(&fs.block(lost[0]).pos));
        fs.restore_block(lost[0], victim);
        assert!(!fs.lost_blocks().contains(&lost[0]));
    }

    #[test]
    fn zero_padded_stripes_have_virtual_positions() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 1);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(4);
        let code = CodeSpec::RS_10_4;
        // 3 real data blocks: positions 3..10 virtual, parities real.
        let f = fs
            .create_raided_file(
                "small",
                3,
                code,
                64,
                &placement,
                &alive,
                &mut rng,
                |real| (0..14).map(|p| p < 10 && p >= real).collect(),
                |_, _| None,
            )
            .unwrap();
        let s = fs.files()[f].stripes[0];
        let stripe = fs.stripe(s);
        assert_eq!(stripe.real_data, 3);
        let virtuals = stripe
            .positions
            .iter()
            .filter(|p| **p == Position::Virtual)
            .count();
        assert_eq!(virtuals, 7);
        assert_eq!(fs.block_count(), 7); // 3 data + 4 parities
    }

    #[test]
    fn placement_fails_when_capacity_exhausted() {
        let placement = Placement::new(5, 1);
        let alive = vec![true; 5];
        let mut rng = StdRng::seed_from_u64(5);
        assert!(placement
            .place_many(6, &alive, &HashSet::new(), &mut rng)
            .is_none());
        let mut dead = alive;
        dead[0] = false;
        assert!(placement
            .place_many(5, &dead, &HashSet::new(), &mut rng)
            .is_none());
    }

    #[test]
    fn drop_block_loses_exactly_one() {
        let mut fs = Hdfs::new(20);
        let placement = Placement::new(20, 1);
        let alive = vec![true; 20];
        let mut rng = StdRng::seed_from_u64(6);
        let code = CodeSpec::LRC_10_6_5;
        fs.create_raided_file(
            "f",
            10,
            code,
            64,
            &placement,
            &alive,
            &mut rng,
            full_mask(code),
            |_, _| None,
        )
        .unwrap();
        fs.drop_block(5);
        assert_eq!(fs.lost_blocks(), vec![5]);
    }
}
