//! Simulation clock: microsecond-resolution virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// From fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// From fractional seconds, rounding *up* to the next microsecond.
    ///
    /// Event loops must use this for completion deadlines: rounding down
    /// would schedule a wake-up an instant before the completion,
    /// advancing the clock by zero and spinning forever.
    pub fn from_secs_f64_ceil(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).ceil() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturates at zero (with a debug assertion): simulated time is
    /// monotonic, so a backwards difference is a caller bug, but a
    /// zero-length interval is always safe to hand onward.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let (h, m, s) = (total_secs / 3600, (total_secs / 60) % 60, total_secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(90).as_secs_f64(), 90.0);
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_secs_f64(1.5).0, 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(a + b, SimTime::from_secs(14));
        assert_eq!(a - b, SimTime::from_secs(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_is_hms() {
        assert_eq!(SimTime::from_secs(3723).to_string(), "01:02:03");
    }
}
