//! Discrete-event HDFS-RAID cluster simulator (§3 and §5 of
//! "XORing Elephants").
//!
//! This crate stands in for the paper's Amazon EC2 and Facebook test
//! clusters: a flow-level network with max-min fair sharing behind a
//! saturable top-level switch, an HDFS namespace with stripe-aware block
//! placement, a BlockFixer driving light/heavy repair MapReduce jobs
//! planned by the *real* codecs from `xorbas-core`, a fair scheduler,
//! WordCount-style workloads with degraded reads, failure injection, and
//! the §5.1 metrics (HDFS bytes read, network traffic, repair duration,
//! plus 5-minute time series).
//!
//! See `experiment` for canned §5 scenario builders, and DESIGN.md for
//! the substitution argument (what the real clusters provided → what the
//! simulator reproduces → why the measured shapes carry over).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod codecs;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod failures;
pub mod hdfs;
pub mod metrics;
pub mod network;
pub mod time;

pub use arena::StripeArena;
pub use codecs::CodecInstance;
pub use config::{ClusterConfig, ComputeRates, ReadPolicy, SimConfig};
pub use engine::Simulation;
pub use hdfs::{BlockId, FileId, Hdfs, NodeId, Placement, StripeId};
pub use metrics::Metrics;
pub use time::SimTime;
