//! Discrete-event HDFS-RAID cluster simulator (§3 and §5 of
//! "XORing Elephants").
//!
//! This crate stands in for the paper's evaluation clusters — the §5.2
//! Amazon EC2 testbed, the §5.3 Facebook test cluster, and the §1/Fig.-1
//! 3000-node warehouse the paper's motivation is drawn from: a
//! flow-level network with max-min fair sharing behind a saturable
//! switch, an HDFS namespace with stripe-aware block placement, a
//! BlockFixer driving light/heavy repair MapReduce jobs planned by the
//! *real* codecs from [`xorbas_core`], a fair scheduler, WordCount-style
//! workloads with degraded reads, failure injection and node
//! replacement, and the §5.1 metrics (HDFS bytes read, network traffic,
//! repair duration, plus bounded 5-minute time series).
//!
//! # Module map (paper section → module)
//!
//! | Paper | Module | What it reproduces |
//! |---|---|---|
//! | §3 system model | [`engine`] | BlockFixer, fair scheduler, degraded reads, decommissioning |
//! | §3.1.1 placement | [`hdfs`] | namespace, stripe-aware random placement, zero padding |
//! | §5.2.3 network effects | [`network`] | max-min fair flows behind a saturable core |
//! | §5.1 metrics | [`metrics`] | bytes read / network traffic / repair duration, Fig.-5 series |
//! | §5.2–5.3 experiments | [`experiment`] | Figs. 4–7, Table 2/3 drivers, warehouse Monte-Carlo |
//! | Fig. 1 failure trace | [`failures`] | overdispersed node-failure process |
//! | §2.1 / §3.1.2 codecs | [`codecs`] | bridge to `xorbas_core` repair planning |
//! | §5.2.4 degraded reads | [`workload`] | Zipf/hot-spot client reads, serve policies, Rashmi et al. pin |
//! | — | [`config`] | cluster presets incl. the 3000-node [`config::ClusterScale`] |
//! | — | [`time`], [`arena`], [`fasthash`] | µs clock, lane reuse, hot-map hashing |
//!
//! # Scale
//!
//! The engine is sized for the warehouse the paper describes (3000
//! nodes, 30 PB, years of simulated time): arena-indexed namespace
//! metadata, slab inventories with O(1) membership, an incremental
//! lost-block index, a slab-indexed event queue, lazy sparse network
//! rate recomputation, and bounded self-coarsening metric series. See
//! the module docs of [`hdfs`], [`engine`], [`network`] and [`metrics`]
//! for the specific structures, and `benches/sim_scale.rs` in
//! `xorbas_bench` for measured events/sec.
//!
//! See [`experiment`] for canned §5 scenario builders, and the
//! repository's `docs/ARCHITECTURE.md` for the cross-crate tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod codecs;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod failures;
pub mod fasthash;
pub mod hdfs;
pub mod metrics;
pub mod network;
pub mod time;
pub mod workload;

pub use arena::StripeArena;
pub use codecs::CodecInstance;
pub use config::{ClusterConfig, ClusterScale, ComputeRates, ReadPolicy, SimConfig};
pub use engine::Simulation;
pub use experiment::{
    code_comparison_table, compare_codes, compare_repair_traffic, monte_carlo, run_scale_scenario,
    single_data_loss_cost, three_way_table, CodeComparisonRow, ConfidenceInterval,
    MonteCarloReport, ScaleScenario, ScenarioRun,
};
pub use hdfs::{BlockId, FileId, Hdfs, NodeId, Placement, StripeId};
pub use metrics::{
    BucketSeries, Metrics, PercentileSummary, Percentiles, ServingStats, ServingSummary,
};
pub use time::SimTime;
pub use workload::{
    ServePolicy, WorkloadConfig, ZipfSampler, RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION,
};
