//! Canned §5 scenario builders: the EC2 failure-event experiments
//! (Figs. 4–6), the Facebook test-cluster experiment (Table 3), and the
//! repair-under-workload experiment (Fig. 7 / Table 2).

use xorbas_core::CodeSpec;

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::time::SimTime;

/// Measurements of one failure event (one group of Fig. 4 bars).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEventResult {
    /// DataNodes terminated in this event.
    pub nodes_killed: usize,
    /// Blocks lost by the terminations.
    pub blocks_lost: usize,
    /// HDFS bytes read by the repair jobs, GB.
    pub hdfs_gb_read: f64,
    /// Network traffic generated, GB.
    pub network_gb: f64,
    /// Repair duration: first repair-job launch to last completion, min.
    pub repair_minutes: f64,
}

/// A full EC2 experiment run (one cluster, one scheme, one file count).
#[derive(Debug, Clone, PartialEq)]
pub struct Ec2ExperimentResult {
    /// Scheme name ("RS (10, 4)" / "LRC (10, 6, 5)").
    pub scheme: String,
    /// Number of 640 MB files loaded.
    pub files: usize,
    /// Per-event measurements, in the §5.2 order (4 single-node,
    /// 2 triple-node, 2 double-node terminations).
    pub events: Vec<FailureEventResult>,
    /// Network traffic per 5-minute bucket, GB (Fig. 5a).
    pub network_series_gb: Vec<f64>,
    /// Disk bytes read per 5-minute bucket, GB (Fig. 5b).
    pub disk_series_gb: Vec<f64>,
    /// Mean CPU utilization per bucket, 0..1 (Fig. 5c).
    pub cpu_series: Vec<f64>,
}

impl Ec2ExperimentResult {
    /// `(blocks_lost, hdfs_gb, network_gb, minutes)` tuples for Fig. 6
    /// scatter plots.
    pub fn scatter_points(&self) -> Vec<(usize, f64, f64, f64)> {
        self.events
            .iter()
            .map(|e| {
                (
                    e.blocks_lost,
                    e.hdfs_gb_read,
                    e.network_gb,
                    e.repair_minutes,
                )
            })
            .collect()
    }
}

/// The §5.2 failure pattern: "the first four failure events consisted of
/// single DataNodes terminations, the next two were terminations of
/// triplets of DataNodes and finally two terminations of pairs".
pub const EC2_FAILURE_PATTERN: [usize; 8] = [1, 1, 1, 1, 3, 3, 2, 2];

/// Pause between failure events (the paper provided "sufficient time
/// ... to complete the repair process" between events).
const EVENT_PAUSE: SimTime = SimTime::from_mins(10);

/// Hard wall for any single experiment phase.
const PHASE_LIMIT: SimTime = SimTime::from_mins(100_000);

/// Runs one §5.2 EC2 experiment: `files` 640 MB files (10 × 64 MB blocks
/// each → exactly one stripe per file), the eight-event failure
/// schedule, quiescing between events.
pub fn ec2_experiment(code: CodeSpec, files: usize, seed: u64) -> Ec2ExperimentResult {
    let mut cfg = SimConfig::ec2(code);
    cfg.seed = seed;
    let mut sim = Simulation::new(cfg);
    for i in 0..files {
        // 640 MB / 64 MB = 10 data blocks = one stripe (§5.2: "each file
        // yields a single stripe").
        sim.load_raided_file(&format!("file-{i}"), 10);
    }
    let mut events = Vec::with_capacity(EC2_FAILURE_PATTERN.len());
    for &kills in &EC2_FAILURE_PATTERN {
        let before = sim.metrics.snapshot();
        let jobs_mark = sim.metrics.repair_jobs.len();
        let victims = sim.pick_victims(kills);
        assert_eq!(victims.len(), kills, "not enough alive nodes");
        let blocks_lost: usize = victims.iter().map(|&v| sim.hdfs.blocks_on(v).len()).sum();
        let at = sim.clock + EVENT_PAUSE;
        for v in victims {
            sim.kill_node_at(at, v);
        }
        sim.run_until_idle(sim.clock + PHASE_LIMIT);
        let after = sim.metrics.snapshot();
        let repair_minutes = sim
            .metrics
            .repair_span_since(jobs_mark)
            .map(|(s, e)| (e.saturating_sub(s)).as_mins_f64())
            .unwrap_or(0.0);
        events.push(FailureEventResult {
            nodes_killed: kills,
            blocks_lost,
            hdfs_gb_read: (after.hdfs_bytes_read - before.hdfs_bytes_read) / 1e9,
            network_gb: (after.network_bytes - before.network_bytes) / 1e9,
            repair_minutes,
        });
    }
    let slots = sim.config().cluster.map_slots_per_node * sim.alive_nodes();
    Ec2ExperimentResult {
        scheme: code.name(),
        files,
        events,
        network_series_gb: sim.metrics.network_series.iter().map(|b| b / 1e9).collect(),
        disk_series_gb: sim.metrics.disk_series.iter().map(|b| b / 1e9).collect(),
        cpu_series: sim.metrics.cpu_utilization(slots.max(1)),
    }
}

/// Table-3 measurements for one scheme on the Facebook test cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct FacebookResult {
    /// Scheme name.
    pub scheme: String,
    /// Stored blocks before the failure.
    pub stored_blocks: usize,
    /// Blocks lost by the node termination.
    pub blocks_lost: usize,
    /// Total HDFS GB read by the repairs.
    pub gb_read: f64,
    /// GB read per lost block.
    pub gb_per_lost_block: f64,
    /// Repair duration in minutes.
    pub repair_minutes: f64,
}

/// Runs the §5.3 experiment: 3262 files (~94% of 3 blocks, the rest 10),
/// 256 MB blocks, one average-loaded DataNode terminated.
///
/// `pad_local_parities` is enabled to mirror the deployed HDFS-Xorbas,
/// which stored local parities even for all-padding groups — the cause
/// of the 27% (instead of 13%) storage overhead the paper reports.
pub fn facebook_experiment(code: CodeSpec, seed: u64) -> FacebookResult {
    let mut cfg = SimConfig::facebook(code);
    cfg.seed = seed;
    cfg.pad_local_parities = true;
    let mut sim = Simulation::new(cfg);
    // 94% of 3262 files have 3 blocks; the rest 10 (avg ≈ 3.4, §5.3).
    for i in 0..3262 {
        let blocks = if i % 50 < 47 { 3 } else { 10 };
        sim.load_raided_file(&format!("fb-{i}"), blocks);
    }
    let stored_blocks = sim.hdfs.block_count();
    let victim = sim.pick_victims(1)[0];
    let blocks_lost = sim.hdfs.blocks_on(victim).len();
    let jobs_mark = sim.metrics.repair_jobs.len();
    sim.kill_node_at(sim.clock + SimTime::from_secs(60), victim);
    sim.run_until_idle(PHASE_LIMIT);
    let snap = sim.metrics.snapshot();
    let repair_minutes = sim
        .metrics
        .repair_span_since(jobs_mark)
        .map(|(s, e)| (e.saturating_sub(s)).as_mins_f64())
        .unwrap_or(0.0);
    FacebookResult {
        scheme: code.name(),
        stored_blocks,
        blocks_lost,
        gb_read: snap.hdfs_bytes_read / 1e9,
        gb_per_lost_block: snap.hdfs_bytes_read / 1e9 / blocks_lost.max(1) as f64,
        repair_minutes,
    }
}

/// Fig.-7 / Table-2 measurements for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Scheme name.
    pub scheme: String,
    /// Fraction of data blocks dropped before the jobs ran.
    pub missing_fraction: f64,
    /// Completion time of each of the 10 jobs, minutes, in submission
    /// order.
    pub job_minutes: Vec<f64>,
    /// Mean job completion time, minutes (Table 2 row 2).
    pub avg_job_minutes: f64,
    /// Total HDFS bytes read, GB (Table 2 row 1).
    pub total_gb_read: f64,
}

/// Runs the §5.2.4 repair-under-workload experiment: 15 slaves, five
/// 3 GB files, ten WordCount jobs under the fair scheduler, with
/// `missing_fraction` of the data blocks simulated as lost (degraded
/// reads reconstruct them in memory; nothing is written back).
pub fn workload_experiment(code: CodeSpec, missing_fraction: f64, seed: u64) -> WorkloadResult {
    assert!((0.0..1.0).contains(&missing_fraction), "fraction in [0,1)");
    let mut cfg = SimConfig::ec2(code);
    cfg.cluster.nodes = 15;
    // The workload clusters were the most contended in the paper (15
    // m1.smalls, every slot busy); degraded-read streams crawl.
    cfg.cluster.nic_bps = 50e6;
    cfg.cluster.core_bps = 500e6;
    cfg.seed = seed;
    let mut sim = Simulation::new(cfg);
    let blocks_per_file = (3u64 << 30) / sim.config().cluster.block_bytes; // 3 GB
    let files: Vec<_> = (0..5)
        .map(|i| sim.load_raided_file(&format!("text-{i}"), blocks_per_file as usize))
        .collect();
    if missing_fraction > 0.0 {
        // Drop a deterministic, evenly-spread subset of data blocks.
        let data_blocks: Vec<_> = (0..sim.hdfs.block_count())
            .filter(|&b| sim.hdfs.block(b).pos < code.data_blocks())
            .collect();
        let step = (1.0 / missing_fraction).round() as usize;
        let victims: Vec<_> = data_blocks
            .iter()
            .copied()
            .enumerate()
            .filter_map(|(i, b)| (i % step == 0).then_some(b))
            .collect();
        sim.drop_blocks_at(SimTime::ZERO, victims);
    }
    // Ten jobs, two per file, submitted back to back.
    for j in 0..10 {
        sim.submit_wordcount_at(SimTime::from_secs(1 + j as u64), files[j % files.len()]);
    }
    sim.run_until_idle(PHASE_LIMIT);
    let job_minutes: Vec<f64> = sim
        .metrics
        .workload_jobs
        .iter()
        .map(|j| j.duration().as_mins_f64())
        .collect();
    assert_eq!(job_minutes.len(), 10, "all ten jobs must finish");
    let avg = job_minutes.iter().sum::<f64>() / job_minutes.len() as f64;
    WorkloadResult {
        scheme: code.name(),
        missing_fraction,
        job_minutes,
        avg_job_minutes: avg,
        total_gb_read: sim.metrics.snapshot().hdfs_bytes_read / 1e9,
    }
}

/// Verifies the stripe-placement invariant: no node carries more blocks
/// of one stripe than best-effort spreading allows — `⌈n / cluster⌉`
/// from initial placement, plus one block of slack for repair-target
/// fallback on nearly-full clusters.
pub fn placement_invariant_holds(sim: &Simulation) -> bool {
    let cluster = sim.config().cluster.nodes.max(1);
    sim.hdfs.stripes().iter().all(|s| {
        let mut per_node: std::collections::HashMap<usize, usize> = Default::default();
        for p in &s.positions {
            if let crate::hdfs::Position::Real(b) = p {
                if let Some(node) = sim.hdfs.block(*b).location {
                    *per_node.entry(node).or_default() += 1;
                }
            }
        }
        let cap = s.positions.len().div_ceil(cluster) + 1;
        per_node.values().all(|&c| c <= cap)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down EC2 run (fewer files) exercising the full driver.
    #[test]
    fn mini_ec2_experiment_produces_eight_events() {
        let res = ec2_experiment(CodeSpec::LRC_10_6_5, 12, 7);
        assert_eq!(res.events.len(), 8);
        assert_eq!(res.scheme, "LRC (10, 6, 5)");
        for e in &res.events {
            assert!(e.blocks_lost > 0);
            assert!(e.hdfs_gb_read > 0.0);
            assert!(e.network_gb > 0.0);
            assert!(e.repair_minutes > 0.0);
        }
        // Multi-node events lose more blocks than single-node ones.
        let single_avg: f64 = res.events[..4]
            .iter()
            .map(|e| e.blocks_lost as f64)
            .sum::<f64>()
            / 4.0;
        let triple_avg: f64 = res.events[4..6]
            .iter()
            .map(|e| e.blocks_lost as f64)
            .sum::<f64>()
            / 2.0;
        assert!(triple_avg > 1.5 * single_avg);
    }

    #[test]
    fn mini_ec2_lrc_reads_less_than_rs() {
        let rs = ec2_experiment(CodeSpec::RS_10_4, 12, 11);
        let lrc = ec2_experiment(CodeSpec::LRC_10_6_5, 12, 11);
        let rs_total: f64 = rs.events.iter().map(|e| e.hdfs_gb_read).sum();
        let lrc_total: f64 = lrc.events.iter().map(|e| e.hdfs_gb_read).sum();
        // Normalize per lost block: Xorbas loses ~14% more blocks at
        // equal node counts (§5.2).
        let rs_lost: usize = rs.events.iter().map(|e| e.blocks_lost).sum();
        let lrc_lost: usize = lrc.events.iter().map(|e| e.blocks_lost).sum();
        let ratio = (lrc_total / lrc_lost as f64) / (rs_total / rs_lost as f64);
        assert!(ratio < 0.65, "per-lost-block read ratio {ratio}");
    }

    #[test]
    fn workload_experiment_missing_blocks_slow_jobs() {
        let healthy = workload_experiment(CodeSpec::LRC_10_6_5, 0.0, 3);
        let degraded = workload_experiment(CodeSpec::LRC_10_6_5, 0.2, 3);
        assert!(degraded.avg_job_minutes > healthy.avg_job_minutes);
        assert!(degraded.total_gb_read > healthy.total_gb_read);
    }
}
