//! Canned §5 scenario builders: the EC2 failure-event experiments
//! (Figs. 4–6), the Facebook test-cluster experiment (Table 3), the
//! repair-under-workload experiment (Fig. 7 / Table 2), and the
//! warehouse-scale Monte-Carlo driver ([`monte_carlo`]) that replays the
//! Fig.-1 failure process against a [`ClusterScale`] fleet across seeds
//! and reports confidence intervals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xorbas_core::{CodeError, CodeSpec};

use crate::codecs::CodecInstance;
use crate::config::{ClusterScale, ReadPolicy, SimConfig};
use crate::engine::Simulation;
use crate::failures::{sample_day_failures, TraceConfig};
use crate::metrics::ServingSummary;
use crate::time::SimTime;
use crate::workload::WorkloadConfig;

/// Measurements of one failure event (one group of Fig. 4 bars).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEventResult {
    /// DataNodes terminated in this event.
    pub nodes_killed: usize,
    /// Blocks lost by the terminations.
    pub blocks_lost: usize,
    /// HDFS bytes read by the repair jobs, GB.
    pub hdfs_gb_read: f64,
    /// Network traffic generated, GB.
    pub network_gb: f64,
    /// Repair duration: first repair-job launch to last completion, min.
    pub repair_minutes: f64,
}

/// A full EC2 experiment run (one cluster, one scheme, one file count).
#[derive(Debug, Clone, PartialEq)]
pub struct Ec2ExperimentResult {
    /// Scheme name ("RS (10, 4)" / "LRC (10, 6, 5)").
    pub scheme: String,
    /// Number of 640 MB files loaded.
    pub files: usize,
    /// Per-event measurements, in the §5.2 order (4 single-node,
    /// 2 triple-node, 2 double-node terminations).
    pub events: Vec<FailureEventResult>,
    /// Network traffic per 5-minute bucket, GB (Fig. 5a).
    pub network_series_gb: Vec<f64>,
    /// Disk bytes read per 5-minute bucket, GB (Fig. 5b).
    pub disk_series_gb: Vec<f64>,
    /// Mean CPU utilization per bucket, 0..1 (Fig. 5c).
    pub cpu_series: Vec<f64>,
}

impl Ec2ExperimentResult {
    /// `(blocks_lost, hdfs_gb, network_gb, minutes)` tuples for Fig. 6
    /// scatter plots.
    pub fn scatter_points(&self) -> Vec<(usize, f64, f64, f64)> {
        self.events
            .iter()
            .map(|e| {
                (
                    e.blocks_lost,
                    e.hdfs_gb_read,
                    e.network_gb,
                    e.repair_minutes,
                )
            })
            .collect()
    }
}

/// The §5.2 failure pattern: "the first four failure events consisted of
/// single DataNodes terminations, the next two were terminations of
/// triplets of DataNodes and finally two terminations of pairs".
pub const EC2_FAILURE_PATTERN: [usize; 8] = [1, 1, 1, 1, 3, 3, 2, 2];

/// Pause between failure events (the paper provided "sufficient time
/// ... to complete the repair process" between events).
const EVENT_PAUSE: SimTime = SimTime::from_mins(10);

/// Hard wall for any single experiment phase.
const PHASE_LIMIT: SimTime = SimTime::from_mins(100_000);

/// Runs one §5.2 EC2 experiment: `files` 640 MB files (10 × 64 MB blocks
/// each → exactly one stripe per file), the eight-event failure
/// schedule, quiescing between events.
pub fn ec2_experiment(code: CodeSpec, files: usize, seed: u64) -> Ec2ExperimentResult {
    let mut cfg = SimConfig::ec2(code);
    cfg.seed = seed;
    let mut sim = Simulation::new(cfg);
    for i in 0..files {
        // 640 MB / 64 MB = 10 data blocks = one stripe (§5.2: "each file
        // yields a single stripe").
        sim.load_raided_file(&format!("file-{i}"), 10);
    }
    let mut events = Vec::with_capacity(EC2_FAILURE_PATTERN.len());
    for &kills in &EC2_FAILURE_PATTERN {
        let before = sim.metrics.snapshot();
        let jobs_mark = sim.metrics.repair_jobs.len();
        let victims = sim.pick_victims(kills);
        assert_eq!(victims.len(), kills, "not enough alive nodes");
        let blocks_lost: usize = victims.iter().map(|&v| sim.hdfs.blocks_on(v).len()).sum();
        let at = sim.clock + EVENT_PAUSE;
        for v in victims {
            sim.kill_node_at(at, v);
        }
        sim.run_until_idle(sim.clock + PHASE_LIMIT);
        let after = sim.metrics.snapshot();
        let repair_minutes = sim
            .metrics
            .repair_span_since(jobs_mark)
            .map(|(s, e)| (e.saturating_sub(s)).as_mins_f64())
            .unwrap_or(0.0);
        events.push(FailureEventResult {
            nodes_killed: kills,
            blocks_lost,
            hdfs_gb_read: (after.hdfs_bytes_read - before.hdfs_bytes_read) / 1e9,
            network_gb: (after.network_bytes - before.network_bytes) / 1e9,
            repair_minutes,
        });
    }
    let slots = sim.config().cluster.map_slots_per_node * sim.alive_nodes();
    Ec2ExperimentResult {
        scheme: code.name(),
        files,
        events,
        network_series_gb: sim
            .metrics
            .network_series()
            .values()
            .iter()
            .map(|b| b / 1e9)
            .collect(),
        disk_series_gb: sim
            .metrics
            .disk_series()
            .values()
            .iter()
            .map(|b| b / 1e9)
            .collect(),
        cpu_series: sim.metrics.cpu_utilization(slots.max(1)),
    }
}

/// Table-3 measurements for one scheme on the Facebook test cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct FacebookResult {
    /// Scheme name.
    pub scheme: String,
    /// Stored blocks before the failure.
    pub stored_blocks: usize,
    /// Blocks lost by the node termination.
    pub blocks_lost: usize,
    /// Total HDFS GB read by the repairs.
    pub gb_read: f64,
    /// GB read per lost block.
    pub gb_per_lost_block: f64,
    /// Repair duration in minutes.
    pub repair_minutes: f64,
}

/// Runs the §5.3 experiment: 3262 files (~94% of 3 blocks, the rest 10),
/// 256 MB blocks, one average-loaded DataNode terminated.
///
/// `pad_local_parities` is enabled to mirror the deployed HDFS-Xorbas,
/// which stored local parities even for all-padding groups — the cause
/// of the 27% (instead of 13%) storage overhead the paper reports.
pub fn facebook_experiment(code: CodeSpec, seed: u64) -> FacebookResult {
    let mut cfg = SimConfig::facebook(code);
    cfg.seed = seed;
    cfg.pad_local_parities = true;
    let mut sim = Simulation::new(cfg);
    // 94% of 3262 files have 3 blocks; the rest 10 (avg ≈ 3.4, §5.3).
    for i in 0..3262 {
        let blocks = if i % 50 < 47 { 3 } else { 10 };
        sim.load_raided_file(&format!("fb-{i}"), blocks);
    }
    let stored_blocks = sim.hdfs.block_count();
    let victim = sim.pick_victims(1)[0];
    let blocks_lost = sim.hdfs.blocks_on(victim).len();
    let jobs_mark = sim.metrics.repair_jobs.len();
    sim.kill_node_at(sim.clock + SimTime::from_secs(60), victim);
    sim.run_until_idle(PHASE_LIMIT);
    let snap = sim.metrics.snapshot();
    let repair_minutes = sim
        .metrics
        .repair_span_since(jobs_mark)
        .map(|(s, e)| (e.saturating_sub(s)).as_mins_f64())
        .unwrap_or(0.0);
    FacebookResult {
        scheme: code.name(),
        stored_blocks,
        blocks_lost,
        gb_read: snap.hdfs_bytes_read / 1e9,
        gb_per_lost_block: snap.hdfs_bytes_read / 1e9 / blocks_lost.max(1) as f64,
        repair_minutes,
    }
}

/// Fig.-7 / Table-2 measurements for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Scheme name.
    pub scheme: String,
    /// Fraction of data blocks dropped before the jobs ran.
    pub missing_fraction: f64,
    /// Completion time of each of the 10 jobs, minutes, in submission
    /// order.
    pub job_minutes: Vec<f64>,
    /// Mean job completion time, minutes (Table 2 row 2).
    pub avg_job_minutes: f64,
    /// Total HDFS bytes read, GB (Table 2 row 1).
    pub total_gb_read: f64,
}

/// Runs the §5.2.4 repair-under-workload experiment: 15 slaves, five
/// 3 GB files, ten WordCount jobs under the fair scheduler, with
/// `missing_fraction` of the data blocks simulated as lost (degraded
/// reads reconstruct them in memory; nothing is written back).
pub fn workload_experiment(code: CodeSpec, missing_fraction: f64, seed: u64) -> WorkloadResult {
    assert!((0.0..1.0).contains(&missing_fraction), "fraction in [0,1)");
    let mut cfg = SimConfig::ec2(code);
    cfg.cluster.nodes = 15;
    // The workload clusters were the most contended in the paper (15
    // m1.smalls, every slot busy); degraded-read streams crawl.
    cfg.cluster.nic_bps = 50e6;
    cfg.cluster.core_bps = 500e6;
    cfg.seed = seed;
    let mut sim = Simulation::new(cfg);
    let blocks_per_file = (3u64 << 30) / sim.config().cluster.block_bytes; // 3 GB
    let files: Vec<_> = (0..5)
        .map(|i| sim.load_raided_file(&format!("text-{i}"), blocks_per_file as usize))
        .collect();
    if missing_fraction > 0.0 {
        // Drop a deterministic, evenly-spread subset of data blocks.
        let data_blocks: Vec<_> = (0..sim.hdfs.block_count())
            .filter(|&b| sim.hdfs.block(b).pos < code.data_blocks())
            .collect();
        let step = (1.0 / missing_fraction).round() as usize;
        let victims: Vec<_> = data_blocks
            .iter()
            .copied()
            .enumerate()
            .filter_map(|(i, b)| (i % step == 0).then_some(b))
            .collect();
        sim.drop_blocks_at(SimTime::ZERO, victims);
    }
    // Ten jobs, two per file, submitted back to back.
    for j in 0..10 {
        sim.submit_wordcount_at(SimTime::from_secs(1 + j as u64), files[j % files.len()]);
    }
    sim.run_until_idle(PHASE_LIMIT);
    let job_minutes: Vec<f64> = sim
        .metrics
        .workload_jobs
        .iter()
        .map(|j| j.duration().as_mins_f64())
        .collect();
    assert_eq!(job_minutes.len(), 10, "all ten jobs must finish");
    let avg = job_minutes.iter().sum::<f64>() / job_minutes.len() as f64;
    WorkloadResult {
        scheme: code.name(),
        missing_fraction,
        job_minutes,
        avg_job_minutes: avg,
        total_gb_read: sim.metrics.snapshot().hdfs_bytes_read / 1e9,
    }
}

/// Verifies the stripe-placement invariant: no node carries more blocks
/// of one stripe than best-effort spreading allows — `⌈n / cluster⌉`
/// from initial placement, plus one block of slack for repair-target
/// fallback on nearly-full clusters.
pub fn placement_invariant_holds(sim: &Simulation) -> bool {
    let cluster = sim.config().cluster.nodes.max(1);
    sim.hdfs.stripes().iter().all(|s| {
        let positions = sim.hdfs.positions(s.id);
        let mut per_node: std::collections::HashMap<usize, usize> = Default::default();
        for p in positions {
            if let crate::hdfs::Position::Real(b) = p {
                if let Some(node) = sim.hdfs.block(*b).location {
                    *per_node.entry(node).or_default() += 1;
                }
            }
        }
        let cap = positions.len().div_ceil(cluster) + 1;
        per_node.values().all(|&c| c <= cap)
    })
}

// ----- warehouse-scale Monte-Carlo driver ----------------------------

/// A long-horizon failure scenario against a [`ClusterScale`] fleet:
/// the Fig.-1 overdispersed failure process replayed day by day, dead
/// machines replaced after an ops delay, optional periodic WordCount
/// probes measuring degraded-read latency.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleScenario {
    /// The fleet and namespace-size preset.
    pub scale: ClusterScale,
    /// Redundancy scheme under test.
    pub code: CodeSpec,
    /// Simulated days.
    pub days: usize,
    /// Failure process (per-day counts; Fig. 1 statistics by default).
    /// `trace.days` is ignored — `days` above governs the horizon.
    pub trace: TraceConfig,
    /// Delay before a dead machine's replacement joins (empty).
    pub revive_delay: SimTime,
    /// Data blocks of the workload probe file (0 disables probes).
    pub probe_blocks: usize,
    /// Days between probe submissions.
    pub probe_every_days: usize,
    /// Stream-selection policy for repairs. [`ReadPolicy::Deployed`]
    /// mirrors the warehouse's HDFS-RAID BlockFixer (13 streams per
    /// heavy repair); [`ReadPolicy::Minimal`] reads exactly what the
    /// codec needs (10 vs 5 — the paper's headline 2x).
    pub read_policy: ReadPolicy,
    /// Serving-plane client-read workload riding over the failure
    /// schedule (`None` = repair-only, the pre-serving behaviour). The
    /// workload seed is mixed with the scenario seed per run.
    pub workload: Option<WorkloadConfig>,
    /// Fraction of injected failures that are *transient* — the node
    /// returns with its disk ([`Simulation::restore_node_at`]) after
    /// `transient_outage` instead of being replaced empty after
    /// `revive_delay`. The paper's §1 motivation: most warehouse
    /// failures are transient, so most recovery activity is degraded
    /// reads, not reconstructions.
    pub transient_fraction: f64,
    /// Outage length of a transient failure.
    pub transient_outage: SimTime,
}

impl ScaleScenario {
    /// One simulated year on the paper's warehouse fleet: 3000 nodes,
    /// 30 PB stored, ~20 failures/day with bursts, machines replaced
    /// within a day, a small weekly WordCount probe.
    pub fn warehouse_year(code: CodeSpec) -> Self {
        Self {
            scale: ClusterScale::facebook_warehouse(),
            code,
            days: 365,
            trace: TraceConfig::default(),
            revive_delay: SimTime::from_mins(12 * 60),
            probe_blocks: 20,
            probe_every_days: 7,
            read_policy: ReadPolicy::Deployed,
            workload: None,
            transient_fraction: 0.0,
            transient_outage: SimTime::ZERO,
        }
    }

    /// The wide-stripe comparison scenario: the 300-node
    /// [`ClusterScale::wide_stripe_testbed`], one simulated week of node
    /// failures at the warehouse per-node rate (3000 nodes ≈ 20/day →
    /// 300 nodes ≈ 2/day), machines replaced within 12 hours,
    /// [`ReadPolicy::Minimal`] so per-lost-block reads measure the
    /// codec's information-theoretic locality. Drive it through
    /// [`compare_codes`] to pit the paper's (10,6,5) against a wide
    /// layout ([`CodeSpec::LRC_WIDE`], [`CodeSpec::RS_200_60`]): wider
    /// stripes halve the storage overhead (1.3x vs 1.6x) while the LRC's
    /// group structure keeps repair reads bounded by the group, not the
    /// stripe — RS(200, 60) at the same overhead reads 200 blocks per
    /// repair.
    pub fn wide_stripe_mode(code: CodeSpec) -> Self {
        Self {
            scale: ClusterScale::wide_stripe_testbed(),
            code,
            days: 7,
            trace: TraceConfig {
                days: 7,
                base_mean: 2.0,
                burst_prob: 0.0,
                burst_mean: 1.0,
            },
            revive_delay: SimTime::from_mins(12 * 60),
            probe_blocks: 0,
            probe_every_days: 0,
            read_policy: ReadPolicy::Minimal,
            workload: None,
            transient_fraction: 0.0,
            transient_outage: SimTime::ZERO,
        }
    }

    /// A minutes-fast variant for CI: a 60-node slice of the warehouse
    /// (same per-node load, same failure *rate per node*), two simulated
    /// weeks, no probes. Small enough for a multi-seed Monte-Carlo run
    /// in a unit test, large enough that the RS-vs-LRC repair-traffic
    /// ratio is measurable. Uses [`ReadPolicy::Minimal`] so the CI
    /// check pins the paper's information-theoretic 10-vs-5 ratio
    /// rather than the deployed BlockFixer's 13-stream behaviour.
    pub fn fast_mode(code: CodeSpec) -> Self {
        let mut scale = ClusterScale::facebook_warehouse();
        scale.nodes = 60;
        scale.racks = 6;
        // Keep ~72 simulated blocks per node (shrink the namespace with
        // the fleet) at 8x finer granularity, so repair tasks are short
        // relative to failure inter-arrival and abort-restart re-reads
        // stay rare.
        scale.block_scale = 64;
        scale.total_bytes /= 400;
        Self {
            scale,
            code,
            days: 14,
            // Scale the Fig.-1 per-day failure count with fleet size
            // (3000-node median ~20/day -> 60-node ~0.4/day).
            trace: TraceConfig {
                days: 14,
                base_mean: 0.4,
                burst_prob: 0.0,
                burst_mean: 1.0,
            },
            revive_delay: SimTime::from_mins(12 * 60),
            probe_blocks: 0,
            probe_every_days: 0,
            read_policy: ReadPolicy::Minimal,
            workload: None,
            transient_fraction: 0.0,
            transient_outage: SimTime::ZERO,
        }
    }

    /// The serving-plane scenario: the CI-fast 60-node slice under a
    /// week of Zipf client reads, with failures cranked up
    /// (~6/day across 60 nodes) and 90% of them transient 45-minute
    /// outages — the §1 regime where the fleet is nearly always
    /// serving *around* some missing node. Degraded reads carry the
    /// traffic during outages; the measured single-loss recovery
    /// fraction is pinned against Rashmi et al.'s 98.08%
    /// ([`crate::workload::RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION`]).
    pub fn serving_mode(code: CodeSpec) -> Self {
        let mut sc = Self::fast_mode(code);
        sc.days = 7;
        sc.trace = TraceConfig {
            days: 7,
            base_mean: 6.0,
            burst_prob: 0.0,
            burst_mean: 1.0,
        };
        sc.workload = Some(WorkloadConfig::default());
        sc.transient_fraction = 0.9;
        sc.transient_outage = SimTime::from_mins(45);
        sc
    }
}

/// Measurements of one scenario run (one seed).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// Scheme name.
    pub scheme: String,
    /// Node failures injected.
    pub failures_injected: usize,
    /// Simulated blocks lost to those failures.
    pub blocks_lost: u64,
    /// Simulated blocks reconstructed.
    pub blocks_repaired: u64,
    /// HDFS bytes read by repairs and degraded reads.
    pub hdfs_bytes_read: f64,
    /// Bytes crossing the network.
    pub network_bytes: f64,
    /// Repair reads per lost block, in block units (the Fig.-6 slope).
    pub blocks_read_per_lost_block: f64,
    /// Stripes that became unrecoverable (counted once each).
    pub data_loss_stripes: u64,
    /// Mean probe-job completion minutes (`NaN` when probes are off).
    pub probe_job_minutes: f64,
    /// Order statistics over repair-job durations, in minutes (the
    /// p50/p99/p999 tail the serving-plane work reports on the wire).
    pub repair_minutes: crate::metrics::PercentileSummary,
    /// Serving-plane outcomes and latency tails (`None` without a
    /// workload).
    pub serving: Option<ServingSummary>,
    /// Engine events processed (throughput accounting).
    pub events_processed: u64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
}

/// Runs one [`ScaleScenario`] under one seed.
///
/// The driver interleaves decision points with simulation progress via
/// [`Simulation::run_until`]: each day it samples the failure count,
/// kills uniformly-random alive machines at random offsets within the
/// day, and schedules their replacements; probes are submitted on their
/// cadence; after the horizon the run drains to idle.
pub fn run_scale_scenario(sc: &ScaleScenario, seed: u64) -> ScenarioRun {
    let wall_start = std::time::Instant::now();
    let mut cfg = SimConfig::scaled(&sc.scale, sc.code);
    cfg.read_policy = sc.read_policy;
    cfg.seed = seed;
    let mut sim = Simulation::new(cfg);
    let data_blocks = sc.scale.data_blocks_for(sc.code);
    sim.load_raided_file("warehouse", data_blocks);
    let probe = (sc.probe_blocks > 0).then(|| sim.load_raided_file("probe", sc.probe_blocks));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA11_0E55);
    let mut failures_injected = 0usize;
    let mut blocks_lost = 0u64;
    let day = SimTime::from_secs(86_400);
    if let Some(mut wcfg) = sc.workload {
        // Per-run stream: the same scenario under different seeds must
        // draw different arrival/target sequences.
        wcfg.seed = wcfg
            .seed
            .wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        sim.start_workload(SimTime::ZERO, SimTime(day.0 * sc.days as u64), wcfg);
    }
    for d in 0..sc.days {
        let day_start = SimTime(day.0 * d as u64);
        if let Some(f) = probe {
            if sc.probe_every_days > 0 && d % sc.probe_every_days == 0 {
                sim.submit_wordcount_at(day_start + SimTime::from_secs(1), f);
            }
        }
        let kills = sample_day_failures(&sc.trace, &mut rng);
        let mut offsets: Vec<u64> = (0..kills).map(|_| rng.gen_range(0..86_400)).collect();
        offsets.sort_unstable();
        for off in offsets {
            let at = day_start + SimTime::from_secs(off);
            // Run up to the kill instant so the victim draw sees the
            // fleet state of that moment.
            sim.run_until(at);
            let Some(victim) = random_alive_node(&sim, &mut rng) else {
                continue; // the whole fleet is down: nothing to kill
            };
            failures_injected += 1;
            blocks_lost += sim.hdfs.blocks_on(victim).len() as u64;
            sim.kill_node_at(at, victim);
            // The transient draw is gated so scenarios without
            // transients (every pre-serving preset) consume exactly the
            // RNG stream they always did — their pinned results must
            // not move.
            if sc.transient_fraction > 0.0 && rng.gen_bool(sc.transient_fraction) {
                sim.restore_node_at(at + sc.transient_outage, victim);
            } else {
                sim.revive_node_at(at + sc.revive_delay, victim);
            }
        }
    }
    // Drain: let the tail of repairs finish (generously bounded).
    let horizon = SimTime(day.0 * sc.days as u64);
    sim.run_until_idle(horizon + SimTime::from_mins(60 * 24 * 60));
    let snap = sim.metrics.snapshot();
    let block_bytes = sim.config().cluster.block_bytes as f64;
    let probe_job_minutes = if sim.metrics.workload_jobs.is_empty() {
        f64::NAN
    } else {
        sim.metrics
            .workload_jobs
            .iter()
            .map(|j| j.duration().as_mins_f64())
            .sum::<f64>()
            / sim.metrics.workload_jobs.len() as f64
    };
    ScenarioRun {
        scheme: sc.code.name(),
        failures_injected,
        blocks_lost,
        blocks_repaired: snap.blocks_repaired,
        hdfs_bytes_read: snap.hdfs_bytes_read,
        network_bytes: snap.network_bytes,
        blocks_read_per_lost_block: if blocks_lost > 0 {
            snap.hdfs_bytes_read / block_bytes / blocks_lost as f64
        } else {
            0.0
        },
        data_loss_stripes: sim.metrics.data_loss_stripes,
        probe_job_minutes,
        repair_minutes: sim.metrics.repair_minutes_percentiles(),
        serving: sc.workload.map(|_| sim.metrics.serving.summary()),
        events_processed: sim.events_processed(),
        wall_secs: wall_start.elapsed().as_secs_f64(),
    }
}

/// A uniformly-random alive node, or `None` if the fleet is down.
fn random_alive_node<R: Rng>(sim: &Simulation, rng: &mut R) -> Option<usize> {
    let nodes = sim.config().cluster.nodes;
    if sim.alive_nodes() == 0 {
        return None;
    }
    loop {
        let n = rng.gen_range(0..nodes);
        if sim.is_alive(n) {
            return Some(n);
        }
    }
}

/// A mean with a 95% normal-approximation confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// 95% half-width (`1.96 · s/√n`; 0 for a single sample).
    pub half_width: f64,
    /// Sample count.
    pub n: usize,
}

impl ConfidenceInterval {
    /// Computes mean ± half-width over samples (NaNs are dropped).
    pub fn from_samples(samples: &[f64]) -> Self {
        let clean: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        let n = clean.len();
        if n == 0 {
            return Self {
                mean: f64::NAN,
                half_width: f64::NAN,
                n: 0,
            };
        }
        let mean = clean.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                half_width: 0.0,
                n,
            };
        }
        let var = clean.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        Self {
            mean,
            half_width: 1.96 * (var / n as f64).sqrt(),
            n,
        }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={})",
            self.mean, self.half_width, self.n
        )
    }
}

/// Aggregated Monte-Carlo results for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Scheme name.
    pub scheme: String,
    /// Per-seed runs, in seed order.
    pub runs: Vec<ScenarioRun>,
    /// Repair reads per lost block, block units (Fig. 6's slope).
    pub blocks_read_per_lost_block: ConfidenceInterval,
    /// Total repair traffic, GB.
    pub hdfs_gb_read: ConfidenceInterval,
    /// Network traffic, GB.
    pub network_gb: ConfidenceInterval,
    /// Unrecoverable stripes per run.
    pub data_loss_stripes: ConfidenceInterval,
    /// Mean degraded-read probe minutes (empty CI when probes are off).
    pub probe_job_minutes: ConfidenceInterval,
}

/// Runs the scenario across `seeds` and aggregates confidence intervals.
pub fn monte_carlo(sc: &ScaleScenario, seeds: &[u64]) -> MonteCarloReport {
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs: Vec<ScenarioRun> = seeds.iter().map(|&s| run_scale_scenario(sc, s)).collect();
    let collect = |f: fn(&ScenarioRun) -> f64| {
        ConfidenceInterval::from_samples(&runs.iter().map(f).collect::<Vec<_>>())
    };
    MonteCarloReport {
        scheme: sc.code.name(),
        blocks_read_per_lost_block: collect(|r| r.blocks_read_per_lost_block),
        hdfs_gb_read: collect(|r| r.hdfs_bytes_read / 1e9),
        network_gb: collect(|r| r.network_bytes / 1e9),
        data_loss_stripes: collect(|r| r.data_loss_stripes as f64),
        probe_job_minutes: collect(|r| r.probe_job_minutes),
        runs,
    }
}

/// Runs the same scenario template under two redundancy schemes and the
/// same seeds. Returns both reports and the a-over-b ratio of mean
/// per-lost-block repair reads.
pub fn compare_codes(
    sc_template: &ScaleScenario,
    code_a: CodeSpec,
    code_b: CodeSpec,
    seeds: &[u64],
) -> (MonteCarloReport, MonteCarloReport, f64) {
    let mut a = sc_template.clone();
    a.code = code_a;
    let mut b = sc_template.clone();
    b.code = code_b;
    let a_report = monte_carlo(&a, seeds);
    let b_report = monte_carlo(&b, seeds);
    let ratio = a_report.blocks_read_per_lost_block.mean / b_report.blocks_read_per_lost_block.mean;
    (a_report, b_report, ratio)
}

/// The headline §5 comparison: RS (10,4) vs LRC (10,6,5) repair traffic
/// per lost block under the same scenario and seeds. Returns both
/// reports and the RS/LRC ratio of mean per-lost-block reads (the paper
/// measures ~11.5 vs ~5.8 blocks — a ~2x saving).
pub fn compare_repair_traffic(
    sc_template: &ScaleScenario,
    seeds: &[u64],
) -> (MonteCarloReport, MonteCarloReport, f64) {
    compare_codes(sc_template, CodeSpec::RS_10_4, CodeSpec::LRC_10_6_5, seeds)
}

/// One row of the cross-family comparison table (the PR-10 three-way
/// study): the planner's own single-data-loss cost next to the
/// cluster-measured Monte-Carlo repair traffic.
#[derive(Debug, Clone)]
pub struct CodeComparisonRow {
    /// Scheme name.
    pub scheme: String,
    /// Extra storage per byte of data (0.4 = 1.4x raw).
    pub storage_overhead: f64,
    /// Minimum-distance upper bound — the reliability-ordering proxy
    /// (a distance-`d` code survives any `d - 1` losses).
    pub distance_upper_bound: usize,
    /// Plan-level mean *read volume* in block units to repair one lost
    /// data block, averaged over the code's data lanes. Piggybacked RS
    /// reads half-lanes from outside the lost block's piggyback group,
    /// so this drops below the touched-block count.
    pub single_data_loss_volume: f64,
    /// Plan-level mean distinct blocks *touched* per single data-lane
    /// repair — the I/O-operation (disk-seek) count.
    pub single_data_loss_blocks: f64,
    /// Cluster-measured Monte-Carlo report (mixed data and parity lane
    /// losses, task restarts included).
    pub cluster: MonteCarloReport,
}

/// Averages the planner's read volume and touched-block count over all
/// single data-lane losses of `spec` — the codec family's own promise,
/// before any cluster noise.
///
/// For RS (10,4) this is exactly (10.0, 10.0); for LRC (10,6,5) the
/// light decoder gives (5.0, 5.0); for piggybacked RS (10,4) every
/// repair touches 11 blocks but moves only ~6.7 block-volumes because
/// out-of-group lanes contribute a single substripe half. Errors if
/// the spec cannot build or cannot survive a single data loss.
pub fn single_data_loss_cost(spec: CodeSpec) -> Result<(f64, f64), CodeError> {
    let codec = CodecInstance::build(spec)?;
    let k = spec.data_blocks();
    let mut volume = 0.0;
    let mut blocks = 0.0;
    for lane in 0..k {
        let plan = codec.repair_plan_for(&[lane], &[lane])?;
        volume += plan.read_volume();
        blocks += plan.blocks_read() as f64;
    }
    Ok((volume / k as f64, blocks / k as f64))
}

/// Builds the comparison table: one [`CodeComparisonRow`] per spec, all
/// under the same scenario template and seeds. Errors on the first
/// spec whose planner cannot cost a single data loss.
pub fn code_comparison_table(
    sc_template: &ScaleScenario,
    specs: &[CodeSpec],
    seeds: &[u64],
) -> Result<Vec<CodeComparisonRow>, CodeError> {
    specs
        .iter()
        .map(|&spec| {
            let (single_data_loss_volume, single_data_loss_blocks) = single_data_loss_cost(spec)?;
            let mut sc = sc_template.clone();
            sc.code = spec;
            Ok(CodeComparisonRow {
                scheme: spec.name(),
                storage_overhead: spec.storage_overhead(),
                distance_upper_bound: spec.distance_upper_bound(),
                single_data_loss_volume,
                single_data_loss_blocks,
                cluster: monte_carlo(&sc, seeds),
            })
        })
        .collect()
}

/// The PR-10 three-way table: RS (10,4), LRC (10,6,5) and piggybacked
/// RS (10,4) under one scenario template. RS is the storage/repair
/// baseline; the LRC buys 2x cheaper repair with 14% more storage; the
/// piggybacked RS keeps RS storage and MDS distance while cutting
/// single-data-loss repair *bytes* ~33% (at one extra touched block).
pub fn three_way_table(
    sc_template: &ScaleScenario,
    seeds: &[u64],
) -> Result<Vec<CodeComparisonRow>, CodeError> {
    code_comparison_table(
        sc_template,
        &[CodeSpec::RS_10_4, CodeSpec::LRC_10_6_5, CodeSpec::PB_10_4],
        seeds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down EC2 run (fewer files) exercising the full driver.
    #[test]
    fn mini_ec2_experiment_produces_eight_events() {
        let res = ec2_experiment(CodeSpec::LRC_10_6_5, 12, 7);
        assert_eq!(res.events.len(), 8);
        assert_eq!(res.scheme, "LRC (10, 6, 5)");
        for e in &res.events {
            assert!(e.blocks_lost > 0);
            assert!(e.hdfs_gb_read > 0.0);
            assert!(e.network_gb > 0.0);
            assert!(e.repair_minutes > 0.0);
        }
        // Multi-node events lose more blocks than single-node ones.
        let single_avg: f64 = res.events[..4]
            .iter()
            .map(|e| e.blocks_lost as f64)
            .sum::<f64>()
            / 4.0;
        let triple_avg: f64 = res.events[4..6]
            .iter()
            .map(|e| e.blocks_lost as f64)
            .sum::<f64>()
            / 2.0;
        assert!(triple_avg > 1.5 * single_avg);
    }

    #[test]
    fn mini_ec2_lrc_reads_less_than_rs() {
        let rs = ec2_experiment(CodeSpec::RS_10_4, 12, 11);
        let lrc = ec2_experiment(CodeSpec::LRC_10_6_5, 12, 11);
        let rs_total: f64 = rs.events.iter().map(|e| e.hdfs_gb_read).sum();
        let lrc_total: f64 = lrc.events.iter().map(|e| e.hdfs_gb_read).sum();
        // Normalize per lost block: Xorbas loses ~14% more blocks at
        // equal node counts (§5.2).
        let rs_lost: usize = rs.events.iter().map(|e| e.blocks_lost).sum();
        let lrc_lost: usize = lrc.events.iter().map(|e| e.blocks_lost).sum();
        let ratio = (lrc_total / lrc_lost as f64) / (rs_total / rs_lost as f64);
        assert!(ratio < 0.65, "per-lost-block read ratio {ratio}");
    }

    #[test]
    fn workload_experiment_missing_blocks_slow_jobs() {
        let healthy = workload_experiment(CodeSpec::LRC_10_6_5, 0.0, 3);
        let degraded = workload_experiment(CodeSpec::LRC_10_6_5, 0.2, 3);
        assert!(degraded.avg_job_minutes > healthy.avg_job_minutes);
        assert!(degraded.total_gb_read > healthy.total_gb_read);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples_and_drops_nans() {
        let wide = ConfidenceInterval::from_samples(&[1.0, 3.0]);
        let tight = ConfidenceInterval::from_samples(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert!((wide.mean - 2.0).abs() < 1e-9);
        assert!((tight.mean - 2.0).abs() < 1e-9);
        assert!(tight.half_width < wide.half_width);
        let with_nan = ConfidenceInterval::from_samples(&[2.0, f64::NAN, 4.0]);
        assert_eq!(with_nan.n, 2);
        assert!((with_nan.mean - 3.0).abs() < 1e-9);
        assert_eq!(ConfidenceInterval::from_samples(&[5.0]).half_width, 0.0);
    }

    #[test]
    fn fast_mode_scenario_runs_a_fortnight_deterministically() {
        let sc = ScaleScenario::fast_mode(CodeSpec::LRC_10_6_5);
        let a = run_scale_scenario(&sc, 11);
        let b = run_scale_scenario(&sc, 11);
        assert_eq!(a.blocks_lost, b.blocks_lost);
        assert_eq!(a.events_processed, b.events_processed);
        assert!(a.failures_injected > 0, "two weeks see failures");
        assert_eq!(a.blocks_repaired, a.blocks_lost, "everything repaired");
        assert_eq!(a.data_loss_stripes, 0);
    }

    /// The wide-stripe scenario gate: the paper's (10,6,5) against the
    /// (200, 60, 10)-class wide LRC on the 300-node testbed. Wider
    /// stripes halve the storage overhead (1.3x vs 1.6x); the group
    /// structure must keep repair reads near the 10-lane group (data
    /// and local-parity failures read 10, the 40-of-260 global-parity
    /// failures read 59), nowhere near the 200 an MDS code of equal
    /// overhead pays.
    #[test]
    fn wide_stripe_scenario_keeps_repair_local() {
        let sc = ScaleScenario::wide_stripe_mode(CodeSpec::LRC_WIDE);
        let (wide, narrow, ratio) =
            compare_codes(&sc, CodeSpec::LRC_WIDE, CodeSpec::LRC_10_6_5, &[9, 21]);
        for r in wide.runs.iter().chain(&narrow.runs) {
            assert!(r.failures_injected > 0, "a week must see failures");
            assert!(r.blocks_lost > 0);
        }
        assert!(
            narrow.blocks_read_per_lost_block.mean < 6.5,
            "narrow LRC reads {}",
            narrow.blocks_read_per_lost_block
        );
        // Expected wide mean ≈ (220·10 + 40·59) / 260 ≈ 17.5.
        assert!(
            (9.0..25.0).contains(&wide.blocks_read_per_lost_block.mean),
            "wide LRC reads {}",
            wide.blocks_read_per_lost_block
        );
        assert!(
            (1.5..5.0).contains(&ratio),
            "wide/narrow read ratio {ratio}"
        );
        // A week of single-node failures with 12 h replacement never
        // exceeds the wide code's tolerance.
        assert_eq!(wide.data_loss_stripes.mean, 0.0);
    }

    /// The planner-level costs the three-way table is built from are
    /// exact rationals — pin them before any cluster noise enters.
    #[test]
    fn single_data_loss_costs_are_exact() {
        let (rs_vol, rs_blocks) = single_data_loss_cost(CodeSpec::RS_10_4).unwrap();
        assert_eq!((rs_vol, rs_blocks), (10.0, 10.0));

        let (lrc_vol, lrc_blocks) = single_data_loss_cost(CodeSpec::LRC_10_6_5).unwrap();
        assert_eq!((lrc_vol, lrc_blocks), (5.0, 5.0));

        // Piggyback groups at (10,4) have sizes {4,3,3}: each repair
        // touches k+1 = 11 blocks, volume (k + group)/2 averaged over
        // lanes = (4*7.0 + 6*6.5)/10 = 6.7.
        let (pb_vol, pb_blocks) = single_data_loss_cost(CodeSpec::PB_10_4).unwrap();
        assert!((pb_vol - 6.7).abs() < 1e-12, "piggyback volume {pb_vol}");
        assert_eq!(pb_blocks, 11.0);
    }

    /// The acceptance gate for the Monte-Carlo driver: the §5 headline
    /// RS-vs-LRC repair-traffic comparison, in fast mode. The paper
    /// measures ~11.5 blocks read per lost block for RS (10,4) against
    /// ~5.8 for LRC (10,6,5) — a ~2x saving.
    #[test]
    fn monte_carlo_reproduces_the_2x_repair_traffic_ratio() {
        let sc = ScaleScenario::fast_mode(CodeSpec::LRC_10_6_5);
        let (rs, lrc, ratio) = compare_repair_traffic(&sc, &[5, 17, 23]);
        assert_eq!(rs.runs.len(), 3);
        assert_eq!(lrc.runs.len(), 3);
        // Minimal policy: RS heavy repair reads 10 blocks per lost
        // block, LRC light repair 5 (restarts and multi-loss stripes
        // blur both slightly).
        assert!(
            rs.blocks_read_per_lost_block.mean > 8.5,
            "RS reads {}",
            rs.blocks_read_per_lost_block
        );
        assert!(
            lrc.blocks_read_per_lost_block.mean < 6.5,
            "LRC reads {}",
            lrc.blocks_read_per_lost_block
        );
        assert!(
            (1.7..=2.5).contains(&ratio),
            "repair-traffic ratio {ratio} outside the paper's ~2x band"
        );
    }
}
