//! A tiny deterministic hasher for the simulator's hot maps.
//!
//! The engine keys its bookkeeping maps by small integers (task ids,
//! block ids, `(stripe, position)` pairs). `std`'s default SipHash is
//! DoS-resistant but an order of magnitude slower than needed for keys
//! the simulator itself generates, and its per-instance random seed
//! makes map iteration order differ between runs. This FxHash-style
//! multiply-rotate hasher is fast, stable across processes (which keeps
//! seeded simulations bit-reproducible even where map iteration order
//! leaks into event order), and perfectly adequate for trusted keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (Firefox's hasher): a large odd
/// constant with good bit dispersion under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. One `u64`, folded word-at-a-time.
#[derive(Debug, Default, Clone)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_store_and_iterate_deterministically() {
        let build = || {
            let mut m: FastMap<u64, u64> = FastMap::default();
            for k in 0..1000u64 {
                m.insert(k.wrapping_mul(0x9E37), k);
            }
            m.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "iteration order is stable");
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen: FastSet<u64> = FastSet::default();
        for k in 0..10_000usize {
            let mut h = FxHasher::default();
            h.write_usize(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small ints");
    }

    #[test]
    fn tuple_and_vec_keys_work() {
        let mut m: FastMap<(usize, usize), u32> = FastMap::default();
        m.insert((3, 4), 1);
        m.insert((4, 3), 2);
        assert_eq!(m[&(3, 4)], 1);
        assert_eq!(m[&(4, 3)], 2);
        let mut v: FastMap<Vec<usize>, u32> = FastMap::default();
        v.insert(vec![1, 2], 7);
        assert_eq!(v[&vec![1, 2]], 7);
    }
}
