//! Serving-plane workload model: Zipf/hot-spot read traffic over the
//! namespace.
//!
//! The paper's core observation (§1, and Rashmi et al.'s measurement
//! study of the same Facebook warehouse in PAPERS.md) is that most
//! "repair" activity is really *degraded reads* of transiently
//! unavailable hot blocks. This module supplies the client side of that
//! story for the simulator:
//!
//! * [`ZipfSampler`] — a seeded power-law rank distribution
//!   (`weight(r) ∝ 1/(r+1)^s`), the standard model for hot-spot block
//!   popularity. `s = 0` degenerates to uniform; large `s` concentrates
//!   essentially all mass on rank 0.
//! * [`WorkloadConfig`] — the knobs of a client population: aggregate
//!   read arrival rate (Poisson), skew, hot-set churn cadence (the
//!   rank→block mapping reshuffles every churn epoch, so *which* blocks
//!   are hot drifts while the popularity *shape* stays fixed), the
//!   serving policy for unavailable blocks, and an analytic client
//!   latency model (base RPC cost, streaming bandwidth, plan-compile
//!   penalty on a cold failure pattern).
//! * [`ServePolicy`] — what the read path does when the block is
//!   unavailable: reconstruct inline from surviving lanes
//!   ([`ServePolicy::Degraded`], the HDFS-RAID behaviour the paper
//!   models) or park until the BlockFixer restores the block
//!   ([`ServePolicy::WaitForFixer`], plain HDFS).
//!
//! The engine consumes these via `Simulation::start_workload`; outcome
//! counters and p50/p99/p999 latency tails land in
//! [`crate::metrics::ServingStats`].

use rand::Rng;

use crate::time::SimTime;

/// Fraction of recovery operations that involve exactly one unavailable
/// block in their stripe, as measured by Rashmi et al. on the Facebook
/// warehouse cluster ("A Solution to the Network Challenges of Data
/// Recovery in Erasure-coded Distributed Storage Systems", §2: 98.08%
/// of recoveries are single-block). The serving-plane scenario gate
/// pins the simulator's measured fraction against this reference.
pub const RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION: f64 = 0.9808;

/// What the read path does when the requested block is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Reconstruct the block inline from its surviving lanes (a degraded
    /// read): fetch the repair group, decode, serve. Latency is paid by
    /// this read; nothing is written back.
    Degraded,
    /// Park the read until the BlockFixer (or a transient node return)
    /// restores the block, then serve it directly. Models plain HDFS,
    /// where clients block on missing replicas.
    WaitForFixer,
}

/// Client-population workload description (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Aggregate read arrival rate across all clients, reads/second
    /// (arrivals are Poisson: exponential gaps from the workload's own
    /// seeded stream).
    pub reads_per_sec: f64,
    /// Zipf skew `s` (`weight(rank) ∝ 1/(rank+1)^s`); 0 is uniform.
    pub zipf_s: f64,
    /// Hot-set churn cadence: the rank→block permutation reshuffles at
    /// every multiple of this interval ([`SimTime::ZERO`] disables
    /// churn). Reshuffles are keyed by `(seed, epoch)`, independent of
    /// arrival interleaving, so runs stay bit-deterministic.
    pub churn_every: SimTime,
    /// Serving policy for unavailable blocks.
    pub policy: ServePolicy,
    /// Bytes a client read returns (a range read of the physical block,
    /// not the coarse simulated block). Degraded reads fetch this much
    /// *per surviving lane* in the repair group.
    pub read_bytes: u64,
    /// Client streaming bandwidth, bytes/second (one stream; matches the
    /// bytes/second convention of [`crate::config::ComputeRates`]).
    pub client_read_bps: f64,
    /// Fixed per-read overhead (RPC, namenode lookup, seek), ms.
    pub base_latency_ms: f64,
    /// One-time penalty when a degraded read's failure pattern misses
    /// the engine's repair-plan cache (the decode-solve compile the
    /// session cache otherwise amortizes), ms.
    pub plan_compile_ms: f64,
    /// Seed of the workload's private RNG stream (arrivals, rank draws,
    /// churn shuffles). Kept separate from the engine seed so adding a
    /// workload never perturbs failure placement or repair decisions.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    /// A serving mix sized for the warehouse scenarios: 4 MiB range
    /// reads over a 1 Gbps-class client stream, Zipf 1.1 skew, hot set
    /// drifting twice a day, degraded reads served inline.
    fn default() -> Self {
        Self {
            reads_per_sec: 1.0,
            zipf_s: 1.1,
            churn_every: SimTime::from_mins(12 * 60),
            policy: ServePolicy::Degraded,
            read_bytes: 4 << 20,
            client_read_bps: 125e6,
            base_latency_ms: 2.0,
            plan_compile_ms: 15.0,
            seed: 0x5E41_11A6,
        }
    }
}

impl WorkloadConfig {
    /// Service time of a healthy (direct) read under this config, ms.
    pub fn direct_service_ms(&self) -> f64 {
        self.base_latency_ms + self.read_bytes as f64 / self.client_read_bps * 1e3
    }
}

/// A seeded Zipf rank distribution over `0..n`.
///
/// Sampling is a uniform draw against the precomputed CDF (binary
/// search, O(log n), allocation-free), so a multi-million-read scenario
/// stays event-bound. The sampler owns no RNG: callers pass their own
/// stream, which keeps determinism a property of the caller's seed.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized cumulative weights; `cdf[r]` = P(rank <= r).
    cdf: Vec<f64>,
    s: f64,
}

impl ZipfSampler {
    /// A sampler over ranks `0..n` with skew `s >= 0`
    /// (`weight(r) ∝ 1/(r+1)^s`). Panics if `n == 0` or `s` is not a
    /// finite non-negative number.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs a non-empty rank space");
        assert!(s.is_finite() && s >= 0.0, "skew must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against accumulated rounding: the last edge must cover
        // every uniform draw in [0, 1).
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf, s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the rank space is empty (never true; constructor asserts).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew parameter.
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Exact probability of drawing `rank`.
    pub fn frequency(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draws one rank from `rng` (smaller ranks are hotter).
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First rank whose cumulative weight covers the draw.
        let idx = self.cdf.partition_point(|&c| c <= u);
        idx.min(self.cdf.len() - 1)
    }
}

/// An exponential inter-arrival gap for a Poisson process at
/// `rate_per_sec`, drawn from `rng`, in seconds.
pub fn exp_gap_secs<R: Rng + ?Sized>(rng: &mut R, rate_per_sec: f64) -> f64 {
    assert!(
        rate_per_sec > 0.0 && rate_per_sec.is_finite(),
        "arrival rate must be positive"
    );
    let u: f64 = rng.gen(); // [0, 1)
    -(1.0 - u).ln() / rate_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequencies_sum_to_one_and_decrease_in_rank() {
        for s in [0.0, 0.5, 1.0, 2.0] {
            let z = ZipfSampler::new(64, s);
            let sum: f64 = (0..z.len()).map(|r| z.frequency(r)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "s={s} sum={sum}");
            for r in 1..z.len() {
                assert!(
                    z.frequency(r) <= z.frequency(r - 1) + 1e-12,
                    "s={s} rank {r} hotter than rank {}",
                    r - 1
                );
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let z = ZipfSampler::new(100, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| z.sample_rank(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn exponential_gaps_average_to_the_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = (0..n).map(|_| exp_gap_secs(&mut rng, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean gap {mean}");
    }

    #[test]
    fn direct_service_time_combines_base_and_streaming() {
        let cfg = WorkloadConfig {
            read_bytes: 10_000_000,
            client_read_bps: 100e6,
            base_latency_ms: 2.0,
            ..WorkloadConfig::default()
        };
        assert!((cfg.direct_service_ms() - 102.0).abs() < 1e-9);
    }
}
