//! Bridges [`CodeSpec`] to concrete codec behaviour for the simulator:
//! repair planning over stripe positions, zero-padding masks, and
//! verify-mode payload reconstruction.

use xorbas_core::{
    CodeError, CodeSpec, ErasureCodec, Lrc, PiggybackRs, ReedSolomon, RepairPlan, RepairSession,
    RepairTask, WideLrc, WidePiggyback, WideReedSolomon,
};

/// Highest stripe blocklength GF(2^8) supports (`q - 1`); wider specs
/// build over GF(2^16).
const GF256_MAX_LANES: usize = 255;

/// A concrete redundancy implementation for one [`CodeSpec`].
///
/// [`CodecInstance::build`] picks the field from the geometry: specs
/// whose base code fits GF(2^8) use it (one-byte symbols, the paper's
/// deployment); wider stripes — e.g. [`CodeSpec::RS_200_60`] or the
/// [`CodeSpec::LRC_WIDE`] layout at 260 lanes — build over GF(2^16).
#[derive(Debug, Clone)]
pub enum CodecInstance {
    /// Plain replication: repair = copy a surviving replica.
    Replication {
        /// Number of copies.
        replicas: usize,
    },
    /// Reed-Solomon ("HDFS-RS").
    Rs(ReedSolomon),
    /// Locally repairable code ("HDFS-Xorbas").
    Lrc(Lrc),
    /// Reed-Solomon over GF(2^16) (wide stripes).
    RsWide(WideReedSolomon),
    /// Locally repairable code over GF(2^16) (wide stripes).
    LrcWide(WideLrc),
    /// Piggybacked Reed-Solomon (repair-bandwidth-optimal RS).
    Piggyback(PiggybackRs),
    /// Piggybacked Reed-Solomon over GF(2^16) (wide stripes).
    PiggybackWide(WidePiggyback),
}

impl CodecInstance {
    /// Builds the codec for a spec (Appendix-D constructions), choosing
    /// GF(2^8) or GF(2^16) by the spec's base-code blocklength.
    pub fn build(spec: CodeSpec) -> Result<Self, CodeError> {
        match spec {
            CodeSpec::Replication { replicas } => {
                if replicas < 2 {
                    return Err(CodeError::InvalidParameters(
                        "replication needs at least 2 copies".into(),
                    ));
                }
                Ok(CodecInstance::Replication { replicas })
            }
            CodeSpec::ReedSolomon { k, m } if k + m <= GF256_MAX_LANES => {
                Ok(CodecInstance::Rs(ReedSolomon::new(k, m)?))
            }
            CodeSpec::ReedSolomon { k, m } => {
                Ok(CodecInstance::RsWide(WideReedSolomon::new(k, m)?))
            }
            CodeSpec::Lrc(spec) if spec.total_blocks() <= GF256_MAX_LANES => {
                Ok(CodecInstance::Lrc(Lrc::new(spec)?))
            }
            CodeSpec::Lrc(spec) => Ok(CodecInstance::LrcWide(WideLrc::new(spec)?)),
            CodeSpec::Piggyback { k, m } if k + m <= GF256_MAX_LANES => {
                Ok(CodecInstance::Piggyback(PiggybackRs::new(k, m)?))
            }
            CodeSpec::Piggyback { k, m } => {
                Ok(CodecInstance::PiggybackWide(WidePiggyback::new(k, m)?))
            }
        }
    }

    /// The spec this instance implements.
    pub fn spec(&self) -> CodeSpec {
        match self {
            CodecInstance::Replication { replicas } => CodeSpec::Replication {
                replicas: *replicas,
            },
            CodecInstance::Rs(rs) => rs.spec(),
            CodecInstance::Lrc(lrc) => lrc.spec(),
            CodecInstance::RsWide(rs) => rs.spec(),
            CodecInstance::LrcWide(lrc) => lrc.spec(),
            CodecInstance::Piggyback(pb) => pb.spec(),
            CodecInstance::PiggybackWide(pb) => pb.spec(),
        }
    }

    /// Stripe blocklength `n`.
    pub fn total_blocks(&self) -> usize {
        self.spec().total_blocks()
    }

    /// Plans reconstruction of `targets` given `unavailable` positions.
    pub fn repair_plan_for(
        &self,
        unavailable: &[usize],
        targets: &[usize],
    ) -> Result<RepairPlan, CodeError> {
        match self {
            CodecInstance::Replication { replicas } => {
                let survivor = (0..*replicas).find(|p| !unavailable.contains(p));
                let Some(survivor) = survivor else {
                    return Err(CodeError::Unrecoverable {
                        erased: unavailable.to_vec(),
                    });
                };
                Ok(RepairPlan {
                    missing: targets.to_vec(),
                    tasks: targets
                        .iter()
                        .map(|&t| RepairTask {
                            repairs: vec![t],
                            reads: vec![survivor],
                            half_reads: vec![],
                            light: true,
                        })
                        .collect(),
                })
            }
            CodecInstance::Rs(rs) => rs.repair_plan_for(unavailable, targets),
            CodecInstance::Lrc(lrc) => lrc.repair_plan_for(unavailable, targets),
            CodecInstance::RsWide(rs) => rs.repair_plan_for(unavailable, targets),
            CodecInstance::LrcWide(lrc) => lrc.repair_plan_for(unavailable, targets),
            CodecInstance::Piggyback(pb) => pb.repair_plan_for(unavailable, targets),
            CodecInstance::PiggybackWide(pb) => pb.repair_plan_for(unavailable, targets),
        }
    }

    /// Compiles a reusable [`RepairSession`] for one failure pattern
    /// (see [`ErasureCodec::repair_session`]). Sessions cache the decode
    /// solve, so the BlockFixer's repeated same-pattern repairs stay
    /// solve-free and allocation-free; `None` for replication, whose
    /// "repair" is a plain replica copy with no codec state to compile.
    pub fn repair_session(
        &self,
        unavailable: &[usize],
    ) -> Option<Result<RepairSession, CodeError>> {
        match self {
            CodecInstance::Replication { .. } => None,
            CodecInstance::Rs(rs) => Some(rs.repair_session(unavailable)),
            CodecInstance::Lrc(lrc) => Some(lrc.repair_session(unavailable)),
            CodecInstance::RsWide(rs) => Some(rs.repair_session(unavailable)),
            CodecInstance::LrcWide(lrc) => Some(lrc.repair_session(unavailable)),
            CodecInstance::Piggyback(pb) => Some(pb.repair_session(unavailable)),
            CodecInstance::PiggybackWide(pb) => Some(pb.repair_session(unavailable)),
        }
    }

    /// Zero-copy encode into caller-owned parity lanes (see
    /// [`ErasureCodec::encode_into`]). For replication, every "parity"
    /// lane is a copy of the single data lane.
    pub fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), CodeError> {
        match self {
            CodecInstance::Replication { replicas } => {
                if data.len() != 1 || parity.len() != replicas - 1 {
                    return Err(CodeError::ShardCountMismatch {
                        expected: *replicas,
                        got: data.len() + parity.len(),
                    });
                }
                for lane in parity.iter_mut() {
                    if lane.len() != data[0].len() {
                        return Err(CodeError::ShardSizeMismatch);
                    }
                    lane.copy_from_slice(data[0]);
                }
                Ok(())
            }
            CodecInstance::Rs(rs) => rs.encode_into(data, parity),
            CodecInstance::Lrc(lrc) => lrc.encode_into(data, parity),
            CodecInstance::RsWide(rs) => rs.encode_into(data, parity),
            CodecInstance::LrcWide(lrc) => lrc.encode_into(data, parity),
            CodecInstance::Piggyback(pb) => pb.encode_into(data, parity),
            CodecInstance::PiggybackWide(pb) => pb.encode_into(data, parity),
        }
    }

    /// Which positions of a stripe with `real_data` data blocks are
    /// structurally zero and therefore not stored (§3.1.1 zero padding).
    ///
    /// Data positions beyond `real_data` are virtual; a local parity is
    /// virtual when its whole group is virtual (its XOR would be the
    /// zero block); global parities are always stored.
    pub fn virtual_mask(&self, real_data: usize) -> Vec<bool> {
        let mut out = Vec::new();
        self.virtual_mask_into(real_data, &mut out);
        out
    }

    /// Allocation-free variant of [`CodecInstance::virtual_mask`]: fills
    /// a caller-reused buffer (cleared first). The namespace loader
    /// calls this once per stripe, so warehouse-scale loads stay free of
    /// per-stripe allocation.
    pub fn virtual_mask_into(&self, real_data: usize, out: &mut Vec<bool>) {
        out.clear();
        // The mask depends only on the geometry, never the field, so it
        // is derived from the spec — both field instantiations of one
        // layout share it.
        match self.spec() {
            CodeSpec::Replication { replicas } => out.resize(replicas, false),
            // The piggybacked RS shares the RS lane layout; its parities
            // are always stored (a piggyback of virtual zero lanes is
            // just the clean RS parity).
            CodeSpec::ReedSolomon { k, m } | CodeSpec::Piggyback { k, m } => {
                out.extend((0..k + m).map(|p| p < k && p >= real_data));
            }
            CodeSpec::Lrc(spec) => {
                let k = spec.k;
                let g = spec.global_parities;
                let n = spec.total_blocks();
                out.extend((0..n).map(|p| {
                    if p < k {
                        p >= real_data
                    } else if p < k + g {
                        false // global parities
                    } else if p < k + g + spec.data_groups() {
                        // S_t is zero when its group holds no real data.
                        let t = p - k - g;
                        t * spec.group_size >= real_data
                    } else {
                        false // stored parity-group parity
                    }
                }));
            }
        }
    }

    /// Verify-mode encoding: produces all `n` position payloads from `k`
    /// data payloads. A thin owned-`Vec` wrapper over
    /// [`CodecInstance::encode_into`], mirroring the core trait's
    /// wrapper so the two paths cannot diverge.
    pub fn encode_payloads(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        let len = data.first().map_or(0, Vec::len);
        let parity_lanes = self.total_blocks().saturating_sub(data.len());
        let mut stripe = data.to_vec();
        let mut parity = vec![vec![0u8; len]; parity_lanes];
        {
            let data_refs: Vec<&[u8]> = stripe.iter().map(Vec::as_slice).collect();
            let mut parity_refs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            self.encode_into(&data_refs, &mut parity_refs)?;
        }
        stripe.extend(parity);
        Ok(stripe)
    }

    /// Verify-mode reconstruction of every `None` shard in place. A thin
    /// owned-`Vec` wrapper over the session path ([`ErasureCodec`
    /// default semantics](xorbas_core::ErasureCodec::reconstruct));
    /// replication copies a surviving replica.
    pub fn reconstruct_payloads(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        match self {
            CodecInstance::Replication { .. } => {
                let survivor = shards
                    .iter()
                    .flatten()
                    .next()
                    .cloned()
                    .ok_or(CodeError::Unrecoverable { erased: vec![] })?;
                for s in shards.iter_mut() {
                    if s.is_none() {
                        *s = Some(survivor.clone());
                    }
                }
                Ok(())
            }
            CodecInstance::Rs(rs) => rs.reconstruct(shards).map(|_| ()),
            CodecInstance::Lrc(lrc) => lrc.reconstruct(shards).map(|_| ()),
            CodecInstance::RsWide(rs) => rs.reconstruct(shards).map(|_| ()),
            CodecInstance::LrcWide(lrc) => lrc.reconstruct(shards).map(|_| ()),
            CodecInstance::Piggyback(pb) => pb.reconstruct(shards).map(|_| ()),
            CodecInstance::PiggybackWide(pb) => pb.reconstruct(shards).map(|_| ()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_plan_copies_one_survivor() {
        let c = CodecInstance::build(CodeSpec::REPLICATION_3).unwrap();
        let plan = c.repair_plan_for(&[0, 2], &[0, 2]).unwrap();
        assert_eq!(plan.tasks.len(), 2);
        for t in &plan.tasks {
            assert_eq!(t.reads, vec![1]);
            assert!(t.light);
        }
        assert!(c.repair_plan_for(&[0, 1, 2], &[0]).is_err());
    }

    #[test]
    fn masks_for_full_stripes_are_all_real() {
        for spec in [CodeSpec::RS_10_4, CodeSpec::LRC_10_6_5] {
            let c = CodecInstance::build(spec).unwrap();
            assert!(c.virtual_mask(10).iter().all(|&v| !v));
        }
    }

    #[test]
    fn rs_mask_pads_missing_data_only() {
        let c = CodecInstance::build(CodeSpec::RS_10_4).unwrap();
        let mask = c.virtual_mask(3);
        assert_eq!(mask.iter().filter(|&&v| v).count(), 7);
        assert!(!mask[0] && !mask[2]);
        assert!(mask[3] && mask[9]);
        assert!(!mask[10] && !mask[13]); // parities stored
    }

    #[test]
    fn lrc_mask_drops_empty_group_local_parity() {
        // 3 real data blocks: group 2 (positions 5..10) is entirely
        // virtual, so S2 (position 15) is virtual too.
        let c = CodecInstance::build(CodeSpec::LRC_10_6_5).unwrap();
        let mask = c.virtual_mask(3);
        assert!(!mask[14], "S1 has real members");
        assert!(mask[15], "S2 covers only padding");
        assert!(mask[4] && mask[9]);
        assert!(!mask[10] && !mask[13]);
        // 6 real data groups -> both locals real.
        let mask6 = c.virtual_mask(6);
        assert!(!mask6[14] && !mask6[15]);
    }

    #[test]
    fn payload_round_trip_all_schemes() {
        let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8 + 1; 16]).collect();
        for spec in [CodeSpec::RS_10_4, CodeSpec::LRC_10_6_5] {
            let c = CodecInstance::build(spec).unwrap();
            let stripe = c.encode_payloads(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
            shards[0] = None;
            shards[11] = None;
            c.reconstruct_payloads(&mut shards).unwrap();
            assert_eq!(shards[0].as_ref().unwrap(), &stripe[0]);
            assert_eq!(shards[11].as_ref().unwrap(), &stripe[11]);
        }
        let c = CodecInstance::build(CodeSpec::REPLICATION_3).unwrap();
        let stripe = c.encode_payloads(&data[..1]).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[2] = None;
        c.reconstruct_payloads(&mut shards).unwrap();
        assert_eq!(shards[2].as_ref().unwrap(), &stripe[0]);
    }

    #[test]
    fn build_rejects_degenerate_replication() {
        assert!(CodecInstance::build(CodeSpec::Replication { replicas: 1 }).is_err());
    }

    #[test]
    fn wide_specs_build_over_gf65536_and_keep_repair_local() {
        // 260-lane stripes exceed GF(2^8); build must pick the wide
        // field automatically and plan with the real wide codecs.
        let lrc = CodecInstance::build(CodeSpec::LRC_WIDE).unwrap();
        assert!(matches!(lrc, CodecInstance::LrcWide(_)));
        assert_eq!(lrc.total_blocks(), 260);
        let plan = lrc.repair_plan_for(&[3], &[3]).unwrap();
        assert!(plan.is_light());
        assert_eq!(plan.blocks_read(), 10);

        let rs = CodecInstance::build(CodeSpec::RS_200_60).unwrap();
        assert!(matches!(rs, CodecInstance::RsWide(_)));
        let plan = rs.repair_plan_for(&[3], &[3]).unwrap();
        assert!(!plan.is_light());
        assert_eq!(plan.blocks_read(), 200);

        // Narrow specs keep the GF(2^8) instantiation.
        assert!(matches!(
            CodecInstance::build(CodeSpec::RS_10_4).unwrap(),
            CodecInstance::Rs(_)
        ));
    }

    #[test]
    fn piggyback_builds_both_fields_and_reads_fewer_bytes() {
        let pb = CodecInstance::build(CodeSpec::PB_10_4).unwrap();
        assert!(matches!(pb, CodecInstance::Piggyback(_)));
        let plan = pb.repair_plan_for(&[3], &[3]).unwrap();
        assert!(!plan.is_light());
        assert_eq!(plan.blocks_read(), 11);
        assert!(plan.read_volume() <= 7.0);

        let wide = CodecInstance::build(CodeSpec::PB_200_60).unwrap();
        assert!(matches!(wide, CodecInstance::PiggybackWide(_)));
        assert_eq!(wide.total_blocks(), 260);
        let plan = wide.repair_plan_for(&[3], &[3]).unwrap();
        // (k + group)/2 with groups of 200/59 rounded: far below k=200.
        assert!(plan.read_volume() < 0.52 * 200.0, "{}", plan.read_volume());

        // Same zero-padding mask as RS, and payload round-trip.
        assert_eq!(
            pb.virtual_mask(3),
            CodecInstance::build(CodeSpec::RS_10_4)
                .unwrap()
                .virtual_mask(3)
        );
        let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8 + 1; 16]).collect();
        let stripe = pb.encode_payloads(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[11] = None;
        pb.reconstruct_payloads(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &stripe[0]);
        assert_eq!(shards[11].as_ref().unwrap(), &stripe[11]);
    }

    #[test]
    fn wide_lrc_payload_round_trip() {
        // Verify-mode arithmetic through the GF(2^16) codec: encode all
        // 260 lanes from 200 data payloads and restore a mixed failure.
        let c = CodecInstance::build(CodeSpec::LRC_WIDE).unwrap();
        let data: Vec<Vec<u8>> = (0..200).map(|i| vec![(i % 251) as u8 + 1; 16]).collect();
        let stripe = c.encode_payloads(&data).unwrap();
        assert_eq!(stripe.len(), 260);
        let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
        shards[0] = None; // data lane
        shards[230] = None; // global parity lane
        c.reconstruct_payloads(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &stripe[0]);
        assert_eq!(shards[230].as_ref().unwrap(), &stripe[230]);
    }
}
