//! The discrete-event simulation engine.
//!
//! Ties together the namespace ([`crate::hdfs`]), the flow-level network
//! ([`crate::network`]), the codecs ([`crate::codecs`]) and the metrics
//! ([`crate::metrics`]) into the §3 system model:
//!
//! * a **BlockFixer** that detects lost blocks after a detection delay,
//!   plans repairs with the real codec planners, and dispatches repair
//!   MapReduce jobs (one map task per light repair, one per stripe for
//!   heavy repairs);
//! * a **fair scheduler** allocating map slots across concurrent jobs;
//! * **WordCount-style workload jobs** whose tasks perform *degraded
//!   reads* (reconstruct-before-read, no write-back) when their input
//!   block is missing;
//! * node failures that cancel in-flight work and trigger rescans, and
//!   node **replacements** ([`Simulation::revive_node_at`]) so
//!   multi-year scenarios keep their fleet size.
//!
//! # Scaling design
//!
//! Every per-event path is allocation-free and index-backed so a
//! 3000-node, multi-simulated-year run stays event-bound rather than
//! scan-bound:
//!
//! * the control-event queue is a slab-indexed binary heap (no hashing,
//!   payload slots recycled);
//! * the BlockFixer scans the incremental lost-block index
//!   ([`Hdfs::lost_blocks`]), never the namespace;
//! * finished tasks are retired from the task table immediately — the
//!   table holds the working set, not history;
//! * the fair scheduler picks jobs from a `jobs_with_work` index and
//!   nodes from a free-slot bucket index (no O(cluster) scans per task);
//! * unrecoverable stripes are abandoned exactly once and withdrawn
//!   from scanning ([`Hdfs::mark_unrecoverable`]);
//! * per-event scratch buffers are owned by the engine and reused.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use xorbas_core::{CodeError, RepairPlan, RepairSession, StripeViewMut};

use crate::arena::StripeArena;
use crate::codecs::CodecInstance;
use crate::config::{ReadPolicy, SimConfig};
use crate::fasthash::{FastMap, FastSet};
use crate::hdfs::{BlockId, FileId, Hdfs, NodeId, Placement, Position, StripeId};
use crate::metrics::Metrics;
use crate::network::{Flow, FlowId, Network};
use crate::time::SimTime;
use crate::workload::{exp_gap_secs, ServePolicy, WorkloadConfig, ZipfSampler};

/// Identifies a task.
pub type TaskId = u64;
/// Identifies a job.
pub type JobId = usize;

/// Control events (network-flow completions are derived, not queued).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ControlEvent {
    KillNode(NodeId),
    ReviveNode(NodeId),
    /// A transiently-failed node rejoins *with its disk intact* (a
    /// reboot or network partition healing, not a replacement).
    RestoreNode(NodeId),
    DropBlocks(Vec<BlockId>),
    FixerScan,
    SubmitWordcount(FileId),
    ComputeDone(TaskId),
    /// The next client-read arrival of the serving-plane workload.
    ClientRead,
    Decommission {
        node: NodeId,
        via_repair: bool,
    },
}

/// A slab-indexed event queue: the heap orders `(time, seq)` keys while
/// payloads live in recycled slots, so scheduling an event is two pushes
/// and popping one is O(log n) with no hashing or per-event allocation
/// (enum payloads are stored inline).
#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slots: Vec<Option<ControlEvent>>,
    free: Vec<u32>,
    seq: u64,
}

impl EventQueue {
    fn push(&mut self, t: SimTime, ev: ControlEvent) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(ev);
                s
            }
            None => {
                self.slots.push(Some(ev));
                (self.slots.len() - 1) as u32
            }
        };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((t, seq, slot)));
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    fn pop(&mut self) -> Option<(SimTime, ControlEvent)> {
        let Reverse((t, _, slot)) = self.heap.pop()?;
        let ev = self.slots[slot as usize].take();
        self.free.push(slot);
        debug_assert!(ev.is_some(), "heap keys always have a payload slot");
        ev.map(|ev| (t, ev))
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Queued,
    Waiting,
    Reading,
    Computing,
    Writing,
}

#[derive(Debug, Clone)]
enum TaskKind {
    /// Reconstruct stripe positions and write them back.
    Repair {
        stripe: StripeId,
        targets: Vec<usize>,
        light: bool,
    },
    /// Read one block (degraded if necessary) and run map compute.
    Map { block: BlockId },
    /// Move a block off a draining node: either stream it out directly
    /// (`via_repair = false`) or re-create it from its peers like a
    /// scheduled repair (§1.1's decommissioning use case).
    Relocate { block: BlockId, via_repair: bool },
}

#[derive(Debug, Clone)]
struct Task {
    id: TaskId,
    job: JobId,
    kind: TaskKind,
    state: TaskState,
    node: Option<NodeId>,
    preferred_node: Option<NodeId>,
    pending_reads: Vec<FlowId>,
    pending_writes: Vec<FlowId>,
    /// Lost blocks this task is parked on (mirror of `waiting_on_block`).
    waits: Vec<BlockId>,
    /// Blocks to restore on completion (stripe position, block).
    restores: Vec<(usize, BlockId)>,
    /// In-flight write-back flows: (flow, block, destination node).
    write_queue: Vec<(FlowId, BlockId, NodeId)>,
    compute_secs: f64,
}

impl Task {
    fn new(id: TaskId, job: JobId, kind: TaskKind, preferred_node: Option<NodeId>) -> Self {
        Self {
            id,
            job,
            kind,
            state: TaskState::Queued,
            node: None,
            preferred_node,
            pending_reads: Vec::new(),
            pending_writes: Vec::new(),
            waits: Vec::new(),
            restores: Vec::new(),
            write_queue: Vec::new(),
            compute_secs: 0.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Repair,
    Workload,
}

#[derive(Debug, Clone)]
struct Job {
    kind: JobKind,
    queued: VecDeque<TaskId>,
    running: usize,
    outstanding: usize,
    submitted: SimTime,
}

/// Live state of the serving-plane workload
/// ([`Simulation::start_workload`]): the popularity model, the
/// rank→block mapping of the current churn epoch, and the workload's
/// private RNG stream. The stream is deliberately separate from the
/// engine RNG so attaching a workload never perturbs failure placement
/// or repair decisions, and churn reshuffles are re-keyed from
/// `(seed, epoch)` so the mapping is a function of simulated time alone
/// — not of how many arrivals happened to precede the epoch boundary.
#[derive(Debug)]
struct WorkloadState {
    cfg: WorkloadConfig,
    sampler: ZipfSampler,
    /// All data blocks, in block-id order (the stable identity the
    /// per-epoch permutation reshuffles).
    base: Vec<BlockId>,
    /// Current rank→block mapping (`perm[rank]` is the block with that
    /// popularity rank this epoch).
    perm: Vec<BlockId>,
    /// Arrival-gap and rank-draw stream.
    rng: StdRng,
    start: SimTime,
    horizon: SimTime,
    /// Churn epoch `perm` currently reflects (`u64::MAX` = none yet).
    epoch: u64,
}

impl WorkloadState {
    /// Rebuilds `perm` for `epoch` from a fresh `(seed, epoch)`-keyed
    /// stream.
    fn reshuffle(&mut self, epoch: u64) {
        self.perm.clear();
        self.perm.extend_from_slice(&self.base);
        let key = self
            .cfg
            .seed
            .wrapping_add(1) // epoch key 0 differs from the arrival seed
            .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.perm.shuffle(&mut StdRng::seed_from_u64(key));
        self.epoch = epoch;
    }
}

/// The simulation.
pub struct Simulation {
    /// Current simulated time.
    pub clock: SimTime,
    cfg: SimConfig,
    codec: CodecInstance,
    /// The namespace (public for inspection by drivers and tests).
    pub hdfs: Hdfs,
    placement: Placement,
    alive: Vec<bool>,
    /// Nodes being decommissioned: still serving reads, no new blocks.
    draining: Vec<bool>,
    /// `alive && !draining`, maintained incrementally for placement.
    placeable: Vec<bool>,
    network: Network,
    /// Collected measurements.
    pub metrics: Metrics,
    rng: StdRng,
    events: EventQueue,
    events_processed: u64,
    tasks: FastMap<TaskId, Task>,
    next_task: TaskId,
    jobs: Vec<Job>,
    /// Jobs whose queues are non-empty (fair-scheduler candidates).
    jobs_with_work: BTreeSet<JobId>,
    free_slots: Vec<usize>,
    total_free_slots: usize,
    /// Running repair/relocation tasks, for the concurrency throttle
    /// (`SimConfig::max_concurrent_repairs`).
    repairs_running: usize,
    /// Nodes bucketed by free-slot count (`free_slot_index[c]` holds the
    /// nodes with exactly `c` free slots) — O(log n) slot accounting,
    /// O(buckets) most-free-node lookup.
    free_slot_index: Vec<BTreeSet<NodeId>>,
    computing_slots: usize,
    waiting_on_block: FastMap<BlockId, Vec<TaskId>>,
    /// Stripe positions with an in-flight repair task.
    repair_in_flight: FastSet<(StripeId, usize)>,
    /// Tasks aborted while computing, with a count per task: each abort
    /// leaves exactly one stale ComputeDone event in flight, and a task
    /// can be aborted-while-computing more than once across requeues, so
    /// a set would under-swallow and complete a later run early.
    cancelled: FastMap<TaskId, u32>,
    /// Whether `schedule` is already running (re-entrant calls no-op;
    /// the active loop re-examines conditions each iteration).
    scheduling: bool,
    /// Preallocated lane buffers for verify-mode payload work.
    stripe_arena: StripeArena,
    /// Reused scratch for per-event unavailable-position scans.
    pos_scratch: Vec<usize>,
    /// Reused scratch for stripe-position copies (borrow-splitting).
    stripe_scratch: Vec<Position>,
    /// Reused scratch for placement-exclusion node lists.
    exclude_scratch: Vec<NodeId>,
    /// Reused scratch for the BlockFixer's (stripe, position) grouping.
    scan_scratch: Vec<(StripeId, usize)>,
    /// Compiled repair sessions, keyed by the stripe's failure pattern.
    /// The BlockFixer replays the same few patterns across thousands of
    /// stripes, so each pattern's decode solve runs exactly once.
    session_cache: FastMap<Vec<usize>, RepairSession>,
    /// Repair plans, keyed by the `unavailable ++ [MAX] ++ targets`
    /// pattern encoding. Wide stripes make *planning* itself expensive —
    /// an RS(200, 60) heavy plan runs a 200-column rank selection — and
    /// the simulator replays the same few patterns across thousands of
    /// stripes, so plans are memoized like compiled sessions. `Rc` keeps
    /// cache hits clone-free.
    plan_cache: FastMap<Vec<usize>, Rc<RepairPlan>>,
    /// Reused scratch for plan-cache key encoding (hit lookups allocate
    /// nothing; only misses move a key into the cache).
    plan_key_scratch: Vec<usize>,
    /// Reused scratch for per-step flow-completion batches.
    completed_scratch: Vec<(FlowId, Flow)>,
    /// The serving-plane workload, when one is attached.
    workload: Option<WorkloadState>,
    /// Blocks each transiently-down node held at kill time, so
    /// [`Simulation::restore_node_at`] can re-attach whatever the
    /// BlockFixer has not already repaired elsewhere. Replacement
    /// ([`Simulation::revive_node_at`]) discards the entry — a new
    /// machine has an empty disk.
    transient_inventory: FastMap<NodeId, Vec<BlockId>>,
    /// Serving reads parked on an unavailable block
    /// ([`ServePolicy::WaitForFixer`]): block → issue times.
    reads_waiting_on_block: FastMap<BlockId, Vec<SimTime>>,
}

impl Simulation {
    /// A fresh simulation for the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let codec = CodecInstance::build(cfg.code).expect("valid code spec");
        let nodes = cfg.cluster.nodes;
        let slots = cfg.cluster.map_slots_per_node;
        let mut free_slot_index = vec![BTreeSet::new(); slots + 1];
        free_slot_index[slots].extend(0..nodes);
        Self {
            clock: SimTime::ZERO,
            codec,
            hdfs: Hdfs::new(nodes),
            placement: Placement::new(nodes, cfg.cluster.racks),
            alive: vec![true; nodes],
            draining: vec![false; nodes],
            placeable: vec![true; nodes],
            network: Network::new(nodes, cfg.cluster.nic_bps, cfg.cluster.core_bps),
            metrics: Metrics::new(cfg.series_bucket_secs),
            rng: StdRng::seed_from_u64(cfg.seed),
            events: EventQueue::default(),
            events_processed: 0,
            tasks: FastMap::default(),
            next_task: 0,
            jobs: Vec::new(),
            jobs_with_work: BTreeSet::new(),
            free_slots: vec![slots; nodes],
            total_free_slots: slots * nodes,
            repairs_running: 0,
            free_slot_index,
            computing_slots: 0,
            waiting_on_block: FastMap::default(),
            repair_in_flight: FastSet::default(),
            cancelled: FastMap::default(),
            scheduling: false,
            stripe_arena: StripeArena::new(),
            pos_scratch: Vec::new(),
            stripe_scratch: Vec::new(),
            exclude_scratch: Vec::new(),
            scan_scratch: Vec::new(),
            session_cache: FastMap::default(),
            plan_cache: FastMap::default(),
            plan_key_scratch: Vec::new(),
            completed_scratch: Vec::new(),
            workload: None,
            transient_inventory: FastMap::default(),
            reads_waiting_on_block: FastMap::default(),
            cfg,
        }
    }

    /// [`CodecInstance::repair_plan_for`] through the pattern memo:
    /// recoverable plans are cached once and shared out by `Rc`;
    /// unrecoverable patterns stay uncached (they abandon the stripe
    /// exactly once). Hits allocate nothing: the key is encoded into a
    /// reused scratch buffer (`usize::MAX` separates the two index
    /// lists, which never contain it) and looked up as a slice.
    fn plan_cached(
        &mut self,
        unavailable: &[usize],
        targets: &[usize],
    ) -> Result<Rc<RepairPlan>, CodeError> {
        self.plan_cached_with_hit(unavailable, targets)
            .map(|(p, _)| p)
    }

    /// [`Simulation::plan_cached`] that also reports whether the lookup
    /// hit the memo — the serving path charges a plan-compile latency
    /// penalty on cold failure patterns.
    fn plan_cached_with_hit(
        &mut self,
        unavailable: &[usize],
        targets: &[usize],
    ) -> Result<(Rc<RepairPlan>, bool), CodeError> {
        let mut key = std::mem::take(&mut self.plan_key_scratch);
        key.clear();
        key.extend_from_slice(unavailable);
        key.push(usize::MAX);
        key.extend_from_slice(targets);
        if let Some(plan) = self.plan_cache.get(key.as_slice()) {
            let plan = Rc::clone(plan);
            self.plan_key_scratch = key;
            return Ok((plan, true));
        }
        match self.codec.repair_plan_for(unavailable, targets) {
            Ok(p) => {
                let plan = Rc::new(p);
                // `key` moves into the cache; the scratch slot was left
                // empty by `take` and refills on the next call.
                self.plan_cache.insert(key, Rc::clone(&plan));
                Ok((plan, false))
            }
            Err(e) => {
                self.plan_key_scratch = key;
                Err(e)
            }
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The codec instance in use.
    pub fn codec(&self) -> &CodecInstance {
        &self.codec
    }

    /// Which nodes are alive.
    pub fn alive_nodes(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Control events handled plus network-flow completions delivered —
    /// the simulator's unit of work for throughput reporting.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Network flows currently in flight (diagnostics: repair-backlog
    /// pressure).
    pub fn active_network_flows(&self) -> usize {
        self.network.active_flows()
    }

    /// Live (queued/waiting/running) tasks (diagnostics).
    pub fn live_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Total map slots across alive nodes.
    pub fn total_slots(&self) -> usize {
        self.alive
            .iter()
            .filter(|&&a| a)
            .count()
            .saturating_mul(self.cfg.cluster.map_slots_per_node)
    }

    fn push_event(&mut self, t: SimTime, ev: ControlEvent) {
        self.events.push(t, ev);
    }

    // ----- slot accounting -------------------------------------------

    /// Sets a node's free-slot count, keeping the total and the bucket
    /// index consistent.
    fn set_free_slots(&mut self, node: NodeId, count: usize) {
        let old = self.free_slots[node];
        if old == count {
            return;
        }
        self.free_slot_index[old].remove(&node);
        self.free_slot_index[count].insert(node);
        self.free_slots[node] = count;
        self.total_free_slots = self.total_free_slots + count - old;
    }

    /// The alive node with the most free slots (ties: highest id,
    /// matching the pre-index scheduler's behaviour). Dead nodes always
    /// sit in bucket 0, so any node in a positive bucket is schedulable.
    fn most_free_node(&self) -> Option<NodeId> {
        self.free_slot_index
            .iter()
            .skip(1) // bucket 0: no free slots
            .rev()
            .find_map(|bucket| bucket.last().copied())
    }

    // ----- setup API -------------------------------------------------

    /// Loads a RAIDed file of `data_blocks` blocks. In verify mode every
    /// block receives a deterministic payload and parities are encoded
    /// with the real codec. Panics if placement capacity is exhausted.
    pub fn load_raided_file(&mut self, name: &str, data_blocks: usize) -> FileId {
        let code = self.codec.spec();
        let k = code.data_blocks();
        let block_bytes = self.cfg.cluster.block_bytes;
        // Precompute verify-mode payload tables, keyed by stripe id.
        let mut payload_table: HashMap<StripeId, Vec<Vec<u8>>> = HashMap::new();
        if self.cfg.verify_payloads {
            let base = self.hdfs.stripes().len();
            let mut remaining = data_blocks;
            let mut j = 0;
            while remaining > 0 || j == 0 {
                let real = remaining.min(k);
                remaining -= real;
                let data: Vec<Vec<u8>> = (0..k)
                    .map(|i| {
                        if i < real {
                            deterministic_payload(base + j, i, self.cfg.payload_bytes)
                        } else {
                            vec![0u8; self.cfg.payload_bytes]
                        }
                    })
                    .collect();
                match self.codec.encode_payloads(&data) {
                    Ok(stripe) => {
                        payload_table.insert(base + j, stripe);
                    }
                    // Unencodable data would only mean this constructor
                    // built a malformed lane set; skip the table entry
                    // (verification is simply not exercised for it).
                    Err(_) => debug_assert!(false, "k equal-length data lanes encode"),
                }
                j += 1;
                if remaining == 0 {
                    break;
                }
            }
        }
        let codec = self.codec.clone();
        let verify = self.cfg.verify_payloads;
        let pad_locals = self.cfg.pad_local_parities;
        self.hdfs
            .create_raided_file(
                name,
                data_blocks,
                code,
                block_bytes,
                &self.placement,
                &self.alive,
                &mut self.rng,
                |real, mask| {
                    codec.virtual_mask_into(real, mask);
                    if pad_locals {
                        // Deployed HDFS-Xorbas stored all-zero local
                        // parities; only data padding stays virtual.
                        for (pos, v) in mask.iter_mut().enumerate() {
                            if pos >= code.data_blocks() {
                                *v = false;
                            }
                        }
                    }
                },
                |sid, pos| {
                    verify
                        .then(|| payload_table.get(&sid).map(|s| s[pos].clone()))
                        .flatten()
                },
            )
            .expect("cluster has capacity for the file")
    }

    /// Loads a replicated (un-RAIDed) file.
    pub fn load_replicated_file(
        &mut self,
        name: &str,
        data_blocks: usize,
        replicas: usize,
    ) -> FileId {
        let block_bytes = self.cfg.cluster.block_bytes;
        self.hdfs
            .create_replicated_file(
                name,
                data_blocks,
                replicas,
                block_bytes,
                &self.placement,
                &self.alive,
                &mut self.rng,
            )
            .expect("cluster has capacity for the file")
    }

    // ----- scenario API ----------------------------------------------

    /// Schedules the termination of a DataNode.
    pub fn kill_node_at(&mut self, t: SimTime, node: NodeId) {
        self.push_event(t, ControlEvent::KillNode(node));
    }

    /// Schedules a replacement for a dead DataNode: the node rejoins
    /// empty (its blocks do not return), with fresh map slots. This is
    /// how multi-year scenarios model the ops team swapping failed
    /// machines so the fleet stays at size.
    pub fn revive_node_at(&mut self, t: SimTime, node: NodeId) {
        self.push_event(t, ControlEvent::ReviveNode(node));
    }

    /// Schedules the return of a transiently-failed node *with its disk
    /// intact* — a reboot or partition healing rather than the machine
    /// swap of [`Simulation::revive_node_at`]. Blocks the node held at
    /// kill time re-attach unless the BlockFixer already restored them
    /// elsewhere; nothing counts as repaired. This is the §1 mechanism
    /// behind most production "failures" being transient.
    pub fn restore_node_at(&mut self, t: SimTime, node: NodeId) {
        self.push_event(t, ControlEvent::RestoreNode(node));
    }

    /// Attaches the serving-plane workload: Poisson client-read arrivals
    /// at `cfg.reads_per_sec` from `start` until `horizon`, targets
    /// drawn Zipf(`cfg.zipf_s`) over every data block currently loaded.
    /// Outcomes land in [`crate::metrics::ServingStats`]. Call after
    /// loading files; one workload per simulation.
    pub fn start_workload(&mut self, start: SimTime, horizon: SimTime, cfg: WorkloadConfig) {
        assert!(self.workload.is_none(), "one workload per simulation");
        let k = self.codec.spec().data_blocks();
        let base: Vec<BlockId> = (0..self.hdfs.block_count())
            .filter(|&b| self.hdfs.block(b).pos < k)
            .collect();
        assert!(!base.is_empty(), "load files before starting a workload");
        let sampler = ZipfSampler::new(base.len(), cfg.zipf_s);
        let mut w = WorkloadState {
            sampler,
            perm: Vec::with_capacity(base.len()),
            base,
            rng: StdRng::seed_from_u64(cfg.seed),
            start,
            horizon,
            epoch: u64::MAX,
            cfg,
        };
        let first = start + SimTime::from_secs_f64(exp_gap_secs(&mut w.rng, cfg.reads_per_sec));
        if first <= horizon {
            self.push_event(first, ControlEvent::ClientRead);
        }
        self.workload = Some(w);
    }

    /// Schedules the silent loss of individual blocks (Fig.-7-style).
    /// No FixerScan is triggered: the blocks stay lost until read
    /// (degraded) or until a scan is scheduled explicitly.
    pub fn drop_blocks_at(&mut self, t: SimTime, blocks: Vec<BlockId>) {
        self.push_event(t, ControlEvent::DropBlocks(blocks));
    }

    /// Schedules a BlockFixer scan.
    pub fn scan_at(&mut self, t: SimTime) {
        self.push_event(t, ControlEvent::FixerScan);
    }

    /// Schedules a WordCount job over a file's data blocks.
    pub fn submit_wordcount_at(&mut self, t: SimTime, file: FileId) {
        self.push_event(t, ControlEvent::SubmitWordcount(file));
    }

    /// Schedules the decommissioning of a DataNode (§1.1): its blocks
    /// are moved elsewhere while it keeps serving, either by streaming
    /// them out (`via_repair = false`, the classical drain through one
    /// NIC) or by re-creating them from their repair groups like a
    /// scheduled repair (`via_repair = true`, the paper's proposal).
    pub fn decommission_node_at(&mut self, t: SimTime, node: NodeId, via_repair: bool) {
        self.push_event(t, ControlEvent::Decommission { node, via_repair });
    }

    /// Whether a decommissioned node has been fully drained.
    pub fn is_drained(&self, node: NodeId) -> bool {
        self.draining[node] && self.hdfs.blocks_on(node).is_empty()
    }

    /// The alive node currently hosting a block count closest to
    /// `target` (the paper terminated DataNodes "storing roughly the
    /// same number of blocks" across both clusters).
    pub fn node_with_block_count_near(&self, target: usize) -> Option<NodeId> {
        (0..self.alive.len())
            .filter(|&n| self.alive[n])
            .min_by_key(|&n| (self.hdfs.blocks_on(n).len() as i64 - target as i64).abs())
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node]
    }

    /// Picks `count` distinct alive victims whose block counts are
    /// closest to the alive-node average — the paper's methodology of
    /// terminating comparably-loaded DataNodes in both clusters.
    pub fn pick_victims(&self, count: usize) -> Vec<NodeId> {
        let alive: Vec<NodeId> = (0..self.alive.len()).filter(|&n| self.alive[n]).collect();
        if alive.is_empty() {
            return vec![];
        }
        let avg = alive
            .iter()
            .map(|&n| self.hdfs.blocks_on(n).len())
            .sum::<usize>()
            / alive.len();
        let mut sorted = alive;
        sorted.sort_by_key(|&n| ((self.hdfs.blocks_on(n).len() as i64 - avg as i64).abs(), n));
        sorted.truncate(count);
        sorted
    }

    // ----- event loop ------------------------------------------------

    /// Runs until no work remains or `limit` is reached. Returns the
    /// quiesce time. Panics if the limit is hit (a stuck simulation is
    /// a bug, not a result).
    pub fn run_until_idle(&mut self, limit: SimTime) -> SimTime {
        while self.step(limit) {}
        assert!(
            self.clock < limit,
            "simulation did not quiesce before {limit}"
        );
        self.clock
    }

    /// Runs until the clock reaches `t`, processing everything due
    /// before it; pending work may remain (unlike
    /// [`Simulation::run_until_idle`]). Scenario drivers use this to
    /// interleave decisions (e.g. picking failure victims among
    /// currently-alive nodes) with simulation progress.
    pub fn run_until(&mut self, t: SimTime) {
        while self.step(t) {}
        if self.clock < t {
            self.advance_to(t);
        }
    }

    /// Whether any work (events, flows, tasks) remains. Finished tasks
    /// are retired from the task table, so an idle table is empty.
    pub fn is_idle(&self) -> bool {
        self.events.is_empty() && self.network.active_flows() == 0 && self.tasks.is_empty()
    }

    // xlint::hot-path(event-loop) begin
    // The per-event spin: every simulated event funnels through `step`
    // and `advance_to`, so this surface reuses engine-owned scratch
    // (`completed_scratch`) instead of allocating per step. The event
    // *handlers* it dispatches to may allocate — they run once per
    // logical task, not once per clock advance.

    /// Processes the next event; returns false when idle or past `limit`.
    fn step(&mut self, limit: SimTime) -> bool {
        let next_ctrl = self.events.peek_time();
        // Ceil to the next microsecond: rounding down would advance the
        // clock by zero and never complete the flow (livelock).
        let next_flow = self
            .network
            .earliest_completion_secs()
            .map(|s| self.clock + SimTime::from_secs_f64_ceil(s));
        let target = match (next_ctrl, next_flow) {
            (None, None) => return false,
            (Some(c), None) => c,
            (None, Some(f)) => f,
            (Some(c), Some(f)) => c.min(f),
        };
        if target > limit {
            self.advance_to(limit);
            return false;
        }
        self.advance_to(target);
        // Flow completions at `target` were handled inside advance_to;
        // now drain control events due at or before the clock.
        while let Some(t) = self.events.peek_time() {
            if t > self.clock {
                break;
            }
            let Some((_, ev)) = self.events.pop() else {
                debug_assert!(false, "peeked event vanished");
                break;
            };
            self.events_processed += 1;
            self.handle_event(ev);
        }
        true
    }

    /// Advances the clock, draining network flows and accounting
    /// continuous metrics.
    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.clock);
        let start = self.clock;
        let dt = (t - self.clock).as_secs_f64();
        if dt > 0.0 {
            // Swap the completion buffer out so the network can fill it
            // while `on_flow_complete` re-borrows `self` mutably.
            let mut completed = std::mem::take(&mut self.completed_scratch);
            let bytes = self.network.advance(dt, &mut completed);
            self.metrics.record_network(start, dt, bytes);
            if self.computing_slots > 0 {
                self.metrics
                    .record_cpu_busy(start, dt, self.computing_slots);
            }
            self.clock = t;
            self.events_processed += completed.len() as u64;
            for &(id, flow) in &completed {
                self.on_flow_complete(id, flow.owner, flow.src);
            }
            completed.clear();
            self.completed_scratch = completed;
        } else {
            self.clock = t;
        }
    }
    // xlint::hot-path(event-loop) end

    fn handle_event(&mut self, ev: ControlEvent) {
        match ev {
            ControlEvent::KillNode(node) => self.on_kill_node(node),
            ControlEvent::ReviveNode(node) => self.on_revive_node(node),
            ControlEvent::RestoreNode(node) => self.on_restore_node(node),
            ControlEvent::DropBlocks(blocks) => {
                for b in blocks {
                    self.hdfs.drop_block(b);
                }
            }
            ControlEvent::FixerScan => self.on_fixer_scan(),
            ControlEvent::SubmitWordcount(file) => self.on_submit_wordcount(file),
            ControlEvent::ComputeDone(task) => self.on_compute_done(task),
            ControlEvent::ClientRead => self.on_client_read(),
            ControlEvent::Decommission { node, via_repair } => {
                self.on_decommission(node, via_repair)
            }
        }
    }

    /// Dispatches one relocate job covering every block on the node.
    fn on_decommission(&mut self, node: NodeId, via_repair: bool) {
        if !self.alive[node] || self.draining[node] {
            return;
        }
        self.draining[node] = true;
        self.placeable[node] = false;
        let mut blocks: Vec<BlockId> = self.hdfs.blocks_on(node).to_vec();
        blocks.sort_unstable();
        if blocks.is_empty() {
            return;
        }
        let job_id = self.jobs.len();
        let mut job = Job {
            kind: JobKind::Repair,
            queued: VecDeque::new(),
            running: 0,
            outstanding: 0,
            submitted: self.clock,
        };
        for block in blocks {
            let id = self.next_task;
            self.next_task += 1;
            self.tasks.insert(
                id,
                Task::new(id, job_id, TaskKind::Relocate { block, via_repair }, None),
            );
            job.queued.push_back(id);
            job.outstanding += 1;
        }
        self.jobs.push(job);
        self.jobs_with_work.insert(job_id);
        self.schedule();
    }

    // ----- failures ---------------------------------------------------

    fn on_kill_node(&mut self, node: NodeId) {
        if !self.alive[node] {
            return;
        }
        self.alive[node] = false;
        self.placeable[node] = false;
        self.set_free_slots(node, 0);
        let lost = self.hdfs.kill_node(node);
        // Remember the disk contents: if the node returns transiently
        // (`restore_node_at`) its blocks come back with it.
        self.transient_inventory.insert(node, lost);
        // Cancel flows touching the dead node; abort their tasks.
        // Ordering matters for determinism: task ids ascending.
        let mut hit_tasks: Vec<TaskId> = Vec::new();
        for fid in self.network.flows_touching(node) {
            if let Some(f) = self.network.cancel_flow(fid) {
                hit_tasks.push(f.owner);
            }
        }
        // Tasks running on the dead node are gone too. The task table
        // holds only live tasks, so this scan is the working set.
        hit_tasks.extend(
            self.tasks
                .values()
                .filter(|t| t.node == Some(node))
                .map(|t| t.id),
        );
        hit_tasks.sort_unstable();
        hit_tasks.dedup();
        // Policy: only tasks the failure actually disturbed are aborted
        // (their node died or one of their streams was cut). Unaffected
        // repairs keep running — tasks re-derive their read plans
        // against the live namespace when they start, so queued work
        // stays valid, and at warehouse failure rates (a failure every
        // ~70 minutes) cancelling the whole repair effort per failure
        // would thrash forever. Aborted repair tasks are dropped (not
        // requeued); the rescan below re-plans them consistently, while
        // workload and relocation tasks requeue individually.
        for tid in hit_tasks {
            if self.tasks.contains_key(&tid) {
                self.abort_task(tid, true);
            }
        }
        let scan_at = self.clock + SimTime::from_secs_f64(self.cfg.detection_delay_secs);
        self.push_event(scan_at, ControlEvent::FixerScan);
        self.schedule();
    }

    /// A replacement machine takes the dead node's slot in the fleet:
    /// alive again, empty disk, fresh map slots.
    fn on_revive_node(&mut self, node: NodeId) {
        if self.alive[node] {
            return;
        }
        // The old disk went with the old machine.
        self.transient_inventory.remove(&node);
        self.alive[node] = true;
        self.draining[node] = false;
        self.placeable[node] = true;
        self.set_free_slots(node, self.cfg.cluster.map_slots_per_node);
        self.schedule();
    }

    /// A transiently-failed node rejoins with its disk: re-attach every
    /// kill-time block the BlockFixer has not already restored
    /// elsewhere, waking anything parked on them. Re-attachment is not a
    /// repair — no bytes moved — so repair counters stay untouched. A
    /// repair task already in flight for a returning block settles
    /// harmlessly: its completion finds the block located and skips the
    /// restore ([`Simulation::restore_block_now`]).
    fn on_restore_node(&mut self, node: NodeId) {
        let inventory = self.transient_inventory.remove(&node).unwrap_or_default();
        if self.alive[node] {
            return;
        }
        self.alive[node] = true;
        self.draining[node] = false;
        self.placeable[node] = true;
        self.set_free_slots(node, self.cfg.cluster.map_slots_per_node);
        for block in inventory {
            if self.hdfs.block(block).location.is_none() {
                self.hdfs.restore_block(block, node);
                self.wake_block_waiters(block);
            }
        }
        self.schedule();
    }

    /// Aborts a task; workload tasks are requeued when `requeue`, repair
    /// tasks are always dropped (a rescan re-plans them consistently).
    fn abort_task(&mut self, tid: TaskId, requeue: bool) {
        // Gather state under a short borrow.
        let (state, node, job, flows, waits, repair_targets, requeueable) = {
            let Some(task) = self.tasks.get_mut(&tid) else {
                return;
            };
            let mut flows = std::mem::take(&mut task.pending_reads);
            flows.append(&mut task.pending_writes);
            task.write_queue.clear();
            let waits = std::mem::take(&mut task.waits);
            let repair_targets = match task.kind {
                TaskKind::Repair {
                    stripe,
                    ref targets,
                    ..
                } => targets.iter().map(|&p| (stripe, p)).collect(),
                TaskKind::Map { .. } | TaskKind::Relocate { .. } => Vec::new(),
            };
            // Map and Relocate tasks re-plan cleanly from scratch;
            // repair tasks are re-created by the rescan instead.
            let requeueable = matches!(task.kind, TaskKind::Map { .. } | TaskKind::Relocate { .. });
            (
                task.state,
                task.node.take(),
                task.job,
                flows,
                waits,
                repair_targets,
                requeueable,
            )
        };
        for key in repair_targets {
            self.repair_in_flight.remove(&key);
        }
        for f in flows {
            self.network.cancel_flow(f);
        }
        if state == TaskState::Computing {
            self.computing_slots -= 1;
            // Exactly one stale ComputeDone event is in flight; mark it
            // to be swallowed.
            *self.cancelled.entry(tid).or_insert(0) += 1;
        }
        let held_slot = matches!(
            state,
            TaskState::Reading | TaskState::Computing | TaskState::Writing
        );
        if held_slot {
            if let Some(n) = node {
                if self.alive[n] {
                    self.set_free_slots(n, self.free_slots[n] + 1);
                }
            }
            self.jobs[job].running -= 1;
            if self.jobs[job].kind == JobKind::Repair {
                self.repairs_running -= 1;
            }
        }
        for b in waits {
            if let Some(waiters) = self.waiting_on_block.get_mut(&b) {
                waiters.retain(|&w| w != tid);
            }
        }
        if requeue && requeueable {
            let Some(task) = self.tasks.get_mut(&tid) else {
                debug_assert!(false, "aborted task is live");
                return;
            };
            task.state = TaskState::Queued;
            self.jobs[job].queued.push_back(tid);
            self.jobs_with_work.insert(job);
        } else {
            self.retire_task(tid);
        }
    }

    // ----- BlockFixer ---------------------------------------------------

    /// Marks a stripe unrecoverable (recording the data loss exactly
    /// once) and aborts any tasks parked on its permanently-lost blocks
    /// — those restores will never come, so the waiters would otherwise
    /// strand forever, pinning their jobs and `repair_in_flight`
    /// entries. Aborted workload/relocation waiters requeue, re-resolve
    /// against the doomed stripe and complete vacuously; repair waiters
    /// are dropped.
    fn abandon_stripe(&mut self, stripe: StripeId) {
        if !self.hdfs.mark_unrecoverable(stripe) {
            return;
        }
        self.metrics.record_data_loss();
        let mut stranded: Vec<TaskId> = Vec::new();
        let mut lost_blocks: Vec<BlockId> = Vec::new();
        for p in self.hdfs.positions(stripe) {
            if let Position::Real(b) = p {
                if self.hdfs.block(*b).location.is_none() {
                    lost_blocks.push(*b);
                    if let Some(waiters) = self.waiting_on_block.get(b) {
                        stranded.extend(waiters.iter().copied());
                    }
                }
            }
        }
        stranded.sort_unstable();
        stranded.dedup();
        for tid in stranded {
            self.abort_task(tid, true);
        }
        // Serving reads parked on these blocks will never be woken:
        // fail them now rather than letting them dangle unaccounted.
        for b in lost_blocks {
            if let Some(parked) = self.reads_waiting_on_block.remove(&b) {
                self.metrics.serving.failed_reads += parked.len() as u64;
            }
        }
    }

    fn on_fixer_scan(&mut self) {
        // Group the lost-block index by stripe without allocating: sort
        // (stripe, position) pairs in a reused scratch and walk runs.
        let mut pairs = std::mem::take(&mut self.scan_scratch);
        pairs.clear();
        for &b in self.hdfs.lost_blocks() {
            let meta = self.hdfs.block(b);
            pairs.push((meta.stripe, meta.pos));
        }
        if pairs.is_empty() {
            self.scan_scratch = pairs;
            return;
        }
        pairs.sort_unstable();
        let mut job_tasks: Vec<Task> = Vec::new();
        let job_id = self.jobs.len();
        let mut run_start = 0;
        while run_start < pairs.len() {
            let stripe = pairs[run_start].0;
            let mut run_end = run_start;
            while run_end < pairs.len() && pairs[run_end].0 == stripe {
                run_end += 1;
            }
            let positions = &pairs[run_start..run_end];
            run_start = run_end;
            let targets: Vec<usize> = positions
                .iter()
                .map(|&(_, p)| p)
                .filter(|&p| !self.repair_in_flight.contains(&(stripe, p)))
                .collect();
            if targets.is_empty() {
                continue;
            }
            let mut unavailable = std::mem::take(&mut self.pos_scratch);
            self.hdfs
                .unavailable_positions_into(stripe, &mut unavailable);
            let plan = self.plan_cached(&unavailable, &targets);
            self.pos_scratch = unavailable;
            let plan = match plan {
                Ok(plan) => plan,
                Err(_) => {
                    self.abandon_stripe(stripe);
                    continue;
                }
            };
            // Deployed HDFS-RAID runs one BlockFixer map task per lost
            // block (each opening its own streams); our codec plans one
            // heavy task per stripe, so split it when mirroring the
            // deployed system. Light tasks are already per-block.
            let mut ptasks = plan.tasks.clone();
            if self.cfg.read_policy == ReadPolicy::Deployed {
                ptasks = ptasks
                    .into_iter()
                    .flat_map(|t| {
                        let light = t.light;
                        let reads = t.reads;
                        t.repairs.into_iter().map(move |p| xorbas_core::RepairTask {
                            repairs: vec![p],
                            reads: reads.clone(),
                            half_reads: vec![],
                            light,
                        })
                    })
                    .collect();
            }
            for mut ptask in ptasks {
                // A plan may repair more than the requested targets
                // (peeling intermediates of a multi-loss group). Any
                // position already owned by an in-flight task — e.g. a
                // parked sibling waiting on an intermediate — must not
                // get a second task, or two repairs would race to
                // restore one block.
                ptask
                    .repairs
                    .retain(|&p| !self.repair_in_flight.contains(&(stripe, p)));
                if ptask.repairs.is_empty() {
                    continue;
                }
                for &p in &ptask.repairs {
                    self.repair_in_flight.insert((stripe, p));
                }
                let id = self.next_task;
                self.next_task += 1;
                job_tasks.push(Task::new(
                    id,
                    job_id,
                    TaskKind::Repair {
                        stripe,
                        targets: ptask.repairs,
                        light: ptask.light,
                    },
                    None,
                ));
            }
        }
        self.scan_scratch = pairs;
        if job_tasks.is_empty() {
            return;
        }
        let mut job = Job {
            kind: JobKind::Repair,
            queued: VecDeque::new(),
            running: 0,
            outstanding: job_tasks.len(),
            submitted: self.clock,
        };
        for t in job_tasks {
            job.queued.push_back(t.id);
            self.tasks.insert(t.id, t);
        }
        self.jobs.push(job);
        self.jobs_with_work.insert(job_id);
        self.schedule();
    }

    // ----- workload -------------------------------------------------

    fn on_submit_wordcount(&mut self, file: FileId) {
        let job_id = self.jobs.len();
        let mut job = Job {
            kind: JobKind::Workload,
            queued: VecDeque::new(),
            running: 0,
            outstanding: 0,
            submitted: self.clock,
        };
        let stripe_ids = self.hdfs.files()[file].stripes.clone();
        let k = self.codec.spec().data_blocks();
        for sid in stripe_ids {
            let mut positions = std::mem::take(&mut self.stripe_scratch);
            positions.clear();
            positions.extend_from_slice(self.hdfs.positions(sid));
            for (pos, p) in positions.iter().enumerate() {
                if pos >= k {
                    break; // wordcount reads data blocks only
                }
                let Position::Real(block) = *p else { continue };
                let id = self.next_task;
                self.next_task += 1;
                let preferred = self.hdfs.block(block).location;
                self.tasks.insert(
                    id,
                    Task::new(id, job_id, TaskKind::Map { block }, preferred),
                );
                job.queued.push_back(id);
                job.outstanding += 1;
            }
            self.stripe_scratch = positions;
        }
        assert!(job.outstanding > 0, "wordcount job over an empty file");
        self.jobs.push(job);
        self.jobs_with_work.insert(job_id);
        self.schedule();
    }

    // ----- serving plane ---------------------------------------------

    /// One client-read arrival: roll the churn epoch forward if a
    /// boundary passed, draw the target block, schedule the next arrival
    /// and serve this one.
    fn on_client_read(&mut self) {
        let Some(mut w) = self.workload.take() else {
            debug_assert!(false, "ClientRead events imply an attached workload");
            return;
        };
        let cfg = w.cfg;
        let epoch = if cfg.churn_every == SimTime::ZERO {
            0
        } else {
            self.clock.saturating_sub(w.start).0 / cfg.churn_every.0
        };
        if w.epoch != epoch {
            w.reshuffle(epoch);
        }
        let rank = w.sampler.sample_rank(&mut w.rng);
        let block = w.perm[rank];
        let gap = exp_gap_secs(&mut w.rng, cfg.reads_per_sec);
        let next = self.clock + SimTime::from_secs_f64(gap);
        if next <= w.horizon {
            self.push_event(next, ControlEvent::ClientRead);
        }
        self.workload = Some(w);
        self.serve_read(cfg, block);
    }

    /// Serves one client read of `block` under the workload's policy,
    /// recording outcome, bytes and latency in
    /// [`crate::metrics::ServingStats`]. Latency is analytic (O(1) per
    /// read, no flow-level simulation): client reads are `read_bytes`
    /// range reads that would be lost in the noise of the coarse
    /// block-sized repair flows, but their *relative* cost — direct vs
    /// degraded vs wait-for-fixer — is exactly the paper's story.
    fn serve_read(&mut self, cfg: WorkloadConfig, block: BlockId) {
        self.metrics.serving.reads_issued += 1;
        let meta = self.hdfs.block(block).clone();
        if meta.location.is_some() {
            self.metrics
                .serving
                .record_direct(cfg.direct_service_ms(), cfg.read_bytes as f64);
            return;
        }
        // The block is unavailable: this is a recovery operation in the
        // Rashmi et al. sense. Classify the stripe's loss multiplicity
        // before deciding how to serve.
        let stripe = meta.stripe;
        let mut unavailable = std::mem::take(&mut self.pos_scratch);
        self.hdfs
            .unavailable_positions_into(stripe, &mut unavailable);
        self.metrics
            .serving
            .record_recovery_event(unavailable.len() == 1);
        if self.hdfs.stripe(stripe).unrecoverable {
            self.pos_scratch = unavailable;
            self.metrics.serving.failed_reads += 1;
            return;
        }
        match cfg.policy {
            ServePolicy::WaitForFixer => {
                self.pos_scratch = unavailable;
                self.reads_waiting_on_block
                    .entry(block)
                    .or_default()
                    .push(self.clock);
            }
            ServePolicy::Degraded => {
                let plan = self.plan_cached_with_hit(&unavailable, &[meta.pos]);
                self.pos_scratch = unavailable;
                let (plan, cache_hit) = match plan {
                    Ok(p) => p,
                    Err(_) => {
                        // Unrecoverable pattern the fixer has not seen
                        // yet: abandon (exactly-once) and fail the read.
                        self.abandon_stripe(stripe);
                        self.metrics.serving.failed_reads += 1;
                        return;
                    }
                };
                let mut positions = std::mem::take(&mut self.stripe_scratch);
                positions.clear();
                positions.extend_from_slice(self.hdfs.positions(stripe));
                let (read_blocks, light) = plan_reads(&plan, &positions);
                self.stripe_scratch = positions;
                // Range-read the same offsets of every surviving lane in
                // the plan, stream them over the client NIC, decode.
                let fetched = read_blocks.len().max(1) as f64 * cfg.read_bytes as f64;
                let decode_bps = if light {
                    self.cfg.compute.xor_bps
                } else {
                    self.cfg.compute.rs_decode_bps
                };
                let mut latency_ms = cfg.base_latency_ms
                    + fetched / cfg.client_read_bps * 1e3
                    + fetched / decode_bps * 1e3;
                if !cache_hit {
                    latency_ms += cfg.plan_compile_ms;
                }
                self.metrics
                    .serving
                    .record_degraded(light, latency_ms, fetched);
            }
        }
    }

    // ----- scheduler --------------------------------------------------

    /// Whether the repair throttle currently blocks repair-kind jobs.
    fn repairs_throttled(&self) -> bool {
        let cap = self.cfg.max_concurrent_repairs;
        cap > 0 && self.repairs_running >= cap
    }

    /// The fair-scheduler candidate: the job with the fewest running
    /// tasks among those with queued work (ties: lowest id). Jobs whose
    /// queues emptied are dropped from the index lazily here; repair
    /// jobs are skipped (left queued) while the repair throttle is hit.
    fn pick_job(&mut self) -> Option<JobId> {
        let throttled = self.repairs_throttled();
        loop {
            let mut best: Option<(usize, JobId)> = None;
            let mut empty: Option<JobId> = None;
            for &j in &self.jobs_with_work {
                if self.jobs[j].queued.is_empty() {
                    empty = Some(j);
                    break; // drop it, then rescan
                }
                if throttled && self.jobs[j].kind == JobKind::Repair {
                    continue;
                }
                let key = (self.jobs[j].running, j);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            match empty {
                Some(j) => {
                    self.jobs_with_work.remove(&j);
                }
                None => return best.map(|(_, j)| j),
            }
        }
    }

    /// Hadoop-FairScheduler-style allocation: the job with the fewest
    /// running tasks gets the next free slot; map tasks prefer a slot on
    /// the node hosting their input. Re-entrant calls (task completions
    /// triggered while scheduling) no-op — the active loop re-examines
    /// slots and queues every iteration.
    fn schedule(&mut self) {
        if self.scheduling {
            return;
        }
        self.scheduling = true;
        loop {
            if self.total_free_slots == 0 {
                break;
            }
            let Some(job_id) = self.pick_job() else {
                break;
            };
            let Some(tid) = self.jobs[job_id].queued.pop_front() else {
                debug_assert!(false, "picked jobs have queued tasks");
                continue;
            };
            if self
                .tasks
                .get(&tid)
                .is_none_or(|t| t.state != TaskState::Queued)
            {
                continue; // lazily dropped (aborted while queued)
            }
            let preferred = self.tasks[&tid].preferred_node;
            let node = match preferred {
                Some(n) if self.alive[n] && self.free_slots[n] > 0 => n,
                _ => match self.most_free_node() {
                    Some(n) => n,
                    None => {
                        // No slot anywhere: requeue and stop.
                        self.jobs[job_id].queued.push_front(tid);
                        self.jobs_with_work.insert(job_id);
                        break;
                    }
                },
            };
            self.start_task(tid, node);
        }
        self.scheduling = false;
    }

    /// Resolves the reads of a task given the current namespace state.
    /// Returns `(read_blocks_with_fractions, compute_secs, restores)` or
    /// `None` when the task is impossible (data loss) or trivially done.
    /// Each read carries the fraction of the block fetched: 1.0 for
    /// whole-lane reads, 0.5 where the plan needs only one substripe of
    /// a lane (the piggybacked RS's single-data-loss repair).
    #[allow(clippy::type_complexity)]
    fn resolve_task_work(
        &mut self,
        tid: TaskId,
    ) -> Option<(Vec<(BlockId, f64)>, f64, Vec<(usize, BlockId)>)> {
        let task = self.tasks[&tid].clone();
        let block_bytes = self.cfg.cluster.block_bytes as f64;
        match task.kind {
            TaskKind::Repair {
                stripe,
                ref targets,
                light,
            } => {
                // One scan of the stripe serves both the still-lost
                // filter and replanning (scratch buffer reused; nothing
                // mutates the namespace in between).
                let mut unavailable = std::mem::take(&mut self.pos_scratch);
                self.hdfs
                    .unavailable_positions_into(stripe, &mut unavailable);
                let still_lost: Vec<usize> = targets
                    .iter()
                    .copied()
                    .filter(|p| unavailable.contains(p))
                    .collect();
                if still_lost.is_empty() {
                    self.pos_scratch = unavailable;
                    return Some((vec![], 0.0, vec![]));
                }
                let mut positions = std::mem::take(&mut self.stripe_scratch);
                positions.clear();
                positions.extend_from_slice(self.hdfs.positions(stripe));
                let read_positions: Vec<(usize, f64)> = if light {
                    // The planned light reads were fixed at scan time; they
                    // remain exactly the repair group, re-derived here.
                    let plan = match self.plan_cached(&unavailable, &still_lost) {
                        Ok(p) => p,
                        Err(_) => {
                            self.pos_scratch = unavailable;
                            self.stripe_scratch = positions;
                            return None;
                        }
                    };
                    let mut reads: Vec<usize> = Vec::new();
                    let mut repaired: Vec<usize> = Vec::new();
                    for t in &plan.tasks {
                        for &r in &t.reads {
                            if !repaired.contains(&r) && !reads.contains(&r) {
                                reads.push(r);
                            }
                        }
                        repaired.extend(t.repairs.iter().copied());
                    }
                    reads.sort_unstable();
                    reads.into_iter().map(|p| (p, 1.0)).collect()
                } else {
                    match self.cfg.read_policy {
                        ReadPolicy::Deployed => (0..positions.len())
                            .filter(|p| !unavailable.contains(p))
                            .map(|p| (p, 1.0))
                            .collect(),
                        ReadPolicy::Minimal => {
                            let plan = match self.plan_cached(&unavailable, &still_lost) {
                                Ok(p) => p,
                                Err(_) => {
                                    self.pos_scratch = unavailable;
                                    self.stripe_scratch = positions;
                                    return None;
                                }
                            };
                            // Deduplicated per-position fractions: a
                            // half-lane read moves (and bills) half a
                            // block; whole-lane plans are all 1.0.
                            plan.read_fractions()
                        }
                    }
                };
                self.pos_scratch = unavailable;
                // Map to real blocks; virtual positions read for free.
                let read_blocks: Vec<(BlockId, f64)> = read_positions
                    .iter()
                    .filter_map(|&(p, frac)| match positions[p] {
                        Position::Real(b) => Some((b, frac)),
                        Position::Virtual => None,
                    })
                    .collect();
                let rate = if light {
                    self.cfg.compute.xor_bps
                } else {
                    self.cfg.compute.rs_decode_bps
                };
                let read_volume: f64 = read_blocks.iter().map(|&(_, f)| f).sum();
                let compute = read_volume * block_bytes / rate;
                let restores: Vec<(usize, BlockId)> = still_lost
                    .iter()
                    .filter_map(|&p| match positions[p] {
                        Position::Real(b) => Some((p, b)),
                        Position::Virtual => {
                            debug_assert!(false, "virtual positions never fail");
                            None
                        }
                    })
                    .collect();
                self.stripe_scratch = positions;
                Some((read_blocks, compute, restores))
            }
            TaskKind::Map { block } => {
                let meta = self.hdfs.block(block).clone();
                let wordcount = block_bytes / self.cfg.compute.wordcount_bps;
                if meta.location.is_some() {
                    return Some((vec![(block, 1.0)], wordcount, vec![]));
                }
                // Degraded read: reconstruct the block in memory first.
                let stripe = meta.stripe;
                let mut unavailable = std::mem::take(&mut self.pos_scratch);
                self.hdfs
                    .unavailable_positions_into(stripe, &mut unavailable);
                let plan = self.plan_cached(&unavailable, &[meta.pos]);
                self.pos_scratch = unavailable;
                let plan = match plan {
                    Ok(p) => p,
                    Err(_) => {
                        self.abandon_stripe(stripe);
                        return None;
                    }
                };
                let mut positions = std::mem::take(&mut self.stripe_scratch);
                positions.clear();
                positions.extend_from_slice(self.hdfs.positions(stripe));
                let (read_blocks, light) = plan_reads(&plan, &positions);
                self.stripe_scratch = positions;
                let rate = if light {
                    self.cfg.compute.xor_bps
                } else {
                    self.cfg.compute.rs_decode_bps
                };
                let decode = read_blocks.len() as f64 * block_bytes / rate;
                // Degraded map reads stream whole blocks (the wordcount
                // consumes the payload anyway), so every fraction is 1.0.
                let reads = read_blocks.into_iter().map(|b| (b, 1.0)).collect();
                Some((reads, wordcount + decode, vec![]))
            }
            TaskKind::Relocate { block, via_repair } => {
                let meta = self.hdfs.block(block).clone();
                let pos = meta.pos;
                // Lost in the meantime: the BlockFixer owns it now.
                meta.location?;
                if !via_repair {
                    // Classical drain: stream the block off the node.
                    return Some((vec![(block, 1.0)], 0.0, vec![(pos, block)]));
                }
                // Scheduled-repair drain: rebuild from peers, never
                // touching the draining node.
                let stripe = meta.stripe;
                let mut unavailable = std::mem::take(&mut self.pos_scratch);
                self.hdfs
                    .unavailable_positions_into(stripe, &mut unavailable);
                unavailable.push(pos);
                unavailable.sort_unstable();
                let plan = self.plan_cached(&unavailable, &[pos]);
                self.pos_scratch = unavailable;
                let plan = plan.ok()?;
                let mut positions = std::mem::take(&mut self.stripe_scratch);
                positions.clear();
                positions.extend_from_slice(self.hdfs.positions(stripe));
                let (read_blocks, light) = plan_reads(&plan, &positions);
                self.stripe_scratch = positions;
                let rate = if light {
                    self.cfg.compute.xor_bps
                } else {
                    self.cfg.compute.rs_decode_bps
                };
                let compute = read_blocks.len() as f64 * block_bytes / rate;
                let reads = read_blocks.into_iter().map(|b| (b, 1.0)).collect();
                Some((reads, compute, vec![(pos, block)]))
            }
        }
    }

    fn start_task(&mut self, tid: TaskId, node: NodeId) {
        let Some((read_blocks, compute_secs, restores)) = self.resolve_task_work(tid) else {
            // Impossible task (data loss): complete it vacuously.
            self.complete_task(tid);
            return;
        };
        // Any read of a currently-lost block (an intermediate of a
        // peeling chain) parks the task until that block is restored.
        let lost_reads: Vec<BlockId> = read_blocks
            .iter()
            .map(|&(b, _)| b)
            .filter(|&b| self.hdfs.block(b).location.is_none())
            .collect();
        if !lost_reads.is_empty() {
            let Some(task) = self.tasks.get_mut(&tid) else {
                debug_assert!(false, "started task is live");
                return;
            };
            task.state = TaskState::Waiting;
            task.waits = lost_reads.clone();
            for b in lost_reads {
                self.waiting_on_block.entry(b).or_default().push(tid);
            }
            return;
        }
        // Claim the slot.
        self.set_free_slots(node, self.free_slots[node] - 1);
        let job = self.tasks[&tid].job;
        self.jobs[job].running += 1;
        if self.jobs[job].kind == JobKind::Repair {
            self.repairs_running += 1;
        }
        if let Some(task) = self.tasks.get_mut(&tid) {
            task.node = Some(node);
            task.state = TaskState::Reading;
            task.compute_secs = compute_secs;
            task.restores = restores;
        } else {
            debug_assert!(false, "started task is live");
        }
        // Issue reads: local ones are free and instantaneous. A
        // fractional read (a piggyback half-lane) moves and bills only
        // that fraction of the block.
        let block_bytes = self.cfg.cluster.block_bytes as f64;
        let mut flows = Vec::new();
        for (b, frac) in read_blocks {
            let Some(src) = self.hdfs.block(b).location else {
                // Lost reads parked the task above; a read here is live.
                debug_assert!(false, "read block has a location");
                continue;
            };
            self.metrics
                .record_block_read(self.clock, block_bytes * frac);
            if src != node {
                flows.push(self.network.start_flow(src, node, block_bytes * frac, tid));
            }
        }
        let Some(task) = self.tasks.get_mut(&tid) else {
            debug_assert!(false, "started task is live");
            return;
        };
        task.pending_reads = flows;
        if task.pending_reads.is_empty() {
            self.begin_compute(tid);
        }
    }

    fn begin_compute(&mut self, tid: TaskId) {
        let Some(task) = self.tasks.get_mut(&tid) else {
            debug_assert!(false, "computing task is live");
            return;
        };
        task.state = TaskState::Computing;
        let dur = task.compute_secs;
        self.computing_slots += 1;
        let t = self.clock + SimTime::from_secs_f64(dur);
        self.push_event(t, ControlEvent::ComputeDone(tid));
    }

    fn on_compute_done(&mut self, tid: TaskId) {
        if let Some(stale) = self.cancelled.get_mut(&tid) {
            *stale -= 1;
            if *stale == 0 {
                self.cancelled.remove(&tid);
            }
            return;
        }
        let Some(task) = self.tasks.get(&tid) else {
            return;
        };
        if task.state != TaskState::Computing {
            return;
        }
        let Some(node) = task.node else {
            debug_assert!(false, "computing tasks have a node");
            return;
        };
        self.computing_slots -= 1;
        let restores = task.restores.clone();
        if restores.is_empty() {
            self.complete_task(tid);
            return;
        }
        // Write phase: place each reconstructed block and ship it.
        if let Some(task) = self.tasks.get_mut(&tid) {
            task.state = TaskState::Writing;
        }
        let block_bytes = self.cfg.cluster.block_bytes as f64;
        for (_, block) in restores {
            let stripe = self.hdfs.block(block).stripe;
            let mut exclude = std::mem::take(&mut self.exclude_scratch);
            self.hdfs.stripe_nodes_into(stripe, &mut exclude);
            let target = self
                .placement
                .place_one(&self.placeable, &exclude, &mut self.rng)
                .or_else(|| {
                    self.placement
                        .place_one(&self.placeable, &[], &mut self.rng)
                });
            self.exclude_scratch = exclude;
            let Some(target) = target else {
                debug_assert!(false, "some node accepts the restored block");
                continue;
            };
            if target == node {
                self.settle_block(tid, block, target);
            } else {
                let fid = self.network.start_flow(node, target, block_bytes, tid);
                if let Some(task) = self.tasks.get_mut(&tid) {
                    task.pending_writes.push(fid);
                    task.write_queue.push((fid, block, target));
                }
            }
        }
        let Some(task) = self.tasks.get_mut(&tid) else {
            debug_assert!(false, "writing task is live");
            return;
        };
        if task.pending_writes.is_empty() {
            self.complete_task(tid);
        }
    }

    /// Lands a task's output block: repairs restore a lost block,
    /// relocations move a live one.
    fn settle_block(&mut self, tid: TaskId, block: BlockId, node: NodeId) {
        let relocating = matches!(
            self.tasks.get(&tid).map(|t| &t.kind),
            Some(TaskKind::Relocate { .. })
        );
        if relocating {
            if self.hdfs.block(block).location.is_some() {
                self.hdfs.relocate_block(block, node);
            } else {
                // The source died mid-drain; this became a repair.
                self.restore_block_now(block, node);
            }
        } else {
            self.restore_block_now(block, node);
        }
    }

    fn restore_block_now(&mut self, block: BlockId, node: NodeId) {
        // Already located: a transient node return re-attached the block
        // while this repair was in flight. The reconstruction is
        // redundant — drop it on the floor (the bytes were already
        // charged, matching the real system, where the write-back races
        // the re-registration) and only settle the bookkeeping.
        if self.hdfs.block(block).location.is_none() {
            if self.cfg.verify_payloads {
                self.verify_repair(block);
            }
            self.hdfs.restore_block(block, node);
            self.metrics.record_block_repaired();
        }
        let stripe = self.hdfs.block(block).stripe;
        let pos = self.hdfs.block(block).pos;
        self.repair_in_flight.remove(&(stripe, pos));
        self.wake_block_waiters(block);
    }

    /// Wakes everything parked on a freshly-available block: waiting
    /// tasks requeue, and parked serving reads complete with their full
    /// park time plus a direct service charged as fixer-wait latency.
    fn wake_block_waiters(&mut self, block: BlockId) {
        if let Some(waiters) = self.waiting_on_block.remove(&block) {
            for tid in waiters {
                let Some(task) = self.tasks.get_mut(&tid) else {
                    continue;
                };
                if task.state != TaskState::Waiting {
                    continue;
                }
                task.state = TaskState::Queued;
                let job = task.job;
                // Unpark from every other block it was waiting on.
                let waits = std::mem::take(&mut task.waits);
                for b in waits {
                    if b != block {
                        if let Some(ws) = self.waiting_on_block.get_mut(&b) {
                            ws.retain(|&w| w != tid);
                        }
                    }
                }
                self.jobs[job].queued.push_back(tid);
                self.jobs_with_work.insert(job);
            }
        }
        if let Some(parked) = self.reads_waiting_on_block.remove(&block) {
            if let Some(w) = &self.workload {
                let service_ms = w.cfg.direct_service_ms();
                let bytes = w.cfg.read_bytes as f64;
                for issued in parked {
                    let waited_ms = self.clock.saturating_sub(issued).as_secs_f64() * 1e3;
                    self.metrics
                        .serving
                        .record_fixer_wait(waited_ms + service_ms, bytes);
                }
            } else {
                debug_assert!(false, "parked reads imply an attached workload");
            }
        }
    }

    /// Verify mode: reconstruct the block's payload with the real codec
    /// from the other positions and compare with the original.
    ///
    /// Runs on the zero-copy path: surviving payloads are copied into the
    /// preallocated [`StripeArena`] lanes (no per-repair allocation) and
    /// decoded by a [`RepairSession`] compiled once per failure pattern
    /// and cached — the simulator's repeated patterns never re-run the
    /// linear solve.
    fn verify_repair(&mut self, block: BlockId) {
        // Split borrows: arena and session cache mutate while the
        // namespace and codec are only read.
        let this = &mut *self;
        let hdfs = &this.hdfs;
        let codec = &this.codec;
        let meta = hdfs.block(block);
        let stripe_id = meta.stripe;
        let target_pos = meta.pos;
        let positions = hdfs.positions(stripe_id);
        let Some(want) = hdfs.payload(block) else {
            debug_assert!(false, "verify mode stores payloads");
            return;
        };
        if let CodecInstance::Replication { .. } = codec {
            // Replication repair is a replica copy; verify against any
            // surviving replica's payload.
            let survivor = positions.iter().enumerate().find_map(|(pos, p)| match p {
                Position::Real(b) if pos != target_pos => {
                    let bm = hdfs.block(*b);
                    if bm.location.is_some() {
                        hdfs.payload(*b)
                    } else {
                        None
                    }
                }
                _ => None,
            });
            let Some(survivor) = survivor else {
                debug_assert!(false, "a replica survives any repaired loss");
                return;
            };
            assert_eq!(
                survivor, want,
                "repair of block {block} corrupted its payload"
            );
            return;
        }
        let n = positions.len();
        let len = this.cfg.payload_bytes;
        let lanes = this.stripe_arena.lanes(n, len);
        let mut missing: Vec<usize> = Vec::new();
        for (pos, p) in positions.iter().enumerate() {
            match p {
                Position::Virtual => lanes[pos].fill(0),
                Position::Real(b) => {
                    let bm = hdfs.block(*b);
                    match hdfs.payload(*b) {
                        Some(p) if pos != target_pos && bm.location.is_some() => {
                            lanes[pos].copy_from_slice(p);
                        }
                        // A live block without a stored payload is a
                        // bookkeeping bug; decode it like a loss.
                        other => {
                            debug_assert!(
                                other.is_some() || pos == target_pos || bm.location.is_none(),
                                "verify mode stores payloads"
                            );
                            missing.push(pos);
                        }
                    }
                }
            }
        }
        let session = match this.session_cache.entry(missing.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                // Replication was handled above and a block was just
                // repaired, so this pattern must compile; if it does
                // not, skip verification rather than poison the cache.
                let Some(Ok(session)) = codec.repair_session(&missing) else {
                    debug_assert!(false, "repaired erasure patterns compile to sessions");
                    return;
                };
                slot.insert(session)
            }
        };
        let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
        let Ok(mut view) = StripeViewMut::new(&mut lane_refs, &missing) else {
            debug_assert!(false, "arena lanes share one length");
            return;
        };
        if let Err(e) = session.repair(&mut view) {
            debug_assert!(false, "cached session repairs its own pattern: {e}");
            return;
        }
        assert_eq!(
            &lanes[target_pos], want,
            "repair of block {block} corrupted its payload"
        );
    }

    fn on_flow_complete(&mut self, fid: FlowId, owner: TaskId, _src: NodeId) {
        let Some(task) = self.tasks.get_mut(&owner) else {
            return;
        };
        if let Some(i) = task.pending_reads.iter().position(|&f| f == fid) {
            task.pending_reads.swap_remove(i);
            if task.pending_reads.is_empty() && task.state == TaskState::Reading {
                self.begin_compute(owner);
            }
            return;
        }
        if let Some(i) = task.pending_writes.iter().position(|&f| f == fid) {
            task.pending_writes.swap_remove(i);
            let Some(idx) = task.write_queue.iter().position(|&(f, _, _)| f == fid) else {
                debug_assert!(false, "pending write flows are queued");
                return;
            };
            let (_, block, target) = task.write_queue.remove(idx);
            let done = task.pending_writes.is_empty();
            self.settle_block(owner, block, target);
            if done {
                self.complete_task(owner);
            }
        }
    }

    fn complete_task(&mut self, tid: TaskId) {
        let Some(task) = self.tasks.get(&tid) else {
            debug_assert!(false, "completed task is live");
            return;
        };
        let held_slot = matches!(
            task.state,
            TaskState::Reading | TaskState::Computing | TaskState::Writing
        );
        let node = task.node;
        let job = task.job;
        let repair = match task.kind {
            TaskKind::Repair {
                stripe,
                ref targets,
                ..
            } => Some((stripe, targets.clone())),
            _ => None,
        };
        if held_slot {
            if let Some(n) = node {
                if self.alive[n] {
                    self.set_free_slots(n, self.free_slots[n] + 1);
                }
            }
            self.jobs[job].running -= 1;
            if self.jobs[job].kind == JobKind::Repair {
                self.repairs_running -= 1;
            }
        }
        if let Some((stripe, targets)) = repair {
            for p in targets {
                self.repair_in_flight.remove(&(stripe, p));
            }
        }
        self.retire_task(tid);
        self.schedule();
    }

    /// Removes a finished task from the table and settles job
    /// accounting; the table holds only live tasks.
    fn retire_task(&mut self, tid: TaskId) {
        let Some(task) = self.tasks.remove(&tid) else {
            debug_assert!(false, "retired task is live");
            return;
        };
        let job = task.job;
        self.jobs[job].outstanding -= 1;
        if self.jobs[job].outstanding == 0 {
            let j = &mut self.jobs[job];
            // Release the queue's capacity: completed jobs are history.
            j.queued = VecDeque::new();
            let (kind, submitted) = (j.kind, j.submitted);
            self.jobs_with_work.remove(&job);
            match kind {
                JobKind::Repair => self.metrics.record_repair_job(submitted, self.clock),
                JobKind::Workload => self.metrics.record_workload_job(submitted, self.clock),
            }
        }
    }
}

/// Distinct read blocks of a multi-step repair plan, honouring peeling
/// order (an intermediate repaired by an earlier step is not re-read),
/// plus whether every step used the light decoder.
fn plan_reads(plan: &xorbas_core::RepairPlan, positions: &[Position]) -> (Vec<BlockId>, bool) {
    let mut reads: Vec<usize> = Vec::new();
    let mut repaired: Vec<usize> = Vec::new();
    let mut light = true;
    for t in &plan.tasks {
        light &= t.light;
        for &r in &t.reads {
            if !repaired.contains(&r) && !reads.contains(&r) {
                reads.push(r);
            }
        }
        repaired.extend(t.repairs.iter().copied());
    }
    reads.sort_unstable();
    let read_blocks: Vec<BlockId> = reads
        .iter()
        .filter_map(|&p| match positions[p] {
            Position::Real(b) => Some(b),
            Position::Virtual => None,
        })
        .collect();
    (read_blocks, light)
}

/// Deterministic verify-mode payload for a (stripe, position).
fn deterministic_payload(stripe: usize, pos: usize, len: usize) -> Vec<u8> {
    let mut state = (stripe as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(pos as u64 + 1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorbas_core::CodeSpec;

    fn small_cfg(code: CodeSpec) -> SimConfig {
        let mut cfg = SimConfig::ec2(code);
        cfg.cluster.nodes = 20;
        cfg.cluster.block_bytes = 8 << 20; // keep transfers quick
        cfg.verify_payloads = true;
        cfg.payload_bytes = 64;
        cfg
    }

    #[test]
    fn single_node_failure_repairs_everything_lrc() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(4).unwrap();
        let before = sim.hdfs.blocks_on(victim).len();
        assert!(before > 0);
        sim.kill_node_at(SimTime::from_secs(10), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.hdfs.lost_blocks().is_empty(), "all blocks repaired");
        assert_eq!(sim.metrics.snapshot().blocks_repaired as usize, before);
        assert!(!sim.metrics.repair_jobs.is_empty());
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn single_node_failure_repairs_everything_rs() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::RS_10_4));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(4).unwrap();
        sim.kill_node_at(SimTime::from_secs(10), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.hdfs.lost_blocks().is_empty());
    }

    #[test]
    fn lrc_reads_half_as_much_as_rs_for_single_failures() {
        let mut reads = Vec::new();
        for code in [CodeSpec::RS_10_4, CodeSpec::LRC_10_6_5] {
            let mut cfg = small_cfg(code);
            cfg.read_policy = ReadPolicy::Minimal;
            cfg.seed = 42;
            let mut sim = Simulation::new(cfg);
            for i in 0..8 {
                sim.load_raided_file(&format!("f{i}"), 10);
            }
            let victim = sim.node_with_block_count_near(6).unwrap();
            let lost = sim.hdfs.blocks_on(victim).len();
            sim.kill_node_at(SimTime::from_secs(5), victim);
            sim.run_until_idle(SimTime::from_mins(600));
            let per_block = sim.metrics.snapshot().hdfs_bytes_read
                / (lost as f64 * sim.config().cluster.block_bytes as f64);
            reads.push(per_block);
        }
        // RS ≈ 10 blocks per lost block; LRC ≈ 5 (some stripes suffer
        // multi-block losses so the ratio is approximate).
        assert!(reads[0] > 8.0, "RS per-block reads {}", reads[0]);
        assert!(reads[1] < 6.5, "LRC per-block reads {}", reads[1]);
        assert!(reads[0] / reads[1] > 1.6, "ratio {}", reads[0] / reads[1]);
    }

    #[test]
    fn replication_repairs_with_single_copy_reads() {
        let mut cfg = small_cfg(CodeSpec::REPLICATION_3);
        cfg.verify_payloads = false; // replicated loader stores no payloads
        let mut sim = Simulation::new(cfg);
        sim.load_replicated_file("r", 30, 3);
        let victim = sim.node_with_block_count_near(5).unwrap();
        let lost = sim.hdfs.blocks_on(victim).len();
        assert!(lost > 0);
        sim.kill_node_at(SimTime::from_secs(1), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.hdfs.lost_blocks().is_empty());
        let per_block = sim.metrics.snapshot().hdfs_bytes_read
            / (lost as f64 * sim.config().cluster.block_bytes as f64);
        assert!((per_block - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wordcount_completes_and_records_jobs() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        let f = sim.load_raided_file("words", 20);
        sim.submit_wordcount_at(SimTime::from_secs(1), f);
        sim.submit_wordcount_at(SimTime::from_secs(1), f);
        sim.run_until_idle(SimTime::from_mins(100_000));
        assert_eq!(sim.metrics.workload_jobs.len(), 2);
        // No repairs: no blocks were lost.
        assert!(sim.metrics.repair_jobs.is_empty());
    }

    #[test]
    fn degraded_reads_cost_more_time_than_healthy_reads() {
        let mut durations = Vec::new();
        for missing in [false, true] {
            let mut cfg = small_cfg(CodeSpec::LRC_10_6_5);
            cfg.seed = 7;
            let mut sim = Simulation::new(cfg);
            let f = sim.load_raided_file("w", 20);
            if missing {
                // Drop ~20% of the file's data blocks.
                let drops: Vec<BlockId> = (0..sim.hdfs.block_count())
                    .filter(|&b| {
                        let m = sim.hdfs.block(b);
                        m.pos < 10 && b % 5 == 0
                    })
                    .collect();
                assert!(!drops.is_empty());
                sim.drop_blocks_at(SimTime::ZERO, drops);
            }
            sim.submit_wordcount_at(SimTime::from_secs(1), f);
            sim.run_until_idle(SimTime::from_mins(1_000_000));
            let job = sim.metrics.workload_jobs[0];
            durations.push(job.duration().as_secs_f64());
            let _ = f;
        }
        assert!(
            durations[1] > durations[0],
            "degraded {} <= healthy {}",
            durations[1],
            durations[0]
        );
    }

    #[test]
    fn two_sequential_failures_still_converge() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..6 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let v1 = sim.node_with_block_count_near(5).unwrap();
        sim.kill_node_at(SimTime::from_secs(5), v1);
        let v2 = (v1 + 1) % 20;
        sim.kill_node_at(SimTime::from_secs(6), v2);
        sim.run_until_idle(SimTime::from_mins(6_000));
        assert!(sim.hdfs.lost_blocks().is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
            for i in 0..4 {
                sim.load_raided_file(&format!("f{i}"), 10);
            }
            let victim = sim.node_with_block_count_near(5).unwrap();
            sim.kill_node_at(SimTime::from_secs(2), victim);
            sim.run_until_idle(SimTime::from_mins(600));
            (
                sim.clock,
                sim.metrics.snapshot().hdfs_bytes_read as u64,
                sim.metrics.snapshot().network_bytes as u64,
                sim.events_processed(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn revived_node_rejoins_empty_and_serves_repairs() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(4).unwrap();
        sim.kill_node_at(SimTime::from_secs(10), victim);
        sim.revive_node_at(SimTime::from_mins(30), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.is_alive(victim));
        assert_eq!(sim.alive_nodes(), 20, "fleet back at size");
        assert!(sim.hdfs.lost_blocks().is_empty());
        // A second failure elsewhere can now place blocks on the
        // replacement node.
        let other = (victim + 1) % 20;
        sim.kill_node_at(sim.clock + SimTime::from_secs(5), other);
        sim.run_until_idle(sim.clock + SimTime::from_mins(600));
        assert!(sim.hdfs.lost_blocks().is_empty());
    }

    #[test]
    fn unrecoverable_stripe_counted_once_and_abandoned() {
        let mut cfg = small_cfg(CodeSpec::RS_10_4);
        cfg.verify_payloads = false;
        let mut sim = Simulation::new(cfg);
        sim.load_raided_file("f", 10);
        // Drop 5 blocks of the single stripe: beyond RS(10,4)'s 4-erasure
        // tolerance.
        sim.drop_blocks_at(SimTime::from_secs(1), vec![0, 1, 2, 3, 4]);
        sim.scan_at(SimTime::from_secs(2));
        sim.scan_at(SimTime::from_secs(3)); // rescan must not re-count
        sim.run_until_idle(SimTime::from_mins(600));
        assert_eq!(sim.metrics.data_loss_stripes, 1);
        assert!(sim.hdfs.lost_blocks().is_empty(), "withdrawn from scans");
        assert!(sim.hdfs.block(0).location.is_none(), "still lost");
        assert!(sim.hdfs.stripe(0).unrecoverable);
    }

    #[test]
    fn run_until_advances_clock_without_requiring_idle() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..3 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(4).unwrap();
        sim.kill_node_at(SimTime::from_secs(50), victim);
        sim.run_until(SimTime::from_secs(40));
        assert_eq!(sim.clock, SimTime::from_secs(40));
        assert!(sim.is_alive(victim), "kill not yet processed");
        sim.run_until(SimTime::from_secs(60));
        assert!(!sim.is_alive(victim));
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.hdfs.lost_blocks().is_empty());
    }

    #[test]
    fn decommission_via_repair_drains_without_touching_the_node() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.pick_victims(1)[0];
        let before = sim.hdfs.blocks_on(victim).len();
        assert!(before > 0);
        sim.decommission_node_at(SimTime::from_secs(5), victim, true);
        sim.run_until_idle(SimTime::from_mins(100_000));
        assert!(sim.is_drained(victim), "node fully drained");
        assert!(sim.hdfs.lost_blocks().is_empty(), "nothing was lost");
        assert_eq!(sim.hdfs.block_count() as u64, 5 * 16);
        // Repair-based drain never reads from the draining node: its
        // disk sees no read traffic — approximated by checking the
        // relocated blocks now live elsewhere.
        assert!(sim.hdfs.blocks_on(victim).is_empty());
    }

    #[test]
    fn decommission_copy_out_also_drains() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::RS_10_4));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.pick_victims(1)[0];
        sim.decommission_node_at(SimTime::from_secs(5), victim, false);
        sim.run_until_idle(SimTime::from_mins(100_000));
        assert!(sim.is_drained(victim));
        assert!(sim.hdfs.lost_blocks().is_empty());
    }

    #[test]
    fn copy_out_moves_fewer_bytes_than_repair_drain() {
        let run = |via_repair: bool| {
            let mut cfg = small_cfg(CodeSpec::LRC_10_6_5);
            cfg.verify_payloads = false;
            cfg.seed = 9;
            let mut sim = Simulation::new(cfg);
            for i in 0..6 {
                sim.load_raided_file(&format!("f{i}"), 10);
            }
            let victim = sim.pick_victims(1)[0];
            sim.decommission_node_at(SimTime::from_secs(1), victim, via_repair);
            sim.run_until_idle(SimTime::from_mins(100_000));
            assert!(sim.is_drained(victim));
            sim.metrics.snapshot().hdfs_bytes_read
        };
        let copy_bytes = run(false);
        let repair_bytes = run(true);
        // Copy-out reads each block once; repair-based reads its whole
        // group (~5x). The paper's point is about *time* and *load on
        // the draining node*, not bytes.
        assert!(repair_bytes > 3.0 * copy_bytes);
    }

    #[test]
    fn draining_node_receives_no_new_blocks() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let drain = sim.pick_victims(1)[0];
        sim.decommission_node_at(SimTime::from_secs(1), drain, true);
        // Kill another node while draining: repairs must avoid `drain`.
        let other = (drain + 1) % 20;
        sim.kill_node_at(SimTime::from_secs(2), other);
        sim.run_until_idle(SimTime::from_mins(100_000));
        assert!(sim.hdfs.blocks_on(drain).is_empty());
        assert!(sim.hdfs.lost_blocks().is_empty());
    }

    #[test]
    fn transient_restore_before_detection_repairs_nothing() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(4).unwrap();
        let before = sim.hdfs.blocks_on(victim).len();
        assert!(before > 0);
        // Detection delay is 30s: the node is back before the scan.
        sim.kill_node_at(SimTime::from_secs(10), victim);
        sim.restore_node_at(SimTime::from_secs(20), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.is_alive(victim));
        assert!(sim.hdfs.lost_blocks().is_empty());
        assert_eq!(sim.hdfs.blocks_on(victim).len(), before, "disk came back");
        assert_eq!(sim.metrics.snapshot().blocks_repaired, 0, "no repair ran");
        assert_eq!(sim.metrics.snapshot().hdfs_bytes_read, 0.0);
    }

    #[test]
    fn transient_restore_after_repair_is_harmless() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(4).unwrap();
        let before = sim.hdfs.blocks_on(victim).len();
        sim.kill_node_at(SimTime::from_secs(10), victim);
        // The node returns long after the BlockFixer re-created its
        // blocks elsewhere: nothing re-attaches, nothing panics, and no
        // block exists twice.
        sim.restore_node_at(SimTime::from_mins(300), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.is_alive(victim));
        assert!(sim.hdfs.lost_blocks().is_empty());
        assert_eq!(sim.metrics.snapshot().blocks_repaired as usize, before);
        assert!(sim.hdfs.blocks_on(victim).is_empty(), "repairs won");
        assert_eq!(sim.hdfs.block_count() as u64, 5 * 16);
    }

    #[test]
    fn transient_restore_mid_repair_keeps_inventory_consistent() {
        // Restore lands between detection and repair completion: some
        // blocks re-attach, in-flight repairs for them settle vacuously
        // (restore_block_now skips located blocks), and every block ends
        // with exactly one location.
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        for i in 0..5 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(4).unwrap();
        sim.kill_node_at(SimTime::from_secs(10), victim);
        sim.restore_node_at(SimTime::from_secs(45), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        assert!(sim.hdfs.lost_blocks().is_empty());
        assert_eq!(sim.hdfs.block_count() as u64, 5 * 16);
        let placed: usize = (0..20).map(|n| sim.hdfs.blocks_on(n).len()).sum();
        assert_eq!(placed as u64, 5 * 16, "each block has one location");
    }

    #[test]
    fn healthy_workload_serves_everything_directly() {
        let mut sim = Simulation::new(small_cfg(CodeSpec::LRC_10_6_5));
        sim.load_raided_file("f", 20);
        let cfg = WorkloadConfig {
            reads_per_sec: 5.0,
            ..WorkloadConfig::default()
        };
        sim.start_workload(SimTime::ZERO, SimTime::from_mins(10), cfg);
        sim.run_until_idle(SimTime::from_mins(60));
        let s = sim.metrics.serving.summary();
        assert!(s.reads_issued > 2000, "10 min at 5 rps: {}", s.reads_issued);
        assert_eq!(s.direct_reads, s.reads_issued);
        assert_eq!(s.recovery_reads, 0);
        assert_eq!(s.degraded_fraction, 0.0);
        let d = s.direct_ms;
        assert!((d.p50 - cfg.direct_service_ms()).abs() < 1e-9);
        assert_eq!(d.p50, d.p999, "direct latency is constant");
        // Serving traffic never leaks into the §5 repair counter.
        assert_eq!(sim.metrics.snapshot().hdfs_bytes_read, 0.0);
    }

    #[test]
    fn unavailable_blocks_serve_degraded_with_higher_latency() {
        let mut cfg = small_cfg(CodeSpec::LRC_10_6_5);
        cfg.verify_payloads = false;
        let mut sim = Simulation::new(cfg);
        sim.load_raided_file("f", 40);
        // Silently drop some data blocks (no scan: nothing repairs, so
        // every read of them is a degraded read).
        let drops: Vec<BlockId> = (0..sim.hdfs.block_count())
            .filter(|&b| sim.hdfs.block(b).pos < 10 && b % 7 == 0)
            .collect();
        assert!(!drops.is_empty());
        sim.drop_blocks_at(SimTime::ZERO, drops);
        let wcfg = WorkloadConfig {
            reads_per_sec: 5.0,
            zipf_s: 0.0, // uniform: guarantee the dropped blocks get hit
            ..WorkloadConfig::default()
        };
        sim.start_workload(SimTime::from_secs(1), SimTime::from_mins(20), wcfg);
        sim.run_until_idle(SimTime::from_mins(60));
        let s = sim.metrics.serving.summary();
        assert!(s.degraded_light > 0, "light degraded reads happened");
        assert_eq!(s.recovery_reads, s.degraded_light + s.degraded_heavy);
        assert_eq!(s.failed_reads, 0);
        assert!(s.single_loss_fraction > 0.0);
        assert!(
            s.degraded_ms.p50 > s.direct_ms.p999,
            "degraded {} <= direct {}",
            s.degraded_ms.p50,
            s.direct_ms.p999
        );
        assert!(s.degraded_bytes > s.direct_bytes / s.direct_reads.max(1) as f64);
        assert_eq!(sim.metrics.snapshot().hdfs_bytes_read, 0.0);
    }

    #[test]
    fn wait_for_fixer_policy_parks_reads_until_repair() {
        let mut cfg = small_cfg(CodeSpec::LRC_10_6_5);
        cfg.verify_payloads = false;
        let mut sim = Simulation::new(cfg);
        sim.load_raided_file("f", 30);
        let victim = sim.node_with_block_count_near(5).unwrap();
        let wcfg = WorkloadConfig {
            reads_per_sec: 20.0,
            zipf_s: 0.0,
            policy: ServePolicy::WaitForFixer,
            ..WorkloadConfig::default()
        };
        sim.start_workload(SimTime::ZERO, SimTime::from_mins(30), wcfg);
        sim.kill_node_at(SimTime::from_secs(60), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        let s = sim.metrics.serving.summary();
        assert!(s.fixer_wait_reads > 0, "reads parked on lost blocks");
        assert_eq!(s.failed_reads, 0);
        assert_eq!(
            s.reads_issued,
            s.direct_reads + s.fixer_wait_reads,
            "every parked read was eventually served"
        );
        // Park time dominates: waiting for detection + repair is orders
        // of magnitude slower than a direct read.
        assert!(s.fixer_wait_ms.p50 > 100.0 * s.direct_ms.p50);
    }

    #[test]
    fn workload_is_deterministic_and_independent_of_engine_rng() {
        let run = || {
            let mut cfg = small_cfg(CodeSpec::LRC_10_6_5);
            cfg.verify_payloads = false;
            let mut sim = Simulation::new(cfg);
            for i in 0..4 {
                sim.load_raided_file(&format!("f{i}"), 10);
            }
            let victim = sim.node_with_block_count_near(5).unwrap();
            sim.start_workload(
                SimTime::ZERO,
                SimTime::from_mins(120),
                WorkloadConfig {
                    reads_per_sec: 3.0,
                    churn_every: SimTime::from_mins(30),
                    ..WorkloadConfig::default()
                },
            );
            sim.kill_node_at(SimTime::from_secs(30), victim);
            sim.restore_node_at(SimTime::from_mins(45), victim);
            sim.run_until_idle(SimTime::from_mins(1200));
            (
                sim.metrics.serving.summary(),
                sim.metrics.snapshot().hdfs_bytes_read as u64,
                sim.events_processed(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn attaching_a_workload_does_not_perturb_repair_traffic() {
        let repair_bytes = |with_workload: bool| {
            let mut cfg = small_cfg(CodeSpec::LRC_10_6_5);
            cfg.seed = 11;
            let mut sim = Simulation::new(cfg);
            for i in 0..5 {
                sim.load_raided_file(&format!("f{i}"), 10);
            }
            if with_workload {
                sim.start_workload(
                    SimTime::ZERO,
                    SimTime::from_mins(120),
                    WorkloadConfig::default(),
                );
            }
            let victim = sim.node_with_block_count_near(4).unwrap();
            sim.kill_node_at(SimTime::from_secs(10), victim);
            sim.run_until_idle(SimTime::from_mins(1200));
            sim.metrics.snapshot().hdfs_bytes_read as u64
        };
        assert_eq!(repair_bytes(false), repair_bytes(true));
    }

    #[test]
    fn network_traffic_roughly_doubles_bytes_read() {
        // Reads stream in, repaired blocks stream out: §5.2.2 observed
        // "network traffic was roughly equal to twice the number of
        // bytes read" — our flows reproduce the read+write structure,
        // with the write adding 1 block per ~5-10 read.
        let mut sim = Simulation::new(small_cfg(CodeSpec::RS_10_4));
        for i in 0..6 {
            sim.load_raided_file(&format!("f{i}"), 10);
        }
        let victim = sim.node_with_block_count_near(5).unwrap();
        sim.kill_node_at(SimTime::from_secs(2), victim);
        sim.run_until_idle(SimTime::from_mins(600));
        let s = sim.metrics.snapshot();
        assert!(s.network_bytes > s.hdfs_bytes_read * 0.8);
        assert!(s.network_bytes < s.hdfs_bytes_read * 1.5);
    }
}
