//! Simulator configuration.

use xorbas_core::CodeSpec;

/// How repair tasks choose which surviving blocks to stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Read exactly the blocks the codec's repair plan requires
    /// (`k` for RS heavy decode, the repair group for light decode).
    Minimal,
    /// Mirror the deployed HDFS-RAID BlockFixer: heavy-decoder tasks open
    /// streams to *all* surviving blocks of the stripe ("even when a
    /// single block is corrupt, the BlockFixer opens streams to all 13
    /// other blocks", §3.1.2). Light-decoder tasks still read only their
    /// repair group.
    Deployed,
}

/// Cluster-level physical configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker (DataNode/TaskTracker) nodes.
    pub nodes: usize,
    /// Number of racks nodes are spread over (round-robin).
    pub racks: usize,
    /// Per-node NIC bandwidth, bits/s, applied to ingress and egress
    /// separately (full duplex).
    pub nic_bps: f64,
    /// Aggregate bandwidth of the shared top-level switch, bits/s —
    /// "hundreds of machines can share a single top-level switch which
    /// becomes saturated" (§5.2.3).
    pub core_bps: f64,
    /// MapReduce computation slots per node.
    pub map_slots_per_node: usize,
    /// HDFS block size, bytes.
    pub block_bytes: u64,
}

impl ClusterConfig {
    /// The EC2 setup of §5.2: 50 slaves of m1.small, 64 MB blocks.
    /// EC2 gives no topology information, so all nodes share one "rack"
    /// domain behind a common switch.
    pub fn ec2(nodes: usize) -> Self {
        Self {
            nodes,
            racks: 1,
            nic_bps: 100e6, // m1.small-era "low" network performance
            core_bps: 1e9,  // one shared top-level switch ≈ the paper's γ
            map_slots_per_node: 2,
            block_bytes: 64 << 20,
        }
    }

    /// The Facebook test cluster of §5.3: 35 nodes, 256 MB blocks.
    pub fn facebook_test(nodes: usize) -> Self {
        Self {
            nodes,
            racks: 5,
            nic_bps: 1e9,
            core_bps: 8e9,
            map_slots_per_node: 2,
            block_bytes: 256 << 20,
        }
    }
}

/// A warehouse-scale cluster preset with *scaled block granularity*.
///
/// The paper's production context is the Facebook warehouse cluster:
/// "more than 3000 nodes ... storing more than 30 PB" (§1), with 256 MB
/// blocks and "a median of 20 node failures per day" (Fig. 1). Tracking
/// all ~120 M physical blocks individually would dominate simulation
/// cost without changing the metrics the paper reports, so this preset
/// simulates at coarser *block granularity*: one simulated block stands
/// for [`ClusterScale::block_scale`] physical blocks placed together
/// (the same aggregation a placement group / chunk server performs).
///
/// What the scaling preserves and what it approximates:
///
/// * **Repair traffic and storage bytes are exact** — a simulated block
///   carries `block_scale × physical_block_bytes` bytes, so every
///   bytes-read / bytes-moved metric matches the full-resolution run.
/// * **Failure and placement granularity is coarser** — a node holds
///   `~1/block_scale` as many distinct blocks, so block-count-based
///   statistics (e.g. stripes touched per failure) are scaled down by
///   the same factor; repair *durations* stretch accordingly because a
///   coarse block streams through one NIC serially where `block_scale`
///   physical blocks would fan out. Use moderate scales (or 1) when
///   duration microstructure matters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScale {
    /// Worker nodes in the fleet.
    pub nodes: usize,
    /// Racks (round-robin assignment).
    pub racks: usize,
    /// Per-node NIC bandwidth, bits/s.
    pub nic_bps: f64,
    /// Aggregate fabric (core) bandwidth, bits/s. Warehouse fabrics are
    /// multi-switch fat trees, not the single saturable top-level switch
    /// of the §5.2 EC2 testbed, so this is provisioned at aggregate
    /// bisection scale.
    pub core_bps: f64,
    /// MapReduce slots per node.
    pub map_slots_per_node: usize,
    /// Physical HDFS block size, bytes (the warehouse used 256 MB).
    pub physical_block_bytes: u64,
    /// Physical blocks represented by one simulated block.
    pub block_scale: u64,
    /// Total *stored* bytes (data + parity) the namespace is loaded to.
    pub total_bytes: u64,
}

impl ClusterScale {
    /// The paper's Facebook warehouse cluster: 3000 nodes, 30 PB stored,
    /// 256 MB physical blocks, simulated at 512-block granularity
    /// (~229k simulated blocks, ~76 per node — a simulated year's
    /// storm of daily failures stays event-bound).
    pub fn facebook_warehouse() -> Self {
        Self {
            nodes: 3000,
            racks: 150,
            nic_bps: 1e9,
            core_bps: 2e12,
            map_slots_per_node: 2,
            physical_block_bytes: 256 << 20,
            block_scale: 512,
            total_bytes: 30_000_000_000_000_000, // 30 PB
        }
    }

    /// A wide-stripe testbed: 300 nodes — enough machines that a
    /// 260-lane stripe (e.g. [`CodeSpec::LRC_WIDE`] or
    /// [`CodeSpec::RS_200_60`]) still spreads roughly one block per
    /// node — with a namespace small enough (~35 simulated blocks per
    /// node at 64-physical-block granularity) for a multi-seed
    /// Monte-Carlo comparison to run inside a unit test.
    pub fn wide_stripe_testbed() -> Self {
        Self {
            nodes: 300,
            racks: 30,
            nic_bps: 1e9,
            core_bps: 2e11,
            map_slots_per_node: 2,
            physical_block_bytes: 256 << 20,
            block_scale: 64,
            total_bytes: 180_000_000_000_000, // 180 TB stored
        }
    }

    /// Bytes per simulated block.
    pub fn sim_block_bytes(&self) -> u64 {
        self.physical_block_bytes * self.block_scale
    }

    /// Total simulated blocks the namespace holds at `total_bytes`.
    pub fn sim_blocks_total(&self) -> usize {
        (self.total_bytes / self.sim_block_bytes()) as usize
    }

    /// Simulated *data* blocks to load so that stored bytes (data plus
    /// parity) reach `total_bytes` under `code` — both schemes fill the
    /// same 30 PB footprint, as a capacity-bound warehouse would.
    pub fn data_blocks_for(&self, code: CodeSpec) -> usize {
        let total = self.sim_blocks_total();
        total * code.data_blocks() / code.total_blocks()
    }

    /// The equivalent flat [`ClusterConfig`].
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            nodes: self.nodes,
            racks: self.racks,
            nic_bps: self.nic_bps,
            core_bps: self.core_bps,
            map_slots_per_node: self.map_slots_per_node,
            block_bytes: self.sim_block_bytes(),
        }
    }
}

/// Compute-speed model for task types, in bytes/second processed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRates {
    /// XOR light-decode throughput.
    pub xor_bps: f64,
    /// Reed-Solomon (heavy) decode throughput. The paper found "HDFS RS
    /// and Xorbas have very similar CPU requirements" — the Vandermonde
    /// solve is cheap — so this defaults close to XOR speed.
    pub rs_decode_bps: f64,
    /// WordCount map throughput (calibrated to m1.small-era Hadoop,
    /// where a 64 MB map task takes several minutes).
    pub wordcount_bps: f64,
}

impl Default for ComputeRates {
    fn default() -> Self {
        Self {
            xor_bps: 400e6,
            rs_decode_bps: 300e6,
            wordcount_bps: 150e3,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The cluster.
    pub cluster: ClusterConfig,
    /// The redundancy scheme files are RAIDed with.
    pub code: CodeSpec,
    /// Stream-selection policy for repairs.
    pub read_policy: ReadPolicy,
    /// Delay between a failure and the BlockFixer dispatching repairs.
    pub detection_delay_secs: f64,
    /// Compute model.
    pub compute: ComputeRates,
    /// Metric time-series bucket width, seconds (the paper plots 5-minute
    /// resolution).
    pub series_bucket_secs: u64,
    /// Store local parities even when their whole group is zero padding.
    /// The deployed HDFS-Xorbas did this (which is why §5.3 measured 27%
    /// extra storage on small files instead of the ideal 13%); our
    /// default elides such all-zero parities.
    pub pad_local_parities: bool,
    /// Cluster-wide cap on concurrently *running* repair/relocation
    /// tasks (0 = unlimited). Deployed HDFS throttles re-replication
    /// (`dfs.namenode.replication.max-streams`) so a mass failure
    /// cannot commandeer every map slot and NIC at once; the cap also
    /// bounds the flow-level network's working set on burst days.
    /// Workload jobs are never throttled.
    pub max_concurrent_repairs: usize,
    /// When true, every block carries a small real payload and repairs
    /// run the actual codecs, verifying restored bytes (test mode).
    pub verify_payloads: bool,
    /// Payload bytes per block in verify mode.
    pub payload_bytes: usize,
    /// RNG seed (placement, failure choice).
    pub seed: u64,
}

impl SimConfig {
    /// EC2-experiment defaults for the given scheme.
    pub fn ec2(code: CodeSpec) -> Self {
        Self {
            cluster: ClusterConfig::ec2(50),
            code,
            read_policy: ReadPolicy::Deployed,
            pad_local_parities: false,
            detection_delay_secs: 30.0,
            compute: ComputeRates::default(),
            series_bucket_secs: 300,
            max_concurrent_repairs: 0,
            verify_payloads: false,
            payload_bytes: 64,
            seed: 0x0E1EFA17,
        }
    }

    /// Warehouse-scale defaults for the given scheme, from a
    /// [`ClusterScale`] preset. Uses the deployed BlockFixer's read
    /// policy (the warehouse ran HDFS-RAID) and a 15-minute detection
    /// delay (the paper: blocks are repaired "after a 15 minute
    /// timeout"). Compute rates are multiplied by the block granularity:
    /// one simulated block stands for [`ClusterScale::block_scale`]
    /// physical blocks whose map/decode tasks run in parallel across the
    /// fleet, so per-coarse-block compute must not serialize them.
    pub fn scaled(scale: &ClusterScale, code: CodeSpec) -> Self {
        let base = ComputeRates::default();
        let s = scale.block_scale as f64;
        Self {
            cluster: scale.cluster_config(),
            code,
            read_policy: ReadPolicy::Deployed,
            pad_local_parities: false,
            detection_delay_secs: 15.0 * 60.0,
            compute: ComputeRates {
                xor_bps: base.xor_bps * s,
                rs_decode_bps: base.rs_decode_bps * s,
                wordcount_bps: base.wordcount_bps * s,
            },
            series_bucket_secs: 300,
            max_concurrent_repairs: 512,
            verify_payloads: false,
            payload_bytes: 64,
            seed: 0x3000_FACE,
        }
    }

    /// Facebook-test-cluster defaults for the given scheme.
    pub fn facebook(code: CodeSpec) -> Self {
        Self {
            cluster: ClusterConfig::facebook_test(35),
            code,
            read_policy: ReadPolicy::Deployed,
            pad_local_parities: false,
            detection_delay_secs: 30.0,
            compute: ComputeRates::default(),
            series_bucket_secs: 300,
            max_concurrent_repairs: 0,
            verify_payloads: false,
            payload_bytes: 64,
            seed: 0xFACEB00C,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_defaults_match_section_5_2() {
        let c = ClusterConfig::ec2(50);
        assert_eq!(c.nodes, 50);
        assert_eq!(c.block_bytes, 64 << 20);
    }

    #[test]
    fn facebook_defaults_match_section_5_3() {
        let c = ClusterConfig::facebook_test(35);
        assert_eq!(c.nodes, 35);
        assert_eq!(c.block_bytes, 256 << 20);
    }

    #[test]
    fn sim_config_carries_scheme() {
        let cfg = SimConfig::ec2(CodeSpec::RS_10_4);
        assert_eq!(cfg.code, CodeSpec::RS_10_4);
        assert_eq!(cfg.read_policy, ReadPolicy::Deployed);
    }

    #[test]
    fn warehouse_preset_matches_paper_scale() {
        let s = ClusterScale::facebook_warehouse();
        assert_eq!(s.nodes, 3000);
        assert_eq!(s.physical_block_bytes, 256 << 20);
        // 30 PB at 512-block granularity: ~218k simulated blocks of
        // 128 GiB each, ~73 per node.
        assert_eq!(s.sim_block_bytes(), (256 << 20) * 512);
        let blocks = s.sim_blocks_total();
        assert!((210_000..230_000).contains(&blocks), "{blocks}");
        assert!((65..80).contains(&(blocks / s.nodes)));
        // Both schemes fill the same stored footprint.
        let lrc_data = s.data_blocks_for(CodeSpec::LRC_10_6_5);
        let rs_data = s.data_blocks_for(CodeSpec::RS_10_4);
        let stored = |data: usize, n: usize, k: usize| data * n / k;
        let lrc_stored = stored(lrc_data, 16, 10);
        let rs_stored = stored(rs_data, 14, 10);
        assert!((lrc_stored as f64 / rs_stored as f64 - 1.0).abs() < 0.01);
    }

    #[test]
    fn scaled_config_uses_deployed_policy_and_long_detection() {
        let cfg = SimConfig::scaled(&ClusterScale::facebook_warehouse(), CodeSpec::LRC_10_6_5);
        assert_eq!(cfg.cluster.nodes, 3000);
        assert_eq!(cfg.read_policy, ReadPolicy::Deployed);
        assert_eq!(cfg.detection_delay_secs, 900.0);
    }
}
