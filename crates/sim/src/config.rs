//! Simulator configuration.

use xorbas_core::CodeSpec;

/// How repair tasks choose which surviving blocks to stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Read exactly the blocks the codec's repair plan requires
    /// (`k` for RS heavy decode, the repair group for light decode).
    Minimal,
    /// Mirror the deployed HDFS-RAID BlockFixer: heavy-decoder tasks open
    /// streams to *all* surviving blocks of the stripe ("even when a
    /// single block is corrupt, the BlockFixer opens streams to all 13
    /// other blocks", §3.1.2). Light-decoder tasks still read only their
    /// repair group.
    Deployed,
}

/// Cluster-level physical configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker (DataNode/TaskTracker) nodes.
    pub nodes: usize,
    /// Number of racks nodes are spread over (round-robin).
    pub racks: usize,
    /// Per-node NIC bandwidth, bits/s, applied to ingress and egress
    /// separately (full duplex).
    pub nic_bps: f64,
    /// Aggregate bandwidth of the shared top-level switch, bits/s —
    /// "hundreds of machines can share a single top-level switch which
    /// becomes saturated" (§5.2.3).
    pub core_bps: f64,
    /// MapReduce computation slots per node.
    pub map_slots_per_node: usize,
    /// HDFS block size, bytes.
    pub block_bytes: u64,
}

impl ClusterConfig {
    /// The EC2 setup of §5.2: 50 slaves of m1.small, 64 MB blocks.
    /// EC2 gives no topology information, so all nodes share one "rack"
    /// domain behind a common switch.
    pub fn ec2(nodes: usize) -> Self {
        Self {
            nodes,
            racks: 1,
            nic_bps: 100e6, // m1.small-era "low" network performance
            core_bps: 1e9,  // one shared top-level switch ≈ the paper's γ
            map_slots_per_node: 2,
            block_bytes: 64 << 20,
        }
    }

    /// The Facebook test cluster of §5.3: 35 nodes, 256 MB blocks.
    pub fn facebook_test(nodes: usize) -> Self {
        Self {
            nodes,
            racks: 5,
            nic_bps: 1e9,
            core_bps: 8e9,
            map_slots_per_node: 2,
            block_bytes: 256 << 20,
        }
    }
}

/// Compute-speed model for task types, in bytes/second processed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRates {
    /// XOR light-decode throughput.
    pub xor_bps: f64,
    /// Reed-Solomon (heavy) decode throughput. The paper found "HDFS RS
    /// and Xorbas have very similar CPU requirements" — the Vandermonde
    /// solve is cheap — so this defaults close to XOR speed.
    pub rs_decode_bps: f64,
    /// WordCount map throughput (calibrated to m1.small-era Hadoop,
    /// where a 64 MB map task takes several minutes).
    pub wordcount_bps: f64,
}

impl Default for ComputeRates {
    fn default() -> Self {
        Self {
            xor_bps: 400e6,
            rs_decode_bps: 300e6,
            wordcount_bps: 150e3,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The cluster.
    pub cluster: ClusterConfig,
    /// The redundancy scheme files are RAIDed with.
    pub code: CodeSpec,
    /// Stream-selection policy for repairs.
    pub read_policy: ReadPolicy,
    /// Delay between a failure and the BlockFixer dispatching repairs.
    pub detection_delay_secs: f64,
    /// Compute model.
    pub compute: ComputeRates,
    /// Metric time-series bucket width, seconds (the paper plots 5-minute
    /// resolution).
    pub series_bucket_secs: u64,
    /// Store local parities even when their whole group is zero padding.
    /// The deployed HDFS-Xorbas did this (which is why §5.3 measured 27%
    /// extra storage on small files instead of the ideal 13%); our
    /// default elides such all-zero parities.
    pub pad_local_parities: bool,
    /// When true, every block carries a small real payload and repairs
    /// run the actual codecs, verifying restored bytes (test mode).
    pub verify_payloads: bool,
    /// Payload bytes per block in verify mode.
    pub payload_bytes: usize,
    /// RNG seed (placement, failure choice).
    pub seed: u64,
}

impl SimConfig {
    /// EC2-experiment defaults for the given scheme.
    pub fn ec2(code: CodeSpec) -> Self {
        Self {
            cluster: ClusterConfig::ec2(50),
            code,
            read_policy: ReadPolicy::Deployed,
            pad_local_parities: false,
            detection_delay_secs: 30.0,
            compute: ComputeRates::default(),
            series_bucket_secs: 300,
            verify_payloads: false,
            payload_bytes: 64,
            seed: 0x0E1EFA17,
        }
    }

    /// Facebook-test-cluster defaults for the given scheme.
    pub fn facebook(code: CodeSpec) -> Self {
        Self {
            cluster: ClusterConfig::facebook_test(35),
            code,
            read_policy: ReadPolicy::Deployed,
            pad_local_parities: false,
            detection_delay_secs: 30.0,
            compute: ComputeRates::default(),
            series_bucket_secs: 300,
            verify_payloads: false,
            payload_bytes: 64,
            seed: 0xFACEB00C,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_defaults_match_section_5_2() {
        let c = ClusterConfig::ec2(50);
        assert_eq!(c.nodes, 50);
        assert_eq!(c.block_bytes, 64 << 20);
    }

    #[test]
    fn facebook_defaults_match_section_5_3() {
        let c = ClusterConfig::facebook_test(35);
        assert_eq!(c.nodes, 35);
        assert_eq!(c.block_bytes, 256 << 20);
    }

    #[test]
    fn sim_config_carries_scheme() {
        let cfg = SimConfig::ec2(CodeSpec::RS_10_4);
        assert_eq!(cfg.code, CodeSpec::RS_10_4);
        assert_eq!(cfg.read_policy, ReadPolicy::Deployed);
    }
}
